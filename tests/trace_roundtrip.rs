//! Acceptance tests for the observability stack: a traced framework
//! solve must export a Chrome trace-event JSON whose structure matches
//! the schedule (one span per phase, per-wave CPU/GPU spans, Link
//! transfer spans), and the export must survive a parse round-trip with
//! the event count and ordering intact.

use lddp::core::schedule::ScheduleParams;
use lddp::platforms::hetero_high;
use lddp::problems::LevenshteinKernel;
use lddp::trace::{chrome, json, tracks, Recorder};
use lddp::workloads::random_seq;
use lddp::Framework;

fn traced_levenshtein(n: usize) -> (lddp::trace::TraceData, lddp::Solution<u32>) {
    let kernel = LevenshteinKernel::new(random_seq(n, 4, 1), random_seq(n, 4, 2));
    let fw = Framework::new(hetero_high()).with_io_bytes(2 * n, 8);
    let rec = Recorder::new();
    let solution = fw
        .solve_traced(&kernel, Some(ScheduleParams::new(8, 24)), &rec)
        .unwrap();
    (rec.into_data(), solution)
}

#[test]
fn trace_structure_matches_the_schedule() {
    let (data, solution) = traced_levenshtein(96);

    // ≥ 1 span per schedule phase, on the schedule track, matching the
    // per-phase stats the solution reports.
    let phase_spans: Vec<_> = data
        .spans
        .iter()
        .filter(|s| s.track == tracks::SCHEDULE)
        .collect();
    assert!(!solution.phases.is_empty());
    assert_eq!(phase_spans.len(), solution.phases.len());
    for (span, stat) in phase_spans.iter().zip(&solution.phases) {
        assert!((span.dur_s - stat.wall_s).abs() < 1e-9);
    }

    // Per-wave compute spans on the CPU and GPU engine tracks.
    assert!(data.spans_named("wave").any(|s| s.track == tracks::CPU));
    assert!(data.spans_named("wave").any(|s| s.track == tracks::GPU));

    // Link transfer spans for the shared phase's boundary copies.
    assert!(data.spans_named("copy").any(|s| s.track == tracks::LINK));

    // Busy time on the trace equals the breakdown's accounting.
    assert!((data.track_busy_s(tracks::CPU) - solution.breakdown.cpu_busy_s).abs() < 1e-9);
    assert!((data.track_busy_s(tracks::GPU) - solution.breakdown.gpu_busy_s).abs() < 1e-9);
}

#[test]
fn chrome_export_round_trips_count_and_order() {
    let (data, _) = traced_levenshtein(64);
    let text = chrome::to_chrome_json(&data);
    let v = json::parse(&text).unwrap();
    let events = v.get("traceEvents").and_then(|j| j.as_arr()).unwrap();

    // Every span came back as an X event, in emission order.
    let xs: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|j| j.as_str()) == Some("X"))
        .collect();
    assert_eq!(xs.len(), data.spans.len());
    for (x, span) in xs.iter().zip(&data.spans) {
        assert_eq!(
            x.get("name").and_then(|j| j.as_str()),
            Some(span.name.as_str())
        );
        let ts = x.get("ts").and_then(|j| j.as_f64()).unwrap();
        assert!((ts - span.start_s * 1e6).abs() < 1e-6);
        let pid = x.get("pid").and_then(|j| j.as_f64()).unwrap();
        assert_eq!(pid as u32, span.track.pid);
    }

    // Instants and counter samples survive too.
    let is: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|j| j.as_str()) == Some("i"))
        .collect();
    assert_eq!(is.len(), data.instants.len());
    let cs: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|j| j.as_str()) == Some("C"))
        .collect();
    assert_eq!(cs.len(), data.samples.len());
}

#[test]
fn tuned_traced_solve_records_sweep_points() {
    let kernel = LevenshteinKernel::new(random_seq(48, 4, 5), random_seq(48, 4, 6));
    let fw = Framework::new(hetero_high());
    let rec = Recorder::new();
    let solution = fw.solve_traced(&kernel, None, &rec).unwrap();
    let data = rec.snapshot();
    // The tuner recorded every sweep evaluation before the run.
    assert!(data.counters["tuner.evals"] >= 2);
    assert!(data
        .instants
        .iter()
        .any(|e| e.name == "tuner.sweep" && e.track == tracks::TUNER));
    // And the traced answer matches an untraced solve with the same
    // parameters.
    let check = fw.solve_with(&kernel, solution.params).unwrap();
    assert_eq!(solution.grid.to_row_major(), check.grid.to_row_major());
}

#[test]
fn parallel_engine_histogram_flows_through_the_same_sink() {
    use lddp::core::cell::{ContributingSet, RepCell};
    use lddp::core::kernel::{ClosureKernel, Neighbors};
    use lddp::core::Dims;
    use lddp::parallel::ParallelEngine;

    let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
    let kernel = ClosureKernel::new(Dims::new(64, 64), set, |i, j, n: &Neighbors<u64>| {
        n.w.unwrap_or(1)
            .wrapping_add(n.n.unwrap_or(i as u64))
            .wrapping_add(n.nw.unwrap_or(j as u64))
    });
    let rec = Recorder::new();
    rec.register_histogram(
        "parallel.barrier_wait_s",
        vec![1e-7, 1e-6, 1e-5, 1e-4, 1e-3],
    );
    ParallelEngine::new(2).solve_traced(&kernel, &rec).unwrap();
    let data = rec.snapshot();
    let h = &data.histograms["parallel.barrier_wait_s"];
    assert!(h.count > 0, "barrier waits must be observed");
    assert_eq!(h.counts.len(), 6);
    assert!(
        data.samples
            .iter()
            .filter(|s| s.name == "worker.busy_s")
            .count()
            == 2
    );
    assert!(data.counters["parallel.waves"] > 0);
}
