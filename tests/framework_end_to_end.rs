//! End-to-end integration: the high-level [`lddp::Framework`] must solve
//! every case-study problem correctly on both modelled platforms, taking
//! the execution route the paper prescribes for each pattern.

use lddp::core::framework::Adapter;
use lddp::core::kernel::{ClosureKernel, Kernel, Neighbors};
use lddp::core::pattern::Pattern;
use lddp::core::schedule::{ScheduleParams, TransferNeed};
use lddp::core::{ContributingSet, Dims, RepCell};
use lddp::platforms::{hetero_high, hetero_low};
use lddp::problems::checkerboard::{min_path_cost, CheckerboardKernel};
use lddp::problems::dithering::{dither_reference, DitherKernel};
use lddp::problems::dtw::{dtw_distance, DtwKernel};
use lddp::problems::lcs::{lcs_length, LcsKernel};
use lddp::problems::levenshtein::{distance, LevenshteinKernel};
use lddp::problems::smith_waterman::{best_local_score, Scoring, SmithWatermanKernel};
use lddp::Framework;

#[test]
fn levenshtein_end_to_end() {
    for platform in [hetero_high(), hetero_low()] {
        let fw = Framework::new(platform);
        let kernel = LevenshteinKernel::new(*b"heterogeneous", *b"homogeneous");
        let solution = fw.solve(&kernel).unwrap();
        let d = kernel.dims();
        assert_eq!(
            solution.grid.get(d.rows - 1, d.cols - 1),
            distance(b"heterogeneous", b"homogeneous")
        );
        assert_eq!(solution.classification.raw_pattern, Pattern::AntiDiagonal);
        assert_eq!(solution.classification.exec_pattern, Pattern::AntiDiagonal);
        assert_eq!(solution.classification.adapter, Adapter::None);
        assert_eq!(solution.classification.transfer.ways(), 1);
        assert!(solution.total_s > 0.0);
    }
}

#[test]
fn lcs_end_to_end() {
    let fw = Framework::new(hetero_high());
    let a = b"the quick brown fox jumps over the lazy dog".to_vec();
    let b = b"pack my box with five dozen liquor jugs".to_vec();
    let kernel = LcsKernel::new(a.clone(), b.clone());
    let solution = fw.solve(&kernel).unwrap();
    assert_eq!(
        kernel.length_from_row_major(&solution.grid),
        lcs_length(&a, &b)
    );
}

trait LcsExt {
    fn length_from_row_major(&self, grid: &lddp::core::Grid<u32>) -> u32;
}

impl LcsExt for LcsKernel {
    fn length_from_row_major(&self, grid: &lddp::core::Grid<u32>) -> u32 {
        let d = self.dims();
        grid.get(d.rows - 1, d.cols - 1)
    }
}

#[test]
fn dithering_end_to_end() {
    let fw = Framework::new(hetero_high()).with_io_bytes(32 * 48, 32 * 48);
    let kernel = DitherKernel::noise(32, 48, 11);
    let solution = fw.solve(&kernel).unwrap();
    assert_eq!(solution.classification.raw_pattern, Pattern::KnightMove);
    assert_eq!(solution.classification.transfer, TransferNeed::TwoWay);
    // Rebuild the output image from the solution grid.
    let mut out = Vec::new();
    for i in 0..32 {
        for j in 0..48 {
            out.push(solution.grid.get(i, j).out);
        }
    }
    let reference_image = DitherKernel::noise(32, 48, 11);
    let (r, c) = (32, 48);
    let expected = dither_reference(r, c, {
        // reconstruct the same noise image
        let mut img = Vec::with_capacity(r * c);
        for i in 0..r {
            for j in 0..c {
                img.push(reference_image.input(i, j) as u8);
            }
        }
        &img.clone()
    });
    assert_eq!(out, expected);
}

#[test]
fn checkerboard_end_to_end() {
    for platform in [hetero_high(), hetero_low()] {
        let fw = Framework::new(platform).with_io_bytes(24 * 24, 0);
        let kernel = CheckerboardKernel::random(24, 24, 9, 99);
        let solution = fw.solve(&kernel).unwrap();
        assert_eq!(solution.classification.raw_pattern, Pattern::Horizontal);
        assert_eq!(solution.classification.transfer, TransferNeed::TwoWay);
        let best = (0..24).map(|j| solution.grid.get(23, j)).min().unwrap();
        let costs: Vec<u8> = (0..24)
            .flat_map(|i| (0..24).map(move |j| (i, j)))
            .map(|(i, j)| kernel.cost(i, j) as u8)
            .collect();
        assert_eq!(best, min_path_cost(24, 24, &costs));
    }
}

#[test]
fn dtw_end_to_end() {
    let fw = Framework::new(hetero_low());
    let kernel = DtwKernel::random_walk(40, 36, 3);
    let solution = fw.solve(&kernel).unwrap();
    let got = solution.grid.get(39, 35);
    // Oracle: the sequential row-major solve of the same kernel (itself
    // property-tested against the independent `dtw_distance` reference).
    let grid = lddp::core::seq::solve_row_major(&kernel).unwrap();
    let expected = kernel.distance_from(&grid);
    assert!(
        (got - expected).abs() <= 1e-4 * expected.abs().max(1.0),
        "{got} vs {expected}"
    );
    // And the banded variant agrees with the banded reference.
    let banded = DtwKernel::random_walk(24, 24, 8).with_band(4);
    let sol = fw.solve(&banded).unwrap();
    let flat_a: Vec<f32> = (0..24).map(|i| sol.grid.get(i, 0)).collect();
    assert!(flat_a.iter().all(|v| v.is_finite() || v.is_infinite()));
    let grid = lddp::core::seq::solve_row_major(&banded).unwrap();
    assert_eq!(sol.grid.get(23, 23), banded.distance_from(&grid));
    let _ = dtw_distance(&[0.0], &[0.0], None);
}

#[test]
fn smith_waterman_end_to_end() {
    let fw = Framework::new(hetero_high());
    let a = b"ACGTACGTTGCAACGT".to_vec();
    let b = b"TTACGTACGTAATTGG".to_vec();
    let kernel = SmithWatermanKernel::new(a.clone(), b.clone());
    let solution = fw.solve(&kernel).unwrap();
    let d = kernel.dims();
    let mut best = 0;
    for i in 0..d.rows {
        for j in 0..d.cols {
            best = best.max(solution.grid.get(i, j).best());
        }
    }
    assert_eq!(best, best_local_score(&a, &b, Scoring::default()));
}

/// A vertical problem ({W, NW}) goes through the transpose adapter and
/// still lands in the caller's coordinates.
#[test]
fn vertical_problem_via_transpose_adapter() {
    let set = ContributingSet::new(&[RepCell::W, RepCell::Nw]);
    let dims = Dims::new(12, 20);
    let kernel = ClosureKernel::new(dims, set, |i, j, n: &Neighbors<u64>| {
        let own = (i * 7 + j * 3 + 1) as u64;
        own.wrapping_add(n.w.unwrap_or(0).wrapping_mul(5))
            .wrapping_add(n.nw.unwrap_or(0).wrapping_mul(11))
    });
    let fw = Framework::new(hetero_high());
    let class = fw.classify(&kernel).unwrap();
    assert_eq!(class.raw_pattern, Pattern::Vertical);
    assert_eq!(class.exec_pattern, Pattern::Horizontal);
    assert_eq!(class.adapter, Adapter::Transpose);
    let solution = fw.solve(&kernel).unwrap();
    let oracle = lddp::core::seq::solve_row_major(&kernel).unwrap();
    for i in 0..12 {
        for j in 0..20 {
            assert_eq!(solution.grid.get(i, j), oracle.get(i, j), "({i},{j})");
        }
    }
}

/// An inverted-L problem runs under horizontal case 1 (§V-B).
#[test]
fn inverted_l_runs_horizontally() {
    let kernel = lddp::problems::synthetic::fig8_kernel(Dims::new(20, 16), 2);
    let fw = Framework::new(hetero_high());
    let class = fw.classify(&kernel).unwrap();
    assert_eq!(class.raw_pattern, Pattern::InvertedL);
    assert_eq!(class.exec_pattern, Pattern::Horizontal);
    let solution = fw.solve(&kernel).unwrap();
    let oracle = lddp::core::seq::solve_row_major(&kernel).unwrap();
    assert_eq!(solution.grid.to_row_major(), oracle.to_row_major());
}

/// Explicit parameters are honoured and reported back.
#[test]
fn solve_with_uses_given_params() {
    let kernel = LevenshteinKernel::new(*b"abcdefgh", *b"hgfedcba");
    let fw = Framework::new(hetero_high());
    let params = ScheduleParams::new(2, 3);
    let solution = fw.solve_with(&kernel, params).unwrap();
    assert_eq!(solution.params, params);
    let d = kernel.dims();
    assert_eq!(
        solution.grid.get(d.rows - 1, d.cols - 1),
        distance(b"abcdefgh", b"hgfedcba")
    );
}

/// The tuner's choice is at least as good as a handful of fixed
/// alternatives.
#[test]
fn tuned_params_beat_naive_choices() {
    let kernel = LevenshteinKernel::new(vec![1u8; 192], vec![2u8; 192]);
    let fw = Framework::new(hetero_high());
    let tuned = fw.tune(&kernel).unwrap();
    let tuned_time = fw.estimate(&kernel, tuned.params).unwrap();
    for alt in [
        ScheduleParams::new(0, 0),
        ScheduleParams::new(0, 193),
        ScheduleParams::new(16, 16),
    ] {
        let t = fw.estimate(&kernel, alt).unwrap();
        assert!(
            tuned_time <= t * 1.0001,
            "tuned {tuned_time} must beat {alt:?} at {t}"
        );
    }
}

/// Baselines are consistent: framework time never exceeds both pure
/// baselines by more than the tuning ladder's granularity.
#[test]
fn framework_never_loses_to_both_baselines() {
    let kernel = LevenshteinKernel::new(vec![7u8; 256], vec![9u8; 256]);
    let fw = Framework::new(hetero_low());
    let solution = fw.solve(&kernel).unwrap();
    let cpu = fw.cpu_baseline(&kernel).unwrap();
    let gpu = fw.gpu_baseline(&kernel).unwrap();
    assert!(
        solution.total_s <= cpu.max(gpu) * 1.001,
        "hetero {} vs cpu {cpu} gpu {gpu}",
        solution.total_s
    );
}

/// Results are identical across platforms (timing differs, values never).
#[test]
fn platform_choice_does_not_change_answers() {
    let kernel = CheckerboardKernel::random(16, 16, 9, 5);
    let high = Framework::new(hetero_high()).solve(&kernel).unwrap();
    let low = Framework::new(hetero_low()).solve(&kernel).unwrap();
    assert_eq!(high.grid.to_row_major(), low.grid.to_row_major());
    assert_ne!(high.total_s, low.total_s);
}

/// The concave (ternary-search) tuner lands within a whisker of the
/// ladder tuner. (Exact dominance cannot be promised: the GPU model's
/// round quantization makes the curve quasi-unimodal, so ternary search
/// may settle on a micro-plateau a fraction of a percent off.)
#[test]
fn refined_tuner_at_least_matches_ladder() {
    let kernel = LevenshteinKernel::new(vec![1u8; 300], vec![2u8; 280]);
    let fw = Framework::new(hetero_high());
    let ladder = fw.tune(&kernel).unwrap();
    let refined = fw.tune_refined(&kernel).unwrap();
    let ladder_t = fw.estimate(&kernel, ladder.params).unwrap();
    let refined_t = fw.estimate(&kernel, refined.params).unwrap();
    assert!(
        refined_t <= ladder_t * 1.01,
        "refined {refined_t} vs ladder {ladder_t}"
    );
    // And the refined result solves correctly.
    let solution = fw.solve_with(&kernel, refined.params).unwrap();
    let d = kernel.dims();
    assert_eq!(
        solution.grid.get(d.rows - 1, d.cols - 1),
        distance(&vec![1u8; 300], &vec![2u8; 280])
    );
}

/// Seam carving end-to-end: the framework-produced cumulative map yields
/// an optimal connected seam.
#[test]
fn seam_carving_end_to_end() {
    use lddp::problems::seam_carving::{brute_force_min_seam_energy, SeamCarvingKernel};
    let rows = 12;
    let cols = 10;
    let energy: Vec<u32> = (0..rows * cols)
        .map(|x| ((x as u64).wrapping_mul(2654435761) >> 7) as u32 % 40)
        .collect();
    let kernel = SeamCarvingKernel::new(rows, cols, energy.clone());
    let fw = Framework::new(hetero_high());
    let solution = fw.solve(&kernel).unwrap();
    // Rebuild a grid view for the seam helpers.
    let mut grid = lddp::core::Grid::new(
        lddp::core::LayoutKind::RowMajor,
        lddp::core::Dims::new(rows, cols),
    );
    for i in 0..rows {
        for j in 0..cols {
            grid.set(i, j, solution.grid.get(i, j));
        }
    }
    let seam = kernel.min_seam(&grid);
    assert_eq!(
        kernel.seam_energy(&seam),
        brute_force_min_seam_energy(rows, cols, &energy)
    );
}

/// Max-square end-to-end through the framework.
#[test]
fn max_square_end_to_end() {
    use lddp::problems::max_square::{brute_force_max_side, MaxSquareKernel};
    let kernel = MaxSquareKernel::random(20, 20, 0.75, 8);
    let fw = Framework::new(hetero_low());
    let solution = fw.solve(&kernel).unwrap();
    let mut best = 0;
    for i in 0..20 {
        for j in 0..20 {
            best = best.max(solution.grid.get(i, j));
        }
    }
    let bits: Vec<bool> = (0..20)
        .flat_map(|i| (0..20).map(move |j| (i, j)))
        .map(|(i, j)| kernel.bit(i, j))
        .collect();
    assert_eq!(best, brute_force_max_side(20, 20, &bits));
}

/// Needleman–Wunsch end-to-end through the framework.
#[test]
fn needleman_wunsch_end_to_end() {
    use lddp::problems::needleman_wunsch::{global_score, NeedlemanWunschKernel, NwScoring};
    let a = b"ACGTACGTAC".to_vec();
    let b = b"AGTACCGTAC".to_vec();
    let kernel = NeedlemanWunschKernel::new(a.clone(), b.clone());
    let fw = Framework::new(hetero_high());
    let solution = fw.solve(&kernel).unwrap();
    let d = kernel.dims();
    assert_eq!(
        solution.grid.get(d.rows - 1, d.cols - 1),
        global_score(&a, &b, NwScoring::default())
    );
}

/// Dynamic balancing through the facade: correct results, sane params,
/// and competitive time.
#[test]
fn solve_balanced_end_to_end() {
    let kernel = LevenshteinKernel::new(vec![3u8; 200], vec![1u8; 220]);
    let fw = Framework::new(hetero_high());
    let tuned = fw.tune(&kernel).unwrap();
    let balanced = fw.solve_balanced(&kernel, tuned.params.t_switch).unwrap();
    let d = kernel.dims();
    assert_eq!(
        balanced.grid.get(d.rows - 1, d.cols - 1),
        distance(&[3u8; 200], &vec![1u8; 220])
    );
    let static_t = fw.estimate(&kernel, tuned.params).unwrap();
    assert!(
        balanced.total_s <= static_t * 1.15,
        "balanced {} vs tuned {static_t}",
        balanced.total_s
    );
    // A vertical kernel needs the adapter and must be refused.
    let vertical = ClosureKernel::new(
        Dims::new(8, 8),
        ContributingSet::new(&[RepCell::W]),
        |_, _, n: &Neighbors<u32>| n.w.unwrap_or(1),
    );
    assert!(fw.solve_balanced(&vertical, 0).is_err());
}
