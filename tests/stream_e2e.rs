//! End-to-end acceptance tests for streamed solves
//! (`POST /solve?stream=1`): band frames must arrive in order with
//! monotone progress, the final answer must be bit-identical to the
//! non-streamed path and the sequential oracle, a slow reader must
//! backpressure the solve rather than buffer unboundedly, rejections
//! must come back as plain (non-chunked) responses, and the fleet's
//! cross-device MultiPlan split must stream one frame per device band.

use lddp::fleet_backend::{FleetBackend, FLEET_SPLIT_DEVICES};
use lddp::serve_backend::FrameworkBackend;
use lddp_serve::http::HttpConnection;
use lddp_serve::loadgen::{self, HttpTarget, LoadgenConfig};
use lddp_serve::{BandFrame, ServeConfig, Server, SolveRequest};
use lddp_trace::NullSink;
use std::net::TcpListener;
use std::time::Duration;

fn config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: 64,
        max_batch: 4,
        ..ServeConfig::default()
    }
}

/// Every frame sequence a streamed solve emits must be band-ordered
/// with monotone progress, ending on a sealed final band. (Grid rows
/// come from the frames themselves — sequence kernels carry a boundary
/// row, so the grid is one larger than the instance side.)
fn check_frames(problem: &str, frames: &[BandFrame]) {
    assert!(!frames.is_empty(), "{problem}: no band frames");
    let rows = frames[0].rows;
    let mut cells = 0u64;
    for (k, f) in frames.iter().enumerate() {
        assert_eq!(f.band, k, "{problem}: bands out of order");
        assert_eq!(f.bands, frames.len(), "{problem}: band count disagrees");
        assert!(f.cells_done > cells, "{problem}: progress not monotone");
        cells = f.cells_done;
        assert!(f.wave_lo <= f.wave_hi);
        assert_eq!(f.rows, rows, "{problem}: grid height changed mid-stream");
        assert!(f.rows_completed <= rows);
    }
    let last = frames.last().unwrap();
    assert_eq!(last.cells_done, last.cells_total, "{problem}: unsealed end");
    assert_eq!(
        last.rows_completed, rows,
        "{problem}: final band seals all rows"
    );
}

/// The tentpole's bit-identity criterion: for every wave problem, the
/// streamed solve's final answer equals both the non-streamed solve and
/// the sequential oracle, and the frames satisfy the band invariants.
#[test]
fn streamed_answers_are_bit_identical_across_all_wave_problems() {
    let n = 160;
    let backend = FrameworkBackend::new();
    let server = Server::new(config(2), &backend, &NullSink);
    server.run(None, |client| {
        for problem in [
            "lcs",
            "levenshtein",
            "dtw",
            "needleman-wunsch",
            "smith-waterman",
        ] {
            let oracle = lddp::cli::run_solve_seq(problem, n).unwrap();
            let plain = client.solve(SolveRequest::new(problem, n)).unwrap();
            let mut frames: Vec<BandFrame> = Vec::new();
            let streamed = client
                .solve_stream(SolveRequest::new(problem, n), &mut |f| {
                    frames.push(f.clone())
                })
                .unwrap();
            assert_eq!(streamed.answer, oracle, "{problem}: streamed vs oracle");
            assert_eq!(
                streamed.answer, plain.answer,
                "{problem}: streamed vs plain"
            );
            assert!(streamed.ttfb_ms > 0.0, "{problem}: no first-band timestamp");
            check_frames(problem, &frames);
        }
    });
}

/// Full-table problems have no band path: the stream degrades to zero
/// band frames followed by a correct done frame.
#[test]
fn full_table_problems_stream_zero_bands_but_answer() {
    let n = 48;
    let backend = FrameworkBackend::new();
    let server = Server::new(config(2), &backend, &NullSink);
    server.run(None, |client| {
        let oracle = lddp::cli::run_solve_seq("dithering", n).unwrap();
        let mut bands = 0usize;
        let resp = client
            .solve_stream(SolveRequest::new("dithering", n), &mut |_| bands += 1)
            .unwrap();
        assert_eq!(bands, 0, "no band path for a full-table answer");
        assert_eq!(resp.answer, oracle);
        assert_eq!(resp.ttfb_ms, 0.0, "no band, no first-band timestamp");
    });
}

/// A reader that sleeps between frames must stall the emitter through
/// the bounded channel (counted as backpressure) without corrupting
/// the answer.
#[test]
fn slow_reader_backpressures_without_corrupting_the_answer() {
    let n = 256;
    let oracle = lddp::cli::run_solve_seq("lcs", n).unwrap();
    let backend = FrameworkBackend::new();
    let server = Server::new(config(2), &backend, &NullSink);
    server.run(None, |client| {
        let mut bands = 0usize;
        let resp = client
            .solve_stream(SolveRequest::new("lcs", n), &mut |_| {
                bands += 1;
                std::thread::sleep(Duration::from_millis(3));
            })
            .unwrap();
        assert_eq!(resp.answer, oracle);
        assert!(bands > 4, "expected many bands, got {bands}");
        let metrics = client.metrics_text();
        let stalls = metrics
            .lines()
            .find(|l| l.starts_with("lddp_serve_stream_backpressure_stalls_total"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0);
        assert!(
            stalls > 0.0,
            "a 3 ms/frame reader against a depth-4 channel must stall: {metrics}"
        );
        assert!(metrics.contains("lddp_serve_stream_bands_total"));
        assert!(metrics.contains("lddp_serve_stream_ttfb_seconds"));
        assert!(metrics.contains("lddp_serve_stream_open 0"));
    });
}

/// Over real HTTP: the streamed run's time-to-first-band must beat the
/// total latency (the CI smoke asserts the strict ≤25% ratio at
/// n = 8192 on a release build; here the bound is lenient for debug),
/// and the answers must still pass the oracle.
#[test]
fn http_stream_first_band_beats_total_latency() {
    let n = 1024;
    let oracle = lddp::cli::run_solve_seq("lcs", n).unwrap();
    let backend = FrameworkBackend::new();
    let server = Server::new(config(2), &backend, &NullSink);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let report = server.run(Some(listener), |client| {
        let target = HttpTarget::new(addr.clone(), Duration::from_secs(60));
        let cfg = LoadgenConfig {
            request: SolveRequest::new("lcs", n),
            total: 4,
            concurrency: 1,
            expect_answer: Some(oracle.clone()),
            stream: true,
            ..LoadgenConfig::default()
        };
        let report = loadgen::run(&target, &cfg);
        client.shutdown();
        report
    });
    assert_eq!(report.completed, 4, "by_code: {:?}", report.by_code);
    assert_eq!(report.mismatches, 0, "streamed answers diverged");
    assert_eq!(report.ttfb.count, 4, "every request saw a first band");
    assert!(report.stream_bands >= 4, "bands: {}", report.stream_bands);
    assert!(
        report.ttfb.p50_ms < report.latency.p50_ms,
        "first band (p50 {} ms) must land before the full solve (p50 {} ms)",
        report.ttfb.p50_ms,
        report.latency.p50_ms
    );
}

/// A rejected stream request must come back as an ordinary non-chunked
/// error response, not a chunked stream.
#[test]
fn stream_rejections_are_plain_responses() {
    let backend = FrameworkBackend::new();
    let server = Server::new(config(1), &backend, &NullSink);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    server.run(Some(listener), |client| {
        let mut conn = HttpConnection::connect(&addr, Duration::from_secs(5)).unwrap();
        let mut chunks = 0usize;
        let outcome = conn
            .request_stream(
                "POST",
                "/solve?stream=1",
                Some("{\"problem\":\"nonsense\",\"n\":64}"),
                &mut |_| chunks += 1,
            )
            .unwrap();
        assert_eq!(outcome.status, 400);
        assert_eq!(chunks, 0, "a rejection must not open a chunked stream");
        let body = outcome.plain_body.expect("plain (non-chunked) error body");
        assert!(body.contains("unknown problem"), "{body}");
        // The connection stays aligned for keep-alive reuse: a valid
        // streamed solve succeeds on the same socket.
        let mut bands = 0usize;
        let ok = conn
            .request_stream(
                "POST",
                "/solve?stream=1",
                Some("{\"problem\":\"lcs\",\"n\":64}"),
                &mut |_| bands += 1,
            )
            .unwrap();
        assert_eq!(ok.status, 200);
        assert!(ok.plain_body.is_none(), "a stream has no plain body");
        assert!(bands >= 2, "band frames plus the done frame: {bands}");
        client.shutdown();
    });
}

/// The fleet's cross-device MultiPlan leg: a large full-table-pinned
/// solve streams one frame per device band and still reassembles the
/// oracle answer across all devices.
#[test]
fn fleet_multiplan_streams_one_frame_per_device_band() {
    let n = 512;
    let oracle = lddp::cli::run_solve_seq("lcs", n).unwrap();
    let backend = FleetBackend::new();
    let server = Server::new(config(2), &backend, &NullSink);
    server.run(None, |client| {
        let mut req = SolveRequest::new("lcs", n);
        // Pin the full-table mode so the router takes the MultiPlan
        // split (rolling-mode solves stream wave bands instead).
        req.memory_mode = Some(lddp_core::kernel::MemoryMode::Full);
        let mut frames: Vec<BandFrame> = Vec::new();
        let resp = client
            .solve_stream(req, &mut |f| frames.push(f.clone()))
            .unwrap();
        assert_eq!(resp.answer, oracle);
        assert_eq!(resp.devices, FLEET_SPLIT_DEVICES);
        assert_eq!(
            frames.len(),
            FLEET_SPLIT_DEVICES,
            "one frame per device band"
        );
        let last = frames.last().unwrap();
        assert_eq!(last.rows_completed, last.rows);
        assert_eq!(last.cells_done, last.cells_total);
    });
}
