//! End-to-end acceptance tests for the serving stack: a real
//! [`FrameworkBackend`] behind [`lddp_serve::Server`], driven by the
//! load generator — in process and over the hand-rolled HTTP front
//! end — with answers checked against the sequential oracle and the
//! trace export checked for the per-request span catalog.

use lddp::serve_backend::FrameworkBackend;
use lddp_serve::loadgen::{self, HttpTarget, LoadgenConfig};
use lddp_serve::{ServeConfig, Server, SolveRequest};
use lddp_trace::{catalog, chrome, json, NullSink, Recorder};
use std::net::TcpListener;
use std::time::Duration;

fn config(workers: usize, queue: usize, batch: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: queue,
        max_batch: batch,
        ..ServeConfig::default()
    }
}

/// The acceptance-criteria run: ≥500 requests through the real solve
/// path with zero errors, zero rejections, and every answer equal to
/// the sequential oracle's.
#[test]
fn five_hundred_request_run_is_error_free_and_oracle_checked() {
    let oracle = lddp::cli::run_solve_seq("lcs", 64).unwrap();
    let backend = FrameworkBackend::new();
    let server = Server::new(config(4, 256, 8), &backend, &NullSink);
    let report = server.run(None, |client| {
        let cfg = LoadgenConfig {
            request: SolveRequest::new("lcs", 64),
            total: 500,
            concurrency: 8,
            expect_answer: Some(oracle.clone()),
            ..LoadgenConfig::default()
        };
        loadgen::run(client, &cfg)
    });

    assert_eq!(report.sent, 500);
    assert_eq!(report.completed, 500, "by_code: {:?}", report.by_code);
    assert_eq!(report.errors, 0);
    assert_eq!(report.rejected, 0);
    assert_eq!(
        report.mismatches, 0,
        "served answers diverged from the oracle"
    );
    assert_eq!(report.rejection_rate, 0.0);
    assert!(report.throughput_rps > 0.0);
    assert_eq!(report.latency.count, 500);
    assert!(report.latency.p50_ms <= report.latency.p95_ms);
    assert!(report.latency.p95_ms <= report.latency.p99_ms);
    assert!(report.latency.p99_ms <= report.latency.max_ms);
}

/// Batching amortizes tuning: one hot key, many requests, far fewer
/// tuner sweeps than solves.
#[test]
fn batches_amortize_tuning_across_the_run() {
    let backend = FrameworkBackend::new();
    // One worker makes the batch accounting deterministic: submissions
    // pile up while the first batch tunes, so exactly one cold sweep.
    let server = Server::new(config(1, 256, 16), &backend, &NullSink);
    let snapshot = server.run(None, |client| {
        let pending: Vec<_> = (0..64)
            .map(|_| client.submit(SolveRequest::new("lcs", 48)).unwrap())
            .collect();
        for rx in pending {
            rx.recv().unwrap().unwrap();
        }
        client.snapshot()
    });
    assert_eq!(snapshot.completed, 64);
    assert_eq!(
        snapshot.tune_misses, 1,
        "one cold sweep for the one hot key"
    );
    assert!(
        snapshot.batches < 64,
        "expected multi-job batches, got {} batches",
        snapshot.batches
    );
    assert!(snapshot.tune_hits + snapshot.tune_misses == snapshot.batches);
}

/// Mixed problems keep their own answers: interleaved submissions of
/// different kernels all match their own oracles.
#[test]
fn mixed_problem_streams_stay_correct() {
    let problems = ["lcs", "levenshtein", "weighted-edit", "dithering", "dtw"];
    let backend = FrameworkBackend::new();
    let server = Server::new(config(3, 256, 4), &backend, &NullSink);
    server.run(None, |client| {
        let pending: Vec<_> = (0..30)
            .map(|i| {
                let name = problems[i % problems.len()];
                (name, client.submit(SolveRequest::new(name, 40)).unwrap())
            })
            .collect();
        for (name, rx) in pending {
            let resp = rx.recv().unwrap().unwrap();
            let oracle = lddp::cli::run_solve_seq(name, 40).unwrap();
            assert_eq!(resp.answer, oracle, "{name}");
        }
    });
}

/// The HTTP front end serves a full loadgen run, and the traced
/// timeline exports to Chrome/Perfetto JSON carrying the queue-wait,
/// batch, and solve spans for the served requests.
#[test]
fn http_run_exports_perfetto_timeline_with_serve_spans() {
    let oracle = lddp::cli::run_solve_seq("levenshtein", 48).unwrap();
    let backend = FrameworkBackend::new();
    let recorder = Recorder::new();
    let server = Server::new(config(2, 64, 4), &backend, &recorder);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let report = server.run(Some(listener), |client| {
        let target = HttpTarget::new(addr.clone(), Duration::from_secs(30));
        let cfg = LoadgenConfig {
            request: SolveRequest::new("levenshtein", 48),
            total: 40,
            concurrency: 4,
            expect_answer: Some(oracle.clone()),
            ..LoadgenConfig::default()
        };
        let report = loadgen::run(&target, &cfg);
        client.shutdown();
        report
    });

    assert_eq!(report.completed, 40, "by_code: {:?}", report.by_code);
    assert_eq!(report.errors, 0);
    assert_eq!(report.mismatches, 0);

    let data = recorder.into_data();
    for span in [
        catalog::SPAN_QUEUE_WAIT,
        catalog::SPAN_BATCH,
        catalog::SPAN_SOLVE,
    ] {
        let count = data.spans.iter().filter(|s| s.name == span).count();
        assert!(count > 0, "no {span} spans recorded");
    }
    let waits = data
        .spans
        .iter()
        .filter(|s| s.name == catalog::SPAN_QUEUE_WAIT)
        .count();
    assert_eq!(waits, 40, "one queue-wait span per served request");
    assert_eq!(data.counters[catalog::CTR_COMPLETED], 40);
    assert_eq!(data.counters[catalog::CTR_ACCEPTED], 40);

    // The export must be loadable: valid JSON in the Chrome trace shape
    // (object with a traceEvents array mentioning the serve spans).
    let exported = chrome::to_chrome_json(&data);
    let parsed = json::parse(&exported).expect("chrome export is valid JSON");
    let events = parsed.get("traceEvents").expect("traceEvents key present");
    assert!(matches!(events, json::Json::Arr(_)));
    assert!(exported.contains(catalog::SPAN_QUEUE_WAIT));
    assert!(exported.contains(catalog::SPAN_SOLVE));
}

/// The live-telemetry acceptance path over real HTTP: a mid-run
/// `/metrics` scrape agrees with `/stats`, every solve response carries
/// a trace id (header and body timings block), and `/debug/trace`
/// exports a just-completed request's spans.
#[test]
fn live_metrics_trace_ids_and_flight_recorder_over_http() {
    use lddp_serve::http;
    use lddp_trace::live::parse_prometheus;

    let oracle = lddp::cli::run_solve_seq("lcs", 48).unwrap();
    // One registry shared by server and backend, exactly as `lddp-cli
    // serve` wires it.
    let live = std::sync::Arc::new(lddp_trace::live::LiveRegistry::new());
    let backend = FrameworkBackend::new().with_live(std::sync::Arc::clone(&live));
    let mut server = Server::new(config(2, 64, 4), &backend, &NullSink);
    server.attach_live(live);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    server.run(Some(listener), |client| {
        let timeout = Duration::from_secs(30);
        let cfg = LoadgenConfig {
            request: SolveRequest::new("lcs", 48),
            total: 20,
            concurrency: 4,
            expect_answer: Some(oracle.clone()),
            ..LoadgenConfig::default()
        };
        let target = HttpTarget::new(addr.clone(), timeout);
        let report = loadgen::run(&target, &cfg);
        assert_eq!(report.completed, 20, "by_code: {:?}", report.by_code);

        // One more request by hand to inspect the raw response.
        let (status, head, body) = http::request_with_head(
            &addr,
            "POST",
            "/solve",
            Some(&SolveRequest::new("lcs", 48).to_json()),
            timeout,
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let trace_id = head
            .lines()
            .find_map(|l| l.strip_prefix("X-LDDP-Trace-Id: "))
            .expect("solve response carries the trace-id header")
            .trim()
            .to_string();
        assert_eq!(trace_id.len(), 16, "hex-rendered u64: {trace_id}");
        assert!(
            body.contains(&format!("\"trace_id\":\"{trace_id}\"")),
            "header and body trace ids must match: {head}\n{body}"
        );
        assert!(body.contains("\"timings\":{"), "{body}");
        assert!(body.contains("\"queue_wait_ms\":"), "{body}");

        // Mid-run scrape: the server is still live (not draining), and
        // with no requests in flight /metrics and /stats must agree.
        let (ms, metrics) = http::request(&addr, "GET", "/metrics", None, timeout).unwrap();
        let (ss, stats) = http::request(&addr, "GET", "/stats", None, timeout).unwrap();
        assert_eq!((ms, ss), (200, 200));
        let series = parse_prometheus(&metrics);
        let metric = |name: &str| {
            series
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing series {name} in:\n{metrics}"))
        };
        let stats = lddp_trace::json::parse(&stats).expect("/stats is valid JSON");
        for (series_name, stats_key) in [
            ("lddp_serve_accepted_total", "accepted"),
            ("lddp_serve_completed_total", "completed"),
            ("lddp_serve_queue_depth", "queue_depth"),
        ] {
            let from_stats = stats
                .get(stats_key)
                .and_then(lddp_trace::json::Json::as_f64)
                .unwrap_or_else(|| panic!("/stats missing {stats_key}"));
            assert_eq!(
                metric(series_name),
                from_stats,
                "{series_name} disagrees with /stats {stats_key}"
            );
        }
        assert_eq!(metric("lddp_serve_completed_total"), 21.0);
        // Backend families share the exposition: pool solves ran, and
        // the single hot tune key cost at most one sweep per worker
        // (two workers can race the same cache miss).
        assert!(metrics.contains("lddp_pool_solves_total"), "{metrics}");
        let sweeps = metric("lddp_tuner_sweeps_total");
        assert!(
            (1.0..=2.0).contains(&sweeps),
            "expected 1-2 tuner sweeps for one hot key, got {sweeps}"
        );

        // The flight recorder must still hold the hand-made request:
        // its solve span, findable by trace id, exports as Chrome JSON.
        let (ts, trace) =
            http::request(&addr, "GET", "/debug/trace?last_ms=60000", None, timeout).unwrap();
        assert_eq!(ts, 200);
        let parsed = json::parse(&trace).expect("/debug/trace is valid JSON");
        assert!(matches!(
            parsed.get("traceEvents"),
            Some(json::Json::Arr(_))
        ));
        assert!(trace.contains(catalog::SPAN_SOLVE), "{trace}");
        assert!(
            trace.contains(&trace_id),
            "just-completed request's spans missing from /debug/trace"
        );

        client.shutdown();
    });
}

/// Backpressure under overload: a tiny queue behind a slow worker pool
/// rejects with `queue_full` rather than stalling, and the loadgen
/// report classifies those as rejections, not errors.
#[test]
fn overload_rejects_cleanly_instead_of_erroring() {
    let backend = FrameworkBackend::new();
    let server = Server::new(config(1, 2, 1), &backend, &NullSink);
    let report = server.run(None, |client| {
        let cfg = LoadgenConfig {
            request: SolveRequest::new("lcs", 256),
            total: 60,
            concurrency: 16,
            ..LoadgenConfig::default()
        };
        loadgen::run(client, &cfg)
    });
    assert_eq!(report.sent, 60);
    assert_eq!(report.errors, 0, "overload must not surface as errors");
    assert_eq!(report.completed + report.rejected, 60);
    if report.rejected > 0 {
        assert!(report.rejection_rate > 0.0);
        assert!(report
            .by_code
            .iter()
            .any(|(code, _)| code == "queue_full" || code == "deadline_exceeded"));
    }
}
