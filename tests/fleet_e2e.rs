//! End-to-end acceptance for the heterogeneous serving fleet: a real
//! [`FleetBackend`] behind [`lddp_serve::Server`], driven by the load
//! generator over a mixed-size request stream. Checks the ISSUE's
//! acceptance bar directly: ≥500 oracle-checked requests with zero
//! mismatches, at least two fleet platforms receiving batches, at
//! least one cross-device MultiPlan split, and the `lddp_fleet_*`
//! families (including the predicted-vs-actual completion histogram)
//! present in the `/metrics` exposition.

use lddp::fleet_backend::{FleetBackend, FLEET_MULTI_N};
use lddp_core::schedule::ScheduleParams;
use lddp_serve::loadgen::{self, LoadgenConfig};
use lddp_serve::{ServeConfig, Server, SolveRequest};
use lddp_trace::{json, NullSink};

fn config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: 1024,
        max_batch: 8,
        ..ServeConfig::default()
    }
}

/// The acceptance-criteria run: ≥500 mixed-size requests through the
/// fleet, every answer oracle-checked, ≥2 platforms placed, ≥1
/// cross-device split, and the fleet metric families live.
#[test]
fn fleet_serves_500_mixed_requests_oracle_checked() {
    // One large size per ten keeps the split path exercised without
    // dominating the run's wall clock.
    let sizes = [48usize, 64, 96, 48, 128, 64, 200, 96, 48, FLEET_MULTI_N];
    let mix: Vec<(usize, Option<String>)> = sizes
        .iter()
        .map(|&n| (n, Some(lddp::cli::run_solve_seq("lcs", n).unwrap())))
        .collect();
    // One registry shared by server and backend, as `serve --fleet`
    // wires it, so the lddp_fleet_* families land in /metrics.
    let live = std::sync::Arc::new(lddp_trace::live::LiveRegistry::new());
    let backend = FleetBackend::new().with_live(std::sync::Arc::clone(&live));
    let mut server = Server::new(config(2), &backend, &NullSink);
    server.attach_live(live);
    let (report, metrics_text, stats) = server.run(None, |client| {
        let cfg = LoadgenConfig {
            request: SolveRequest::new("lcs", 48),
            total: 500,
            concurrency: 4,
            mix: mix.clone(),
            ..LoadgenConfig::default()
        };
        let report = loadgen::run(client, &cfg);
        (report, client.metrics_text(), client.stats_json())
    });

    assert_eq!(report.sent, 500);
    assert_eq!(report.completed, 500, "by_code: {:?}", report.by_code);
    assert_eq!(report.errors, 0);
    assert_eq!(report.rejected, 0);
    assert_eq!(
        report.mismatches, 0,
        "fleet-served answers diverged from the oracle"
    );

    // At least two platforms received batches.
    let placed: Vec<&(String, usize)> = report
        .fleet_placements
        .iter()
        .filter(|(_, count)| *count > 0)
        .collect();
    assert!(
        placed.len() >= 2,
        "expected ≥2 platforms placed, got {:?}",
        report.fleet_placements
    );
    let total_placed: usize = report.fleet_placements.iter().map(|(_, c)| c).sum();
    assert_eq!(total_placed, 500, "every response names its platform");

    // At least one large grid went through the cross-device split.
    assert!(
        report.multiplan_splits >= 1,
        "no cross-device MultiPlan split in a run with n={FLEET_MULTI_N} requests"
    );
    assert_eq!(
        backend.fleet().metrics().splits() as usize,
        report.multiplan_splits
    );

    // Fleet observability: per-platform placement counters and the
    // predicted-vs-actual completion histogram are in /metrics.
    for family in [
        "lddp_fleet_placements_total{platform=\"hetero-high\"}",
        "lddp_fleet_placements_total{platform=\"hetero-low\"}",
        "lddp_fleet_placements_total{platform=\"cpu-only\"}",
        "lddp_fleet_completion_ratio_count",
        "lddp_fleet_backlog_seconds",
        "lddp_fleet_multiplan_splits_total",
    ] {
        assert!(metrics_text.contains(family), "missing {family}");
    }

    // /stats splices the fleet section.
    let v = json::parse(&stats).expect("stats_json parses");
    let fleet = v.get("fleet").expect("fleet section in /stats");
    let platforms = fleet.get("platforms").expect("platforms array");
    assert!(platforms.as_arr().is_some_and(|a| a.len() == 3), "{stats}");
}

/// Replaying the same request stream against a fresh fleet yields the
/// same placement sequence — the dispatcher is a pure function of the
/// (place/begin/finish) event order, which one worker serializes.
#[test]
fn placement_stream_is_deterministic_with_one_worker() {
    let sizes = [48usize, 96, 48, 200, 96, 48, 128, 200, 64, 96];
    let run = || {
        let backend = FleetBackend::new();
        let server = Server::new(config(1), &backend, &NullSink);
        server.run(None, |client| {
            sizes
                .iter()
                .map(|&n| {
                    let resp = client.solve(SolveRequest::new("lcs", n)).unwrap();
                    assert!(!resp.placed_on.is_empty());
                    resp.placed_on
                })
                .collect::<Vec<_>>()
        })
    };
    assert_eq!(run(), run(), "same stream, same placements");
}

/// Cross-device MultiPlan band splits reassemble oracle-identically
/// across problems with distinct canonical patterns.
#[test]
fn cross_device_splits_reassemble_for_five_problems() {
    let params = ScheduleParams::new(4, 8);
    for problem in [
        "lcs",
        "levenshtein",
        "needleman-wunsch",
        "smith-waterman",
        "dtw",
    ] {
        let multi = lddp::cli::run_solve_multi(problem, 48, params, 3).unwrap();
        let oracle = lddp::cli::run_solve_seq(problem, 48).unwrap();
        assert_eq!(multi.answer, oracle, "{problem} 3-way split");
        // Device counts survive into the summary line.
        assert!(
            multi.patterns.contains("column bands"),
            "{}",
            multi.patterns
        );
    }
}

/// `/healthz` surfaces per-platform pool readiness for the fleet.
#[test]
fn healthz_reports_per_platform_fleet_readiness() {
    let backend = FleetBackend::new();
    let server = Server::new(config(1), &backend, &NullSink);
    server.run(None, |client| {
        let h = client.healthz_json();
        let v = json::parse(&h).expect("healthz parses");
        let fleet = v.get("fleet").expect("fleet array in healthz");
        let pools = fleet.as_arr().expect("array");
        assert_eq!(pools.len(), 3, "{h}");
        for pool in pools {
            assert_eq!(
                pool.get("ready").and_then(|r| r.as_bool()),
                Some(true),
                "{h}"
            );
        }
        for name in ["hetero-high", "hetero-low", "cpu-only"] {
            assert!(h.contains(name), "{h}");
        }
    });
}
