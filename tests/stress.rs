//! Larger randomized cross-engine stress runs: every engine in the
//! workspace must agree on every admissible contributing set at
//! non-toy sizes, and the full pipeline (refined tuning + functional
//! heterogeneous solve) must hold up on a realistic instance.

use lddp::core::cell::RepCell;
use lddp::core::kernel::Kernel;
use lddp::core::pattern::classify;
use lddp::core::seq::solve_row_major;
use lddp::core::ContributingSet;
use lddp::parallel::{CacheObliviousEngine, ParallelEngine};
use lddp::platforms::hetero_high;
use lddp::problems::synthetic::mix_kernel;
use lddp::Framework;

#[test]
fn every_engine_agrees_on_every_set_at_128x96() {
    let dims = lddp::core::Dims::new(128, 96);
    let fw = Framework::new(hetero_high());
    let threads = ParallelEngine::new(8);
    let quadrants = CacheObliviousEngine::default();
    for set in ContributingSet::table_one_rows() {
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();

        let solution = fw.solve(&kernel).unwrap();
        assert_eq!(solution.grid.to_row_major(), oracle, "framework {set}");

        if classify(set).unwrap().is_canonical() {
            let got = threads.solve(&kernel).unwrap();
            assert_eq!(got.to_row_major(), oracle, "threads {set}");
        }

        if !set.contains(RepCell::Ne) {
            let got = quadrants.solve(&kernel).unwrap();
            assert_eq!(got.to_row_major(), oracle, "quadrants {set}");
        }
    }
}

#[test]
fn realistic_levenshtein_pipeline() {
    // 384-symbol random DNA through the whole pipeline: refined tuning,
    // heterogeneous solve, edit-script reconstruction and replay.
    use lddp::problems::levenshtein::{apply_edit_script, distance, EditOp, LevenshteinKernel};
    let a = lddp::workloads::random_seq(384, 4, 21);
    let b = lddp::workloads::random_seq(352, 4, 22);
    let kernel = LevenshteinKernel::new(a.clone(), b.clone());
    let fw = Framework::new(hetero_high()).with_io_bytes(a.len() + b.len(), 8);
    let tuned = fw.tune_refined(&kernel).unwrap();
    let solution = fw.solve_with(&kernel, tuned.params).unwrap();
    let d = kernel.dims();
    let expected = distance(&a, &b);
    assert_eq!(solution.grid.get(d.rows - 1, d.cols - 1), expected);

    // Rebuild a grid the kernel helpers accept and replay the script.
    let mut grid = lddp::core::Grid::new(lddp::core::LayoutKind::RowMajor, d);
    for i in 0..d.rows {
        for j in 0..d.cols {
            grid.set(i, j, solution.grid.get(i, j));
        }
    }
    let ops = kernel.edit_script(&grid);
    assert_eq!(apply_edit_script(&a, &b, &ops), b);
    let paid = ops.iter().filter(|&&op| op != EditOp::Keep).count() as u32;
    assert_eq!(paid, expected);
}

#[test]
fn hirschberg_agrees_with_framework_lcs() {
    use lddp::problems::hirschberg::{is_subsequence, lcs_string};
    use lddp::problems::LcsKernel;
    let a = lddp::workloads::random_seq(300, 4, 31);
    let b = lddp::workloads::random_seq(280, 4, 32);
    let kernel = LcsKernel::new(a.clone(), b.clone());
    let fw = Framework::new(hetero_high());
    let solution = fw.solve(&kernel).unwrap();
    let d = kernel.dims();
    let framework_len = solution.grid.get(d.rows - 1, d.cols - 1);
    let s = lcs_string(&a, &b);
    assert_eq!(s.len() as u32, framework_len);
    assert!(is_subsequence(&s, &a));
    assert!(is_subsequence(&s, &b));
}

#[test]
fn rectangular_stress_shapes() {
    // Extreme aspect ratios through the framework.
    let fw = Framework::new(hetero_high());
    for (r, c) in [(4, 513), (513, 4), (1, 257), (257, 1), (65, 129)] {
        let dims = lddp::core::Dims::new(r, c);
        for set in [
            ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
            ContributingSet::FULL,
            ContributingSet::new(&[RepCell::Nw, RepCell::Ne]),
        ] {
            let kernel = mix_kernel(dims, set);
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            let solution = fw.solve(&kernel).unwrap();
            assert_eq!(solution.grid.to_row_major(), oracle, "{set} {r}x{c}");
        }
    }
}

#[test]
fn multi_device_stress() {
    use lddp::core::multi::MultiPlan;
    use lddp::core::pattern::Pattern;
    use lddp::hetero_sim::multi::{run_multi, MultiPlatform};
    let dims = lddp::core::Dims::new(96, 128);
    let platform = MultiPlatform::high_plus_phi();
    for set in [
        ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne]),
        ContributingSet::FULL,
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
    ] {
        let pattern = classify(set).unwrap().canonical();
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let t_switch = match pattern {
            Pattern::Horizontal => 0,
            _ => 12,
        };
        for boundaries in [vec![32, 80], vec![0, 64], vec![50, 50]] {
            let plan = MultiPlan::new(pattern, set, dims, t_switch, boundaries.clone()).unwrap();
            let report = run_multi(&kernel, &plan, &platform, true).unwrap();
            assert_eq!(
                report.grid.unwrap().to_row_major(),
                oracle,
                "{set} {boundaries:?}"
            );
        }
    }
}
