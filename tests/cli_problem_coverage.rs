//! Coverage contract between the problem crate and its drivers: every
//! kernel `lddp-problems` exports must be reachable through
//! `lddp-cli --problem <name>`, solvable end to end, and must agree
//! with the sequential oracle. A kernel registered in
//! [`lddp::problems::NAMES`] but missing from the CLI dispatch fails
//! here instead of silently becoming dead code.

use lddp::cli;
use lddp_trace::NullSink;

#[test]
fn every_exported_problem_is_reachable_from_the_cli() {
    for name in lddp::problems::NAMES {
        assert!(
            cli::PROBLEMS.contains(name),
            "problem \"{name}\" is exported by lddp-problems but not \
             registered in lddp-cli's --problem dispatch"
        );
        assert!(
            cli::parse(&[
                "solve".to_string(),
                "--problem".to_string(),
                name.to_string(),
                "--n".to_string(),
                "16".to_string(),
            ])
            .is_ok(),
            "\"{name}\" does not parse as a --problem value"
        );
    }
}

#[test]
fn every_exported_problem_solves_and_matches_the_oracle() {
    for name in lddp::problems::NAMES {
        let out = cli::run_solve_traced(name, 24, "high", None, &NullSink)
            .unwrap_or_else(|e| panic!("solving \"{name}\" failed: {e}"));
        let oracle = cli::run_solve_seq(name, 24)
            .unwrap_or_else(|e| panic!("sequential oracle for \"{name}\" failed: {e}"));
        assert_eq!(
            out.summary.answer, oracle,
            "\"{name}\": heterogeneous answer diverges from the sequential oracle"
        );
    }
}

#[test]
fn every_cli_problem_is_classifiable_and_tunable() {
    for name in cli::PROBLEMS {
        let pattern = cli::classify_problem(name, 24)
            .unwrap_or_else(|e| panic!("classifying \"{name}\" failed: {e}"));
        assert!(pattern.is_canonical(), "\"{name}\" classified as {pattern}");
        cli::tune_params(name, 24, "low")
            .unwrap_or_else(|e| panic!("tuning \"{name}\" failed: {e}"));
    }
}
