//! Chaos acceptance test for the serving stack: a 500-request HTTP
//! loadgen run against a server whose backend and front end both draw
//! from seeded fault plans — worker panics and device faults inside
//! the solve path, torn and slowed connections at the socket. The bar:
//! every request is accounted for (completed, cleanly rejected, or a
//! clean error — never hung or lost), every completed answer matches
//! the sequential oracle, and the worker pool keeps serving after
//! every injected panic.

use lddp::serve_backend::FrameworkBackend;
use lddp_chaos::{FaultPlan, FaultPlanConfig, FaultSite, RetryPolicy};
use lddp_serve::loadgen::{self, HttpTarget, LoadgenConfig};
use lddp_serve::{ServeConfig, Server, SolveRequest};
use lddp_trace::NullSink;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Injected panics happen by the dozen in this test; suppress their
/// default-hook backtraces so a real failure stays readable, and pass
/// every other panic through to the previous hook.
fn silence_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("injected") || msg.contains("panicked") || msg.contains("poisoned") {
            return;
        }
        prev(info);
    }));
}

#[test]
fn chaotic_500_request_run_is_accounted_oracle_checked_and_heals() {
    silence_injected_panics();
    let n = 48;
    let oracle = lddp::cli::run_solve_seq("lcs", n).unwrap();

    let backend_plan = Arc::new(FaultPlan::new(42, FaultPlanConfig::quick()));
    let server_plan = FaultPlan::new(1337, FaultPlanConfig::quick());
    let backend = FrameworkBackend::with_injector(backend_plan.clone());
    let server = Server::with_injector(
        ServeConfig {
            workers: 3,
            queue_capacity: 256,
            max_batch: 4,
            ..ServeConfig::default()
        },
        &backend,
        &NullSink,
        &server_plan,
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let (report, healed, snapshot) = server.run(Some(listener), |client| {
        let target = HttpTarget::new(addr.clone(), Duration::from_secs(30));
        let cfg = LoadgenConfig {
            request: SolveRequest::new("lcs", n),
            total: 500,
            concurrency: 8,
            expect_answer: Some(oracle.clone()),
            retry: RetryPolicy::default_serving(42),
            ..LoadgenConfig::default()
        };
        let report = loadgen::run(&target, &cfg);
        // Pool health after the storm: the same chaotic backend must
        // still serve. Faults may still fire (that is the point), so
        // allow a few attempts, but at least one must come back clean
        // and correct before shutdown.
        let mut healed = false;
        for _ in 0..10 {
            match client.solve(SolveRequest::new("lcs", n)) {
                Ok(resp) => {
                    assert_eq!(resp.answer, oracle, "post-chaos answer diverged");
                    healed = true;
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        // The worker decrements in-flight after handing the response
        // back, so give the gauges a moment to settle before reading.
        let mut snapshot = client.snapshot();
        for _ in 0..100 {
            if snapshot.queue_depth == 0 && snapshot.in_flight == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
            snapshot = client.snapshot();
        }
        client.shutdown();
        (report, healed, snapshot)
    });

    // Zero hangs: the run returned, and every request is accounted for.
    assert_eq!(report.sent, 500);
    assert_eq!(
        report.completed + report.rejected + report.errors,
        500,
        "request accounting leaked; outcomes: {:?}",
        report.by_code
    );
    // Every accepted answer matched the sequential oracle.
    assert_eq!(
        report.mismatches, 0,
        "served answers diverged from the oracle"
    );
    // Whatever failed, failed with a clean, classified status — no
    // mystery codes, no raw transport garbage surfacing as success.
    let known = [
        "queue_full",
        "shutting_down",
        "deadline_exceeded",
        "invalid",
        "breaker_open",
        "backend_error",
        "backend_panic",
        "watchdog_timeout",
        "transport",
    ];
    for (code, count) in &report.by_code {
        assert!(
            known.contains(&code.as_str()),
            "unknown failure code {code} ({count} occurrences)"
        );
    }
    assert!(healed, "no clean solve within 10 attempts after the run");
    assert_eq!(snapshot.queue_depth, 0, "jobs left in the queue");
    assert_eq!(snapshot.in_flight, 0, "jobs still marked in flight");

    // The campaign must have actually injected the advertised faults —
    // a silently inert plan would make every assertion above vacuous.
    let backend_faults = backend_plan.report();
    let panics = backend_faults.site(FaultSite::WorkerPanic).injected
        + backend_faults.site(FaultSite::BulkPanic).injected;
    assert!(
        panics > 0,
        "no worker/bulk panics injected: {backend_faults:?}"
    );
    assert!(
        backend_faults.site(FaultSite::DeviceFault).drawn > 0,
        "device-fault site never consulted: {backend_faults:?}"
    );
    let server_faults = server_plan.report();
    assert!(
        server_faults.site(FaultSite::TornConnection).injected > 0,
        "no torn connections injected: {server_faults:?}"
    );
    // Panics degraded solves instead of killing requests: the server
    // recorded degradations, and the engine healed between them (the
    // completed count could not approach 500 otherwise).
    assert!(snapshot.degraded_solves > 0, "no degraded solves recorded");
    assert!(
        report.completed > 400,
        "retries + degradation should complete most requests; got {}",
        report.completed
    );
}

/// Deterministic replay: the same seeds and workload produce the same
/// injection tallies, so a chaos failure is reproducible by seed.
#[test]
fn same_seed_injects_identically() {
    silence_injected_panics();
    let run = |seed: u64| {
        let plan = FaultPlan::new(seed, FaultPlanConfig::quick());
        let backend = FrameworkBackend::new();
        let server = Server::with_injector(
            ServeConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 2,
                ..ServeConfig::default()
            },
            &backend,
            &NullSink,
            &plan,
        );
        server.run(None, |client| {
            for _ in 0..20 {
                client.solve(SolveRequest::new("lcs", 32)).unwrap();
            }
        });
        plan.report()
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a, b, "same seed and workload must inject identically");
    assert!(
        a.site(FaultSite::QueueStall).drawn > 0,
        "serve-side stall site never consulted: {a:?}"
    );
}
