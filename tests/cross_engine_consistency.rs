//! Cross-engine consistency: for every Table I contributing set, the
//! sequential oracle, the real thread engine, and the simulated
//! heterogeneous framework must produce identical tables.

use lddp::core::kernel::Kernel;
use lddp::core::pattern::classify;
use lddp::core::seq::solve_row_major;
use lddp::core::ContributingSet;
use lddp::parallel::ParallelEngine;
use lddp::platforms::{hetero_high, hetero_low};
use lddp::problems::synthetic::mix_kernel;
use lddp::Framework;

#[test]
fn all_fifteen_sets_agree_across_engines() {
    for set in ContributingSet::table_one_rows() {
        let dims = lddp::core::Dims::new(11, 14);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();

        // Real threads (canonical pattern of the raw classification).
        let raw = classify(set).unwrap();
        if raw.is_canonical() {
            let par = ParallelEngine::new(4).solve(&kernel).unwrap();
            assert_eq!(par.to_row_major(), oracle, "threads {set}");
        }

        // Simulated heterogeneous framework, both platforms, with the
        // tuner in the loop.
        for platform in [hetero_high(), hetero_low()] {
            let fw = Framework::new(platform);
            let solution = fw.solve(&kernel).unwrap();
            assert_eq!(solution.grid.to_row_major(), oracle, "framework {set}");
        }
    }
}

#[test]
fn rectangular_extremes_agree() {
    // Degenerate shapes: single row, single column, thin strips.
    for (r, c) in [(1, 37), (37, 1), (2, 19), (19, 2)] {
        for set in ContributingSet::table_one_rows() {
            let dims = lddp::core::Dims::new(r, c);
            let kernel = mix_kernel(dims, set);
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            let fw = Framework::new(hetero_high());
            let solution = fw.solve(&kernel).unwrap();
            assert_eq!(solution.grid.to_row_major(), oracle, "{set} {r}x{c}");
        }
    }
}

#[test]
fn case_study_kernels_agree_between_thread_engine_and_framework() {
    let fw = Framework::new(hetero_high());
    let engine = ParallelEngine::new(4);

    let lev = lddp::problems::LevenshteinKernel::new(*b"parallelism", *b"pipelining");
    let a = engine.solve(&lev).unwrap().to_row_major();
    let b = fw.solve(&lev).unwrap().grid.to_row_major();
    assert_eq!(a, b);

    let dit = lddp::problems::DitherKernel::noise(20, 30, 77);
    let a = engine.solve(&dit).unwrap().to_row_major();
    let b = fw.solve(&dit).unwrap().grid.to_row_major();
    assert_eq!(a, b);

    let che = lddp::problems::CheckerboardKernel::random(18, 22, 9, 4);
    let a = engine.solve(&che).unwrap().to_row_major();
    let b = fw.solve(&che).unwrap().grid.to_row_major();
    assert_eq!(a, b);

    let sw = lddp::problems::SmithWatermanKernel::new(*b"GATTACA", *b"GCATGCU");
    let a = engine.solve(&sw).unwrap().to_row_major();
    let b = fw.solve(&sw).unwrap().grid.to_row_major();
    assert_eq!(a, b);
}

/// Solves `kernel` with the bulk path on and off across several thread
/// counts and requires both to equal the sequential oracle exactly.
fn assert_bulk_matches_scalar<K: lddp::core::kernel::Kernel>(kernel: &K, label: &str) {
    let oracle = solve_row_major(kernel).unwrap().to_row_major();
    for threads in [1, 2, 5] {
        let bulk = ParallelEngine::new(threads).solve(kernel).unwrap();
        let scalar = ParallelEngine::new(threads)
            .with_bulk_enabled(false)
            .solve(kernel)
            .unwrap();
        assert_eq!(
            bulk.to_row_major(),
            oracle,
            "{label} bulk threads={threads}"
        );
        assert_eq!(
            scalar.to_row_major(),
            oracle,
            "{label} scalar threads={threads}"
        );
    }
}

/// Byte strings with adversarial lengths: empty vs long (degenerate 1×N
/// and N×1 tables) and coprime non-powers-of-two.
fn byte_pairs() -> Vec<(Vec<u8>, Vec<u8>)> {
    let s = |n: usize, mul: usize| -> Vec<u8> { (0..n).map(|i| (i * mul % 7) as u8).collect() };
    vec![
        (s(0, 3), s(40, 5)),
        (s(40, 3), s(0, 5)),
        (s(37, 3), s(53, 5)),
        (s(5, 1), s(5, 2)),
        // Lane-unaligned: one short of / one past the widest SIMD
        // width, so head/tail peeling covers every remainder.
        (s(33, 3), s(9, 5)),
        (s(63, 2), s(65, 3)),
    ]
}

/// Solves `kernel` at every pinned execution tier across several
/// thread counts and requires each result to equal the sequential
/// oracle exactly. A pin the host cannot honor (no vector unit, no
/// SIMD kernel) downgrades inside the engine, so every row runs on
/// every machine without conditional compilation.
fn assert_tiers_match_oracle<K: lddp::core::kernel::Kernel>(kernel: &K, label: &str) {
    use lddp::core::kernel::ExecTier;
    let oracle = solve_row_major(kernel).unwrap().to_row_major();
    for tier in [ExecTier::Scalar, ExecTier::Bulk, ExecTier::Simd] {
        for threads in [1, 2, 5] {
            let got = ParallelEngine::new(threads)
                .with_tier(Some(tier))
                .solve(kernel)
                .unwrap();
            assert_eq!(
                got.to_row_major(),
                oracle,
                "{label} tier={tier} threads={threads}"
            );
        }
    }
}

#[test]
fn simd_tier_is_bit_identical_for_sequence_problems() {
    for (a, b) in byte_pairs() {
        let label = format!("{}x{}", a.len(), b.len());
        assert_tiers_match_oracle(
            &lddp::problems::LcsKernel::new(a.clone(), b.clone()),
            &format!("lcs {label}"),
        );
        assert_tiers_match_oracle(
            &lddp::problems::LevenshteinKernel::new(a.clone(), b.clone()),
            &format!("levenshtein {label}"),
        );
        assert_tiers_match_oracle(
            &lddp::problems::NeedlemanWunschKernel::new(a.clone(), b.clone()),
            &format!("needleman-wunsch {label}"),
        );
        assert_tiers_match_oracle(
            &lddp::problems::SmithWatermanKernel::new(a, b),
            &format!("smith-waterman {label}"),
        );
    }
}

#[test]
fn simd_tier_is_bit_identical_for_dtw() {
    use lddp::core::kernel::ExecTier;
    let series = |n: usize, mul: usize| -> Vec<f32> {
        (0..n).map(|i| (i * mul % 19) as f32 * 0.5 - 3.0).collect()
    };
    let bits = |g: &lddp::core::grid::Grid<f32>| -> Vec<u32> {
        g.to_row_major().iter().map(|v| v.to_bits()).collect()
    };
    for (la, lb) in [(1, 43), (43, 1), (37, 54), (8, 8), (33, 65)] {
        for band in [None, Some(5)] {
            let mut kernel = lddp::problems::DtwKernel::new(series(la, 37), series(lb, 23));
            if let Some(r) = band {
                kernel = kernel.with_band(r);
            }
            let label = format!("dtw {la}x{lb} band={band:?}");
            assert_tiers_match_oracle(&kernel, &label);
            // f32 tables must agree bit for bit (including ∞ cells
            // outside the band), not merely by PartialEq.
            let reference = bits(
                &ParallelEngine::new(1)
                    .with_tier(Some(ExecTier::Scalar))
                    .solve(&kernel)
                    .unwrap(),
            );
            for tier in [ExecTier::Bulk, ExecTier::Simd] {
                for threads in [1, 5] {
                    let got = ParallelEngine::new(threads)
                        .with_tier(Some(tier))
                        .solve(&kernel)
                        .unwrap();
                    assert_eq!(
                        bits(&got),
                        reference,
                        "{label} tier={tier} threads={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn bitparallel_lcs_tier_matches_grid_engines() {
    use lddp::problems::lcs::{lcs_length, lcs_length_bitparallel};
    let check = |a: &[u8], b: &[u8]| {
        let kernel = lddp::problems::LcsKernel::new(a.to_vec(), b.to_vec());
        let grid = ParallelEngine::new(3).solve(&kernel).unwrap();
        let expected = kernel.length_from(&grid);
        let label = format!("{}x{}", a.len(), b.len());
        assert_eq!(
            lcs_length_bitparallel(a, b),
            expected,
            "bit-parallel {label}"
        );
        assert_eq!(lcs_length(a, b), expected, "row oracle {label}");
    };
    for (a, b) in byte_pairs() {
        check(&a, &b);
    }
    // Lengths past one u64 word so the multi-word carry chain of the
    // bit-parallel rows is exercised too.
    let s = |n: usize, mul: usize| -> Vec<u8> { (0..n).map(|i| (i * mul % 5) as u8).collect() };
    check(&s(131, 3), &s(257, 7));
    check(&s(64, 3), &s(65, 7));
}

#[test]
fn bulk_path_is_bit_identical_for_sequence_problems() {
    for (a, b) in byte_pairs() {
        let label = format!("{}x{}", a.len(), b.len());
        assert_bulk_matches_scalar(
            &lddp::problems::LcsKernel::new(a.clone(), b.clone()),
            &format!("lcs {label}"),
        );
        assert_bulk_matches_scalar(
            &lddp::problems::LevenshteinKernel::new(a.clone(), b.clone()),
            &format!("levenshtein {label}"),
        );
        assert_bulk_matches_scalar(
            &lddp::problems::NeedlemanWunschKernel::new(a.clone(), b.clone()),
            &format!("needleman-wunsch {label}"),
        );
        assert_bulk_matches_scalar(
            &lddp::problems::SmithWatermanKernel::new(a, b),
            &format!("smith-waterman {label}"),
        );
    }
}

#[test]
fn bulk_path_is_bit_identical_for_dtw() {
    let series = |n: usize, mul: usize| -> Vec<f32> {
        (0..n).map(|i| (i * mul % 19) as f32 * 0.5 - 3.0).collect()
    };
    for (la, lb) in [(1, 43), (43, 1), (37, 54), (8, 8)] {
        for band in [None, Some(5)] {
            let mut kernel = lddp::problems::DtwKernel::new(series(la, 37), series(lb, 23));
            if let Some(r) = band {
                kernel = kernel.with_band(r);
            }
            let label = format!("dtw {la}x{lb} band={band:?}");
            assert_bulk_matches_scalar(&kernel, &label);
            // f32 tables must agree bit for bit (including ∞ cells
            // outside the band), not merely by PartialEq.
            let bulk = ParallelEngine::new(5).solve(&kernel).unwrap();
            let scalar = ParallelEngine::new(5)
                .with_bulk_enabled(false)
                .solve(&kernel)
                .unwrap();
            let bits = |g: &lddp::core::grid::Grid<f32>| -> Vec<u32> {
                g.to_row_major().iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(bits(&bulk), bits(&scalar), "{label}");
        }
    }
}

/// A synthetic kernel with a bulk path for every canonical pattern the
/// engine executes, using the same order-sensitive FNV-style fold as
/// `mix_kernel` — any stepping or slicing error changes the result.
struct MixWave {
    dims: lddp::core::Dims,
    set: ContributingSet,
}

impl lddp::core::kernel::Kernel for MixWave {
    type Cell = u64;

    fn dims(&self) -> lddp::core::Dims {
        self.dims
    }

    fn contributing_set(&self) -> ContributingSet {
        self.set
    }

    fn compute(&self, i: usize, j: usize, n: &lddp::core::kernel::Neighbors<u64>) -> u64 {
        let mut acc = (i as u64) << 20 | (j as u64 + 7);
        for c in lddp::core::cell::RepCell::ALL {
            if let Some(v) = n.get(c) {
                acc = acc.wrapping_mul(1099511628211).wrapping_add(*v);
            }
        }
        acc
    }

    fn wave_kernel(&self) -> Option<&dyn lddp::core::kernel::WaveKernel<Cell = u64>> {
        Some(self)
    }
}

impl lddp::core::kernel::WaveKernel for MixWave {
    fn compute_run(
        &self,
        i: usize,
        j0: usize,
        out: &mut [u64],
        w: &[u64],
        nw: &[u64],
        n: &[u64],
        ne: &[u64],
    ) {
        use lddp::core::pattern::Pattern;
        let pattern = classify(self.set).expect("non-empty set");
        for p in 0..out.len() {
            let (ci, cj) = match pattern {
                Pattern::AntiDiagonal => (i - p, j0 + p),
                Pattern::Horizontal => (i, j0 + p),
                Pattern::KnightMove => (i - p, j0 + 2 * p),
                // Runs never mix the two arms of an inverted L; the arm
                // is determined by the starting cell: (i, j0) with
                // j0 ≤ i starts on the column arm (j fixed), otherwise
                // on the row arm (i fixed).
                Pattern::InvertedL => {
                    if j0 <= i {
                        (i + p, j0)
                    } else {
                        (i, j0 + p)
                    }
                }
                other => panic!("bulk never executes under {other}"),
            };
            let mut acc = (ci as u64) << 20 | (cj as u64 + 7);
            // Same fold order as the scalar path: W, NW, N, NE.
            for sl in [w, nw, n, ne] {
                if !sl.is_empty() {
                    acc = acc.wrapping_mul(1099511628211).wrapping_add(sl[p]);
                }
            }
            out[p] = acc;
        }
    }
}

#[test]
fn bulk_path_is_bit_identical_for_all_canonical_patterns() {
    use lddp::core::cell::RepCell;
    // One set per canonical execution pattern.
    let sets = [
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]), // anti-diagonal
        ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne]), // horizontal
        ContributingSet::new(&[RepCell::Nw]),                         // inverted L
        ContributingSet::FULL,                                        // knight move
    ];
    for set in sets {
        for (r, c) in [(1, 19), (19, 1), (13, 17), (37, 23)] {
            let kernel = MixWave {
                dims: lddp::core::Dims::new(r, c),
                set,
            };
            assert_bulk_matches_scalar(&kernel, &format!("{set} {r}x{c}"));
        }
    }
}

/// Solves `kernel` in rolling (wave-band) memory mode at every pinned
/// execution tier across several thread counts and requires the
/// captured corner cell to equal the full-table oracle's corner
/// exactly — and the peak working set to stay band-sized.
fn assert_rolling_corner_matches_oracle<K>(kernel: &K, label: &str)
where
    K: lddp::core::kernel::Kernel,
    K::Cell: PartialEq + std::fmt::Debug,
{
    use lddp::core::kernel::ExecTier;
    let d = kernel.dims();
    let grid = solve_row_major(kernel).unwrap();
    let want = grid.get(d.rows - 1, d.cols - 1);
    let band_bytes = lddp::core::rolling::rolling_bytes(kernel);
    for tier in [
        None,
        Some(ExecTier::Scalar),
        Some(ExecTier::Bulk),
        Some(ExecTier::Simd),
    ] {
        for threads in [1, 2, 5] {
            let got = ParallelEngine::new(threads)
                .with_tier(tier)
                .solve_rolling(kernel, None)
                .unwrap();
            assert_eq!(
                got.corner,
                Some(want),
                "{label} tier={tier:?} threads={threads}"
            );
            assert_eq!(got.waves, d.rows + d.cols - 1, "{label} waves");
            assert!(
                got.peak_bytes <= band_bytes,
                "{label} peak {} > band {}",
                got.peak_bytes,
                band_bytes
            );
        }
    }
}

#[test]
fn rolling_mode_corner_matches_full_table_for_sequence_problems() {
    for (a, b) in byte_pairs() {
        let label = format!("{}x{}", a.len(), b.len());
        assert_rolling_corner_matches_oracle(
            &lddp::problems::LcsKernel::new(a.clone(), b.clone()),
            &format!("lcs {label}"),
        );
        assert_rolling_corner_matches_oracle(
            &lddp::problems::LevenshteinKernel::new(a.clone(), b.clone()),
            &format!("levenshtein {label}"),
        );
        assert_rolling_corner_matches_oracle(
            &lddp::problems::NeedlemanWunschKernel::new(a, b),
            &format!("needleman-wunsch {label}"),
        );
    }
}

#[test]
fn rolling_mode_corner_matches_full_table_for_dtw() {
    let series = |n: usize, mul: usize| -> Vec<f32> {
        (0..n).map(|i| (i * mul % 19) as f32 * 0.5 - 3.0).collect()
    };
    for (la, lb) in [(1, 43), (43, 1), (37, 54), (8, 8), (33, 65)] {
        let kernel = lddp::problems::DtwKernel::new(series(la, 37), series(lb, 23));
        // f32 corners must agree bit for bit: RollingSolve's corner is
        // compared with `==`, so also check the payload bits.
        let d = kernel.dims();
        let want = solve_row_major(&kernel)
            .unwrap()
            .get(d.rows - 1, d.cols - 1);
        let got = ParallelEngine::new(3).solve_rolling(&kernel, None).unwrap();
        assert_eq!(got.corner.unwrap().to_bits(), want.to_bits(), "{la}x{lb}");
        assert_rolling_corner_matches_oracle(&kernel, &format!("dtw {la}x{lb}"));
    }
}

#[test]
fn rolling_mode_arg_best_matches_full_table_for_smith_waterman() {
    for (a, b) in byte_pairs() {
        let kernel = lddp::problems::SmithWatermanKernel::new(a.clone(), b.clone());
        let want = solve_row_major(&kernel)
            .unwrap()
            .to_row_major()
            .iter()
            .map(|c| c.best())
            .max()
            .unwrap_or(0);
        for threads in [1, 2, 5] {
            let got = ParallelEngine::new(threads)
                .solve_rolling(&kernel, Some(|c: &lddp::problems::SwCell| c.best() as i64))
                .unwrap();
            let best = got.best.map(|(_, _, c)| c.best()).unwrap_or(0);
            assert_eq!(best, want, "sw {}x{}", a.len(), b.len());
        }
    }
}

#[test]
fn rolling_mode_rejects_non_wavefront_kernels() {
    // Dithering schedules as a knight move — there is no anti-diagonal
    // band to roll, so the engine must refuse rather than miscompute.
    let kernel = lddp::problems::DitherKernel::gradient(9, 12);
    assert!(ParallelEngine::new(2).solve_rolling(&kernel, None).is_err());
}

#[test]
fn rolling_mode_survives_chaos_with_oracle_answers() {
    use lddp::chaos::{FaultPlan, FaultPlanConfig};
    let s = |n: usize, mul: usize| -> Vec<u8> { (0..n).map(|i| (i * mul % 7) as u8).collect() };
    let kernel = lddp::problems::LcsKernel::new(s(61, 3), s(47, 5));
    let d = kernel.dims();
    let want = solve_row_major(&kernel)
        .unwrap()
        .get(d.rows - 1, d.cols - 1);
    let cfg = FaultPlanConfig {
        worker_panic_prob: 0.02,
        bulk_panic_prob: 0.1,
        ..FaultPlanConfig::none()
    };
    let mut degradations = 0usize;
    for seed in 0..24u64 {
        let plan = FaultPlan::new(seed, cfg);
        let (got, steps) = ParallelEngine::new(4)
            .solve_rolling_degrading(&kernel, None, &plan)
            .unwrap();
        assert_eq!(got.corner, Some(want), "seed {seed} steps {steps:?}");
        degradations += steps.len();
    }
    // With these rates the ladder must actually fire somewhere in the
    // campaign — otherwise the test silently stopped exercising it.
    assert!(degradations > 0, "no degradation rung ever fired");
}

#[test]
fn thread_counts_do_not_change_framework_inputs() {
    // The parallel engine's result feeds nothing back into scheduling,
    // but assert solver outputs are invariant across thread counts for a
    // knight-move kernel (the most complex wave geometry).
    let kernel = lddp::problems::DitherKernel::gradient(24, 24);
    let base = ParallelEngine::new(1)
        .solve(&kernel)
        .unwrap()
        .to_row_major();
    for threads in [2, 4, 7] {
        let got = ParallelEngine::new(threads).solve(&kernel).unwrap();
        assert_eq!(got.to_row_major(), base, "threads={threads}");
    }
}
