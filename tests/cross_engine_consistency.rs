//! Cross-engine consistency: for every Table I contributing set, the
//! sequential oracle, the real thread engine, and the simulated
//! heterogeneous framework must produce identical tables.

use lddp::core::pattern::classify;
use lddp::core::seq::solve_row_major;
use lddp::core::ContributingSet;
use lddp::parallel::ParallelEngine;
use lddp::platforms::{hetero_high, hetero_low};
use lddp::problems::synthetic::mix_kernel;
use lddp::Framework;

#[test]
fn all_fifteen_sets_agree_across_engines() {
    for set in ContributingSet::table_one_rows() {
        let dims = lddp::core::Dims::new(11, 14);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();

        // Real threads (canonical pattern of the raw classification).
        let raw = classify(set).unwrap();
        if raw.is_canonical() {
            let par = ParallelEngine::new(4).solve(&kernel).unwrap();
            assert_eq!(par.to_row_major(), oracle, "threads {set}");
        }

        // Simulated heterogeneous framework, both platforms, with the
        // tuner in the loop.
        for platform in [hetero_high(), hetero_low()] {
            let fw = Framework::new(platform);
            let solution = fw.solve(&kernel).unwrap();
            assert_eq!(solution.grid.to_row_major(), oracle, "framework {set}");
        }
    }
}

#[test]
fn rectangular_extremes_agree() {
    // Degenerate shapes: single row, single column, thin strips.
    for (r, c) in [(1, 37), (37, 1), (2, 19), (19, 2)] {
        for set in ContributingSet::table_one_rows() {
            let dims = lddp::core::Dims::new(r, c);
            let kernel = mix_kernel(dims, set);
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            let fw = Framework::new(hetero_high());
            let solution = fw.solve(&kernel).unwrap();
            assert_eq!(solution.grid.to_row_major(), oracle, "{set} {r}x{c}");
        }
    }
}

#[test]
fn case_study_kernels_agree_between_thread_engine_and_framework() {
    let fw = Framework::new(hetero_high());
    let engine = ParallelEngine::new(4);

    let lev = lddp::problems::LevenshteinKernel::new(*b"parallelism", *b"pipelining");
    let a = engine.solve(&lev).unwrap().to_row_major();
    let b = fw.solve(&lev).unwrap().grid.to_row_major();
    assert_eq!(a, b);

    let dit = lddp::problems::DitherKernel::noise(20, 30, 77);
    let a = engine.solve(&dit).unwrap().to_row_major();
    let b = fw.solve(&dit).unwrap().grid.to_row_major();
    assert_eq!(a, b);

    let che = lddp::problems::CheckerboardKernel::random(18, 22, 9, 4);
    let a = engine.solve(&che).unwrap().to_row_major();
    let b = fw.solve(&che).unwrap().grid.to_row_major();
    assert_eq!(a, b);

    let sw = lddp::problems::SmithWatermanKernel::new(*b"GATTACA", *b"GCATGCU");
    let a = engine.solve(&sw).unwrap().to_row_major();
    let b = fw.solve(&sw).unwrap().grid.to_row_major();
    assert_eq!(a, b);
}

#[test]
fn thread_counts_do_not_change_framework_inputs() {
    // The parallel engine's result feeds nothing back into scheduling,
    // but assert solver outputs are invariant across thread counts for a
    // knight-move kernel (the most complex wave geometry).
    let kernel = lddp::problems::DitherKernel::gradient(24, 24);
    let base = ParallelEngine::new(1)
        .solve(&kernel)
        .unwrap()
        .to_row_major();
    for threads in [2, 4, 7] {
        let got = ParallelEngine::new(threads).solve(&kernel).unwrap();
        assert_eq!(got.to_row_major(), base, "threads={threads}");
    }
}
