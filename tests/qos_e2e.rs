//! End-to-end QoS acceptance for the overload-robust serving stack:
//! a real [`FrameworkBackend`] behind the HTTP front end, driven by the
//! load generator with priority classes, tenant attribution, and the
//! brownout ladder all in play at once.
//!
//! The headline run: an oracle-checked 500+ request experiment where a
//! batch-class flood an order of magnitude heavier than the interactive
//! trickle is injected mid-run. Interactive latency must stay bounded,
//! no interactive request may be shed while batch is sheddable, an
//! over-quota tenant must see `429 tenant_quota`, and the brownout
//! ladder must engage under the flood and fully disengage (hysteresis)
//! afterwards — all observed through `/metrics` deltas.

use lddp::serve_backend::FrameworkBackend;
use lddp_serve::loadgen::{self, HttpTarget, LoadgenConfig};
use lddp_serve::{http, BrownoutConfig, Priority, ServeConfig, Server, SolveRequest};
use lddp_trace::NullSink;
use std::net::TcpListener;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

/// The value of one series in a scrape, or 0 when absent.
fn series(scrape: &[(String, f64)], name: &str) -> f64 {
    scrape
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0.0, |&(_, v)| v)
}

fn interactive_cfg(total: usize, concurrency: usize, oracle: &str) -> LoadgenConfig {
    LoadgenConfig {
        request: SolveRequest::new("lcs", 48),
        total,
        concurrency,
        expect_answer: Some(oracle.to_string()),
        ..LoadgenConfig::default()
    }
}

#[test]
fn overload_run_sheds_batch_protects_interactive_and_recovers() {
    let oracle_small = lddp::cli::run_solve_seq("lcs", 48).unwrap();
    let oracle_large = lddp::cli::run_solve_seq("lcs", 256).unwrap();

    let backend = FrameworkBackend::new();
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 64,
        // A tight batch budget so a flood shows up as queue fill long
        // before the interactive class feels anything.
        batch_queue_capacity: Some(12),
        // Small batches bound head-of-line blocking: an interactive
        // arrival waits for at most one two-job batch already on a
        // worker, which is what keeps its p99 inside the 2x envelope.
        max_batch: 2,
        // Quotas meter *named* tenants; the flood below is deliberately
        // unattributed so quota enforcement and brownout shedding are
        // exercised independently.
        tenant_quota_rps: Some(0.5),
        tenant_quota_burst: 2.0,
        brownout: BrownoutConfig {
            high_watermark: 0.5,
            low_watermark: 0.25,
            engage_after: 2,
            disengage_after: 4,
            max_level: 3,
        },
        ..ServeConfig::default()
    };
    let server = Server::new(config, &backend, &NullSink);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    server.run(Some(listener), |client| {
        let target = HttpTarget::new(addr.clone(), TIMEOUT);
        let mut sent = 0usize;

        // ---- Phase 1: unloaded interactive baseline. --------------
        let baseline = loadgen::run(&target, &interactive_cfg(220, 4, &oracle_small));
        assert_eq!(baseline.completed, 220, "by_code: {:?}", baseline.by_code);
        assert_eq!(baseline.rejected, 0);
        assert_eq!(baseline.mismatches, 0);
        sent += baseline.sent;
        // Sub-millisecond baselines make a pure latency ratio a coin
        // flip on a noisy CI box, so the baseline is floored before the
        // 2x bound is applied.
        let p99_bound = 2.0 * baseline.latency.p99_ms.max(50.0);

        let before = loadgen::scrape_metrics(&addr, TIMEOUT).unwrap();

        // ---- Phase 2: 10x batch flood + interactive trickle. ------
        // Closed-loop batch flood from 16 workers against a 12-slot
        // batch budget: the class queue saturates, and once two
        // consecutive fill observations sit above the high watermark
        // the ladder starts shedding batch admissions. Repeated rounds
        // guard against a round that drains too fast to trip it.
        let mut flood_sheds = 0usize;
        let mut flood_completed = 0usize;
        for _round in 0..6 {
            let (flood, trickle) = std::thread::scope(|s| {
                let flood = s.spawn(|| {
                    let mut req = SolveRequest::new("lcs", 256);
                    req.priority = Priority::Batch;
                    let cfg = LoadgenConfig {
                        request: req,
                        total: 300,
                        concurrency: 16,
                        expect_answer: Some(oracle_large.clone()),
                        ..LoadgenConfig::default()
                    };
                    loadgen::run(&HttpTarget::new(addr.clone(), TIMEOUT), &cfg)
                });
                let trickle = loadgen::run(&target, &interactive_cfg(30, 2, &oracle_small));
                (flood.join().unwrap(), trickle)
            });
            sent += flood.sent + trickle.sent;
            flood_completed += flood.completed;
            assert_eq!(flood.mismatches, 0, "batch answers diverged");
            assert_eq!(flood.errors, 0, "by_code: {:?}", flood.by_code);
            flood_sheds += flood
                .by_code
                .iter()
                .find(|(code, _)| code == "brownout_shed")
                .map_or(0, |&(_, n)| n);

            // The protected class: every interactive request completed
            // and matched the oracle while batch was being shed.
            assert_eq!(
                trickle.completed, 30,
                "interactive shed during flood: {:?}",
                trickle.by_code
            );
            assert_eq!(trickle.rejected, 0, "zero interactive sheds required");
            assert_eq!(trickle.mismatches, 0);
            assert!(
                trickle.latency.p99_ms <= p99_bound,
                "interactive p99 {}ms blew the 2x-of-baseline bound {}ms \
                 (baseline p99 {}ms)",
                trickle.latency.p99_ms,
                p99_bound,
                baseline.latency.p99_ms
            );

            if flood_sheds > 0 {
                break;
            }
        }
        assert!(
            flood_sheds > 0,
            "six flood rounds never tripped the brownout ladder"
        );
        assert!(
            flood_completed > 0,
            "shedding must degrade the batch class, not blackhole it"
        );

        // ---- Phase 3: over-quota tenant sees 429 tenant_quota. ----
        let mut quota_rejections = 0usize;
        for _ in 0..8 {
            let mut req = SolveRequest::new("lcs", 48);
            req.tenant = "greedy".to_string();
            let (status, head, body) =
                http::request_with_head(&addr, "POST", "/solve", Some(&req.to_json()), TIMEOUT)
                    .unwrap();
            sent += 1;
            match status {
                200 => assert!(body.contains(&format!("\"answer\":\"{oracle_small}\""))),
                429 => {
                    assert!(body.contains("\"error\":\"tenant_quota\""), "{body}");
                    assert!(
                        head.lines().any(|l| l.starts_with("Retry-After: ")),
                        "quota rejection must carry Retry-After: {head}"
                    );
                    quota_rejections += 1;
                }
                other => panic!("unexpected status {other}: {body}"),
            }
        }
        assert!(
            quota_rejections >= 5,
            "burst 2 at 0.5 rps should reject most of 8 back-to-back sends, \
             got {quota_rejections}"
        );

        // ---- Phase 4: drain and disengage (hysteresis). -----------
        // The ladder only moves on admission/dequeue observations, so
        // a trailing interactive run supplies the relief observations
        // that walk it back down to 0.
        let tail = loadgen::run(&target, &interactive_cfg(40, 2, &oracle_small));
        assert_eq!(tail.completed, 40, "by_code: {:?}", tail.by_code);
        assert_eq!(tail.rejected, 0);
        assert_eq!(tail.mismatches, 0);
        sent += tail.sent;

        assert!(
            sent >= 500,
            "acceptance run must cover 500+ requests, sent {sent}"
        );

        // ---- Phase 5: the /metrics story of the whole run. --------
        let after = loadgen::scrape_metrics(&addr, TIMEOUT).unwrap();
        let delta = |name: &str| series(&after, name) - series(&before, name);

        let engaged = delta("lddp_serve_brownout_transitions_total{direction=\"engage\"}");
        let disengaged = delta("lddp_serve_brownout_transitions_total{direction=\"disengage\"}");
        assert!(engaged >= 1.0, "ladder never engaged");
        assert!(disengaged >= 1.0, "ladder never disengaged");
        assert_eq!(
            series(&after, "lddp_serve_brownout_level"),
            0.0,
            "brownout gauge must return to 0 after the flood drains"
        );
        assert_eq!(
            series(
                &after,
                "lddp_serve_class_queue_depth{class=\"interactive\"}"
            ),
            0.0
        );
        assert_eq!(
            series(&after, "lddp_serve_class_queue_depth{class=\"batch\"}"),
            0.0
        );

        // Per-class accounting: interactive was never shed, batch was.
        assert!(
            delta("lddp_serve_class_total{class=\"interactive\",outcome=\"accepted\"}") >= 70.0
        );
        assert_eq!(
            delta("lddp_serve_class_total{class=\"interactive\",outcome=\"shed\"}"),
            0.0,
            "interactive requests were shed while batch was sheddable"
        );
        assert!(delta("lddp_serve_class_total{class=\"batch\",outcome=\"shed\"}") >= 1.0);
        assert!(delta("lddp_serve_rejected_total{reason=\"brownout_shed\"}") >= 1.0);

        // Tenant attribution: the greedy tenant's rejections landed in
        // its labelled series.
        assert!(
            series(
                &after,
                "lddp_serve_tenant_total{tenant=\"greedy\",outcome=\"rejected\"}"
            ) >= 5.0,
            "missing per-tenant rejection series"
        );

        client.shutdown();
    });
}

/// Deadline QoS over HTTP: an infeasible deadline is refused up front
/// with `504 deadline_infeasible` (satellite: §IV admission check),
/// while the same instance without a deadline solves fine.
#[test]
fn infeasible_deadlines_are_refused_before_solving() {
    let oracle = lddp::cli::run_solve_seq("lcs", 2048).unwrap();
    let backend = FrameworkBackend::new();
    let server = Server::new(ServeConfig::default(), &backend, &NullSink);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    server.run(Some(listener), |client| {
        // A 2048-cell-side grid cannot possibly finish in 1 virtual ms;
        // the §IV estimate catches that at admission.
        let mut hasty = SolveRequest::new("lcs", 2048);
        hasty.deadline_ms = Some(1);
        let (status, head, body) =
            http::request_with_head(&addr, "POST", "/solve", Some(&hasty.to_json()), TIMEOUT)
                .unwrap();
        assert_eq!(status, 504, "{body}");
        assert!(body.contains("\"error\":\"deadline_infeasible\""), "{body}");
        assert!(
            !head.lines().any(|l| l.starts_with("Retry-After: ")),
            "an infeasible deadline is not retryable: {head}"
        );

        let (status, body) = http::request(
            &addr,
            "POST",
            "/solve",
            Some(&SolveRequest::new("lcs", 2048).to_json()),
            TIMEOUT,
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(&format!("\"answer\":\"{oracle}\"")), "{body}");

        client.shutdown();
    });
}
