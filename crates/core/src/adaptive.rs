//! Per-wave-variable schedules — the substrate for *dynamic load
//! balancing*, the heuristic alternative (after Cuenca et al., the
//! paper's reference [10]) to the offline `t_share` sweep of §V-A.
//!
//! A [`VariablePlan`] is a two-device column-band schedule whose band
//! width may differ per wave. Ownership is decided by the band of the
//! *cell's own wave* (who computed it), so transfer lists remain exact
//! even while the boundary moves: when the band grows, the newly-CPU
//! columns' dependencies were GPU-computed in earlier waves and appear
//! in `to_cpu`, and symmetrically when it shrinks.

use crate::cell::ContributingSet;
use crate::error::{Error, Result};
use crate::pattern::{Pattern, ProfileShape};
use crate::schedule::{
    band_len, compatible, max_wave_delta, transfer_need, Device, PhaseKind, TransferNeed,
    WaveAssignment, WaveSchedule, WaveTransfers,
};
use crate::wavefront::{self, Dims};

/// A two-device schedule with a per-wave CPU band width.
#[derive(Debug, Clone)]
pub struct VariablePlan {
    pattern: Pattern,
    set: ContributingSet,
    dims: Dims,
    t_switch: usize,
    /// CPU band width (in columns) per wave; `bands[w]` is ignored for
    /// CPU-only waves.
    bands: Vec<usize>,
    transfer: TransferNeed,
    num_waves: usize,
}

impl VariablePlan {
    /// Builds a variable-band plan. `bands` must hold one entry per wave
    /// (each ≤ `dims.cols`); `t_switch` follows the same phase rules as
    /// [`crate::schedule::Plan`].
    pub fn new(
        pattern: Pattern,
        set: ContributingSet,
        dims: Dims,
        t_switch: usize,
        bands: Vec<usize>,
    ) -> Result<VariablePlan> {
        if set.is_empty() {
            return Err(Error::EmptyContributingSet);
        }
        if !pattern.is_canonical() {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: "not a canonical execution pattern".into(),
            });
        }
        if !compatible(pattern, set) {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: format!("contributing set {set} is incompatible with this pattern"),
            });
        }
        let num_waves = pattern.num_waves(dims.rows, dims.cols);
        if bands.len() != num_waves {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: format!("{} band entries for {} waves", bands.len(), num_waves),
            });
        }
        if bands.iter().any(|&b| b > dims.cols) {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: "band width beyond the column count".into(),
            });
        }
        let max_switch = match pattern.profile_shape() {
            ProfileShape::RampUpDown => num_waves / 2,
            ProfileShape::Decreasing => num_waves,
            ProfileShape::Constant => 0,
        };
        if t_switch > max_switch {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: format!("t_switch = {t_switch} exceeds the legal maximum {max_switch}"),
            });
        }
        let transfer = transfer_need(pattern, set)?;
        Ok(VariablePlan {
            pattern,
            set,
            dims,
            t_switch,
            bands,
            transfer,
            num_waves,
        })
    }

    /// The per-wave band widths.
    pub fn bands(&self) -> &[usize] {
        &self.bands
    }

    /// Device that computed cell `(i, j)` — by the band width of *its*
    /// wave.
    pub fn owner(&self, i: usize, j: usize) -> Device {
        let w = wavefront::wave_of(self.pattern, self.dims, i, j);
        if self.phase(w) == PhaseKind::CpuOnly || j < self.bands[w] {
            Device::Cpu
        } else {
            Device::Gpu
        }
    }

    fn phase(&self, w: usize) -> PhaseKind {
        match self.pattern.profile_shape() {
            ProfileShape::RampUpDown => {
                if w < self.t_switch || w >= self.num_waves - self.t_switch {
                    PhaseKind::CpuOnly
                } else {
                    PhaseKind::Shared
                }
            }
            ProfileShape::Constant => PhaseKind::Shared,
            ProfileShape::Decreasing => {
                if w >= self.num_waves - self.t_switch {
                    PhaseKind::CpuOnly
                } else {
                    PhaseKind::Shared
                }
            }
        }
    }

    fn push_foreign_deps(&self, i: usize, j: usize, out: &mut WaveTransfers) {
        let reader = self.owner(i, j);
        for dep in self.set.iter() {
            if let Some((si, sj)) = dep.source(i, j, self.dims.rows, self.dims.cols) {
                if self.owner(si, sj) != reader {
                    match reader {
                        Device::Cpu => out.to_cpu.push((si, sj)),
                        Device::Gpu => out.to_gpu.push((si, sj)),
                    }
                }
            }
        }
    }
}

impl WaveSchedule for VariablePlan {
    fn pattern(&self) -> Pattern {
        self.pattern
    }

    fn set(&self) -> ContributingSet {
        self.set
    }

    fn dims(&self) -> Dims {
        self.dims
    }

    fn num_waves(&self) -> usize {
        self.num_waves
    }

    fn phase_of(&self, w: usize) -> PhaseKind {
        self.phase(w)
    }

    fn assignment(&self, w: usize) -> WaveAssignment {
        let len = self.pattern.wave_len(self.dims.rows, self.dims.cols, w);
        let cpu = if self.phase(w) == PhaseKind::CpuOnly {
            len
        } else {
            band_len(self.pattern, self.dims, w, self.bands[w])
        };
        WaveAssignment {
            wave: w,
            phase: self.phase(w),
            cpu: 0..cpu,
            gpu: cpu..len,
        }
    }

    fn transfers(&self, w: usize) -> WaveTransfers {
        let mut out = WaveTransfers::default();
        let delta = max_wave_delta(self.pattern, self.set);
        let phase = self.phase(w);
        let near_edge = (w.saturating_sub(delta)..w).any(|p| self.phase(p) != phase);
        if near_edge {
            for (i, j) in wavefront::wave_cells(self.pattern, self.dims, w) {
                self.push_foreign_deps(i, j, &mut out);
            }
        } else if phase == PhaseKind::Shared {
            // The boundary may have moved within the dependency window:
            // candidates are cells whose column lies near *any* band in
            // the window.
            let lo_band = (w.saturating_sub(delta)..=w)
                .map(|p| self.bands[p])
                .min()
                .unwrap_or(0);
            let hi_band = (w.saturating_sub(delta)..=w)
                .map(|p| self.bands[p])
                .max()
                .unwrap_or(0);
            let lo = lo_band.saturating_sub(2);
            let hi = hi_band + 1;
            for (i, j) in wavefront::wave_cells(self.pattern, self.dims, w) {
                if j + 1 < lo {
                    continue;
                }
                if j > hi && self.pattern != Pattern::InvertedL {
                    break;
                }
                if j > hi {
                    continue;
                }
                self.push_foreign_deps(i, j, &mut out);
            }
        }
        out.to_gpu.sort_unstable();
        out.to_gpu.dedup();
        out.to_cpu.sort_unstable();
        out.to_cpu.dedup();
        out
    }

    fn transfer_need(&self) -> TransferNeed {
        self.transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::RepCell;
    use crate::cell::RepCell::{Ne, Nw, N, W};
    use crate::schedule::{Plan, ScheduleParams};

    fn set(cells: &[RepCell]) -> ContributingSet {
        ContributingSet::new(cells)
    }

    #[test]
    fn constant_bands_match_the_static_plan() {
        for (pattern, s, t_switch, t_share) in [
            (Pattern::AntiDiagonal, &[W, Nw, N][..], 3, 4),
            (Pattern::Horizontal, &[Nw, N, Ne][..], 0, 5),
            (Pattern::KnightMove, &[W, Ne][..], 4, 3),
            (Pattern::InvertedL, &[Nw][..], 2, 4),
        ] {
            let dims = Dims::new(10, 12);
            let waves = pattern.num_waves(10, 12);
            let variable =
                VariablePlan::new(pattern, set(s), dims, t_switch, vec![t_share; waves]).unwrap();
            let fixed = Plan::new(
                pattern,
                set(s),
                dims,
                ScheduleParams::new(t_switch, t_share),
            )
            .unwrap();
            for w in 0..waves {
                assert_eq!(
                    WaveSchedule::assignment(&variable, w),
                    WaveSchedule::assignment(&fixed, w),
                    "{pattern} wave {w}"
                );
                assert_eq!(
                    WaveSchedule::transfers(&variable, w),
                    WaveSchedule::transfers(&fixed, w),
                    "{pattern} wave {w}"
                );
            }
        }
    }

    /// THE correctness property with a moving boundary.
    #[test]
    fn transfers_cover_foreign_deps_with_moving_bands() {
        for (pattern, s, t_switch) in [
            (Pattern::AntiDiagonal, &[W, Nw, N][..], 3),
            (Pattern::Horizontal, &[Nw, N, Ne][..], 0),
            (Pattern::Horizontal, &[Nw, N][..], 0),
            (Pattern::KnightMove, &[W, Nw, N, Ne][..], 4),
            (Pattern::InvertedL, &[Nw][..], 2),
        ] {
            let dims = Dims::new(9, 11);
            let waves = pattern.num_waves(9, 11);
            // A deliberately jittery band: grows, jumps, shrinks.
            let bands: Vec<usize> = (0..waves)
                .map(|w| match w % 5 {
                    0 => 0,
                    1 => 3,
                    2 => 8,
                    3 => 5,
                    _ => 11,
                })
                .collect();
            let plan = VariablePlan::new(pattern, set(s), dims, t_switch, bands).unwrap();
            for w in 0..waves {
                let t = WaveSchedule::transfers(&plan, w);
                for (i, j) in wavefront::wave_cells(pattern, dims, w) {
                    let reader = plan.owner(i, j);
                    for dep in set(s).iter() {
                        if let Some(src) = dep.source(i, j, 9, 11) {
                            if plan.owner(src.0, src.1) != reader {
                                let list = match reader {
                                    Device::Cpu => &t.to_cpu,
                                    Device::Gpu => &t.to_gpu,
                                };
                                assert!(
                                    list.contains(&src),
                                    "{pattern} wave {w}: ({i},{j}) missing {src:?}"
                                );
                            }
                        }
                    }
                }
                // Minimality + causality.
                for &(i, j) in &t.to_gpu {
                    assert_eq!(plan.owner(i, j), Device::Cpu);
                    assert!(wavefront::wave_of(pattern, dims, i, j) < w);
                }
                for &(i, j) in &t.to_cpu {
                    assert_eq!(plan.owner(i, j), Device::Gpu);
                    assert!(wavefront::wave_of(pattern, dims, i, j) < w);
                }
            }
        }
    }

    #[test]
    fn validation() {
        let dims = Dims::new(4, 4);
        assert!(VariablePlan::new(
            Pattern::Horizontal,
            ContributingSet::EMPTY,
            dims,
            0,
            vec![0; 4]
        )
        .is_err());
        assert!(
            VariablePlan::new(Pattern::Horizontal, set(&[N]), dims, 0, vec![0; 3]).is_err(),
            "wrong band count"
        );
        assert!(
            VariablePlan::new(Pattern::Horizontal, set(&[N]), dims, 0, vec![5; 4]).is_err(),
            "band beyond cols"
        );
        assert!(
            VariablePlan::new(Pattern::Horizontal, set(&[N]), dims, 1, vec![2; 4]).is_err(),
            "t_switch on constant profile"
        );
        assert!(
            VariablePlan::new(Pattern::Vertical, set(&[W]), dims, 0, vec![2; 4]).is_err(),
            "non-canonical pattern"
        );
    }

    #[test]
    fn bands_accessor_and_ownership() {
        let dims = Dims::new(4, 6);
        let plan = VariablePlan::new(
            Pattern::Horizontal,
            set(&[Nw, N]),
            dims,
            0,
            vec![0, 2, 4, 6],
        )
        .unwrap();
        assert_eq!(plan.bands(), &[0, 2, 4, 6]);
        assert_eq!(plan.owner(0, 0), Device::Gpu);
        assert_eq!(plan.owner(1, 1), Device::Cpu);
        assert_eq!(plan.owner(1, 2), Device::Gpu);
        assert_eq!(plan.owner(3, 5), Device::Cpu);
    }
}
