//! DP-table storage and memory layouts.
//!
//! §IV-B of the paper: GPU global-memory accesses are coalesced when the
//! threads of a warp touch contiguous addresses. The framework therefore
//! stores "all the cells marked with the same number in Fig 2 together in
//! a one dimensional array, maintaining non-decreasing order" — i.e. a
//! *wave-major* layout keyed by the problem's pattern. A plain row-major
//! layout is also provided (it is already wave-major for the Horizontal
//! pattern, and is what a naive port would use for the others).

use crate::cell::ContributingSet;
use crate::pattern::Pattern;
use crate::wavefront::{self, Dims};
use std::ops::Range;

/// How the 2-D table is linearized into the backing array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    /// `index = i * cols + j`. Coalesced only for Horizontal waves.
    RowMajor,
    /// Cells stored wave-by-wave in the pattern's canonical within-wave
    /// order; each wave occupies a contiguous range. Coalesced for the
    /// given pattern's waves.
    WaveMajor(Pattern),
}

impl LayoutKind {
    /// Whether a warp sweeping one wave of `pattern` touches contiguous
    /// addresses under this layout.
    pub fn is_coalesced_for(self, pattern: Pattern) -> bool {
        match self {
            // Row-major is contiguous along rows, i.e. for horizontal
            // waves only.
            LayoutKind::RowMajor => pattern == Pattern::Horizontal,
            LayoutKind::WaveMajor(p) => p == pattern,
        }
    }

    /// The wave-major layout the framework picks for `pattern` (§IV-B).
    /// For Horizontal this is plain row-major (they coincide).
    pub fn preferred_for(pattern: Pattern) -> LayoutKind {
        match pattern {
            Pattern::Horizontal => LayoutKind::RowMajor,
            p => LayoutKind::WaveMajor(p),
        }
    }
}

/// A concrete linearization of an `rows × cols` table.
///
/// Provides the bijection between `(i, j)` coordinates and positions in
/// the backing array, plus contiguous per-wave ranges for wave-major
/// layouts.
#[derive(Debug, Clone)]
pub struct Layout {
    kind: LayoutKind,
    dims: Dims,
    /// Start offset of each wave in the backing array (wave-major only);
    /// has `num_waves + 1` entries so `offsets[w]..offsets[w+1]` is wave
    /// `w`'s range.
    offsets: Vec<usize>,
}

impl Layout {
    /// Builds a layout for the given dimensions.
    pub fn new(kind: LayoutKind, dims: Dims) -> Self {
        let offsets = match kind {
            LayoutKind::RowMajor => Vec::new(),
            LayoutKind::WaveMajor(p) => {
                let waves = p.num_waves(dims.rows, dims.cols);
                let mut offsets = Vec::with_capacity(waves + 1);
                let mut acc = 0;
                offsets.push(0);
                for w in 0..waves {
                    acc += p.wave_len(dims.rows, dims.cols, w);
                    offsets.push(acc);
                }
                offsets
            }
        };
        Layout {
            kind,
            dims,
            offsets,
        }
    }

    /// The linearization scheme.
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    /// Table dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Backing-array length.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when the table has no cells.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Backing-array index of cell `(i, j)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(self.dims.contains(i, j), "({i},{j}) out of {:?}", self.dims);
        match self.kind {
            LayoutKind::RowMajor => i * self.dims.cols + j,
            LayoutKind::WaveMajor(p) => {
                let w = wavefront::wave_of(p, self.dims, i, j);
                self.offsets[w] + wavefront::position_in_wave(p, self.dims, i, j)
            }
        }
    }

    /// Cell coordinates stored at backing-array position `idx` — the
    /// inverse of [`Layout::index`].
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        debug_assert!(idx < self.len());
        match self.kind {
            LayoutKind::RowMajor => (idx / self.dims.cols, idx % self.dims.cols),
            LayoutKind::WaveMajor(p) => {
                // offsets is sorted; find the wave containing idx.
                let w = match self.offsets.binary_search(&idx) {
                    Ok(mut w) => {
                        // idx is the start of wave w; skip empty waves.
                        while self.offsets[w + 1] == idx {
                            w += 1;
                        }
                        w
                    }
                    Err(ins) => ins - 1,
                };
                wavefront::cell_at(p, self.dims, w, idx - self.offsets[w])
            }
        }
    }

    /// Contiguous backing range of wave `w`, when the layout stores that
    /// wave contiguously (wave-major of the same pattern, or row-major
    /// horizontal rows). `None` otherwise.
    pub fn wave_range(&self, pattern: Pattern, w: usize) -> Option<Range<usize>> {
        match self.kind {
            LayoutKind::RowMajor if pattern == Pattern::Horizontal => {
                if w < self.dims.rows {
                    Some(w * self.dims.cols..(w + 1) * self.dims.cols)
                } else {
                    None
                }
            }
            LayoutKind::WaveMajor(p) if p == pattern => {
                if w + 1 < self.offsets.len() {
                    Some(self.offsets[w]..self.offsets[w + 1])
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The interior/border decomposition of wave `w`: canonical-position
    /// ranges (relative to the wave's start) whose cells have *every*
    /// direction of `set` in bounds, so a bulk
    /// [`WaveKernel`](crate::kernel::WaveKernel) may compute them with
    /// no boundary branches. At most two ranges (the arms of an
    /// inverted-L shell), sorted and disjoint; positions outside them
    /// are border cells for the scalar path. Empty when this layout does
    /// not store `pattern`'s waves contiguously (same condition as
    /// [`Layout::wave_range`]) — slicing neighbours out of the backing
    /// array is only sound on a coalesced layout.
    pub fn interior_runs(
        &self,
        pattern: Pattern,
        set: ContributingSet,
        w: usize,
    ) -> Vec<Range<usize>> {
        if !self.kind.is_coalesced_for(pattern) {
            return Vec::new();
        }
        wavefront::interior_runs(pattern, self.dims, set, w)
    }
}

/// The DP table: a typed backing array plus its [`Layout`].
#[derive(Debug, Clone)]
pub struct Grid<T> {
    data: Vec<T>,
    layout: Layout,
}

impl<T: Copy + Default> Grid<T> {
    /// Allocates a table filled with `T::default()`.
    pub fn new(kind: LayoutKind, dims: Dims) -> Self {
        let layout = Layout::new(kind, dims);
        Grid {
            data: vec![T::default(); layout.len()],
            layout,
        }
    }
}

impl<T: Copy> Grid<T> {
    /// Allocates a table filled with `fill`.
    pub fn filled(kind: LayoutKind, dims: Dims, fill: T) -> Self {
        let layout = Layout::new(kind, dims);
        Grid {
            data: vec![fill; layout.len()],
            layout,
        }
    }

    /// Value at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[self.layout.index(i, j)]
    }

    /// Sets the value at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        let idx = self.layout.index(i, j);
        self.data[idx] = v;
    }

    /// Copies the table into a plain row-major `Vec` (row `i` starting at
    /// `i * cols`) — convenient for comparisons and output extraction.
    pub fn to_row_major(&self) -> Vec<T> {
        match self.layout.kind {
            LayoutKind::RowMajor => self.data.clone(),
            _ => {
                let Dims { rows, cols } = self.layout.dims;
                let mut out = Vec::with_capacity(rows * cols);
                for i in 0..rows {
                    for j in 0..cols {
                        out.push(self.get(i, j));
                    }
                }
                out
            }
        }
    }
}

impl<T> Grid<T> {
    /// The table's layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Table dimensions.
    pub fn dims(&self) -> Dims {
        self.layout.dims
    }

    /// Raw backing array, in layout order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw backing array, in layout order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPES: [(usize, usize); 6] = [(1, 1), (1, 5), (5, 1), (3, 4), (4, 3), (6, 6)];

    fn all_layouts() -> Vec<LayoutKind> {
        let mut v = vec![LayoutKind::RowMajor];
        v.extend(Pattern::ALL.map(LayoutKind::WaveMajor));
        v
    }

    #[test]
    fn index_is_a_bijection() {
        for kind in all_layouts() {
            for (r, c) in SHAPES {
                let layout = Layout::new(kind, Dims::new(r, c));
                let mut seen = vec![false; r * c];
                for i in 0..r {
                    for j in 0..c {
                        let idx = layout.index(i, j);
                        assert!(idx < r * c, "{kind:?} {r}x{c} ({i},{j}) -> {idx}");
                        assert!(!seen[idx], "{kind:?} {r}x{c}: index {idx} reused");
                        seen[idx] = true;
                        assert_eq!(layout.coords(idx), (i, j), "{kind:?} {r}x{c}");
                    }
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn wave_major_waves_are_contiguous_and_ordered() {
        for p in Pattern::ALL {
            for (r, c) in SHAPES {
                let dims = Dims::new(r, c);
                let layout = Layout::new(LayoutKind::WaveMajor(p), dims);
                let mut expected_start = 0;
                for w in 0..p.num_waves(r, c) {
                    let range = layout.wave_range(p, w).unwrap();
                    assert_eq!(range.start, expected_start);
                    assert_eq!(range.len(), p.wave_len(r, c, w));
                    expected_start = range.end;
                    // Cells inside the range appear in canonical order.
                    for (pos, (i, j)) in crate::wavefront::wave_cells(p, dims, w).enumerate() {
                        assert_eq!(layout.index(i, j), range.start + pos);
                    }
                }
                assert_eq!(expected_start, r * c);
            }
        }
    }

    #[test]
    fn row_major_serves_horizontal_waves() {
        let layout = Layout::new(LayoutKind::RowMajor, Dims::new(3, 4));
        assert_eq!(layout.wave_range(Pattern::Horizontal, 1), Some(4..8));
        assert_eq!(layout.wave_range(Pattern::Horizontal, 3), None);
        assert_eq!(layout.wave_range(Pattern::AntiDiagonal, 0), None);
    }

    #[test]
    fn wave_range_rejects_foreign_patterns() {
        let layout = Layout::new(
            LayoutKind::WaveMajor(Pattern::AntiDiagonal),
            Dims::new(3, 4),
        );
        assert!(layout.wave_range(Pattern::AntiDiagonal, 0).is_some());
        assert!(layout.wave_range(Pattern::Horizontal, 0).is_none());
        assert!(layout
            .wave_range(Pattern::AntiDiagonal, Pattern::AntiDiagonal.num_waves(3, 4))
            .is_none());
    }

    #[test]
    fn coalescing_predicate() {
        assert!(LayoutKind::RowMajor.is_coalesced_for(Pattern::Horizontal));
        assert!(!LayoutKind::RowMajor.is_coalesced_for(Pattern::AntiDiagonal));
        assert!(!LayoutKind::RowMajor.is_coalesced_for(Pattern::KnightMove));
        for p in Pattern::ALL {
            assert!(LayoutKind::WaveMajor(p).is_coalesced_for(p));
        }
        assert!(!LayoutKind::WaveMajor(Pattern::AntiDiagonal).is_coalesced_for(Pattern::KnightMove));
    }

    #[test]
    fn preferred_layout_is_coalesced() {
        for p in Pattern::ALL {
            assert!(LayoutKind::preferred_for(p).is_coalesced_for(p), "{p}");
        }
        assert_eq!(
            LayoutKind::preferred_for(Pattern::Horizontal),
            LayoutKind::RowMajor
        );
    }

    #[test]
    fn interior_runs_require_a_coalesced_layout() {
        use crate::cell::{ContributingSet, RepCell};
        let set = ContributingSet::new(&[RepCell::Nw]);
        let wave_major = Layout::new(
            LayoutKind::WaveMajor(Pattern::AntiDiagonal),
            Dims::new(4, 4),
        );
        assert!(!wave_major
            .interior_runs(Pattern::AntiDiagonal, set, 2)
            .is_empty());
        assert!(wave_major
            .interior_runs(Pattern::KnightMove, set, 2)
            .is_empty());
        let row_major = Layout::new(LayoutKind::RowMajor, Dims::new(4, 4));
        assert!(!row_major
            .interior_runs(Pattern::Horizontal, set, 1)
            .is_empty());
        assert!(row_major
            .interior_runs(Pattern::AntiDiagonal, set, 2)
            .is_empty());
    }

    /// The property the bulk execution path relies on: inside an
    /// interior run, the neighbours in one direction of consecutive
    /// cells occupy consecutive backing-array slots of one earlier
    /// wave — so they can be handed to a kernel as a plain slice.
    #[test]
    fn interior_run_neighbours_are_contiguous_in_the_backing_array() {
        use crate::cell::ContributingSet;
        use crate::pattern::classify;
        for set in ContributingSet::table_one_rows() {
            let pattern = classify(set).unwrap();
            for (r, c) in SHAPES {
                let dims = Dims::new(r, c);
                let layout = Layout::new(LayoutKind::preferred_for(pattern), dims);
                for w in 0..pattern.num_waves(r, c) {
                    for run in layout.interior_runs(pattern, set, w) {
                        let (i0, j0) = crate::wavefront::cell_at(pattern, dims, w, run.start);
                        for dep in set.iter() {
                            let (bi, bj) = dep.source(i0, j0, r, c).unwrap();
                            let base = layout.index(bi, bj);
                            for (off, pos) in run.clone().enumerate() {
                                let (i, j) = crate::wavefront::cell_at(pattern, dims, w, pos);
                                let (si, sj) = dep.source(i, j, r, c).unwrap();
                                assert_eq!(
                                    layout.index(si, sj),
                                    base + off,
                                    "{pattern} {set} {r}x{c} wave {w} pos {pos} dep {dep}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn grid_get_set_roundtrip() {
        for kind in all_layouts() {
            let mut g: Grid<u32> = Grid::new(kind, Dims::new(4, 5));
            for i in 0..4 {
                for j in 0..5 {
                    g.set(i, j, (i * 10 + j) as u32);
                }
            }
            for i in 0..4 {
                for j in 0..5 {
                    assert_eq!(g.get(i, j), (i * 10 + j) as u32, "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn to_row_major_normalizes_any_layout() {
        let mut expected = Vec::new();
        for i in 0..3 {
            for j in 0..4 {
                expected.push((i * 4 + j) as u64);
            }
        }
        for kind in all_layouts() {
            let mut g: Grid<u64> = Grid::new(kind, Dims::new(3, 4));
            for i in 0..3 {
                for j in 0..4 {
                    g.set(i, j, (i * 4 + j) as u64);
                }
            }
            assert_eq!(g.to_row_major(), expected, "{kind:?}");
        }
    }

    #[test]
    fn filled_initializes_every_cell() {
        let g: Grid<i32> = Grid::filled(LayoutKind::RowMajor, Dims::new(2, 3), -7);
        assert!(g.as_slice().iter().all(|&v| v == -7));
        assert_eq!(g.as_slice().len(), 6);
    }

    #[test]
    fn empty_grids_are_legal() {
        for kind in all_layouts() {
            let g: Grid<u8> = Grid::new(kind, Dims::new(0, 5));
            assert!(g.layout().is_empty());
            assert_eq!(g.as_slice().len(), 0);
        }
    }
}
