//! Cell geometry for 2-D LDDP-Plus problems.
//!
//! Every interior cell of a 2-D table is surrounded by eight neighbours.
//! Because the update function `f` is the same for all cells, a cell may
//! only depend on neighbours that are *pairwise non-conflicting*: two
//! neighbours conflict when a straight line through them passes through
//! the cell itself (paper, §II, Fig 1a). Any maximal non-conflicting set
//! has exactly four elements; the paper fixes the *representative set*
//! `RS(i,j) = { (i,j-1), (i-1,j-1), (i-1,j), (i-1,j+1) }`, i.e. the
//! west, north-west, north and north-east neighbours.

use std::fmt;

/// One of the eight neighbours of a cell, named by compass direction.
///
/// Directions are relative to the cell being filled: `N` is the cell one
/// row up, `W` one column left, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// `(i, j-1)`
    W,
    /// `(i-1, j-1)`
    Nw,
    /// `(i-1, j)`
    N,
    /// `(i-1, j+1)`
    Ne,
    /// `(i, j+1)`
    E,
    /// `(i+1, j+1)`
    Se,
    /// `(i+1, j)`
    S,
    /// `(i+1, j-1)`
    Sw,
}

impl Direction {
    /// All eight neighbour directions.
    pub const ALL: [Direction; 8] = [
        Direction::W,
        Direction::Nw,
        Direction::N,
        Direction::Ne,
        Direction::E,
        Direction::Se,
        Direction::S,
        Direction::Sw,
    ];

    /// Row/column offset of this neighbour relative to the cell.
    pub const fn offset(self) -> (isize, isize) {
        match self {
            Direction::W => (0, -1),
            Direction::Nw => (-1, -1),
            Direction::N => (-1, 0),
            Direction::Ne => (-1, 1),
            Direction::E => (0, 1),
            Direction::Se => (1, 1),
            Direction::S => (1, 0),
            Direction::Sw => (1, -1),
        }
    }

    /// The neighbour diametrically opposite this one.
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::W => Direction::E,
            Direction::Nw => Direction::Se,
            Direction::N => Direction::S,
            Direction::Ne => Direction::Sw,
            Direction::E => Direction::W,
            Direction::Se => Direction::Nw,
            Direction::S => Direction::N,
            Direction::Sw => Direction::Ne,
        }
    }

    /// Two neighbours *conflict* when a straight line drawn through them
    /// passes through the centre cell, i.e. they are opposite each other.
    pub const fn conflicts_with(self, other: Direction) -> bool {
        matches!(
            (self.offset(), other.offset()),
            ((a, b), (c, d)) if a == -c && b == -d
        )
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::W => "W",
            Direction::Nw => "NW",
            Direction::N => "N",
            Direction::Ne => "NE",
            Direction::E => "E",
            Direction::Se => "SE",
            Direction::S => "S",
            Direction::Sw => "SW",
        };
        f.write_str(s)
    }
}

/// One of the four *representative cells* a LDDP-Plus update may read.
///
/// These are the four pairwise non-conflicting neighbours chosen by the
/// paper (Fig 1b, the set marked `a`): west, north-west, north and
/// north-east.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RepCell {
    /// `(i, j-1)` — the cell immediately to the left.
    W,
    /// `(i-1, j-1)` — the cell diagonally up-left.
    Nw,
    /// `(i-1, j)` — the cell immediately above.
    N,
    /// `(i-1, j+1)` — the cell diagonally up-right.
    Ne,
}

impl RepCell {
    /// All four representative cells, in the paper's Table I column order
    /// `(cell_{i,j-1}, cell_{i-1,j-1}, cell_{i-1,j}, cell_{i-1,j+1})`.
    pub const ALL: [RepCell; 4] = [RepCell::W, RepCell::Nw, RepCell::N, RepCell::Ne];

    /// Row/column offset relative to the cell being filled.
    pub const fn offset(self) -> (isize, isize) {
        match self {
            RepCell::W => (0, -1),
            RepCell::Nw => (-1, -1),
            RepCell::N => (-1, 0),
            RepCell::Ne => (-1, 1),
        }
    }

    /// The corresponding general compass direction.
    pub const fn direction(self) -> Direction {
        match self {
            RepCell::W => Direction::W,
            RepCell::Nw => Direction::Nw,
            RepCell::N => Direction::N,
            RepCell::Ne => Direction::Ne,
        }
    }

    /// Bit used by [`ContributingSet`].
    const fn bit(self) -> u8 {
        match self {
            RepCell::W => 1 << 0,
            RepCell::Nw => 1 << 1,
            RepCell::N => 1 << 2,
            RepCell::Ne => 1 << 3,
        }
    }

    /// Source position `(i - di, j - dj)` of this representative cell for
    /// the target cell `(i, j)`, or `None` when it falls outside an
    /// `rows × cols` table.
    pub fn source(self, i: usize, j: usize, rows: usize, cols: usize) -> Option<(usize, usize)> {
        let (di, dj) = self.offset();
        let si = i as isize + di;
        let sj = j as isize + dj;
        if si < 0 || sj < 0 || si >= rows as isize || sj >= cols as isize {
            None
        } else {
            Some((si as usize, sj as usize))
        }
    }
}

impl fmt::Display for RepCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.direction(), f)
    }
}

/// The *contributing set*: the subset of representative cells the update
/// function actually reads (paper, §II, Fig 1c).
///
/// Encoded as a 4-bit set; the 15 non-empty values enumerate the rows of
/// the paper's Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContributingSet(u8);

impl ContributingSet {
    /// The empty set. Not a valid LDDP-Plus dependency (`f` must read at
    /// least one neighbour) but useful as a builder seed.
    pub const EMPTY: ContributingSet = ContributingSet(0);

    /// The full representative set `{W, NW, N, NE}`.
    pub const FULL: ContributingSet = ContributingSet(0b1111);

    /// Builds a set from a slice of representative cells.
    pub fn new(cells: &[RepCell]) -> Self {
        let mut s = ContributingSet::EMPTY;
        for &c in cells {
            s = s.with(c);
        }
        s
    }

    /// Builds a set from the raw Table-I row encoding. Bits are, from
    /// least significant: `W, NW, N, NE`. Values `1..=15` are the fifteen
    /// rows of Table I.
    pub fn from_bits(bits: u8) -> Option<Self> {
        if bits <= 0b1111 {
            Some(ContributingSet(bits))
        } else {
            None
        }
    }

    /// Raw 4-bit encoding (`W` = bit 0 … `NE` = bit 3).
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Returns a copy of the set with `cell` added.
    #[must_use]
    pub const fn with(self, cell: RepCell) -> Self {
        ContributingSet(self.0 | cell.bit())
    }

    /// Returns a copy of the set with `cell` removed.
    #[must_use]
    pub const fn without(self, cell: RepCell) -> Self {
        ContributingSet(self.0 & !cell.bit())
    }

    /// Does the set contain `cell`?
    pub const fn contains(self, cell: RepCell) -> bool {
        self.0 & cell.bit() != 0
    }

    /// Number of contributing cells (0–4).
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no representative cell is read.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in Table-I order (`W, NW, N, NE`).
    pub fn iter(self) -> impl Iterator<Item = RepCell> {
        RepCell::ALL.into_iter().filter(move |c| self.contains(*c))
    }

    /// All 15 non-empty contributing sets, ordered as in Table I
    /// (lexicographic on the `(W, NW, N, NE)` membership columns, i.e.
    /// `NE`-only first, full set last — matching the paper's row order).
    pub fn table_one_rows() -> impl Iterator<Item = ContributingSet> {
        // Table I orders rows by the tuple (W, NW, N, NE) read as a
        // binary number with W as the most significant bit.
        (1u8..=0b1111).map(|row| {
            let mut s = ContributingSet::EMPTY;
            if row & 0b1000 != 0 {
                s = s.with(RepCell::W);
            }
            if row & 0b0100 != 0 {
                s = s.with(RepCell::Nw);
            }
            if row & 0b0010 != 0 {
                s = s.with(RepCell::N);
            }
            if row & 0b0001 != 0 {
                s = s.with(RepCell::Ne);
            }
            s
        })
    }

    /// The set mirrored left-to-right (columns reversed): `W ↔` (no
    /// representative image — see note), `NW ↔ NE`, `N ↔ N`.
    ///
    /// Mirroring maps the representative set onto the non-conflicting set
    /// `{E, NE, N, NW}`; only the sub-lattice `{NW, N, NE}` stays inside
    /// the representative set, so this is only meaningful for sets not
    /// containing `W`. Used to reduce mirrored-Inverted-L to Inverted-L.
    pub fn mirrored(self) -> Option<Self> {
        if self.contains(RepCell::W) {
            return None;
        }
        let mut s = ContributingSet::EMPTY;
        if self.contains(RepCell::Nw) {
            s = s.with(RepCell::Ne);
        }
        if self.contains(RepCell::Ne) {
            s = s.with(RepCell::Nw);
        }
        if self.contains(RepCell::N) {
            s = s.with(RepCell::N);
        }
        Some(s)
    }

    /// The set transposed across the main diagonal: `W ↔ N`, `NW ↔ NW`.
    ///
    /// Transposition swaps rows and columns of the table; it maps the
    /// Vertical pattern onto the Horizontal pattern. `NE = (i-1, j+1)`
    /// transposes to `(i+1, j-1) = SW`, which is outside the
    /// representative set, so sets containing `NE` cannot be transposed.
    pub fn transposed(self) -> Option<Self> {
        if self.contains(RepCell::Ne) {
            return None;
        }
        let mut s = ContributingSet::EMPTY;
        if self.contains(RepCell::W) {
            s = s.with(RepCell::N);
        }
        if self.contains(RepCell::N) {
            s = s.with(RepCell::W);
        }
        if self.contains(RepCell::Nw) {
            s = s.with(RepCell::Nw);
        }
        Some(s)
    }
}

impl fmt::Debug for ContributingSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContributingSet{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ContributingSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<RepCell> for ContributingSet {
    fn from_iter<T: IntoIterator<Item = RepCell>>(iter: T) -> Self {
        let mut s = ContributingSet::EMPTY;
        for c in iter {
            s = s.with(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_match_compass_names() {
        assert_eq!(RepCell::W.offset(), (0, -1));
        assert_eq!(RepCell::Nw.offset(), (-1, -1));
        assert_eq!(RepCell::N.offset(), (-1, 0));
        assert_eq!(RepCell::Ne.offset(), (-1, 1));
    }

    #[test]
    fn opposite_directions_are_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (a, b) = d.offset();
            let (c, e) = d.opposite().offset();
            assert_eq!((a, b), (-c, -e));
        }
    }

    #[test]
    fn conflict_iff_opposite() {
        for a in Direction::ALL {
            for b in Direction::ALL {
                assert_eq!(a.conflicts_with(b), b == a.opposite(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn representative_set_is_pairwise_non_conflicting() {
        for a in RepCell::ALL {
            for b in RepCell::ALL {
                if a != b {
                    assert!(!a.direction().conflicts_with(b.direction()), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn representative_set_is_maximal() {
        // Adding any non-representative neighbour conflicts with a member.
        for d in Direction::ALL {
            let is_rep = RepCell::ALL.iter().any(|r| r.direction() == d);
            if is_rep {
                continue;
            }
            let conflicts = RepCell::ALL.iter().any(|r| d.conflicts_with(r.direction()));
            assert!(conflicts, "{d} should conflict with a representative cell");
        }
    }

    #[test]
    fn eight_representative_sets_exist() {
        // Paper Fig 1(b): there are exactly 8 maximal non-conflicting
        // 4-subsets of the 8 neighbours. A 4-subset is non-conflicting iff
        // it picks exactly one from each of the 4 opposite pairs.
        let mut count = 0;
        for mask in 0u16..256 {
            let chosen: Vec<Direction> = Direction::ALL
                .into_iter()
                .enumerate()
                .filter(|(k, _)| mask & (1 << k) != 0)
                .map(|(_, d)| d)
                .collect();
            if chosen.len() != 4 {
                continue;
            }
            let ok = chosen
                .iter()
                .all(|a| chosen.iter().all(|b| a == b || !a.conflicts_with(*b)));
            if ok {
                count += 1;
            }
        }
        // One binary choice per opposite pair: 2^4 = 16 non-conflicting
        // 4-subsets in total. The paper's "8 representative sets" (Fig 1b)
        // are the contiguous arcs of the neighbour ring, pinned below.
        assert_eq!(count, 16);
        assert_eq!(contiguous_arcs(), 8);
    }

    /// Counts 4-subsets forming a contiguous arc of the neighbour ring —
    /// the paper's eight representative sets.
    fn contiguous_arcs() -> usize {
        // Ring order around the cell.
        let ring = [
            Direction::W,
            Direction::Nw,
            Direction::N,
            Direction::Ne,
            Direction::E,
            Direction::Se,
            Direction::S,
            Direction::Sw,
        ];
        let mut count = 0;
        for start in 0..8 {
            let arc: Vec<Direction> = (0..4).map(|k| ring[(start + k) % 8]).collect();
            let ok = arc
                .iter()
                .all(|a| arc.iter().all(|b| a == b || !a.conflicts_with(*b)));
            if ok {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn set_membership_roundtrip() {
        for bits in 0u8..=15 {
            let s = ContributingSet::from_bits(bits).unwrap();
            assert_eq!(s.bits(), bits);
            let members: Vec<_> = s.iter().collect();
            assert_eq!(members.len(), s.len());
            let rebuilt: ContributingSet = members.into_iter().collect();
            assert_eq!(rebuilt, s);
        }
        assert!(ContributingSet::from_bits(16).is_none());
    }

    #[test]
    fn with_and_without_are_inverse() {
        for c in RepCell::ALL {
            let s = ContributingSet::EMPTY.with(c);
            assert!(s.contains(c));
            assert_eq!(s.without(c), ContributingSet::EMPTY);
            assert_eq!(
                ContributingSet::FULL.without(c).with(c),
                ContributingSet::FULL
            );
        }
    }

    #[test]
    fn table_one_enumerates_fifteen_unique_rows() {
        let rows: Vec<_> = ContributingSet::table_one_rows().collect();
        assert_eq!(rows.len(), 15);
        for (a, row) in rows.iter().enumerate() {
            assert!(!row.is_empty());
            for (b, other) in rows.iter().enumerate() {
                if a != b {
                    assert_ne!(row, other);
                }
            }
        }
        // First row is NE-only, last is the full set (paper order).
        assert_eq!(rows[0], ContributingSet::new(&[RepCell::Ne]));
        assert_eq!(rows[14], ContributingSet::FULL);
    }

    #[test]
    fn mirroring_swaps_nw_and_ne() {
        let s = ContributingSet::new(&[RepCell::Ne]);
        assert_eq!(s.mirrored(), Some(ContributingSet::new(&[RepCell::Nw])));
        let s = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
        assert_eq!(
            s.mirrored(),
            Some(ContributingSet::new(&[RepCell::Ne, RepCell::N]))
        );
        assert_eq!(ContributingSet::new(&[RepCell::W]).mirrored(), None);
    }

    #[test]
    fn mirroring_is_involutive_where_defined() {
        for s in ContributingSet::table_one_rows() {
            if let Some(m) = s.mirrored() {
                assert_eq!(m.mirrored(), Some(s));
            }
        }
    }

    #[test]
    fn transpose_swaps_w_and_n() {
        let s = ContributingSet::new(&[RepCell::W]);
        assert_eq!(s.transposed(), Some(ContributingSet::new(&[RepCell::N])));
        let s = ContributingSet::new(&[RepCell::W, RepCell::Nw]);
        assert_eq!(
            s.transposed(),
            Some(ContributingSet::new(&[RepCell::N, RepCell::Nw]))
        );
        assert_eq!(ContributingSet::new(&[RepCell::Ne]).transposed(), None);
    }

    #[test]
    fn transpose_is_involutive_where_defined() {
        for s in ContributingSet::table_one_rows() {
            if let Some(t) = s.transposed() {
                assert_eq!(t.transposed(), Some(s));
            }
        }
    }

    #[test]
    fn source_positions_respect_bounds() {
        // (0,0) has no representative sources at all.
        for c in RepCell::ALL {
            assert_eq!(c.source(0, 0, 4, 4), None);
        }
        // Interior cell sees all four.
        for c in RepCell::ALL {
            assert!(c.source(2, 2, 4, 4).is_some());
        }
        // NE of a cell in the last column is out of bounds.
        assert_eq!(RepCell::Ne.source(2, 3, 4, 4), None);
        assert_eq!(RepCell::Nw.source(2, 0, 4, 4), None);
        assert_eq!(RepCell::W.source(2, 0, 4, 4), None);
        // Values themselves.
        assert_eq!(RepCell::W.source(2, 2, 4, 4), Some((2, 1)));
        assert_eq!(RepCell::Nw.source(2, 2, 4, 4), Some((1, 1)));
        assert_eq!(RepCell::N.source(2, 2, 4, 4), Some((1, 2)));
        assert_eq!(RepCell::Ne.source(2, 2, 4, 4), Some((1, 3)));
    }

    #[test]
    fn display_formats() {
        let s = ContributingSet::new(&[RepCell::W, RepCell::Ne]);
        assert_eq!(format!("{s}"), "{W,NE}");
        assert_eq!(format!("{s:?}"), "ContributingSet{W, NE}");
    }
}
