//! Multi-accelerator schedules — the paper's §VII outlook ("how does a
//! heterogeneous approach impact the implementation if the system has
//! some other accelerators like Intel Xeon-Phi") made concrete.
//!
//! The two-device column-band partition of [`crate::schedule`]
//! generalizes cleanly: with `k` devices, device 0 (the CPU) owns the
//! leftmost band, each accelerator the next band, and the rightmost
//! device the remainder. Because every representative-cell dependency
//! reaches at most one column left or right, boundary traffic only ever
//! crosses between *adjacent* bands — the per-wave transfer volume stays
//! O(k), and low-work phases still collapse onto the CPU.

use crate::cell::ContributingSet;
use crate::error::{Error, Result};
use crate::pattern::{Pattern, ProfileShape};
use crate::schedule::{compatible, max_wave_delta, PhaseKind};
use crate::wavefront::{self, Dims};
use std::ops::Range;

/// Identifies one of the `k` devices: 0 is the CPU, 1.. are
/// accelerators ordered left to right across the table.
pub type DeviceId = usize;

/// A directed boundary copy between two devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiTransfer {
    /// Producing device.
    pub from: DeviceId,
    /// Consuming device.
    pub to: DeviceId,
    /// Cells to move (deduplicated, canonical order).
    pub cells: Vec<(usize, usize)>,
}

/// A `k`-way heterogeneous schedule over column bands.
#[derive(Debug, Clone)]
pub struct MultiPlan {
    pattern: Pattern,
    set: ContributingSet,
    dims: Dims,
    t_switch: usize,
    /// Ascending column boundaries; device `d` owns columns
    /// `boundaries[d-1] .. boundaries[d]` (with implicit 0 and cols at
    /// the ends). `boundaries.len() + 1` devices.
    boundaries: Vec<usize>,
    num_waves: usize,
}

impl MultiPlan {
    /// Builds a plan giving device 0 the columns left of
    /// `boundaries[0]`, device 1 the next band, and so on; the last
    /// device owns the rest. `boundaries` must be non-decreasing and
    /// within the column count.
    pub fn new(
        pattern: Pattern,
        set: ContributingSet,
        dims: Dims,
        t_switch: usize,
        boundaries: Vec<usize>,
    ) -> Result<MultiPlan> {
        if set.is_empty() {
            return Err(Error::EmptyContributingSet);
        }
        if !pattern.is_canonical() {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: "not a canonical execution pattern".into(),
            });
        }
        if !compatible(pattern, set) {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: format!("contributing set {set} is incompatible with this pattern"),
            });
        }
        if boundaries.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: "band boundaries must be non-decreasing".into(),
            });
        }
        if boundaries.last().is_some_and(|&b| b > dims.cols) {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: format!("band boundary beyond the {} columns", dims.cols),
            });
        }
        let num_waves = pattern.num_waves(dims.rows, dims.cols);
        let max_switch = crate::schedule::max_t_switch(pattern, dims);
        if t_switch > max_switch {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: format!("t_switch = {t_switch} exceeds the legal maximum {max_switch}"),
            });
        }
        Ok(MultiPlan {
            pattern,
            set,
            dims,
            t_switch,
            boundaries,
            num_waves,
        })
    }

    /// Number of devices (CPU + accelerators).
    pub fn devices(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The executed pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The contributing set.
    pub fn set(&self) -> ContributingSet {
        self.set
    }

    /// Table dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Total waves.
    pub fn num_waves(&self) -> usize {
        self.num_waves
    }

    /// Phase of wave `w` (CPU-only at the low-work ramps, shared
    /// otherwise), mirroring the two-device schedule.
    pub fn phase_of(&self, w: usize) -> PhaseKind {
        debug_assert!(w < self.num_waves);
        match self.pattern.profile_shape() {
            ProfileShape::RampUpDown => {
                if w < self.t_switch || w >= self.num_waves - self.t_switch {
                    PhaseKind::CpuOnly
                } else {
                    PhaseKind::Shared
                }
            }
            ProfileShape::Constant => PhaseKind::Shared,
            ProfileShape::Decreasing => {
                if w >= self.num_waves - self.t_switch {
                    PhaseKind::CpuOnly
                } else {
                    PhaseKind::Shared
                }
            }
        }
    }

    /// Device owning cell `(i, j)`.
    pub fn owner(&self, i: usize, j: usize) -> DeviceId {
        let w = wavefront::wave_of(self.pattern, self.dims, i, j);
        if self.phase_of(w) == PhaseKind::CpuOnly {
            return 0;
        }
        self.band_of(j)
    }

    /// Device owning column `j` in shared waves.
    fn band_of(&self, j: usize) -> DeviceId {
        match self.boundaries.binary_search(&j) {
            // Boundaries are exclusive upper bounds: column == boundary
            // belongs to the next device (and ties on equal boundaries
            // skip empty bands).
            Ok(mut d) => {
                while d < self.boundaries.len() && self.boundaries[d] == j {
                    d += 1;
                }
                d
            }
            Err(d) => d,
        }
    }

    /// Per-device position ranges of wave `w` (contiguous prefixes of
    /// the canonical order, one per device, possibly empty).
    pub fn assignment(&self, w: usize) -> Vec<Range<usize>> {
        let len = self.pattern.wave_len(self.dims.rows, self.dims.cols, w);
        let k = self.devices();
        if self.phase_of(w) == PhaseKind::CpuOnly {
            // The CPU takes the whole wave; accelerators get empty
            // ranges anchored at the end so the ranges still tile.
            let mut v = vec![len..len; k];
            v[0] = 0..len;
            return v;
        }
        // Count cells per band by walking boundaries through the wave's
        // column range; positions are ordered by column, so each band is
        // a contiguous position range.
        let mut counts = vec![0usize; k];
        for (i, j) in wavefront::wave_cells(self.pattern, self.dims, w) {
            let _ = i;
            counts[self.band_of(j)] += 1;
        }
        let mut out = Vec::with_capacity(k);
        let mut start = 0;
        for c in counts {
            out.push(start..start + c);
            start += c;
        }
        debug_assert_eq!(start, len);
        out
    }

    /// Boundary transfers required before computing wave `w`: every
    /// dependency of a wave-`w` cell owned by a different device,
    /// grouped by (producer, consumer). Deduplicated.
    pub fn transfers(&self, w: usize) -> Vec<MultiTransfer> {
        type PairBuckets = Vec<((DeviceId, DeviceId), Vec<(usize, usize)>)>;
        let delta = max_wave_delta(self.pattern, self.set);
        let phase = self.phase_of(w);
        let near_edge = (w.saturating_sub(delta)..w).any(|p| self.phase_of(p) != phase);
        let mut pairs: PairBuckets = Vec::new();
        let mut push = |from: DeviceId, to: DeviceId, cell: (usize, usize)| {
            if let Some(entry) = pairs.iter_mut().find(|(k, _)| *k == (from, to)) {
                entry.1.push(cell);
            } else {
                pairs.push(((from, to), vec![cell]));
            }
        };
        // Steady-state shared waves: only cells within one column of a
        // band boundary can import. Near phase edges (or in CPU-only
        // waves near edges), scan everything.
        let scan_all = near_edge || phase == PhaseKind::CpuOnly;
        for (i, j) in wavefront::wave_cells(self.pattern, self.dims, w) {
            if !scan_all && !self.near_boundary(j) {
                continue;
            }
            let reader = self.owner(i, j);
            for dep in self.set.iter() {
                if let Some((si, sj)) = dep.source(i, j, self.dims.rows, self.dims.cols) {
                    let producer = self.owner(si, sj);
                    if producer != reader {
                        push(producer, reader, (si, sj));
                    }
                }
            }
        }
        pairs
            .into_iter()
            .map(|((from, to), mut cells)| {
                cells.sort_unstable();
                cells.dedup();
                MultiTransfer { from, to, cells }
            })
            .collect()
    }

    /// Is column `j` within one column of a band boundary?
    fn near_boundary(&self, j: usize) -> bool {
        self.boundaries.iter().any(|&b| j + 1 >= b && j <= b + 1)
    }

    /// Cells per device over the whole plan.
    pub fn cell_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.devices()];
        for w in 0..self.num_waves {
            for (d, r) in self.assignment(w).into_iter().enumerate() {
                counts[d] += r.len();
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::RepCell;
    use crate::cell::RepCell::{Ne, Nw, N, W};

    fn set(cells: &[RepCell]) -> ContributingSet {
        ContributingSet::new(cells)
    }

    fn plan3(
        pattern: Pattern,
        s: &[RepCell],
        dims: (usize, usize),
        t_switch: usize,
        boundaries: &[usize],
    ) -> MultiPlan {
        MultiPlan::new(
            pattern,
            set(s),
            Dims::new(dims.0, dims.1),
            t_switch,
            boundaries.to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn two_boundaries_make_three_devices() {
        let p = plan3(Pattern::Horizontal, &[Nw, N], (8, 12), 0, &[3, 7]);
        assert_eq!(p.devices(), 3);
        assert_eq!(p.owner(1, 0), 0);
        assert_eq!(p.owner(1, 3), 1);
        assert_eq!(p.owner(1, 6), 1);
        assert_eq!(p.owner(1, 7), 2);
        assert_eq!(p.owner(1, 11), 2);
    }

    #[test]
    fn empty_boundaries_is_single_device() {
        let p = plan3(Pattern::Horizontal, &[N], (4, 4), 0, &[]);
        assert_eq!(p.devices(), 1);
        for w in 0..4 {
            let a = p.assignment(w);
            assert_eq!(a.len(), 1);
            assert_eq!(a[0], 0..4);
        }
        assert!(p.transfers(2).is_empty());
    }

    #[test]
    fn degenerate_two_device_plan_matches_schedule_plan() {
        // A MultiPlan with one boundary must split exactly like the
        // two-device Plan with t_share = boundary.
        use crate::schedule::{Plan, ScheduleParams};
        for (pattern, s, t_switch) in [
            (Pattern::AntiDiagonal, &[W, Nw, N][..], 3),
            (Pattern::Horizontal, &[Nw, N, Ne][..], 0),
            (Pattern::KnightMove, &[W, Ne][..], 4),
        ] {
            let dims = Dims::new(9, 11);
            let t_share = 4;
            let multi = MultiPlan::new(pattern, set(s), dims, t_switch, vec![t_share]).unwrap();
            let two = Plan::new(
                pattern,
                set(s),
                dims,
                ScheduleParams::new(t_switch, t_share),
            )
            .unwrap();
            for w in 0..two.num_waves() {
                let m = multi.assignment(w);
                let t = two.assignment(w);
                assert_eq!(m[0], t.cpu, "{pattern} wave {w}");
                assert_eq!(m[1], t.gpu, "{pattern} wave {w}");
                // Transfers agree modulo grouping.
                let mt = multi.transfers(w);
                let tt = two.transfers(w);
                let m_to_1: Vec<_> = mt
                    .iter()
                    .filter(|x| x.from == 0 && x.to == 1)
                    .flat_map(|x| x.cells.clone())
                    .collect();
                let m_to_0: Vec<_> = mt
                    .iter()
                    .filter(|x| x.from == 1 && x.to == 0)
                    .flat_map(|x| x.cells.clone())
                    .collect();
                assert_eq!(m_to_1, tt.to_gpu, "{pattern} wave {w}");
                assert_eq!(m_to_0, tt.to_cpu, "{pattern} wave {w}");
            }
        }
    }

    #[test]
    fn assignments_tile_every_wave() {
        for boundaries in [&[][..], &[2][..], &[2, 5][..], &[2, 5, 9][..], &[0, 12][..]] {
            let p = plan3(Pattern::AntiDiagonal, &[W, Nw, N], (10, 12), 3, boundaries);
            for w in 0..p.num_waves() {
                let a = p.assignment(w);
                let len = Pattern::AntiDiagonal.wave_len(10, 12, w);
                let mut next = 0;
                for r in &a {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len, "boundaries {boundaries:?} wave {w}");
            }
            let counts = p.cell_counts();
            assert_eq!(counts.iter().sum::<usize>(), 120);
        }
    }

    /// THE correctness property, k-way: every cross-device dependency is
    /// listed in the consumer's wave transfers.
    #[test]
    fn transfers_cover_all_cross_device_dependencies() {
        for (pattern, s, t_switch) in [
            (Pattern::AntiDiagonal, &[W, Nw, N][..], 2),
            (Pattern::Horizontal, &[Nw, N, Ne][..], 0),
            (Pattern::Horizontal, &[Nw][..], 0),
            (Pattern::KnightMove, &[W, Nw, N, Ne][..], 3),
        ] {
            for boundaries in [&[3][..], &[2, 6][..], &[1, 4, 8][..]] {
                let dims = Dims::new(8, 10);
                let p =
                    MultiPlan::new(pattern, set(s), dims, t_switch, boundaries.to_vec()).unwrap();
                for w in 0..p.num_waves() {
                    let transfers = p.transfers(w);
                    for (i, j) in wavefront::wave_cells(pattern, dims, w) {
                        let reader = p.owner(i, j);
                        for dep in set(s).iter() {
                            if let Some(src) = dep.source(i, j, 8, 10) {
                                let producer = p.owner(src.0, src.1);
                                if producer != reader {
                                    let found = transfers.iter().any(|t| {
                                        t.from == producer
                                            && t.to == reader
                                            && t.cells.contains(&src)
                                    });
                                    assert!(
                                        found,
                                        "{pattern} {boundaries:?} wave {w}: ({i},{j}) \
                                         missing {src:?} from d{producer} to d{reader}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Boundary traffic only crosses adjacent bands in steady state.
    #[test]
    fn steady_state_transfers_are_adjacent_and_small() {
        let p = plan3(Pattern::Horizontal, &[Nw, N, Ne], (32, 32), 0, &[8, 16, 24]);
        for w in 2..32 {
            for t in p.transfers(w) {
                assert_eq!(
                    t.from.abs_diff(t.to),
                    1,
                    "wave {w}: non-adjacent transfer {t:?}"
                );
                assert!(t.cells.len() <= 2, "wave {w}: {t:?}");
            }
        }
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let dims = Dims::new(4, 4);
        assert!(MultiPlan::new(
            Pattern::Horizontal,
            ContributingSet::EMPTY,
            dims,
            0,
            vec![2]
        )
        .is_err());
        assert!(MultiPlan::new(Pattern::Vertical, set(&[W]), dims, 0, vec![2]).is_err());
        assert!(
            MultiPlan::new(Pattern::Horizontal, set(&[N]), dims, 0, vec![3, 2]).is_err(),
            "decreasing boundaries"
        );
        assert!(
            MultiPlan::new(Pattern::Horizontal, set(&[N]), dims, 0, vec![5]).is_err(),
            "boundary beyond cols"
        );
        assert!(
            MultiPlan::new(Pattern::Horizontal, set(&[N]), dims, 1, vec![2]).is_err(),
            "t_switch on constant profile"
        );
        assert!(
            MultiPlan::new(Pattern::AntiDiagonal, set(&[W, N]), dims, 4, vec![2]).is_err(),
            "t_switch too large"
        );
    }

    #[test]
    fn cpu_only_ramps_belong_to_device_zero() {
        let p = plan3(Pattern::AntiDiagonal, &[W, N], (8, 8), 3, &[2, 5]);
        for w in 0..3 {
            let a = p.assignment(w);
            assert_eq!(a[0].len(), Pattern::AntiDiagonal.wave_len(8, 8, w));
            assert!(a[1].is_empty() && a[2].is_empty());
        }
    }

    #[test]
    fn one_row_grid_splits_across_devices() {
        // The degenerate band case the serve path can hit with cached
        // parameters: a 1×n table where every wave holds one cell.
        // Assignments must still tile and every cell must have exactly
        // one owner.
        let p = plan3(Pattern::AntiDiagonal, &[W], (1, 12), 0, &[4, 8]);
        assert_eq!(p.num_waves(), 12);
        for w in 0..12 {
            let a = p.assignment(w);
            let total: usize = a.iter().map(|r| r.len()).sum();
            assert_eq!(total, 1, "wave {w} holds exactly one cell");
        }
        assert_eq!(p.cell_counts(), vec![4, 4, 4]);
        // Owners follow the bands left to right.
        assert_eq!(p.owner(0, 0), 0);
        assert_eq!(p.owner(0, 4), 1);
        assert_eq!(p.owner(0, 11), 2);
    }

    #[test]
    fn width_one_bands_stay_legal() {
        // Boundaries [1, 2]: devices 0 and 1 each own a single column.
        let p = plan3(Pattern::AntiDiagonal, &[W, Nw, N], (6, 8), 0, &[1, 2]);
        assert_eq!(p.devices(), 3);
        for i in 0..6 {
            assert_eq!(p.owner(i, 0), 0);
            assert_eq!(p.owner(i, 1), 1);
            for j in 2..8 {
                assert_eq!(p.owner(i, j), 2);
            }
        }
        // Every wave's ranges tile the wave and every transfer moves
        // between adjacent devices only.
        for w in 0..p.num_waves() {
            let a = p.assignment(w);
            let len = Pattern::AntiDiagonal.wave_len(6, 8, w);
            assert_eq!(a.iter().map(|r| r.len()).sum::<usize>(), len);
            for t in p.transfers(w) {
                assert!(t.from.abs_diff(t.to) == 1, "wave {w}: {t:?}");
            }
        }
    }

    #[test]
    fn equal_boundaries_make_an_empty_band() {
        // A zero-width band (equal boundaries) is legal: the middle
        // device simply never owns a cell, which is what the fleet's
        // even split produces when devices outnumber columns.
        let p = plan3(Pattern::Horizontal, &[Nw, N], (4, 2), 0, &[1, 1]);
        assert_eq!(p.devices(), 3);
        for i in 0..4 {
            assert_eq!(p.owner(i, 0), 0);
            assert_eq!(
                p.owner(i, 1),
                2,
                "column at the tied boundary skips the empty band"
            );
        }
        assert_eq!(p.cell_counts(), vec![4, 0, 4]);
    }
}
