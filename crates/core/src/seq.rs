//! Sequential bottom-up solvers — the correctness oracle.
//!
//! Two fill orders are provided: plain row-major (the textbook loop — any
//! representative-set dependency precedes its reader in row-major order)
//! and pattern wave order (the order the parallel engines use). Both must
//! produce identical tables; the test suites of every other module lean on
//! this.

use crate::error::{Error, Result};
use crate::grid::{Grid, LayoutKind};
use crate::kernel::{Kernel, Neighbors};
use crate::pattern::{classify, Pattern};
use crate::wavefront;
#[cfg(test)]
use crate::wavefront::Dims;

/// Gathers the visible neighbours of `(i, j)` for `kernel` from a
/// partially filled grid: directions outside the contributing set or
/// outside the table are `None`.
pub fn gather_neighbors<K: Kernel>(
    kernel: &K,
    grid: &Grid<K::Cell>,
    i: usize,
    j: usize,
) -> Neighbors<K::Cell> {
    let set = kernel.contributing_set();
    let dims = kernel.dims();
    let mut nbrs = Neighbors::empty();
    for cell in set.iter() {
        if let Some((si, sj)) = cell.source(i, j, dims.rows, dims.cols) {
            nbrs.set(cell, grid.get(si, sj));
        }
    }
    nbrs
}

/// Fills the table in row-major order. The reference implementation all
/// parallel and heterogeneous paths are validated against.
pub fn solve_row_major<K: Kernel>(kernel: &K) -> Result<Grid<K::Cell>> {
    if kernel.contributing_set().is_empty() {
        return Err(Error::EmptyContributingSet);
    }
    let dims = kernel.dims();
    let mut grid = Grid::new(LayoutKind::RowMajor, dims);
    for i in 0..dims.rows {
        for j in 0..dims.cols {
            let nbrs = gather_neighbors(kernel, &grid, i, j);
            let v = kernel.compute(i, j, &nbrs);
            grid.set(i, j, v);
        }
    }
    Ok(grid)
}

/// Fills the table sequentially but in the wave order of the kernel's
/// classified pattern, using the given layout. Exercises exactly the
/// traversal the parallel engines use, minus the parallelism.
pub fn solve_wavefront<K: Kernel>(kernel: &K, layout: LayoutKind) -> Result<Grid<K::Cell>> {
    let pattern = classify(kernel.contributing_set()).ok_or(Error::EmptyContributingSet)?;
    solve_wavefront_as(kernel, pattern, layout)
}

/// Like [`solve_wavefront`] but with an explicit pattern — used to run a
/// problem under a *compatible but different* pattern, e.g. solving an
/// Inverted-L problem with the Horizontal schedule (§V-B).
///
/// The caller is responsible for pattern compatibility (every declared
/// dependency must land in an earlier wave); all Table-I sets are
/// compatible with their own pattern, and `{NW}` / `{NE}` are additionally
/// compatible with Horizontal.
pub fn solve_wavefront_as<K: Kernel>(
    kernel: &K,
    pattern: Pattern,
    layout: LayoutKind,
) -> Result<Grid<K::Cell>> {
    if kernel.contributing_set().is_empty() {
        return Err(Error::EmptyContributingSet);
    }
    let dims = kernel.dims();
    let mut grid = Grid::new(layout, dims);
    for (i, j) in wavefront::all_cells(pattern, dims) {
        let nbrs = gather_neighbors(kernel, &grid, i, j);
        let v = kernel.compute(i, j, &nbrs);
        grid.set(i, j, v);
    }
    Ok(grid)
}

/// Checks that a grid matches the row-major oracle for `kernel`,
/// returning the first mismatching coordinate if any.
pub fn first_mismatch<K: Kernel>(
    kernel: &K,
    grid: &Grid<K::Cell>,
) -> Result<Option<(usize, usize)>> {
    let oracle = solve_row_major(kernel)?;
    let dims = kernel.dims();
    for i in 0..dims.rows {
        for j in 0..dims.cols {
            if oracle.get(i, j) != grid.get(i, j) {
                return Ok(Some((i, j)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{ContributingSet, RepCell};
    use crate::kernel::ClosureKernel;

    /// A generic "sum of visible neighbours plus position" kernel usable
    /// with any contributing set — its value at a cell depends on every
    /// declared dependency, so ordering bugs change outputs.
    fn sum_kernel(
        dims: Dims,
        set: ContributingSet,
    ) -> ClosureKernel<u64, impl Fn(usize, usize, &Neighbors<u64>) -> u64 + Sync> {
        ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
            let mut acc = (i * 31 + j * 17 + 1) as u64;
            for c in RepCell::ALL {
                if let Some(v) = n.get(c) {
                    acc = acc.wrapping_mul(31).wrapping_add(*v);
                }
            }
            acc
        })
    }

    #[test]
    fn empty_set_is_rejected() {
        let k = ClosureKernel::new(
            Dims::new(2, 2),
            ContributingSet::EMPTY,
            |_, _, _: &Neighbors<u64>| 0u64,
        );
        assert_eq!(
            solve_row_major(&k).unwrap_err(),
            Error::EmptyContributingSet
        );
        assert_eq!(
            solve_wavefront(&k, LayoutKind::RowMajor).unwrap_err(),
            Error::EmptyContributingSet
        );
    }

    /// Wave order must agree with row-major order for every Table-I set,
    /// every layout, and several table shapes.
    #[test]
    fn wavefront_matches_row_major_for_all_sets() {
        for set in ContributingSet::table_one_rows() {
            let pattern = classify(set).unwrap();
            for (r, c) in [(1, 1), (1, 8), (8, 1), (5, 7), (7, 5), (9, 9)] {
                let dims = Dims::new(r, c);
                let k = sum_kernel(dims, set);
                let oracle = solve_row_major(&k).unwrap();
                for layout in [
                    LayoutKind::RowMajor,
                    LayoutKind::WaveMajor(pattern),
                    LayoutKind::preferred_for(pattern),
                ] {
                    let got = solve_wavefront(&k, layout).unwrap();
                    assert_eq!(
                        got.to_row_major(),
                        oracle.to_row_major(),
                        "{set} ({pattern}) {r}x{c} {layout:?}"
                    );
                }
            }
        }
    }

    /// §V-B: `{NW}`-only problems may be run under the Horizontal pattern.
    #[test]
    fn inverted_l_problems_solve_under_horizontal() {
        let set = ContributingSet::new(&[RepCell::Nw]);
        let dims = Dims::new(6, 9);
        let k = sum_kernel(dims, set);
        let oracle = solve_row_major(&k).unwrap();
        let got = solve_wavefront_as(&k, Pattern::Horizontal, LayoutKind::RowMajor).unwrap();
        assert_eq!(got.to_row_major(), oracle.to_row_major());
    }

    /// `{NE}`-only problems likewise run under Horizontal.
    #[test]
    fn mirrored_inverted_l_problems_solve_under_horizontal() {
        let set = ContributingSet::new(&[RepCell::Ne]);
        let dims = Dims::new(6, 9);
        let k = sum_kernel(dims, set);
        let oracle = solve_row_major(&k).unwrap();
        let got = solve_wavefront_as(&k, Pattern::Horizontal, LayoutKind::RowMajor).unwrap();
        assert_eq!(got.to_row_major(), oracle.to_row_major());
    }

    #[test]
    fn first_mismatch_detects_corruption() {
        let set = ContributingSet::new(&[RepCell::N]);
        let k = sum_kernel(Dims::new(4, 4), set);
        let mut grid = solve_row_major(&k).unwrap();
        assert_eq!(first_mismatch(&k, &grid).unwrap(), None);
        let v = grid.get(2, 3);
        grid.set(2, 3, v.wrapping_add(1));
        assert_eq!(first_mismatch(&k, &grid).unwrap(), Some((2, 3)));
    }

    #[test]
    fn gather_respects_contributing_set() {
        let set = ContributingSet::new(&[RepCell::Nw, RepCell::Ne]);
        let k = sum_kernel(Dims::new(3, 3), set);
        let grid = solve_row_major(&k).unwrap();
        let nbrs = gather_neighbors(&k, &grid, 1, 1);
        assert!(nbrs.nw.is_some());
        assert!(nbrs.ne.is_some());
        assert!(nbrs.w.is_none(), "undeclared direction must stay hidden");
        assert!(nbrs.n.is_none());
    }

    #[test]
    fn gather_handles_boundaries() {
        let set = ContributingSet::FULL;
        let k = sum_kernel(Dims::new(3, 3), set);
        let grid = solve_row_major(&k).unwrap();
        let nbrs = gather_neighbors(&k, &grid, 0, 0);
        assert!(nbrs.is_empty());
        let nbrs = gather_neighbors(&k, &grid, 1, 0);
        assert!(nbrs.w.is_none());
        assert!(nbrs.nw.is_none());
        assert!(nbrs.n.is_some());
        assert!(nbrs.ne.is_some());
        let nbrs = gather_neighbors(&k, &grid, 1, 2);
        assert!(nbrs.ne.is_none(), "NE out of bounds in last column");
    }

    #[test]
    fn zero_sized_tables() {
        let set = ContributingSet::new(&[RepCell::N]);
        let k = sum_kernel(Dims::new(0, 5), set);
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(grid.as_slice().len(), 0);
        let grid = solve_wavefront(&k, LayoutKind::RowMajor).unwrap();
        assert_eq!(grid.as_slice().len(), 0);
    }
}
