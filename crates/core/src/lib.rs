//! # lddp-core
//!
//! A heterogeneous (CPU+GPU) execution framework for **Local Dependency
//! Dynamic Programming** (LDDP-Plus) problems, reproducing Kumar &
//! Kothapalli, *"A Novel Heterogeneous Framework for Local Dependency
//! Dynamic Programming Problems"* (2015).
//!
//! An LDDP-Plus problem fills a 2-D table bottom-up; each cell is a
//! function of a subset of its four *representative cells* (west,
//! north-west, north, north-east). The subset — the *contributing set* —
//! determines the dependence *pattern* (anti-diagonal, horizontal,
//! inverted-L, knight-move, plus two symmetric variants), and the pattern
//! determines how work is split between a multicore CPU and a many-core
//! GPU over the table's wavefronts.
//!
//! A user supplies only the update function `f` and the table
//! initialization (via the [`kernel::Kernel`] trait); the framework
//! classifies the problem ([`pattern::classify`], the paper's Table I),
//! picks a coalescing-friendly memory layout ([`grid::LayoutKind`]),
//! builds a phase/partition schedule ([`schedule`]) and tunes its
//! `t_switch`/`t_share` parameters empirically ([`tuner`]).
//!
//! This crate is device-agnostic: it defines the *what* (cell orders,
//! partitions, transfer obligations). The `hetero-sim` crate provides the
//! simulated CPU/GPU/PCIe devices that execute these schedules with a
//! virtual clock; `lddp-parallel` executes them for real on host threads.

#![warn(missing_docs)]

pub mod adaptive;
pub mod cell;
pub mod error;
pub mod framework;
pub mod grid;
pub mod kernel;
pub mod multi;
pub mod pattern;
pub mod rolling;
pub mod schedule;
pub mod seq;
pub mod tuner;
pub mod tuner_cache;
pub mod wavefront;

pub use cell::{ContributingSet, RepCell};
pub use error::{DegradeStep, Error, Result};
pub use framework::{choose_execution, Adapter, Classification, MirroredKernel, TransposedKernel};
pub use grid::{Grid, Layout, LayoutKind};
pub use kernel::{
    avx512_available, simd_available, simd_backend, ClosureKernel, ExecTier, Kernel, Neighbors,
    SimdWaveKernel, WaveKernel,
};
pub use pattern::{classify, Pattern, ProfileShape};
pub use tuner_cache::{TuneKey, TunedConfig, TunerCache};
pub use wavefront::Dims;
