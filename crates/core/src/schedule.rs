//! Heterogeneous execution schedules — §III and Table II of the paper.
//!
//! A [`Plan`] carves the wavefronts of a pattern into *phases* and, within
//! shared phases, divides each wave between the CPU and the GPU:
//!
//! - **Anti-diagonal** (3 phases): the first `t_switch` waves are CPU-only
//!   (low work), the middle waves are shared, the last `t_switch` waves
//!   are CPU-only again.
//! - **Horizontal** (1 phase): every wave is shared; parallelism is
//!   constant so there is no low-work region.
//! - **Inverted-L** (2 phases): shared first, CPU-only for the last
//!   `t_switch` shrinking shells.
//! - **Knight-move** (3 phases): like anti-diagonal.
//!
//! Within a shared wave the CPU takes the *first `t_share` column
//! positions* — a contiguous band along the table's left edge (the blue
//! regions of Figs 3–6). With the canonical increasing-`j` within-wave
//! order this band is a prefix of every wave, which yields exactly the
//! transfer obligations of Table II: dependencies pointing left (`W`,
//! `NW`) cross the boundary CPU→GPU, dependencies pointing right (`NE`)
//! cross GPU→CPU, and `N` never crosses.

use crate::cell::{ContributingSet, RepCell};
use crate::error::{Error, Result};
use crate::pattern::{Pattern, ProfileShape};
use crate::wavefront::{self, Dims};
use std::ops::Range;

/// Which processor computes a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// The multicore host.
    Cpu,
    /// The many-core accelerator.
    Gpu,
}

impl Device {
    /// The other device.
    pub fn other(self) -> Device {
        match self {
            Device::Cpu => Device::Gpu,
            Device::Gpu => Device::Cpu,
        }
    }
}

/// Direction of a host↔device copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyDir {
    /// Host to device (CPU → GPU).
    ToGpu,
    /// Device to host (GPU → CPU).
    ToCpu,
}

/// Per-iteration data-transfer requirement of a pattern/contributing-set
/// combination — the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferNeed {
    /// No boundary cells cross between devices (horizontal with `{N}`).
    None,
    /// Boundary cells cross in one direction only; the copy can be
    /// pipelined behind compute with asynchronous streams (§IV-C case 1).
    OneWay(CopyDir),
    /// Boundary cells cross both ways every iteration; the copies sit on
    /// the critical path and use pinned memory (§IV-C case 2).
    TwoWay,
}

impl TransferNeed {
    /// Collapses to the paper's Table II column ("1 way" / "2 way").
    pub fn ways(self) -> usize {
        match self {
            TransferNeed::None => 0,
            TransferNeed::OneWay(_) => 1,
            TransferNeed::TwoWay => 2,
        }
    }
}

/// Computes the Table II entry for a pattern and contributing set.
///
/// Accepts the two non-canonical patterns by reducing them (transpose /
/// mirror) first. For the canonical patterns the rule falls out of the
/// column-band partition: `W`/`NW` members push boundary values CPU→GPU,
/// `NE` members push GPU→CPU.
pub fn transfer_need(pattern: Pattern, set: ContributingSet) -> Result<TransferNeed> {
    if set.is_empty() {
        return Err(Error::EmptyContributingSet);
    }
    if !compatible(pattern, set) {
        return Err(Error::InvalidSchedule {
            pattern,
            reason: format!("contributing set {set} is incompatible with this pattern"),
        });
    }
    let (pattern, set) = match pattern {
        Pattern::Vertical => (
            Pattern::Horizontal,
            set.transposed().expect("vertical sets never contain NE"),
        ),
        Pattern::MirroredInvertedL => (
            Pattern::InvertedL,
            set.mirrored().expect("mirrored-L sets never contain W"),
        ),
        p => (p, set),
    };
    let leftward = set.contains(RepCell::W) || set.contains(RepCell::Nw);
    let rightward = set.contains(RepCell::Ne);
    Ok(match pattern {
        // Anti-diagonal sets ⊆ {W, NW, N} and always contain W.
        Pattern::AntiDiagonal => TransferNeed::OneWay(CopyDir::ToGpu),
        // Knight-move sets always contain both W and NE.
        Pattern::KnightMove => TransferNeed::TwoWay,
        // Inverted-L is {NW} only.
        Pattern::InvertedL => TransferNeed::OneWay(CopyDir::ToGpu),
        Pattern::Horizontal => match (leftward, rightward) {
            (true, true) => TransferNeed::TwoWay,
            (true, false) => TransferNeed::OneWay(CopyDir::ToGpu),
            (false, true) => TransferNeed::OneWay(CopyDir::ToCpu),
            (false, false) => TransferNeed::None,
        },
        Pattern::Vertical | Pattern::MirroredInvertedL => unreachable!("reduced above"),
    })
}

/// Whether `set` may legally be executed under `pattern`: every member
/// must land in a strictly earlier wave.
///
/// Each pattern admits:
/// - anti-diagonal: `⊆ {W, NW, N}`;
/// - horizontal: `⊆ {NW, N, NE}`;
/// - inverted-L: `⊆ {NW}`; mirrored inverted-L: `⊆ {NE}`;
/// - vertical: `⊆ {W, NW}`; knight-move: any subset.
pub fn compatible(pattern: Pattern, set: ContributingSet) -> bool {
    let allowed = match pattern {
        Pattern::AntiDiagonal => ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
        Pattern::Horizontal => ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne]),
        Pattern::InvertedL => ContributingSet::new(&[RepCell::Nw]),
        Pattern::MirroredInvertedL => ContributingSet::new(&[RepCell::Ne]),
        Pattern::Vertical => ContributingSet::new(&[RepCell::W, RepCell::Nw]),
        Pattern::KnightMove => ContributingSet::FULL,
    };
    set.iter().all(|c| allowed.contains(c))
}

/// Largest wave-index gap between a cell and any member of `set` under
/// `pattern` — how far back the dependency frontier reaches.
pub fn max_wave_delta(pattern: Pattern, set: ContributingSet) -> usize {
    set.iter()
        .map(|c| {
            let (di, dj) = c.offset();
            match pattern {
                Pattern::AntiDiagonal => (-(di + dj)) as usize,
                Pattern::Horizontal => (-di) as usize,
                Pattern::Vertical => (-dj) as usize,
                Pattern::KnightMove => (-(2 * di + dj)) as usize,
                // L-shells advance by exactly one per diagonal step.
                Pattern::InvertedL | Pattern::MirroredInvertedL => 1,
            }
        })
        .max()
        .unwrap_or(0)
}

/// Counts the cells of one horizontal-pattern wave whose dependencies
/// cross the device boundary under a *striped* (block-cyclic) column
/// partition with stripe width `stripe` — the obvious alternative to the
/// paper's contiguous band that load-balances better but transfers
/// catastrophically more.
///
/// A column `j` belongs to the CPU iff `(j / stripe)` is even. Every
/// stripe edge makes the adjacent columns exchange `NW`/`NE` values, so
/// the per-wave boundary traffic is `Θ(cols / stripe)` cells versus the
/// band partition's `O(1)`.
pub fn striped_crossings_per_wave(set: ContributingSet, cols: usize, stripe: usize) -> usize {
    assert!(stripe > 0, "stripe width must be positive");
    let nw = set.contains(RepCell::Nw);
    let ne = set.contains(RepCell::Ne);
    let owner = |j: usize| (j / stripe) % 2;
    let mut crossings = 0;
    for j in 0..cols {
        // Dependencies of a row-i cell at column j on row i-1.
        if nw && j > 0 && owner(j - 1) != owner(j) {
            crossings += 1;
        }
        if ne && j + 1 < cols && owner(j + 1) != owner(j) {
            crossings += 1;
        }
    }
    crossings
}

/// The tunable workload-division parameters of §III / §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleParams {
    /// Number of low-parallelism waves at each ramp the CPU runs alone.
    pub t_switch: usize,
    /// Width (in columns) of the band each shared wave gives the CPU.
    pub t_share: usize,
}

impl ScheduleParams {
    /// Convenience constructor.
    pub const fn new(t_switch: usize, t_share: usize) -> Self {
        ScheduleParams { t_switch, t_share }
    }

    /// The nearest parameters legal for `pattern` on a `dims` table:
    /// `t_switch` capped at [`max_t_switch`], `t_share` at the column
    /// count. Lets parameters tuned on one instance (say, a cached
    /// tuner result keyed by a dims *bucket*) be applied safely to a
    /// nearby instance of different exact size.
    pub fn clamped_for(self, pattern: Pattern, dims: Dims) -> ScheduleParams {
        ScheduleParams::new(
            self.t_switch.min(max_t_switch(pattern, dims)),
            self.t_share.min(dims.cols),
        )
    }
}

/// Largest `t_switch` [`Plan::new`] accepts for `pattern` on a `dims`
/// table: half the waves for ramp-up-down profiles (both ramps), all of
/// them for decreasing profiles, zero for constant ones.
pub fn max_t_switch(pattern: Pattern, dims: Dims) -> usize {
    let num_waves = pattern.num_waves(dims.rows, dims.cols);
    match pattern.profile_shape() {
        ProfileShape::RampUpDown => num_waves / 2,
        ProfileShape::Decreasing => num_waves,
        ProfileShape::Constant => 0,
    }
}

/// Kind of a schedule phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// The CPU processes every cell of the wave (low-work region).
    CpuOnly,
    /// The wave is split between CPU (left band) and GPU (rest).
    Shared,
}

/// A contiguous run of waves with the same [`PhaseKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase kind.
    pub kind: PhaseKind,
    /// Wave indices covered.
    pub waves: Range<usize>,
}

/// Cells crossing the device boundary before a wave may be computed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaveTransfers {
    /// CPU-computed cells the GPU must receive.
    pub to_gpu: Vec<(usize, usize)>,
    /// GPU-computed cells the CPU must receive.
    pub to_cpu: Vec<(usize, usize)>,
}

impl WaveTransfers {
    /// True when nothing crosses.
    pub fn is_empty(&self) -> bool {
        self.to_gpu.is_empty() && self.to_cpu.is_empty()
    }

    /// Total cells moved.
    pub fn len(&self) -> usize {
        self.to_gpu.len() + self.to_cpu.len()
    }
}

/// Work split of one wave: position ranges within the wave's canonical
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveAssignment {
    /// Wave index.
    pub wave: usize,
    /// Phase this wave belongs to.
    pub phase: PhaseKind,
    /// Positions computed by the CPU (always a prefix).
    pub cpu: Range<usize>,
    /// Positions computed by the GPU (always a suffix).
    pub gpu: Range<usize>,
}

impl WaveAssignment {
    /// Number of CPU cells.
    pub fn cpu_len(&self) -> usize {
        self.cpu.len()
    }

    /// Number of GPU cells.
    pub fn gpu_len(&self) -> usize {
        self.gpu.len()
    }
}

/// Aggregate statistics of a plan, from walking every wave.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanAudit {
    /// Total cells computed by the CPU.
    pub cpu_cells: usize,
    /// Total cells computed by the GPU.
    pub gpu_cells: usize,
    /// Total cells copied CPU→GPU.
    pub cells_to_gpu: usize,
    /// Total cells copied GPU→CPU.
    pub cells_to_cpu: usize,
    /// Largest single-wave transfer (either direction).
    pub max_wave_transfer: usize,
    /// Number of waves with a non-empty transfer.
    pub waves_with_transfers: usize,
}

/// Common interface of two-device wave schedules — implemented by the
/// static [`Plan`] and by the per-wave-variable
/// [`VariablePlan`](crate::adaptive::VariablePlan). Executors are
/// generic over this, so static tuning and dynamic balancing share one
/// execution path.
pub trait WaveSchedule {
    /// The canonical execution pattern.
    fn pattern(&self) -> Pattern;
    /// The contributing set scheduled for.
    fn set(&self) -> ContributingSet;
    /// Table dimensions.
    fn dims(&self) -> Dims;
    /// Total number of waves.
    fn num_waves(&self) -> usize;
    /// Phase kind of wave `w`.
    fn phase_of(&self, w: usize) -> PhaseKind;
    /// Work split of wave `w`.
    fn assignment(&self, w: usize) -> WaveAssignment;
    /// Boundary transfers due before wave `w`.
    fn transfers(&self, w: usize) -> WaveTransfers;
    /// The Table II transfer requirement of the schedule.
    fn transfer_need(&self) -> TransferNeed;
}

/// Number of cells of wave `w` with column `< t_share` — the CPU band
/// length of a shared wave, in O(1).
pub fn band_len(pattern: Pattern, dims: Dims, w: usize, ts: usize) -> usize {
    let len = pattern.wave_len(dims.rows, dims.cols, w);
    if ts == 0 || len == 0 {
        return 0;
    }
    let Dims { rows, cols } = dims;
    match pattern {
        Pattern::Horizontal => ts.min(cols),
        Pattern::AntiDiagonal => {
            let jlo = w.saturating_sub(rows - 1);
            let jhi = w.min(cols - 1);
            if ts <= jlo {
                0
            } else {
                (ts - 1).min(jhi) - jlo + 1
            }
        }
        Pattern::KnightMove => {
            // Columns present: jlo, jlo+2, …, jhi (fixed parity).
            let bound = w.saturating_sub(2 * (rows - 1));
            let jlo = if bound % 2 == w % 2 { bound } else { bound + 1 };
            let jhi = w.min(cols - 1);
            let jhi = if jhi % 2 == w % 2 { jhi } else { jhi - 1 };
            if ts <= jlo {
                0
            } else {
                ((ts - 1).min(jhi) - jlo) / 2 + 1
            }
        }
        Pattern::InvertedL => {
            let k = w;
            if ts <= k {
                0
            } else {
                // Column arm (all at j = k) plus row-arm cells with
                // j < t_share.
                (rows - k) + ts.min(cols).saturating_sub(k + 1)
            }
        }
        _ => unreachable!("schedules only hold canonical patterns"),
    }
}

/// A complete heterogeneous execution schedule for one problem instance.
#[derive(Debug, Clone)]
pub struct Plan {
    pattern: Pattern,
    set: ContributingSet,
    dims: Dims,
    params: ScheduleParams,
    transfer: TransferNeed,
    num_waves: usize,
}

impl Plan {
    /// Builds and validates a plan.
    ///
    /// ```
    /// use lddp_core::schedule::{Plan, ScheduleParams, TransferNeed};
    /// use lddp_core::cell::{ContributingSet, RepCell};
    /// use lddp_core::pattern::Pattern;
    /// use lddp_core::wavefront::Dims;
    ///
    /// // Levenshtein-style dependencies on a 64×64 table: 3-phase
    /// // anti-diagonal schedule with an 8-wave CPU ramp and a 16-column
    /// // CPU band.
    /// let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
    /// let plan = Plan::new(
    ///     Pattern::AntiDiagonal,
    ///     set,
    ///     Dims::new(64, 64),
    ///     ScheduleParams::new(8, 16),
    /// )
    /// .unwrap();
    /// assert_eq!(plan.num_waves(), 127);
    /// assert_eq!(plan.phases().len(), 3);
    /// assert_eq!(plan.transfer_need().ways(), 1); // Table II
    /// ```
    ///
    /// `pattern` must be one of the four canonical execution patterns
    /// (reduce Vertical / mirrored-Inverted-L problems with the framework
    /// adapters first), `set` must be compatible with it, `t_share` must
    /// not exceed the column count, and `t_switch` must leave at least
    /// zero shared waves (`2·t_switch ≤ waves` for ramp patterns,
    /// `t_switch ≤ waves` for inverted-L, `t_switch = 0` for horizontal).
    pub fn new(
        pattern: Pattern,
        set: ContributingSet,
        dims: Dims,
        params: ScheduleParams,
    ) -> Result<Plan> {
        if set.is_empty() {
            return Err(Error::EmptyContributingSet);
        }
        if !pattern.is_canonical() {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: "not a canonical execution pattern; apply a symmetry adapter".into(),
            });
        }
        if !compatible(pattern, set) {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: format!("contributing set {set} is incompatible with this pattern"),
            });
        }
        let num_waves = pattern.num_waves(dims.rows, dims.cols);
        match pattern.profile_shape() {
            ProfileShape::RampUpDown => {
                if 2 * params.t_switch > num_waves {
                    return Err(Error::InvalidSchedule {
                        pattern,
                        reason: format!(
                            "2·t_switch = {} exceeds the {} waves available",
                            2 * params.t_switch,
                            num_waves
                        ),
                    });
                }
            }
            ProfileShape::Decreasing => {
                if params.t_switch > num_waves {
                    return Err(Error::InvalidSchedule {
                        pattern,
                        reason: format!(
                            "t_switch = {} exceeds the {} waves available",
                            params.t_switch, num_waves
                        ),
                    });
                }
            }
            ProfileShape::Constant => {
                if params.t_switch != 0 {
                    return Err(Error::InvalidSchedule {
                        pattern,
                        reason: "the horizontal pattern has no low-work region; t_switch must be 0"
                            .into(),
                    });
                }
            }
        }
        if params.t_share > dims.cols {
            return Err(Error::InvalidSchedule {
                pattern,
                reason: format!(
                    "t_share = {} exceeds the {} columns available",
                    params.t_share, dims.cols
                ),
            });
        }
        let transfer = transfer_need(pattern, set)?;
        Ok(Plan {
            pattern,
            set,
            dims,
            params,
            transfer,
            num_waves,
        })
    }

    /// The canonical execution pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The contributing set the plan was built for.
    pub fn set(&self) -> ContributingSet {
        self.set
    }

    /// Table dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Tunable parameters.
    pub fn params(&self) -> ScheduleParams {
        self.params
    }

    /// The Table II transfer requirement.
    pub fn transfer_need(&self) -> TransferNeed {
        self.transfer
    }

    /// Total number of waves.
    pub fn num_waves(&self) -> usize {
        self.num_waves
    }

    /// The phase structure (Figs 3–6): contiguous spans of waves.
    pub fn phases(&self) -> Vec<PhaseSpan> {
        let t = self.params.t_switch;
        let n = self.num_waves;
        let mut spans = Vec::new();
        let mut push = |kind, waves: Range<usize>| {
            if !Range::is_empty(&waves) {
                spans.push(PhaseSpan { kind, waves });
            }
        };
        match self.pattern.profile_shape() {
            ProfileShape::RampUpDown => {
                push(PhaseKind::CpuOnly, 0..t);
                push(PhaseKind::Shared, t..n - t);
                push(PhaseKind::CpuOnly, n - t..n);
            }
            ProfileShape::Constant => push(PhaseKind::Shared, 0..n),
            ProfileShape::Decreasing => {
                push(PhaseKind::Shared, 0..n - t);
                push(PhaseKind::CpuOnly, n - t..n);
            }
        }
        spans
    }

    /// Phase kind of wave `w`.
    pub fn phase_of(&self, w: usize) -> PhaseKind {
        debug_assert!(w < self.num_waves);
        let t = self.params.t_switch;
        match self.pattern.profile_shape() {
            ProfileShape::RampUpDown => {
                if w < t || w >= self.num_waves - t {
                    PhaseKind::CpuOnly
                } else {
                    PhaseKind::Shared
                }
            }
            ProfileShape::Constant => PhaseKind::Shared,
            ProfileShape::Decreasing => {
                if w >= self.num_waves - t {
                    PhaseKind::CpuOnly
                } else {
                    PhaseKind::Shared
                }
            }
        }
    }

    /// Number of cells of wave `w` owned by the CPU: the whole wave in
    /// CPU-only phases, the cells with column `< t_share` otherwise.
    pub fn cpu_len(&self, w: usize) -> usize {
        if self.phase_of(w) == PhaseKind::CpuOnly {
            return self.pattern.wave_len(self.dims.rows, self.dims.cols, w);
        }
        band_len(self.pattern, self.dims, w, self.params.t_share)
    }

    /// The split of wave `w` as position ranges.
    pub fn assignment(&self, w: usize) -> WaveAssignment {
        let len = self.pattern.wave_len(self.dims.rows, self.dims.cols, w);
        let cpu = self.cpu_len(w);
        WaveAssignment {
            wave: w,
            phase: self.phase_of(w),
            cpu: 0..cpu,
            gpu: cpu..len,
        }
    }

    /// Iterates over all wave assignments.
    pub fn assignments(&self) -> impl Iterator<Item = WaveAssignment> + '_ {
        (0..self.num_waves).map(|w| self.assignment(w))
    }

    /// Device that computes cell `(i, j)`.
    pub fn owner(&self, i: usize, j: usize) -> Device {
        let w = wavefront::wave_of(self.pattern, self.dims, i, j);
        if self.phase_of(w) == PhaseKind::CpuOnly || j < self.params.t_share {
            // In shared waves the CPU band is exactly the columns left of
            // t_share (prefix positions under the canonical order).
            Device::Cpu
        } else {
            Device::Gpu
        }
    }

    /// The cells that must cross the device boundary before wave `w` can
    /// be computed: every dependency of a wave-`w` cell owned by the other
    /// device. Exact, deduplicated, in canonical order.
    pub fn transfers(&self, w: usize) -> WaveTransfers {
        let mut out = WaveTransfers::default();
        let assign = self.assignment(w);
        let delta = max_wave_delta(self.pattern, self.set);
        // Waves deep inside a phase only see imports at the band boundary;
        // waves whose dependency frontier reaches into a different phase
        // need a full scan (the bulk hand-off of Figs 3/5/6).
        let near_phase_edge =
            (w.saturating_sub(delta)..w).any(|p| self.phase_of(p) != assign.phase);

        if near_phase_edge {
            // Bulk hand-off: any cell of either side may import; scan the
            // whole wave. Phase-edge waves are O(t_switch-region) few.
            for pos in assign.cpu.clone() {
                let (i, j) = wavefront::cell_at(self.pattern, self.dims, w, pos);
                self.push_foreign_deps(i, j, Device::Cpu, &mut out);
            }
            for pos in assign.gpu.clone() {
                let (i, j) = wavefront::cell_at(self.pattern, self.dims, w, pos);
                self.push_foreign_deps(i, j, Device::Gpu, &mut out);
            }
        } else if assign.phase == PhaseKind::Shared {
            // Steady state: only cells hugging the column boundary can
            // import, because every dependency sits one column away at
            // most and ownership is decided by column. Under the
            // canonical order positions are non-decreasing in column, so
            // the candidates are a suffix of the CPU band (j ≥
            // t_share - 2) and a prefix of the GPU range (j ≤
            // t_share + 1) — O(1) cells per wave.
            for pos in assign.cpu.clone().rev() {
                let (i, j) = wavefront::cell_at(self.pattern, self.dims, w, pos);
                if j + 2 < self.params.t_share {
                    break;
                }
                self.push_foreign_deps(i, j, Device::Cpu, &mut out);
            }
            for pos in assign.gpu.clone() {
                let (i, j) = wavefront::cell_at(self.pattern, self.dims, w, pos);
                if j > self.params.t_share + 1 {
                    break;
                }
                self.push_foreign_deps(i, j, Device::Gpu, &mut out);
            }
        }
        // Steady CPU-only waves (deep inside a low-work phase) see only
        // CPU-owned dependencies: nothing to scan.
        out.to_gpu.sort_unstable();
        out.to_gpu.dedup();
        out.to_cpu.sort_unstable();
        out.to_cpu.dedup();
        out
    }

    /// Adds the dependencies of `(i, j)` owned by the other device to the
    /// matching transfer list.
    fn push_foreign_deps(&self, i: usize, j: usize, reader: Device, out: &mut WaveTransfers) {
        for dep in self.set.iter() {
            if let Some((si, sj)) = dep.source(i, j, self.dims.rows, self.dims.cols) {
                if self.owner(si, sj) != reader {
                    match reader {
                        Device::Cpu => out.to_cpu.push((si, sj)),
                        Device::Gpu => out.to_gpu.push((si, sj)),
                    }
                }
            }
        }
    }

    /// Walks every wave and tallies work and traffic.
    pub fn audit(&self) -> PlanAudit {
        let mut a = PlanAudit::default();
        for w in 0..self.num_waves {
            let assign = self.assignment(w);
            a.cpu_cells += assign.cpu_len();
            a.gpu_cells += assign.gpu_len();
            let t = self.transfers(w);
            a.cells_to_gpu += t.to_gpu.len();
            a.cells_to_cpu += t.to_cpu.len();
            a.max_wave_transfer = a.max_wave_transfer.max(t.len());
            if !t.is_empty() {
                a.waves_with_transfers += 1;
            }
        }
        a
    }
}

impl WaveSchedule for Plan {
    fn pattern(&self) -> Pattern {
        Plan::pattern(self)
    }

    fn set(&self) -> ContributingSet {
        Plan::set(self)
    }

    fn dims(&self) -> Dims {
        Plan::dims(self)
    }

    fn num_waves(&self) -> usize {
        Plan::num_waves(self)
    }

    fn phase_of(&self, w: usize) -> PhaseKind {
        Plan::phase_of(self, w)
    }

    fn assignment(&self, w: usize) -> WaveAssignment {
        Plan::assignment(self, w)
    }

    fn transfers(&self, w: usize) -> WaveTransfers {
        Plan::transfers(self, w)
    }

    fn transfer_need(&self) -> TransferNeed {
        Plan::transfer_need(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::RepCell::{Ne, Nw, N, W};
    use crate::pattern::classify;

    fn set(cells: &[RepCell]) -> ContributingSet {
        ContributingSet::new(cells)
    }

    fn plan(
        pattern: Pattern,
        s: &[RepCell],
        dims: (usize, usize),
        t_switch: usize,
        t_share: usize,
    ) -> Plan {
        Plan::new(
            pattern,
            set(s),
            Dims::new(dims.0, dims.1),
            ScheduleParams::new(t_switch, t_share),
        )
        .unwrap()
    }

    // ---- Table II -------------------------------------------------------

    /// Pins Table II of the paper.
    #[test]
    fn table_two_matches_paper() {
        // Anti-diagonal: 1 way.
        assert_eq!(
            transfer_need(Pattern::AntiDiagonal, set(&[W, Nw, N]))
                .unwrap()
                .ways(),
            1
        );
        assert_eq!(
            transfer_need(Pattern::AntiDiagonal, set(&[W, N]))
                .unwrap()
                .ways(),
            1
        );
        // Horizontal case 1: 1 way (or none for {N} alone).
        assert_eq!(
            transfer_need(Pattern::Horizontal, set(&[Nw, N])).unwrap(),
            TransferNeed::OneWay(CopyDir::ToGpu)
        );
        assert_eq!(
            transfer_need(Pattern::Horizontal, set(&[N, Ne])).unwrap(),
            TransferNeed::OneWay(CopyDir::ToCpu)
        );
        assert_eq!(
            transfer_need(Pattern::Horizontal, set(&[N])).unwrap(),
            TransferNeed::None
        );
        // Horizontal case 2: 2 way.
        assert_eq!(
            transfer_need(Pattern::Horizontal, set(&[Nw, N, Ne])).unwrap(),
            TransferNeed::TwoWay
        );
        assert_eq!(
            transfer_need(Pattern::Horizontal, set(&[Nw, Ne])).unwrap(),
            TransferNeed::TwoWay
        );
        // Inverted-L: 1 way.
        assert_eq!(
            transfer_need(Pattern::InvertedL, set(&[Nw])).unwrap(),
            TransferNeed::OneWay(CopyDir::ToGpu)
        );
        // Knight-move: 2 way, for every admissible classified set.
        for s in ContributingSet::table_one_rows() {
            if classify(s) == Some(Pattern::KnightMove) {
                assert_eq!(
                    transfer_need(Pattern::KnightMove, s).unwrap(),
                    TransferNeed::TwoWay
                );
            }
        }
    }

    /// Derives Table II from geometry: for every Table I row, collect the
    /// directions actually used by exact per-wave transfers and compare
    /// with the static classification.
    #[test]
    fn table_two_is_consistent_with_geometry() {
        for s in ContributingSet::table_one_rows() {
            let pattern = classify(s).unwrap();
            if !pattern.is_canonical() {
                continue; // adapters handle the symmetric two
            }
            let t_switch = if pattern.profile_shape() == ProfileShape::Constant {
                0
            } else {
                3
            };
            let p = Plan::new(
                pattern,
                s,
                Dims::new(12, 12),
                ScheduleParams::new(t_switch, 4),
            )
            .unwrap();
            let mut used_to_gpu = false;
            let mut used_to_cpu = false;
            for span in p.phases() {
                if span.kind != PhaseKind::Shared {
                    continue;
                }
                // Skip the bulk hand-off waves at phase edges: Table II
                // describes the steady-state per-iteration need.
                let delta = max_wave_delta(pattern, s);
                for w in span.waves.clone() {
                    if w < span.waves.start + delta {
                        continue;
                    }
                    let t = p.transfers(w);
                    used_to_gpu |= !t.to_gpu.is_empty();
                    used_to_cpu |= !t.to_cpu.is_empty();
                }
            }
            let expected = transfer_need(pattern, s).unwrap();
            let derived = match (used_to_gpu, used_to_cpu) {
                (false, false) => TransferNeed::None,
                (true, false) => TransferNeed::OneWay(CopyDir::ToGpu),
                (false, true) => TransferNeed::OneWay(CopyDir::ToCpu),
                (true, true) => TransferNeed::TwoWay,
            };
            assert_eq!(derived, expected, "{pattern} {s}");
        }
    }

    // ---- validation -----------------------------------------------------

    #[test]
    fn rejects_empty_set() {
        assert!(matches!(
            Plan::new(
                Pattern::Horizontal,
                ContributingSet::EMPTY,
                Dims::new(4, 4),
                ScheduleParams::default()
            ),
            Err(Error::EmptyContributingSet)
        ));
    }

    #[test]
    fn rejects_non_canonical_patterns() {
        for p in [Pattern::Vertical, Pattern::MirroredInvertedL] {
            let s = if p == Pattern::Vertical {
                set(&[W])
            } else {
                set(&[Ne])
            };
            assert!(matches!(
                Plan::new(p, s, Dims::new(4, 4), ScheduleParams::default()),
                Err(Error::InvalidSchedule { .. })
            ));
        }
    }

    #[test]
    fn rejects_incompatible_sets() {
        // NE cannot run under anti-diagonal.
        assert!(Plan::new(
            Pattern::AntiDiagonal,
            set(&[W, N, Ne]),
            Dims::new(4, 4),
            ScheduleParams::default()
        )
        .is_err());
        // W cannot run under horizontal.
        assert!(Plan::new(
            Pattern::Horizontal,
            set(&[W, N]),
            Dims::new(4, 4),
            ScheduleParams::default()
        )
        .is_err());
        // N cannot run under inverted-L.
        assert!(Plan::new(
            Pattern::InvertedL,
            set(&[Nw, N]),
            Dims::new(4, 4),
            ScheduleParams::default()
        )
        .is_err());
    }

    #[test]
    fn rejects_oversized_parameters() {
        // 2*t_switch beyond the wave count.
        assert!(Plan::new(
            Pattern::AntiDiagonal,
            set(&[W, N]),
            Dims::new(4, 4),
            ScheduleParams::new(4, 0)
        )
        .is_err());
        // t_switch on horizontal.
        assert!(Plan::new(
            Pattern::Horizontal,
            set(&[N]),
            Dims::new(4, 4),
            ScheduleParams::new(1, 0)
        )
        .is_err());
        // t_share beyond the columns.
        assert!(Plan::new(
            Pattern::Horizontal,
            set(&[N]),
            Dims::new(4, 4),
            ScheduleParams::new(0, 5)
        )
        .is_err());
    }

    #[test]
    fn knight_move_admits_every_set() {
        for s in ContributingSet::table_one_rows() {
            assert!(compatible(Pattern::KnightMove, s), "{s}");
        }
    }

    // ---- phases ----------------------------------------------------------

    #[test]
    fn anti_diagonal_three_phases() {
        let p = plan(Pattern::AntiDiagonal, &[W, Nw, N], (8, 8), 3, 2);
        assert_eq!(
            p.phases(),
            vec![
                PhaseSpan {
                    kind: PhaseKind::CpuOnly,
                    waves: 0..3
                },
                PhaseSpan {
                    kind: PhaseKind::Shared,
                    waves: 3..12
                },
                PhaseSpan {
                    kind: PhaseKind::CpuOnly,
                    waves: 12..15
                },
            ]
        );
    }

    #[test]
    fn horizontal_single_phase() {
        let p = plan(Pattern::Horizontal, &[Nw, N], (8, 8), 0, 2);
        assert_eq!(
            p.phases(),
            vec![PhaseSpan {
                kind: PhaseKind::Shared,
                waves: 0..8
            }]
        );
    }

    #[test]
    fn inverted_l_two_phases() {
        let p = plan(Pattern::InvertedL, &[Nw], (8, 8), 3, 2);
        assert_eq!(
            p.phases(),
            vec![
                PhaseSpan {
                    kind: PhaseKind::Shared,
                    waves: 0..5
                },
                PhaseSpan {
                    kind: PhaseKind::CpuOnly,
                    waves: 5..8
                },
            ]
        );
    }

    #[test]
    fn knight_move_three_phases() {
        let p = plan(Pattern::KnightMove, &[W, Ne], (6, 6), 4, 2);
        let spans = p.phases();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].kind, PhaseKind::CpuOnly);
        assert_eq!(spans[1].kind, PhaseKind::Shared);
        assert_eq!(spans[2].kind, PhaseKind::CpuOnly);
        assert_eq!(
            spans[0].waves.len() + spans[1].waves.len() + spans[2].waves.len(),
            16
        );
    }

    #[test]
    fn zero_t_switch_means_all_shared() {
        let p = plan(Pattern::AntiDiagonal, &[W, N], (6, 6), 0, 2);
        assert_eq!(p.phases().len(), 1);
        assert_eq!(p.phases()[0].kind, PhaseKind::Shared);
    }

    #[test]
    fn phases_partition_all_waves() {
        for (pattern, s, t_switch) in [
            (Pattern::AntiDiagonal, &[W, Nw, N][..], 2),
            (Pattern::Horizontal, &[Nw, N, Ne][..], 0),
            (Pattern::InvertedL, &[Nw][..], 2),
            (Pattern::KnightMove, &[W, Ne][..], 3),
        ] {
            let p = plan(pattern, s, (7, 9), t_switch, 3);
            let mut covered = 0;
            let mut next = 0;
            for span in p.phases() {
                assert_eq!(span.waves.start, next, "{pattern}: gap in phases");
                covered += span.waves.len();
                next = span.waves.end;
                for w in span.waves.clone() {
                    assert_eq!(p.phase_of(w), span.kind);
                }
            }
            assert_eq!(covered, p.num_waves(), "{pattern}");
        }
    }

    // ---- partition -------------------------------------------------------

    /// CPU + GPU ranges tile every wave; CPU band length matches a brute
    /// force count of cells with column < t_share.
    #[test]
    fn partition_is_exact() {
        for (pattern, s, t_switch) in [
            (Pattern::AntiDiagonal, &[W, Nw, N][..], 2),
            (Pattern::Horizontal, &[Nw, N, Ne][..], 0),
            (Pattern::InvertedL, &[Nw][..], 2),
            (Pattern::KnightMove, &[W, Nw, N, Ne][..], 3),
        ] {
            for (r, c) in [(5, 5), (3, 9), (9, 3), (8, 6)] {
                for t_share in [0, 1, 2, c / 2, c] {
                    let ts = if pattern == Pattern::Horizontal {
                        0
                    } else {
                        t_switch.min(pattern.num_waves(r, c) / 2)
                    };
                    let p = plan(pattern, s, (r, c), ts, t_share);
                    let dims = Dims::new(r, c);
                    for a in p.assignments() {
                        let len = pattern.wave_len(r, c, a.wave);
                        assert_eq!(a.cpu.start, 0);
                        assert_eq!(a.cpu.end, a.gpu.start);
                        assert_eq!(a.gpu.end, len);
                        if a.phase == PhaseKind::Shared {
                            let brute = wavefront::wave_cells(pattern, dims, a.wave)
                                .filter(|&(_, j)| j < t_share)
                                .count();
                            assert_eq!(
                                a.cpu_len(),
                                brute,
                                "{pattern} {r}x{c} t_share={t_share} wave {}",
                                a.wave
                            );
                        } else {
                            assert_eq!(a.cpu_len(), len);
                        }
                    }
                }
            }
        }
    }

    /// `owner` agrees with the assignment ranges everywhere.
    #[test]
    fn owner_matches_assignment() {
        let p = plan(Pattern::KnightMove, &[W, Ne], (6, 8), 3, 3);
        let dims = Dims::new(6, 8);
        for w in 0..p.num_waves() {
            let a = p.assignment(w);
            for (pos, (i, j)) in wavefront::wave_cells(Pattern::KnightMove, dims, w).enumerate() {
                let expect = if a.cpu.contains(&pos) {
                    Device::Cpu
                } else {
                    Device::Gpu
                };
                assert_eq!(p.owner(i, j), expect, "wave {w} pos {pos} ({i},{j})");
            }
        }
    }

    // ---- transfers -------------------------------------------------------

    /// THE correctness property: every dependency of every cell is either
    /// owned by the reader's device or listed in the reader's wave
    /// transfers.
    #[test]
    fn transfers_cover_all_foreign_dependencies() {
        for (pattern, s, t_switch) in [
            (Pattern::AntiDiagonal, &[W, Nw, N][..], 3),
            (Pattern::AntiDiagonal, &[W, N][..], 2),
            (Pattern::Horizontal, &[Nw, N][..], 0),
            (Pattern::Horizontal, &[N, Ne][..], 0),
            (Pattern::Horizontal, &[Nw, Ne][..], 0),
            (Pattern::Horizontal, &[N][..], 0),
            (Pattern::InvertedL, &[Nw][..], 3),
            (Pattern::KnightMove, &[W, Ne][..], 4),
            (Pattern::KnightMove, &[W, Nw, N, Ne][..], 4),
        ] {
            for (r, c) in [(6, 6), (4, 10), (10, 4)] {
                for t_share in [0, 2, c / 2] {
                    let num_waves = pattern.num_waves(r, c);
                    let ts = if pattern == Pattern::Horizontal {
                        0
                    } else {
                        t_switch.min(num_waves / 2)
                    };
                    let p = plan(pattern, s, (r, c), ts, t_share);
                    let dims = Dims::new(r, c);
                    for w in 0..num_waves {
                        let t = p.transfers(w);
                        for (i, j) in wavefront::wave_cells(pattern, dims, w) {
                            let reader = p.owner(i, j);
                            for dep in set(s).iter() {
                                if let Some(src) = dep.source(i, j, r, c) {
                                    if p.owner(src.0, src.1) != reader {
                                        let list = match reader {
                                            Device::Cpu => &t.to_cpu,
                                            Device::Gpu => &t.to_gpu,
                                        };
                                        assert!(
                                            list.contains(&src),
                                            "{pattern} {r}x{c} ts={t_share}: wave {w} cell \
                                             ({i},{j}) missing import {src:?}"
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Transfers never list cells the reader already owns, and never list
    /// cells from the current or later waves.
    #[test]
    fn transfers_are_minimal_and_causal() {
        let p = plan(Pattern::KnightMove, &[W, Nw, N, Ne], (8, 8), 4, 3);
        let dims = Dims::new(8, 8);
        for w in 0..p.num_waves() {
            let t = p.transfers(w);
            for &(i, j) in &t.to_gpu {
                assert_eq!(p.owner(i, j), Device::Cpu);
                assert!(wavefront::wave_of(Pattern::KnightMove, dims, i, j) < w);
            }
            for &(i, j) in &t.to_cpu {
                assert_eq!(p.owner(i, j), Device::Gpu);
                assert!(wavefront::wave_of(Pattern::KnightMove, dims, i, j) < w);
            }
        }
    }

    /// Steady-state shared waves move only O(1) cells (the paper's "only
    /// a few cells" claim justifying pinned-memory transfers).
    #[test]
    fn steady_state_transfers_are_constant_sized() {
        let p = plan(Pattern::AntiDiagonal, &[W, Nw, N], (32, 32), 6, 8);
        let delta = max_wave_delta(Pattern::AntiDiagonal, set(&[W, Nw, N]));
        for w in (6 + delta)..(32 + 32 - 1 - 6) {
            let t = p.transfers(w);
            assert!(t.len() <= 4, "wave {w} moved {} cells", t.len());
        }
        let p = plan(Pattern::Horizontal, &[Nw, N, Ne], (32, 32), 0, 8);
        for w in 1..32 {
            let t = p.transfers(w);
            assert!(
                t.to_gpu.len() <= 2 && t.to_cpu.len() <= 2,
                "wave {w}: {t:?}"
            );
        }
    }

    /// The first shared wave after a CPU-only phase pulls the whole
    /// dependency frontier across (the bulk hand-off).
    #[test]
    fn phase_edges_bulk_transfer() {
        let p = plan(Pattern::AntiDiagonal, &[W, Nw, N], (16, 16), 4, 0);
        // t_share = 0: the GPU owns every shared cell; at wave 4 it must
        // import from the CPU-only ramp.
        let t = p.transfers(4);
        assert!(t.to_gpu.len() > 2, "expected bulk import, got {t:?}");
        // And the first CPU-only wave of phase 3 imports back.
        let last_shared_end = 16 + 16 - 1 - 4;
        let t = p.transfers(last_shared_end);
        assert!(!t.to_cpu.is_empty());
    }

    #[test]
    fn horizontal_n_only_never_transfers() {
        let p = plan(Pattern::Horizontal, &[N], (16, 16), 0, 5);
        for w in 0..16 {
            assert!(p.transfers(w).is_empty(), "wave {w}");
        }
    }

    #[test]
    fn pure_cpu_plan_never_transfers() {
        // t_share = cols: the CPU owns everything; no boundary exists.
        let p = plan(Pattern::Horizontal, &[Nw, N, Ne], (8, 8), 0, 8);
        for w in 0..8 {
            assert!(p.transfers(w).is_empty());
        }
        assert_eq!(p.audit().gpu_cells, 0);
    }

    // ---- audit -----------------------------------------------------------

    #[test]
    fn audit_accounts_every_cell() {
        for (pattern, s, t_switch, t_share) in [
            (Pattern::AntiDiagonal, &[W, Nw, N][..], 3, 2),
            (Pattern::Horizontal, &[Nw, Ne][..], 0, 3),
            (Pattern::InvertedL, &[Nw][..], 2, 3),
            (Pattern::KnightMove, &[W, Ne][..], 4, 2),
        ] {
            let p = plan(pattern, s, (7, 8), t_switch, t_share);
            let a = p.audit();
            assert_eq!(a.cpu_cells + a.gpu_cells, 7 * 8, "{pattern}");
        }
    }

    #[test]
    fn larger_t_share_means_more_cpu_cells() {
        let mut last = 0;
        for t_share in [0, 2, 4, 6, 8] {
            let p = plan(Pattern::Horizontal, &[Nw, N], (8, 8), 0, t_share);
            let a = p.audit();
            assert!(a.cpu_cells >= last);
            last = a.cpu_cells;
        }
        assert_eq!(last, 64);
    }

    #[test]
    fn max_wave_delta_values() {
        assert_eq!(max_wave_delta(Pattern::AntiDiagonal, set(&[W, Nw, N])), 2);
        assert_eq!(max_wave_delta(Pattern::AntiDiagonal, set(&[W, N])), 1);
        assert_eq!(max_wave_delta(Pattern::Horizontal, set(&[Nw, N, Ne])), 1);
        assert_eq!(max_wave_delta(Pattern::KnightMove, set(&[W, Nw, N, Ne])), 3);
        assert_eq!(max_wave_delta(Pattern::KnightMove, set(&[W, Ne])), 1);
        assert_eq!(max_wave_delta(Pattern::InvertedL, set(&[Nw])), 1);
    }

    #[test]
    fn striped_partition_transfers_scale_with_stripe_count() {
        let set = ContributingSet::new(&[Nw, N, Ne]);
        let cols = 1024;
        // Band (one boundary) ~ O(1); stripes of width s → ~2·(cols/s)
        // crossing cells per direction pair.
        let wide = striped_crossings_per_wave(set, cols, 512);
        let narrow = striped_crossings_per_wave(set, cols, 8);
        assert!(narrow > wide * 32, "narrow {narrow} vs wide {wide}");
        // Exact count for one stripe edge: the NW read crosses at the
        // column right of the edge, the NE read at the column left of
        // it — two crossing cells per edge.
        assert_eq!(striped_crossings_per_wave(set, 16, 8), 2);
        // A set reading only N never crosses.
        assert_eq!(
            striped_crossings_per_wave(ContributingSet::new(&[N]), 1024, 8),
            0
        );
    }

    #[test]
    fn device_other() {
        assert_eq!(Device::Cpu.other(), Device::Gpu);
        assert_eq!(Device::Gpu.other(), Device::Cpu);
    }
}
