//! Pattern classification — the paper's Table I.
//!
//! The number and position of contributing cells determine which cells can
//! be processed in parallel in a given iteration (Fig 2). The fifteen
//! non-empty contributing sets map onto six patterns; appealing to symmetry
//! (Vertical ≅ Horizontal under transposition, mirrored-Inverted-L ≅
//! Inverted-L under column reflection) only four distinct heterogeneous
//! execution strategies remain.

use crate::cell::{ContributingSet, RepCell};
use std::fmt;

/// The six dependence patterns of Fig 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Fig 2(a): wavefront `i + j = const`; parallelism ramps up to the
    /// main anti-diagonal then back down.
    AntiDiagonal,
    /// Fig 2(b): whole rows in parallel; constant parallelism.
    Horizontal,
    /// Fig 2(c): L-shaped shells shrinking from the top-left; parallelism
    /// decreases monotonically.
    InvertedL,
    /// Fig 2(d): wavefront `2i + j = const`; parallelism ramps up then
    /// down, like anti-diagonal but with twice as many iterations.
    KnightMove,
    /// Fig 2(e): whole columns in parallel; constant parallelism.
    Vertical,
    /// Fig 2(f): mirrored L-shells shrinking from the top-right.
    MirroredInvertedL,
}

impl Pattern {
    /// All six patterns in Fig 2 order.
    pub const ALL: [Pattern; 6] = [
        Pattern::AntiDiagonal,
        Pattern::Horizontal,
        Pattern::InvertedL,
        Pattern::KnightMove,
        Pattern::Vertical,
        Pattern::MirroredInvertedL,
    ];

    /// The four canonical patterns that survive symmetry reduction.
    pub const CANONICAL: [Pattern; 4] = [
        Pattern::AntiDiagonal,
        Pattern::Horizontal,
        Pattern::InvertedL,
        Pattern::KnightMove,
    ];

    /// The pattern this one reduces to by symmetry (identity for the four
    /// canonical patterns).
    pub fn canonical(self) -> Pattern {
        match self {
            Pattern::Vertical => Pattern::Horizontal,
            Pattern::MirroredInvertedL => Pattern::InvertedL,
            p => p,
        }
    }

    /// Whether this is one of the four canonical execution patterns.
    pub fn is_canonical(self) -> bool {
        self.canonical() == self
    }

    /// Number of wavefront iterations needed to fill an `rows × cols`
    /// table under this pattern.
    pub fn num_waves(self, rows: usize, cols: usize) -> usize {
        if rows == 0 || cols == 0 {
            return 0;
        }
        match self {
            Pattern::AntiDiagonal => rows + cols - 1,
            Pattern::Horizontal => rows,
            Pattern::Vertical => cols,
            Pattern::InvertedL | Pattern::MirroredInvertedL => rows.min(cols),
            Pattern::KnightMove => 2 * rows + cols - 2,
        }
    }

    /// Number of cells processed in wave `w` (0-based) of an
    /// `rows × cols` table. Waves outside `0..num_waves` have zero cells.
    pub fn wave_len(self, rows: usize, cols: usize, w: usize) -> usize {
        if rows == 0 || cols == 0 || w >= self.num_waves(rows, cols) {
            return 0;
        }
        match self {
            Pattern::AntiDiagonal => {
                // Cells (i, j) with i + j = w.
                let lo = w.saturating_sub(cols - 1);
                let hi = w.min(rows - 1);
                hi - lo + 1
            }
            Pattern::Horizontal => cols,
            Pattern::Vertical => rows,
            Pattern::InvertedL | Pattern::MirroredInvertedL => {
                // Shell k: the row segment (k, k..cols) plus the column
                // segment (k+1..rows, k) — `(cols-k) + (rows-k-1)` cells.
                (cols - w) + (rows - w - 1)
            }
            Pattern::KnightMove => {
                // Cells (i, j) with 2i + j = w: i ranges over values with
                // 0 <= w - 2i < cols.
                let i_min = (w.saturating_sub(cols - 1)).div_ceil(2);
                let i_max = (w / 2).min(rows - 1);
                if i_max < i_min {
                    0
                } else {
                    i_max - i_min + 1
                }
            }
        }
    }

    /// The degree-of-parallelism profile: `wave_len` for every wave, in
    /// order. This is the "parallelism profile" the paper categorizes by.
    pub fn parallelism_profile(self, rows: usize, cols: usize) -> Vec<usize> {
        (0..self.num_waves(rows, cols))
            .map(|w| self.wave_len(rows, cols, w))
            .collect()
    }

    /// Broad shape of the parallelism profile, used to pick the
    /// heterogeneous strategy (§III).
    pub fn profile_shape(self) -> ProfileShape {
        match self.canonical() {
            Pattern::AntiDiagonal | Pattern::KnightMove => ProfileShape::RampUpDown,
            Pattern::Horizontal => ProfileShape::Constant,
            Pattern::InvertedL => ProfileShape::Decreasing,
            _ => unreachable!("canonical() only returns canonical patterns"),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pattern::AntiDiagonal => "Anti-diagonal",
            Pattern::Horizontal => "Horizontal",
            Pattern::InvertedL => "Inverted-L",
            Pattern::KnightMove => "Knight-Move",
            Pattern::Vertical => "Vertical",
            Pattern::MirroredInvertedL => "mInverted-L",
        };
        f.write_str(s)
    }
}

/// Qualitative shape of a pattern's degree-of-parallelism-versus-time plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileShape {
    /// Ramps up to a plateau/peak then back down (anti-diagonal,
    /// knight-move). Has low-work regions at both ends.
    RampUpDown,
    /// Constant parallelism every iteration (horizontal/vertical). No
    /// low-work region.
    Constant,
    /// Monotonically decreasing (inverted-L). Low-work region at the end
    /// only.
    Decreasing,
}

/// Classifies a contributing set into its pattern — the paper's Table I.
///
/// Returns `None` for the empty set, which does not describe an LDDP-Plus
/// problem (the update function must read at least one neighbour).
pub fn classify(set: ContributingSet) -> Option<Pattern> {
    if set.is_empty() {
        return None;
    }
    let w = set.contains(RepCell::W);
    let nw = set.contains(RepCell::Nw);
    let n = set.contains(RepCell::N);
    let ne = set.contains(RepCell::Ne);
    Some(match (w, nw, n, ne) {
        // Reading both W (same row, left) and NE (previous row, right)
        // forces the knight-move wavefront 2i + j.
        (true, _, _, true) => Pattern::KnightMove,
        // W together with N (but no NE) allows the anti-diagonal i + j.
        (true, _, true, false) => Pattern::AntiDiagonal,
        // W alone or with NW: whole columns are independent.
        (true, _, false, false) => Pattern::Vertical,
        // No W: the previous row fully determines this row...
        (false, true, _, _) | (false, false, true, _) => {
            if !n && nw && !ne {
                // ...except NW alone, which admits the L-shell order.
                Pattern::InvertedL
            } else if !n && !nw && ne {
                unreachable!("covered by the arm below")
            } else {
                Pattern::Horizontal
            }
        }
        // NE alone: mirrored L-shells.
        (false, false, false, true) => Pattern::MirroredInvertedL,
        (false, false, false, false) => unreachable!("empty set handled above"),
    })
}

/// One row of the paper's Table I: a contributing set together with its
/// pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableOneRow {
    /// The contributing set (`Y`/`N` columns of Table I).
    pub set: ContributingSet,
    /// The pattern column.
    pub pattern: Pattern,
}

/// The full Table I, in the paper's row order.
pub fn table_one() -> Vec<TableOneRow> {
    ContributingSet::table_one_rows()
        .map(|set| TableOneRow {
            set,
            pattern: classify(set).expect("table rows are non-empty"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::RepCell::{Ne, Nw, N, W};

    fn set(cells: &[RepCell]) -> ContributingSet {
        ContributingSet::new(cells)
    }

    /// Pins every row of the paper's Table I exactly.
    #[test]
    fn table_one_matches_paper() {
        let expected: [(&[RepCell], Pattern); 15] = [
            (&[Ne], Pattern::MirroredInvertedL),
            (&[N], Pattern::Horizontal),
            (&[N, Ne], Pattern::Horizontal),
            (&[Nw], Pattern::InvertedL),
            (&[Nw, Ne], Pattern::Horizontal),
            (&[Nw, N], Pattern::Horizontal),
            (&[Nw, N, Ne], Pattern::Horizontal),
            (&[W], Pattern::Vertical),
            (&[W, Ne], Pattern::KnightMove),
            (&[W, N], Pattern::AntiDiagonal),
            (&[W, N, Ne], Pattern::KnightMove),
            (&[W, Nw], Pattern::Vertical),
            (&[W, Nw, Ne], Pattern::KnightMove),
            (&[W, Nw, N], Pattern::AntiDiagonal),
            (&[W, Nw, N, Ne], Pattern::KnightMove),
        ];
        let table = table_one();
        assert_eq!(table.len(), 15);
        for (row, (cells, pattern)) in table.iter().zip(expected.iter()) {
            assert_eq!(row.set, set(cells), "row order mismatch");
            assert_eq!(row.pattern, *pattern, "pattern for {}", row.set);
        }
    }

    #[test]
    fn empty_set_is_unclassifiable() {
        assert_eq!(classify(ContributingSet::EMPTY), None);
    }

    #[test]
    fn fifteen_rows_cover_six_patterns() {
        let mut seen: Vec<Pattern> = table_one().iter().map(|r| r.pattern).collect();
        seen.sort_by_key(|p| format!("{p}"));
        seen.dedup();
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn symmetry_reduction_to_four_patterns() {
        let mut canon: Vec<Pattern> = table_one().iter().map(|r| r.pattern.canonical()).collect();
        canon.sort_by_key(|p| format!("{p}"));
        canon.dedup();
        assert_eq!(canon.len(), 4);
        for p in canon {
            assert!(p.is_canonical());
            assert!(Pattern::CANONICAL.contains(&p));
        }
    }

    #[test]
    fn vertical_reduces_to_horizontal_via_transpose() {
        // Classifying the transposed set must yield the canonical pattern.
        for cells in [&[W][..], &[W, Nw][..]] {
            let s = set(cells);
            assert_eq!(classify(s), Some(Pattern::Vertical));
            let t = s.transposed().unwrap();
            assert_eq!(classify(t), Some(Pattern::Horizontal));
        }
    }

    #[test]
    fn mirrored_inverted_l_reduces_via_mirror() {
        let s = set(&[Ne]);
        assert_eq!(classify(s), Some(Pattern::MirroredInvertedL));
        let m = s.mirrored().unwrap();
        assert_eq!(classify(m), Some(Pattern::InvertedL));
    }

    #[test]
    fn wave_counts() {
        assert_eq!(Pattern::AntiDiagonal.num_waves(4, 6), 9);
        assert_eq!(Pattern::Horizontal.num_waves(4, 6), 4);
        assert_eq!(Pattern::Vertical.num_waves(4, 6), 6);
        assert_eq!(Pattern::InvertedL.num_waves(4, 6), 4);
        assert_eq!(Pattern::MirroredInvertedL.num_waves(4, 6), 4);
        assert_eq!(Pattern::KnightMove.num_waves(4, 6), 12);
        for p in Pattern::ALL {
            assert_eq!(p.num_waves(0, 5), 0);
            assert_eq!(p.num_waves(5, 0), 0);
        }
    }

    /// The union of all waves must tile the table exactly.
    #[test]
    fn wave_lengths_sum_to_table_size() {
        for p in Pattern::ALL {
            for (r, c) in [(1, 1), (1, 7), (7, 1), (3, 5), (5, 3), (8, 8), (2, 9)] {
                let total: usize = p.parallelism_profile(r, c).iter().sum();
                assert_eq!(total, r * c, "{p} on {r}x{c}");
            }
        }
    }

    /// Pins the numbering of Fig 2 on the 6-wide examples in the paper.
    #[test]
    fn fig2_wave_lengths() {
        // (a) Anti-diagonal on a 6x6 grid: 1,2,3,4,5,6,5,4,3,2,1.
        assert_eq!(
            Pattern::AntiDiagonal.parallelism_profile(6, 6),
            vec![1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1]
        );
        // (b) Horizontal on 3 rows of 6: 6,6,6.
        assert_eq!(Pattern::Horizontal.parallelism_profile(3, 6), vec![6, 6, 6]);
        // (e) Vertical on 5 rows x 3 cols: 5,5,5.
        assert_eq!(Pattern::Vertical.parallelism_profile(5, 3), vec![5, 5, 5]);
        // (c) Inverted-L on 4x6 (Fig 2c shows shells 1..3 on a 4-row grid
        // with trailing short rows): shell k has (6-k)+(4-k-1) cells.
        assert_eq!(
            Pattern::InvertedL.parallelism_profile(4, 6),
            vec![9, 7, 5, 3]
        );
        assert_eq!(
            Pattern::MirroredInvertedL.parallelism_profile(4, 6),
            vec![9, 7, 5, 3]
        );
        // (d) Knight-move on 6x6: the last cell (5,5) is in wave
        // 2*5+5 = 15 (1-based 16, matching "16" in Fig 2d).
        let prof = Pattern::KnightMove.parallelism_profile(6, 6);
        assert_eq!(prof.len(), 16);
        assert_eq!(prof[0], 1); // only (0,0)
        assert_eq!(prof[15], 1); // only (5,5)
        assert_eq!(prof.iter().sum::<usize>(), 36);
        // Peak parallelism of 2i+j on an n x n grid is ceil(n/2)... the
        // profile must be unimodal-ish with max 3 for 6x6.
        assert_eq!(*prof.iter().max().unwrap(), 3);
    }

    #[test]
    fn knight_move_wave_membership() {
        // Explicitly enumerate 2i+j membership for a 3x4 grid.
        let rows = 3;
        let cols = 4;
        for w in 0..Pattern::KnightMove.num_waves(rows, cols) {
            let brute = (0..rows)
                .flat_map(|i| (0..cols).map(move |j| (i, j)))
                .filter(|&(i, j)| 2 * i + j == w)
                .count();
            assert_eq!(
                Pattern::KnightMove.wave_len(rows, cols, w),
                brute,
                "wave {w}"
            );
        }
    }

    #[test]
    fn anti_diagonal_profile_is_unimodal() {
        for (r, c) in [(5, 9), (9, 5), (7, 7)] {
            let prof = Pattern::AntiDiagonal.parallelism_profile(r, c);
            let peak = prof.iter().position(|&x| x == *prof.iter().max().unwrap());
            let peak = peak.unwrap();
            assert!(prof[..peak].windows(2).all(|w| w[0] <= w[1]));
            assert!(prof[peak..].windows(2).all(|w| w[0] >= w[1]));
            assert_eq!(*prof.iter().max().unwrap(), r.min(c));
        }
    }

    #[test]
    fn inverted_l_profile_decreases() {
        let prof = Pattern::InvertedL.parallelism_profile(8, 10);
        assert!(prof.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn profile_shapes() {
        assert_eq!(
            Pattern::AntiDiagonal.profile_shape(),
            ProfileShape::RampUpDown
        );
        assert_eq!(
            Pattern::KnightMove.profile_shape(),
            ProfileShape::RampUpDown
        );
        assert_eq!(Pattern::Horizontal.profile_shape(), ProfileShape::Constant);
        assert_eq!(Pattern::Vertical.profile_shape(), ProfileShape::Constant);
        assert_eq!(Pattern::InvertedL.profile_shape(), ProfileShape::Decreasing);
        assert_eq!(
            Pattern::MirroredInvertedL.profile_shape(),
            ProfileShape::Decreasing
        );
    }

    #[test]
    fn out_of_range_waves_are_empty() {
        for p in Pattern::ALL {
            let n = p.num_waves(4, 4);
            assert_eq!(p.wave_len(4, 4, n), 0);
            assert_eq!(p.wave_len(4, 4, n + 10), 0);
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Pattern::AntiDiagonal.to_string(), "Anti-diagonal");
        assert_eq!(Pattern::MirroredInvertedL.to_string(), "mInverted-L");
        assert_eq!(Pattern::KnightMove.to_string(), "Knight-Move");
    }
}
