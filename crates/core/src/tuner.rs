//! Empirical parameter tuning — §V-A of the paper.
//!
//! The values of `t_switch` and `t_share` are found empirically: first fix
//! `t_share = 0` and sweep `t_switch`; the running-time curve is concave
//! (Fig 7) and its minimum gives the optimal `t_switch`. Then fix that
//! value and sweep `t_share` the same way.
//!
//! The tuner is executor-agnostic: it takes a closure mapping
//! [`ScheduleParams`] to a measured (or modelled) running time, so the
//! same procedure drives the discrete-event simulator, the real thread
//! engine, or a unit-test stub.

use crate::error::{Error, Result};
use crate::kernel::ExecTier;
use crate::schedule::ScheduleParams;
use lddp_trace::{tracks, InstantEvent, NullSink, TraceSink};

/// One sampled point of a tuning sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The candidate parameter value.
    pub value: usize,
    /// Measured running time (seconds, wall or virtual).
    pub time: f64,
}

/// One measured execution tier of a tier sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierPoint {
    /// The tier that was measured.
    pub tier: ExecTier,
    /// Measured running time in seconds.
    pub secs: f64,
}

/// The fastest tier of a sweep, or `None` for an empty sweep. Ties
/// prefer the earlier tier in [`ExecTier::ALL`] order — the simpler
/// execution strategy wins when the measurements cannot tell them
/// apart.
pub fn pick_tier(points: &[TierPoint]) -> Option<ExecTier> {
    let mut best: Option<&TierPoint> = None;
    for p in points {
        let better = match best {
            None => true,
            Some(b) => p.secs < b.secs || (p.secs == b.secs && p.tier < b.tier),
        };
        if better {
            best = Some(p);
        }
    }
    best.map(|p| p.tier)
}

/// Outcome of the two-stage sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The chosen parameters.
    pub params: ScheduleParams,
    /// The `t_switch` sweep (Fig 7): time for each candidate at
    /// `t_share = 0`.
    pub t_switch_curve: Vec<SweepPoint>,
    /// The `t_share` sweep at the chosen `t_switch`.
    pub t_share_curve: Vec<SweepPoint>,
}

/// Runs the paper's two-stage tuning procedure.
///
/// ```
/// use lddp_core::tuner::tune;
///
/// // A synthetic cost surface with its optimum at (6, 16).
/// let result = tune(&[0, 2, 4, 6, 8], &[0, 8, 16, 32], |p| {
///     let s = p.t_switch as f64 - 6.0;
///     let h = p.t_share as f64 - 16.0;
///     s * s + h * h / 8.0 + 1.0
/// })
/// .unwrap();
/// assert_eq!(result.params.t_switch, 6);
/// assert_eq!(result.params.t_share, 16);
/// ```
///
/// `eval` is called once per candidate; it should run (or model) the
/// heterogeneous algorithm with the given parameters and return its time.
/// Both candidate lists must be non-empty. Ties pick the smaller
/// parameter value (less CPU involvement).
pub fn tune(
    t_switch_candidates: &[usize],
    t_share_candidates: &[usize],
    eval: impl FnMut(ScheduleParams) -> f64,
) -> Result<TuneResult> {
    tune_with_sink(t_switch_candidates, t_share_candidates, eval, &NullSink)
}

/// [`tune`] with every evaluated [`SweepPoint`] recorded into `sink`:
/// one `tuner.sweep` instant event per evaluation (args: `stage`,
/// `value`, `time_s`) on the tuner track, a `tuner.time_s` counter
/// series over the evaluation sequence, and a `tuner.evals` monotonic
/// counter — enough to replay and plot the Fig 7 curves from a trace.
pub fn tune_with_sink(
    t_switch_candidates: &[usize],
    t_share_candidates: &[usize],
    mut eval: impl FnMut(ScheduleParams) -> f64,
    sink: &dyn TraceSink,
) -> Result<TuneResult> {
    if t_switch_candidates.is_empty() || t_share_candidates.is_empty() {
        return Err(Error::EmptyTuningRange);
    }
    let mut seq = 0usize;
    let mut eval = |params: ScheduleParams, stage: &'static str, value: usize| -> f64 {
        let time = eval(params);
        record_sweep_point(sink, &mut seq, stage, value, time);
        time
    };
    let t_switch_curve: Vec<SweepPoint> = t_switch_candidates
        .iter()
        .map(|&value| SweepPoint {
            value,
            time: eval(ScheduleParams::new(value, 0), "t_switch", value),
        })
        .collect();
    let best_switch = argmin(&t_switch_curve);
    let t_share_curve: Vec<SweepPoint> = t_share_candidates
        .iter()
        .map(|&value| SweepPoint {
            value,
            time: eval(ScheduleParams::new(best_switch, value), "t_share", value),
        })
        .collect();
    let best_share = argmin(&t_share_curve);
    Ok(TuneResult {
        params: ScheduleParams::new(best_switch, best_share),
        t_switch_curve,
        t_share_curve,
    })
}

/// Emits one evaluated sweep point into `sink`. The "time axis" of the
/// tuner track is the evaluation sequence number (there is no shared
/// clock across candidate runs).
fn record_sweep_point(
    sink: &dyn TraceSink,
    seq: &mut usize,
    stage: &'static str,
    value: usize,
    time_s: f64,
) {
    if sink.enabled() {
        sink.instant(
            InstantEvent::new("tuner.sweep", tracks::TUNER, *seq as f64)
                .with_arg("stage", stage)
                .with_arg("value", value)
                .with_arg("time_s", time_s),
        );
        sink.sample(tracks::TUNER, "tuner.time_s", *seq as f64, time_s);
        sink.count("tuner.evals", 1);
    }
    *seq += 1;
}

/// Like [`tune`], but exploits the concavity of the Fig 7 curves:
/// instead of a fixed candidate ladder, each stage runs a ternary search
/// over an integer range, converging on the exact (unimodal) minimum in
/// `O(log range)` evaluations. Falls back gracefully on noisy/flat
/// curves — it still returns *a* sampled minimum, just not necessarily
/// the global one if the curve is not unimodal.
pub fn tune_concave(
    t_switch_range: (usize, usize),
    t_share_range: (usize, usize),
    eval: impl FnMut(ScheduleParams) -> f64,
) -> Result<TuneResult> {
    tune_concave_with_sink(t_switch_range, t_share_range, eval, &NullSink)
}

/// [`tune_concave`] with every evaluated [`SweepPoint`] recorded into
/// `sink` — see [`tune_with_sink`] for the event catalog.
pub fn tune_concave_with_sink(
    t_switch_range: (usize, usize),
    t_share_range: (usize, usize),
    mut eval: impl FnMut(ScheduleParams) -> f64,
    sink: &dyn TraceSink,
) -> Result<TuneResult> {
    if t_switch_range.0 > t_switch_range.1 || t_share_range.0 > t_share_range.1 {
        return Err(Error::EmptyTuningRange);
    }
    let mut seq = 0usize;
    let mut t_switch_curve = Vec::new();
    let best_switch = ternary_min(t_switch_range, |v| {
        let t = eval(ScheduleParams::new(v, 0));
        record_sweep_point(sink, &mut seq, "t_switch", v, t);
        t_switch_curve.push(SweepPoint { value: v, time: t });
        t
    });
    let mut t_share_curve = Vec::new();
    let best_share = ternary_min(t_share_range, |v| {
        let t = eval(ScheduleParams::new(best_switch, v));
        record_sweep_point(sink, &mut seq, "t_share", v, t);
        t_share_curve.push(SweepPoint { value: v, time: t });
        t
    });
    t_switch_curve.sort_by_key(|p| p.value);
    t_switch_curve.dedup_by_key(|p| p.value);
    t_share_curve.sort_by_key(|p| p.value);
    t_share_curve.dedup_by_key(|p| p.value);
    Ok(TuneResult {
        params: ScheduleParams::new(best_switch, best_share),
        t_switch_curve,
        t_share_curve,
    })
}

/// Integer ternary search for the minimum of a unimodal function on
/// `[lo, hi]`.
fn ternary_min(range: (usize, usize), mut f: impl FnMut(usize) -> f64) -> usize {
    let (mut lo, mut hi) = range;
    while hi - lo > 2 {
        let third = (hi - lo) / 3;
        let m1 = lo + third;
        let m2 = hi - third;
        if f(m1) <= f(m2) {
            hi = m2 - 1;
        } else {
            lo = m1 + 1;
        }
    }
    // Evaluate the final few points exactly.
    let mut best = lo;
    let mut best_t = f(lo);
    for v in lo + 1..=hi {
        let t = f(v);
        if t < best_t {
            best = v;
            best_t = t;
        }
    }
    best
}

/// Candidate value with the minimum time; ties prefer the smaller value.
fn argmin(points: &[SweepPoint]) -> usize {
    let mut best = &points[0];
    for p in &points[1..] {
        if p.time < best.time || (p.time == best.time && p.value < best.value) {
            best = p;
        }
    }
    best.value
}

/// A geometric ladder of `t_switch` candidates: 0, 1, 2, 4, … up to
/// `max_waves / 2` (the largest legal value for ramp patterns), always
/// including the endpoint.
pub fn t_switch_candidates(num_waves: usize) -> Vec<usize> {
    let cap = num_waves / 2;
    let mut v = vec![0];
    let mut x = 1;
    while x < cap {
        v.push(x);
        x *= 2;
    }
    if cap > 0 {
        v.push(cap);
    }
    v.dedup();
    v
}

/// A geometric ladder of `t_share` candidates: 0, 1, 2, 4, … up to
/// `cols`, always including the endpoint (pure-CPU).
pub fn t_share_candidates(cols: usize) -> Vec<usize> {
    let mut v = vec![0];
    let mut x = 1;
    while x < cols {
        v.push(x);
        x *= 2;
    }
    if cols > 0 {
        v.push(cols);
    }
    v.dedup();
    v
}

/// Checks that a sweep is *concave-up around its minimum* in the loose
/// empirical sense of Fig 7: times strictly left of the argmin are
/// non-increasing and times right of it are non-decreasing, up to a
/// relative tolerance `tol` (measurement noise).
pub fn is_concave_around_min(points: &[SweepPoint], tol: f64) -> bool {
    if points.len() < 2 {
        return true;
    }
    let min_idx = points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.time.total_cmp(&b.1.time))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let ok_left = points[..=min_idx]
        .windows(2)
        .all(|w| w[1].time <= w[0].time * (1.0 + tol));
    let ok_right = points[min_idx..]
        .windows(2)
        .all(|w| w[1].time >= w[0].time * (1.0 - tol));
    ok_left && ok_right
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_tier_takes_the_fastest_and_breaks_ties_simpler() {
        assert_eq!(pick_tier(&[]), None);
        let pts = [
            TierPoint {
                tier: ExecTier::Scalar,
                secs: 3.0,
            },
            TierPoint {
                tier: ExecTier::Bulk,
                secs: 1.5,
            },
            TierPoint {
                tier: ExecTier::Simd,
                secs: 0.9,
            },
        ];
        assert_eq!(pick_tier(&pts), Some(ExecTier::Simd));
        // Exact tie: the earlier (simpler) tier wins.
        let tied = [
            TierPoint {
                tier: ExecTier::Simd,
                secs: 1.0,
            },
            TierPoint {
                tier: ExecTier::Bulk,
                secs: 1.0,
            },
        ];
        assert_eq!(pick_tier(&tied), Some(ExecTier::Bulk));
    }

    #[test]
    fn empty_candidates_error() {
        assert_eq!(
            tune(&[], &[0], |_| 0.0).unwrap_err(),
            Error::EmptyTuningRange
        );
        assert_eq!(
            tune(&[0], &[], |_| 0.0).unwrap_err(),
            Error::EmptyTuningRange
        );
    }

    #[test]
    fn finds_the_minimum_of_a_concave_curve() {
        // time(t_switch) is a parabola with minimum at 6; t_share curve
        // has minimum at 16.
        let result = tune(&[0, 2, 4, 6, 8, 10], &[0, 8, 16, 32], |p| {
            let s = p.t_switch as f64;
            let base = (s - 6.0) * (s - 6.0) + 100.0;
            let sh = p.t_share as f64;
            base + (sh - 16.0) * (sh - 16.0) / 10.0
        })
        .unwrap();
        assert_eq!(result.params, ScheduleParams::new(6, 16));
        assert_eq!(result.t_switch_curve.len(), 6);
        assert_eq!(result.t_share_curve.len(), 4);
    }

    #[test]
    fn first_stage_runs_with_t_share_zero() {
        let mut seen = Vec::new();
        let _ = tune(&[0, 1, 2], &[0, 5], |p| {
            seen.push(p);
            p.t_switch as f64
        })
        .unwrap();
        // First three calls must all have t_share = 0.
        assert!(seen[..3].iter().all(|p| p.t_share == 0));
        // Remaining calls fix t_switch at the winner (0).
        assert!(seen[3..].iter().all(|p| p.t_switch == 0));
    }

    #[test]
    fn ties_prefer_smaller_values() {
        let result = tune(&[0, 4, 8], &[0, 2], |_| 1.0).unwrap();
        assert_eq!(result.params, ScheduleParams::new(0, 0));
    }

    #[test]
    fn eval_call_count_is_sum_of_sweeps() {
        let mut calls = 0;
        let _ = tune(&[0, 1, 2, 3], &[0, 1, 2], |_| {
            calls += 1;
            0.0
        })
        .unwrap();
        assert_eq!(calls, 4 + 3);
    }

    #[test]
    fn switch_ladder_covers_range() {
        let v = t_switch_candidates(100);
        assert_eq!(v.first(), Some(&0));
        assert_eq!(v.last(), Some(&50));
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(t_switch_candidates(0), vec![0]);
        assert_eq!(t_switch_candidates(2), vec![0, 1]);
    }

    #[test]
    fn share_ladder_covers_range() {
        let v = t_share_candidates(4096);
        assert_eq!(v.first(), Some(&0));
        assert_eq!(v.last(), Some(&4096));
        assert!(v.contains(&1024));
        assert_eq!(t_share_candidates(0), vec![0]);
        assert_eq!(t_share_candidates(1), vec![0, 1]);
    }

    #[test]
    fn ternary_search_finds_exact_minimum() {
        // A strictly convex parabola over a wide range.
        let result = tune_concave((0, 5000), (0, 3000), |p| {
            let s = p.t_switch as f64;
            let sh = p.t_share as f64;
            (s - 1234.0) * (s - 1234.0) + (sh - 777.0) * (sh - 777.0) / 7.0 + 10.0
        })
        .unwrap();
        assert_eq!(result.params, ScheduleParams::new(1234, 777));
        // Logarithmically many samples, not thousands.
        assert!(result.t_switch_curve.len() < 60);
        assert!(result.t_share_curve.len() < 60);
    }

    #[test]
    fn ternary_search_handles_edge_minima() {
        // Monotone increasing → minimum at the left edge.
        let r = tune_concave((0, 100), (0, 100), |p| (p.t_switch + p.t_share) as f64).unwrap();
        assert_eq!(r.params, ScheduleParams::new(0, 0));
        // Monotone decreasing → right edge.
        let r = tune_concave((0, 100), (0, 100), |p| -((p.t_switch + p.t_share) as f64)).unwrap();
        assert_eq!(r.params, ScheduleParams::new(100, 100));
    }

    #[test]
    fn ternary_rejects_inverted_ranges() {
        assert_eq!(
            tune_concave((5, 4), (0, 1), |_| 0.0).unwrap_err(),
            Error::EmptyTuningRange
        );
        assert_eq!(
            tune_concave((0, 1), (7, 2), |_| 0.0).unwrap_err(),
            Error::EmptyTuningRange
        );
    }

    #[test]
    fn ternary_degenerate_single_point() {
        let r = tune_concave((3, 3), (5, 5), |_| 1.0).unwrap();
        assert_eq!(r.params, ScheduleParams::new(3, 5));
    }

    #[test]
    fn ternary_curves_are_sorted_unique() {
        let r = tune_concave((0, 500), (0, 500), |p| {
            ((p.t_switch as f64) - 200.0).abs() + ((p.t_share as f64) - 300.0).abs()
        })
        .unwrap();
        for curve in [&r.t_switch_curve, &r.t_share_curve] {
            assert!(curve.windows(2).all(|w| w[0].value < w[1].value));
        }
    }

    #[test]
    fn sink_records_every_sweep_point() {
        use lddp_trace::Recorder;
        let rec = Recorder::new();
        let result = tune_with_sink(
            &[0, 2, 4],
            &[0, 8],
            |p| (p.t_switch + p.t_share) as f64,
            &rec,
        )
        .unwrap();
        let data = rec.snapshot();
        // One instant + one counter sample per evaluation.
        assert_eq!(data.instants.len(), 3 + 2);
        assert_eq!(data.samples.len(), 3 + 2);
        assert_eq!(data.counters["tuner.evals"], 5);
        // Sequence numbers are the instants' timestamps, in order.
        let ts: Vec<f64> = data.instants.iter().map(|e| e.t_s).collect();
        assert_eq!(ts, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        // Stages recorded match the two-phase procedure.
        let stage_of = |i: usize| match &data.instants[i].args[0].1 {
            lddp_trace::ArgValue::Str(s) => s.clone(),
            other => panic!("unexpected arg {other:?}"),
        };
        assert_eq!(stage_of(0), "t_switch");
        assert_eq!(stage_of(4), "t_share");
        // The traced variant agrees with the untraced one.
        let plain = tune(&[0, 2, 4], &[0, 8], |p| (p.t_switch + p.t_share) as f64).unwrap();
        assert_eq!(plain.params, result.params);
    }

    #[test]
    fn concave_sink_matches_curves() {
        use lddp_trace::Recorder;
        let rec = Recorder::new();
        let r = tune_concave_with_sink(
            (0, 50),
            (0, 50),
            |p| ((p.t_switch as f64) - 20.0).powi(2) + ((p.t_share as f64) - 10.0).powi(2),
            &rec,
        )
        .unwrap();
        assert_eq!(r.params, ScheduleParams::new(20, 10));
        let data = rec.snapshot();
        // Every ternary-search probe was recorded (curves are deduped,
        // the sink stream is not — so it has at least as many points).
        assert!(data.instants.len() >= r.t_switch_curve.len() + r.t_share_curve.len());
        assert_eq!(data.counters["tuner.evals"] as usize, data.instants.len());
    }

    #[test]
    fn concavity_check_accepts_fig7_shapes() {
        let pts = |ts: &[(usize, f64)]| -> Vec<SweepPoint> {
            ts.iter()
                .map(|&(value, time)| SweepPoint { value, time })
                .collect()
        };
        assert!(is_concave_around_min(
            &pts(&[(0, 9.0), (1, 5.0), (2, 3.0), (4, 4.0), (8, 8.0)]),
            0.0
        ));
        // A second dip breaks it.
        assert!(!is_concave_around_min(
            &pts(&[(0, 9.0), (1, 3.0), (2, 6.0), (4, 4.0), (8, 8.0)]),
            0.0
        ));
        // Noise within tolerance is accepted.
        assert!(is_concave_around_min(
            &pts(&[(0, 9.0), (1, 5.0), (2, 3.0), (4, 2.95), (8, 8.0)]),
            0.05
        ));
        assert!(is_concave_around_min(&pts(&[(0, 1.0)]), 0.0));
    }
}
