//! Empirical parameter tuning — §V-A of the paper.
//!
//! The values of `t_switch` and `t_share` are found empirically: first fix
//! `t_share = 0` and sweep `t_switch`; the running-time curve is concave
//! (Fig 7) and its minimum gives the optimal `t_switch`. Then fix that
//! value and sweep `t_share` the same way.
//!
//! The tuner is executor-agnostic: it takes a closure mapping
//! [`ScheduleParams`] to a measured (or modelled) running time, so the
//! same procedure drives the discrete-event simulator, the real thread
//! engine, or a unit-test stub.

use crate::error::{Error, Result};
use crate::schedule::ScheduleParams;

/// One sampled point of a tuning sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The candidate parameter value.
    pub value: usize,
    /// Measured running time (seconds, wall or virtual).
    pub time: f64,
}

/// Outcome of the two-stage sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The chosen parameters.
    pub params: ScheduleParams,
    /// The `t_switch` sweep (Fig 7): time for each candidate at
    /// `t_share = 0`.
    pub t_switch_curve: Vec<SweepPoint>,
    /// The `t_share` sweep at the chosen `t_switch`.
    pub t_share_curve: Vec<SweepPoint>,
}

/// Runs the paper's two-stage tuning procedure.
///
/// ```
/// use lddp_core::tuner::tune;
///
/// // A synthetic cost surface with its optimum at (6, 16).
/// let result = tune(&[0, 2, 4, 6, 8], &[0, 8, 16, 32], |p| {
///     let s = p.t_switch as f64 - 6.0;
///     let h = p.t_share as f64 - 16.0;
///     s * s + h * h / 8.0 + 1.0
/// })
/// .unwrap();
/// assert_eq!(result.params.t_switch, 6);
/// assert_eq!(result.params.t_share, 16);
/// ```
///
/// `eval` is called once per candidate; it should run (or model) the
/// heterogeneous algorithm with the given parameters and return its time.
/// Both candidate lists must be non-empty. Ties pick the smaller
/// parameter value (less CPU involvement).
pub fn tune(
    t_switch_candidates: &[usize],
    t_share_candidates: &[usize],
    mut eval: impl FnMut(ScheduleParams) -> f64,
) -> Result<TuneResult> {
    if t_switch_candidates.is_empty() || t_share_candidates.is_empty() {
        return Err(Error::EmptyTuningRange);
    }
    let t_switch_curve: Vec<SweepPoint> = t_switch_candidates
        .iter()
        .map(|&value| SweepPoint {
            value,
            time: eval(ScheduleParams::new(value, 0)),
        })
        .collect();
    let best_switch = argmin(&t_switch_curve);
    let t_share_curve: Vec<SweepPoint> = t_share_candidates
        .iter()
        .map(|&value| SweepPoint {
            value,
            time: eval(ScheduleParams::new(best_switch, value)),
        })
        .collect();
    let best_share = argmin(&t_share_curve);
    Ok(TuneResult {
        params: ScheduleParams::new(best_switch, best_share),
        t_switch_curve,
        t_share_curve,
    })
}

/// Like [`tune`], but exploits the concavity of the Fig 7 curves:
/// instead of a fixed candidate ladder, each stage runs a ternary search
/// over an integer range, converging on the exact (unimodal) minimum in
/// `O(log range)` evaluations. Falls back gracefully on noisy/flat
/// curves — it still returns *a* sampled minimum, just not necessarily
/// the global one if the curve is not unimodal.
pub fn tune_concave(
    t_switch_range: (usize, usize),
    t_share_range: (usize, usize),
    mut eval: impl FnMut(ScheduleParams) -> f64,
) -> Result<TuneResult> {
    if t_switch_range.0 > t_switch_range.1 || t_share_range.0 > t_share_range.1 {
        return Err(Error::EmptyTuningRange);
    }
    let mut t_switch_curve = Vec::new();
    let best_switch = ternary_min(t_switch_range, |v| {
        let t = eval(ScheduleParams::new(v, 0));
        t_switch_curve.push(SweepPoint { value: v, time: t });
        t
    });
    let mut t_share_curve = Vec::new();
    let best_share = ternary_min(t_share_range, |v| {
        let t = eval(ScheduleParams::new(best_switch, v));
        t_share_curve.push(SweepPoint { value: v, time: t });
        t
    });
    t_switch_curve.sort_by_key(|p| p.value);
    t_switch_curve.dedup_by_key(|p| p.value);
    t_share_curve.sort_by_key(|p| p.value);
    t_share_curve.dedup_by_key(|p| p.value);
    Ok(TuneResult {
        params: ScheduleParams::new(best_switch, best_share),
        t_switch_curve,
        t_share_curve,
    })
}

/// Integer ternary search for the minimum of a unimodal function on
/// `[lo, hi]`.
fn ternary_min(range: (usize, usize), mut f: impl FnMut(usize) -> f64) -> usize {
    let (mut lo, mut hi) = range;
    while hi - lo > 2 {
        let third = (hi - lo) / 3;
        let m1 = lo + third;
        let m2 = hi - third;
        if f(m1) <= f(m2) {
            hi = m2 - 1;
        } else {
            lo = m1 + 1;
        }
    }
    // Evaluate the final few points exactly.
    let mut best = lo;
    let mut best_t = f(lo);
    for v in lo + 1..=hi {
        let t = f(v);
        if t < best_t {
            best = v;
            best_t = t;
        }
    }
    best
}

/// Candidate value with the minimum time; ties prefer the smaller value.
fn argmin(points: &[SweepPoint]) -> usize {
    let mut best = &points[0];
    for p in &points[1..] {
        if p.time < best.time || (p.time == best.time && p.value < best.value) {
            best = p;
        }
    }
    best.value
}

/// A geometric ladder of `t_switch` candidates: 0, 1, 2, 4, … up to
/// `max_waves / 2` (the largest legal value for ramp patterns), always
/// including the endpoint.
pub fn t_switch_candidates(num_waves: usize) -> Vec<usize> {
    let cap = num_waves / 2;
    let mut v = vec![0];
    let mut x = 1;
    while x < cap {
        v.push(x);
        x *= 2;
    }
    if cap > 0 {
        v.push(cap);
    }
    v.dedup();
    v
}

/// A geometric ladder of `t_share` candidates: 0, 1, 2, 4, … up to
/// `cols`, always including the endpoint (pure-CPU).
pub fn t_share_candidates(cols: usize) -> Vec<usize> {
    let mut v = vec![0];
    let mut x = 1;
    while x < cols {
        v.push(x);
        x *= 2;
    }
    if cols > 0 {
        v.push(cols);
    }
    v.dedup();
    v
}

/// Checks that a sweep is *concave-up around its minimum* in the loose
/// empirical sense of Fig 7: times strictly left of the argmin are
/// non-increasing and times right of it are non-decreasing, up to a
/// relative tolerance `tol` (measurement noise).
pub fn is_concave_around_min(points: &[SweepPoint], tol: f64) -> bool {
    if points.len() < 2 {
        return true;
    }
    let min_idx = points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.time.total_cmp(&b.1.time))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let ok_left = points[..=min_idx]
        .windows(2)
        .all(|w| w[1].time <= w[0].time * (1.0 + tol));
    let ok_right = points[min_idx..]
        .windows(2)
        .all(|w| w[1].time >= w[0].time * (1.0 - tol));
    ok_left && ok_right
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_candidates_error() {
        assert_eq!(
            tune(&[], &[0], |_| 0.0).unwrap_err(),
            Error::EmptyTuningRange
        );
        assert_eq!(
            tune(&[0], &[], |_| 0.0).unwrap_err(),
            Error::EmptyTuningRange
        );
    }

    #[test]
    fn finds_the_minimum_of_a_concave_curve() {
        // time(t_switch) is a parabola with minimum at 6; t_share curve
        // has minimum at 16.
        let result = tune(&[0, 2, 4, 6, 8, 10], &[0, 8, 16, 32], |p| {
            let s = p.t_switch as f64;
            let base = (s - 6.0) * (s - 6.0) + 100.0;
            let sh = p.t_share as f64;
            base + (sh - 16.0) * (sh - 16.0) / 10.0
        })
        .unwrap();
        assert_eq!(result.params, ScheduleParams::new(6, 16));
        assert_eq!(result.t_switch_curve.len(), 6);
        assert_eq!(result.t_share_curve.len(), 4);
    }

    #[test]
    fn first_stage_runs_with_t_share_zero() {
        let mut seen = Vec::new();
        let _ = tune(&[0, 1, 2], &[0, 5], |p| {
            seen.push(p);
            p.t_switch as f64
        })
        .unwrap();
        // First three calls must all have t_share = 0.
        assert!(seen[..3].iter().all(|p| p.t_share == 0));
        // Remaining calls fix t_switch at the winner (0).
        assert!(seen[3..].iter().all(|p| p.t_switch == 0));
    }

    #[test]
    fn ties_prefer_smaller_values() {
        let result = tune(&[0, 4, 8], &[0, 2], |_| 1.0).unwrap();
        assert_eq!(result.params, ScheduleParams::new(0, 0));
    }

    #[test]
    fn eval_call_count_is_sum_of_sweeps() {
        let mut calls = 0;
        let _ = tune(&[0, 1, 2, 3], &[0, 1, 2], |_| {
            calls += 1;
            0.0
        })
        .unwrap();
        assert_eq!(calls, 4 + 3);
    }

    #[test]
    fn switch_ladder_covers_range() {
        let v = t_switch_candidates(100);
        assert_eq!(v.first(), Some(&0));
        assert_eq!(v.last(), Some(&50));
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(t_switch_candidates(0), vec![0]);
        assert_eq!(t_switch_candidates(2), vec![0, 1]);
    }

    #[test]
    fn share_ladder_covers_range() {
        let v = t_share_candidates(4096);
        assert_eq!(v.first(), Some(&0));
        assert_eq!(v.last(), Some(&4096));
        assert!(v.contains(&1024));
        assert_eq!(t_share_candidates(0), vec![0]);
        assert_eq!(t_share_candidates(1), vec![0, 1]);
    }

    #[test]
    fn ternary_search_finds_exact_minimum() {
        // A strictly convex parabola over a wide range.
        let result = tune_concave((0, 5000), (0, 3000), |p| {
            let s = p.t_switch as f64;
            let sh = p.t_share as f64;
            (s - 1234.0) * (s - 1234.0) + (sh - 777.0) * (sh - 777.0) / 7.0 + 10.0
        })
        .unwrap();
        assert_eq!(result.params, ScheduleParams::new(1234, 777));
        // Logarithmically many samples, not thousands.
        assert!(result.t_switch_curve.len() < 60);
        assert!(result.t_share_curve.len() < 60);
    }

    #[test]
    fn ternary_search_handles_edge_minima() {
        // Monotone increasing → minimum at the left edge.
        let r = tune_concave((0, 100), (0, 100), |p| (p.t_switch + p.t_share) as f64).unwrap();
        assert_eq!(r.params, ScheduleParams::new(0, 0));
        // Monotone decreasing → right edge.
        let r = tune_concave((0, 100), (0, 100), |p| -((p.t_switch + p.t_share) as f64)).unwrap();
        assert_eq!(r.params, ScheduleParams::new(100, 100));
    }

    #[test]
    fn ternary_rejects_inverted_ranges() {
        assert_eq!(
            tune_concave((5, 4), (0, 1), |_| 0.0).unwrap_err(),
            Error::EmptyTuningRange
        );
        assert_eq!(
            tune_concave((0, 1), (7, 2), |_| 0.0).unwrap_err(),
            Error::EmptyTuningRange
        );
    }

    #[test]
    fn ternary_degenerate_single_point() {
        let r = tune_concave((3, 3), (5, 5), |_| 1.0).unwrap();
        assert_eq!(r.params, ScheduleParams::new(3, 5));
    }

    #[test]
    fn ternary_curves_are_sorted_unique() {
        let r = tune_concave((0, 500), (0, 500), |p| {
            ((p.t_switch as f64) - 200.0).abs() + ((p.t_share as f64) - 300.0).abs()
        })
        .unwrap();
        for curve in [&r.t_switch_curve, &r.t_share_curve] {
            assert!(curve.windows(2).all(|w| w[0].value < w[1].value));
        }
    }

    #[test]
    fn concavity_check_accepts_fig7_shapes() {
        let pts = |ts: &[(usize, f64)]| -> Vec<SweepPoint> {
            ts.iter()
                .map(|&(value, time)| SweepPoint { value, time })
                .collect()
        };
        assert!(is_concave_around_min(
            &pts(&[(0, 9.0), (1, 5.0), (2, 3.0), (4, 4.0), (8, 8.0)]),
            0.0
        ));
        // A second dip breaks it.
        assert!(!is_concave_around_min(
            &pts(&[(0, 9.0), (1, 3.0), (2, 6.0), (4, 4.0), (8, 8.0)]),
            0.0
        ));
        // Noise within tolerance is accepted.
        assert!(is_concave_around_min(
            &pts(&[(0, 9.0), (1, 5.0), (2, 3.0), (4, 2.95), (8, 8.0)]),
            0.05
        ));
        assert!(is_concave_around_min(&pts(&[(0, 1.0)]), 0.0));
    }
}
