//! Wavefront enumeration.
//!
//! For a given pattern, all cells marked with the same number in Fig 2 can
//! be processed in parallel; this module defines, for every pattern, the
//! wave a cell belongs to, the canonical order of cells *within* a wave,
//! and iterators over those cells. The within-wave order is also the order
//! cells are laid out in memory by the wave-major layouts (§IV-B), and the
//! order in which the scheduler counts off the "first `t_share` cells"
//! assigned to the CPU (§III).

use crate::cell::ContributingSet;
use crate::pattern::Pattern;
use std::ops::Range;

/// Table dimensions, in cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims {
    /// Number of rows (`i` ranges over `0..rows`).
    pub rows: usize,
    /// Number of columns (`j` ranges over `0..cols`).
    pub cols: usize,
}

impl Dims {
    /// Convenience constructor.
    pub const fn new(rows: usize, cols: usize) -> Self {
        Dims { rows, cols }
    }

    /// Total number of cells.
    pub const fn len(self) -> usize {
        self.rows * self.cols
    }

    /// True when the table has no cells.
    pub const fn is_empty(self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Whether `(i, j)` lies inside the table.
    pub const fn contains(self, i: usize, j: usize) -> bool {
        i < self.rows && j < self.cols
    }
}

/// Index of the wave containing cell `(i, j)` under `pattern`.
pub fn wave_of(pattern: Pattern, dims: Dims, i: usize, j: usize) -> usize {
    debug_assert!(dims.contains(i, j));
    match pattern {
        Pattern::AntiDiagonal => i + j,
        Pattern::Horizontal => i,
        Pattern::Vertical => j,
        Pattern::KnightMove => 2 * i + j,
        Pattern::InvertedL => i.min(j),
        Pattern::MirroredInvertedL => i.min(dims.cols - 1 - j),
    }
}

/// Position of `(i, j)` within its wave's canonical order.
///
/// The canonical order is *increasing column index* `j` (breaking ties —
/// which only the inverted-L column arm has — by increasing `i`):
/// - anti-diagonal / knight-move waves: increasing `j` (decreasing `i`);
/// - horizontal waves: increasing `j`; vertical waves: increasing `i`;
/// - inverted-L shell `k`: the column arm `(k..rows, k)` top-to-bottom
///   (all at `j = k`), then the row arm `(k, k+1..cols)` left-to-right;
/// - mirrored inverted-L: the inverted-L order of the column-reflected
///   cell (so *decreasing* `j`).
///
/// Ordering by column makes the scheduler's "first `t_share` cells go to
/// the CPU" rule (§III) a contiguous *left column band*: the CPU owns the
/// cells nearest the table's left edge in every wave, matching the blue
/// regions of Figs 3–6 and producing exactly the Table II transfer
/// directions.
pub fn position_in_wave(pattern: Pattern, dims: Dims, i: usize, j: usize) -> usize {
    debug_assert!(dims.contains(i, j));
    match pattern {
        Pattern::AntiDiagonal => {
            let w = i + j;
            let jlo = w.saturating_sub(dims.rows - 1);
            j - jlo
        }
        Pattern::Horizontal => j,
        Pattern::Vertical => i,
        Pattern::KnightMove => {
            // j = w - 2i has fixed parity within a wave; consecutive
            // positions differ by 2 in j.
            let w = 2 * i + j;
            let jlo = jlo_knight(dims, w);
            (j - jlo) / 2
        }
        Pattern::InvertedL => {
            let k = i.min(j);
            if j == k {
                // Column arm (includes the corner).
                i - k
            } else {
                // Row arm, after the (rows - k) column-arm cells.
                (dims.rows - k) + (j - k - 1)
            }
        }
        Pattern::MirroredInvertedL => {
            position_in_wave(Pattern::InvertedL, dims, i, dims.cols - 1 - j)
        }
    }
}

/// Smallest column index present in knight-move wave `w`: the least
/// `j ≡ w (mod 2)` with `(w - j)/2 < rows`.
fn jlo_knight(dims: Dims, w: usize) -> usize {
    let bound = w.saturating_sub(2 * (dims.rows - 1));
    // Round up to the parity of w.
    if bound % 2 == w % 2 {
        bound
    } else {
        bound + 1
    }
}

/// The cell at `pos` within wave `w` — the inverse of
/// [`position_in_wave`]. Panics (in debug builds) when out of range.
pub fn cell_at(pattern: Pattern, dims: Dims, w: usize, pos: usize) -> (usize, usize) {
    debug_assert!(
        pos < pattern.wave_len(dims.rows, dims.cols, w),
        "pos {pos} out of wave {w}"
    );
    match pattern {
        Pattern::AntiDiagonal => {
            let jlo = w.saturating_sub(dims.rows - 1);
            let j = jlo + pos;
            (w - j, j)
        }
        Pattern::Horizontal => (w, pos),
        Pattern::Vertical => (pos, w),
        Pattern::KnightMove => {
            let j = jlo_knight(dims, w) + 2 * pos;
            ((w - j) / 2, j)
        }
        Pattern::InvertedL => {
            let col_arm = dims.rows - w;
            if pos < col_arm {
                (w + pos, w)
            } else {
                (w, w + 1 + (pos - col_arm))
            }
        }
        Pattern::MirroredInvertedL => {
            let (i, j) = cell_at(Pattern::InvertedL, dims, w, pos);
            (i, dims.cols - 1 - j)
        }
    }
}

/// One straight-line stretch of a wave: cell `p` (for `p` in
/// `0..len`) sits at `(i0 + di*p, j0 + dj*p)`, occupying canonical
/// positions `pos0..pos0 + len` of the wave. Every wave of every
/// pattern is one segment, except the inverted-L shells, which are a
/// column arm followed by a row arm.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WaveSegment {
    pub i0: i64,
    pub di: i64,
    pub j0: i64,
    pub dj: i64,
    pub len: usize,
    pub pos0: usize,
}

/// The ≤ 2 linear segments making up wave `w` (in canonical order).
/// Unused slots are `None`; empty segments are omitted.
pub(crate) fn wave_segments(pattern: Pattern, dims: Dims, w: usize) -> [Option<WaveSegment>; 2] {
    let Dims { rows, cols } = dims;
    if dims.is_empty() || w >= pattern.num_waves(rows, cols) {
        return [None, None];
    }
    let seg = |i0: usize, di: i64, j0: usize, dj: i64, len: usize, pos0: usize| {
        (len > 0).then_some(WaveSegment {
            i0: i0 as i64,
            di,
            j0: j0 as i64,
            dj,
            len,
            pos0,
        })
    };
    match pattern {
        Pattern::AntiDiagonal => {
            let jlo = w.saturating_sub(rows - 1);
            let len = pattern.wave_len(rows, cols, w);
            [seg(w - jlo, -1, jlo, 1, len, 0), None]
        }
        Pattern::Horizontal => [seg(w, 0, 0, 1, cols, 0), None],
        Pattern::Vertical => [seg(0, 1, w, 0, rows, 0), None],
        Pattern::KnightMove => {
            let jlo = jlo_knight(dims, w);
            let len = pattern.wave_len(rows, cols, w);
            [seg((w - jlo) / 2, -1, jlo, 2, len, 0), None]
        }
        Pattern::InvertedL => [
            seg(w, 1, w, 0, rows - w, 0),
            seg(w, 0, w + 1, 1, cols - w - 1, rows - w),
        ],
        Pattern::MirroredInvertedL => [
            seg(w, 1, cols - 1 - w, 0, rows - w, 0),
            (cols - w - 1 > 0).then(|| WaveSegment {
                i0: w as i64,
                di: 0,
                j0: (cols - w - 2) as i64,
                dj: -1,
                len: cols - w - 1,
                pos0: rows - w,
            }),
        ],
    }
}

/// Canonical-position ranges of the cells of wave `w` whose declared
/// neighbours (the directions in `set`) are *all* in bounds — the
/// interior runs a bulk kernel may compute without boundary branches.
/// At most two ranges (the arms of an inverted-L shell), in increasing
/// position order; the wave's remaining cells are border cells.
pub(crate) fn interior_runs(
    pattern: Pattern,
    dims: Dims,
    set: ContributingSet,
    w: usize,
) -> Vec<Range<usize>> {
    let mut runs = Vec::with_capacity(2);
    for seg in wave_segments(pattern, dims, w).into_iter().flatten() {
        // Clamp p so every `(i0 + di*p + oi, j0 + dj*p + oj)` stays
        // inside the table; each bound is linear in p.
        let mut lo: i64 = 0;
        let mut hi: i64 = seg.len as i64 - 1;
        for dep in set.iter() {
            let (oi, oj) = dep.offset();
            clamp_linear(
                &mut lo,
                &mut hi,
                seg.i0 + oi as i64,
                seg.di,
                dims.rows as i64 - 1,
            );
            clamp_linear(
                &mut lo,
                &mut hi,
                seg.j0 + oj as i64,
                seg.dj,
                dims.cols as i64 - 1,
            );
        }
        if lo <= hi {
            let start = seg.pos0 + lo as usize;
            runs.push(start..seg.pos0 + hi as usize + 1);
        }
    }
    runs
}

/// Tightens `[lo, hi]` so that `0 <= a + b*p <= max` for all `p` in it.
fn clamp_linear(lo: &mut i64, hi: &mut i64, a: i64, b: i64, max: i64) {
    match b.cmp(&0) {
        std::cmp::Ordering::Equal => {
            if a < 0 || a > max {
                *hi = *lo - 1;
            }
        }
        std::cmp::Ordering::Greater => {
            *lo = (*lo).max(div_ceil_i64(-a, b));
            *hi = (*hi).min(div_floor_i64(max - a, b));
        }
        std::cmp::Ordering::Less => {
            *lo = (*lo).max(div_ceil_i64(a - max, -b));
            *hi = (*hi).min(div_floor_i64(a, -b));
        }
    }
}

fn div_floor_i64(x: i64, y: i64) -> i64 {
    debug_assert!(y > 0);
    x.div_euclid(y)
}

fn div_ceil_i64(x: i64, y: i64) -> i64 {
    debug_assert!(y > 0);
    -(-x).div_euclid(y)
}

/// Iterates the cells of wave `w` in canonical order.
pub fn wave_cells(pattern: Pattern, dims: Dims, w: usize) -> impl Iterator<Item = (usize, usize)> {
    let len = pattern.wave_len(dims.rows, dims.cols, w);
    (0..len).map(move |pos| cell_at(pattern, dims, w, pos))
}

/// Iterates every cell of the table in wave order — wave by wave, each in
/// canonical order. Every cell appears exactly once, and every cell's
/// representative-set dependencies appear before it.
pub fn all_cells(pattern: Pattern, dims: Dims) -> impl Iterator<Item = (usize, usize)> {
    (0..pattern.num_waves(dims.rows, dims.cols)).flat_map(move |w| wave_cells(pattern, dims, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::ContributingSet;
    use crate::cell::RepCell;
    use crate::pattern::classify;

    const SHAPES: [(usize, usize); 7] = [(1, 1), (1, 6), (6, 1), (3, 5), (5, 3), (7, 7), (2, 9)];

    #[test]
    fn wave_of_matches_membership() {
        for p in Pattern::ALL {
            for (r, c) in SHAPES {
                let dims = Dims::new(r, c);
                for w in 0..p.num_waves(r, c) {
                    for (i, j) in wave_cells(p, dims, w) {
                        assert_eq!(wave_of(p, dims, i, j), w, "{p} {r}x{c} cell ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn position_roundtrips_through_cell_at() {
        for p in Pattern::ALL {
            for (r, c) in SHAPES {
                let dims = Dims::new(r, c);
                for i in 0..r {
                    for j in 0..c {
                        let w = wave_of(p, dims, i, j);
                        let pos = position_in_wave(p, dims, i, j);
                        assert_eq!(
                            cell_at(p, dims, w, pos),
                            (i, j),
                            "{p} {r}x{c} ({i},{j}) w={w} pos={pos}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_cells_visits_each_cell_once() {
        for p in Pattern::ALL {
            for (r, c) in SHAPES {
                let dims = Dims::new(r, c);
                let mut seen = vec![false; r * c];
                let mut count = 0;
                for (i, j) in all_cells(p, dims) {
                    assert!(dims.contains(i, j));
                    assert!(!seen[i * c + j], "{p}: duplicate ({i},{j})");
                    seen[i * c + j] = true;
                    count += 1;
                }
                assert_eq!(count, r * c, "{p} on {r}x{c}");
            }
        }
    }

    /// The defining safety property: any representative cell in the
    /// pattern's admissible contributing sets lies in a *strictly earlier*
    /// wave.
    #[test]
    fn dependencies_precede_their_wave() {
        for set in ContributingSet::table_one_rows() {
            let p = classify(set).unwrap();
            for (r, c) in SHAPES {
                let dims = Dims::new(r, c);
                for i in 0..r {
                    for j in 0..c {
                        let w = wave_of(p, dims, i, j);
                        for dep in set.iter() {
                            if let Some((si, sj)) = dep.source(i, j, r, c) {
                                let sw = wave_of(p, dims, si, sj);
                                assert!(
                                    sw < w,
                                    "{p} {set}: ({i},{j}) wave {w} depends on ({si},{sj}) wave {sw}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn within_wave_cells_are_mutually_independent() {
        // No representative cell of a wave member may be another member of
        // the same wave (checked across all patterns and all sets mapping
        // to that pattern).
        for set in ContributingSet::table_one_rows() {
            let p = classify(set).unwrap();
            let dims = Dims::new(5, 7);
            for w in 0..p.num_waves(5, 7) {
                let members: Vec<_> = wave_cells(p, dims, w).collect();
                for &(i, j) in &members {
                    for dep in set.iter() {
                        if let Some(src) = dep.source(i, j, 5, 7) {
                            assert!(
                                !members.contains(&src),
                                "{p} {set}: wave {w} self-dependency {src:?} -> ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn anti_diagonal_order_is_increasing_j() {
        let dims = Dims::new(4, 4);
        let cells: Vec<_> = wave_cells(Pattern::AntiDiagonal, dims, 3).collect();
        assert_eq!(cells, vec![(3, 0), (2, 1), (1, 2), (0, 3)]);
        // In the lower triangle the wave no longer starts at column 0.
        let cells: Vec<_> = wave_cells(Pattern::AntiDiagonal, dims, 5).collect();
        assert_eq!(cells, vec![(3, 2), (2, 3)]);
    }

    #[test]
    fn inverted_l_order_column_arm_then_row_arm() {
        let dims = Dims::new(4, 5);
        let cells: Vec<_> = wave_cells(Pattern::InvertedL, dims, 1).collect();
        assert_eq!(cells, vec![(1, 1), (2, 1), (3, 1), (1, 2), (1, 3), (1, 4)]);
    }

    #[test]
    fn canonical_order_is_increasing_j() {
        // Except mirrored-inverted-L (decreasing j by construction) and
        // ties on the inverted-L column arm, positions sort by column.
        for p in [
            Pattern::AntiDiagonal,
            Pattern::Horizontal,
            Pattern::KnightMove,
            Pattern::InvertedL,
        ] {
            let dims = Dims::new(5, 7);
            for w in 0..p.num_waves(5, 7) {
                let cols: Vec<_> = wave_cells(p, dims, w).map(|(_, j)| j).collect();
                assert!(
                    cols.windows(2).all(|c| c[0] <= c[1]),
                    "{p} wave {w}: {cols:?}"
                );
            }
        }
    }

    #[test]
    fn mirrored_inverted_l_is_column_reflection() {
        let dims = Dims::new(4, 5);
        let mirror: Vec<_> = wave_cells(Pattern::MirroredInvertedL, dims, 1).collect();
        let plain: Vec<_> = wave_cells(Pattern::InvertedL, dims, 1)
            .map(|(i, j)| (i, dims.cols - 1 - j))
            .collect();
        assert_eq!(mirror, plain);
    }

    #[test]
    fn knight_move_first_waves() {
        let dims = Dims::new(3, 4);
        assert_eq!(
            wave_cells(Pattern::KnightMove, dims, 0).collect::<Vec<_>>(),
            vec![(0, 0)]
        );
        assert_eq!(
            wave_cells(Pattern::KnightMove, dims, 1).collect::<Vec<_>>(),
            vec![(0, 1)]
        );
        assert_eq!(
            wave_cells(Pattern::KnightMove, dims, 2).collect::<Vec<_>>(),
            vec![(1, 0), (0, 2)]
        );
        assert_eq!(
            wave_cells(Pattern::KnightMove, dims, 3).collect::<Vec<_>>(),
            vec![(1, 1), (0, 3)]
        );
    }

    #[test]
    fn horizontal_and_vertical_orders() {
        let dims = Dims::new(2, 3);
        assert_eq!(
            wave_cells(Pattern::Horizontal, dims, 1).collect::<Vec<_>>(),
            vec![(1, 0), (1, 1), (1, 2)]
        );
        assert_eq!(
            wave_cells(Pattern::Vertical, dims, 2).collect::<Vec<_>>(),
            vec![(0, 2), (1, 2)]
        );
    }

    #[test]
    fn wave_segments_reproduce_canonical_order() {
        for p in Pattern::ALL {
            for (r, c) in SHAPES {
                let dims = Dims::new(r, c);
                for w in 0..p.num_waves(r, c) {
                    let mut cells = Vec::new();
                    for seg in wave_segments(p, dims, w).into_iter().flatten() {
                        assert_eq!(seg.pos0, cells.len(), "{p} {r}x{c} wave {w}");
                        for pp in 0..seg.len as i64 {
                            cells.push((
                                (seg.i0 + seg.di * pp) as usize,
                                (seg.j0 + seg.dj * pp) as usize,
                            ));
                        }
                    }
                    let expected: Vec<_> = wave_cells(p, dims, w).collect();
                    assert_eq!(cells, expected, "{p} {r}x{c} wave {w}");
                }
            }
        }
    }

    #[test]
    fn interior_runs_are_exactly_the_fully_in_bounds_cells() {
        for set in ContributingSet::table_one_rows() {
            for p in Pattern::ALL {
                for (r, c) in SHAPES {
                    let dims = Dims::new(r, c);
                    for w in 0..p.num_waves(r, c) {
                        let runs = interior_runs(p, dims, set, w);
                        assert!(runs.len() <= 2);
                        // Sorted, disjoint, in-range.
                        let mut last_end = 0;
                        for run in &runs {
                            assert!(run.start >= last_end && run.start < run.end);
                            assert!(run.end <= p.wave_len(r, c, w));
                            last_end = run.end;
                        }
                        // Membership matches per-cell bounds checking.
                        for (pos, (i, j)) in wave_cells(p, dims, w).enumerate() {
                            let in_run = runs.iter().any(|rg| rg.contains(&pos));
                            let all_deps_in =
                                set.iter().all(|dep| dep.source(i, j, r, c).is_some());
                            assert_eq!(
                                in_run, all_deps_in,
                                "{p} {set} {r}x{c} wave {w} pos {pos} cell ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn interior_runs_of_out_of_range_waves_are_empty() {
        let dims = Dims::new(3, 4);
        let set = ContributingSet::new(&[RepCell::Nw]);
        assert!(interior_runs(Pattern::AntiDiagonal, dims, set, 99).is_empty());
        assert!(interior_runs(Pattern::AntiDiagonal, Dims::new(0, 4), set, 0).is_empty());
    }

    #[test]
    fn dims_helpers() {
        let d = Dims::new(3, 4);
        assert_eq!(d.len(), 12);
        assert!(!d.is_empty());
        assert!(Dims::new(0, 4).is_empty());
        assert!(d.contains(2, 3));
        assert!(!d.contains(3, 0));
        assert!(!d.contains(0, 4));
    }

    /// `RepCell::source` agrees with manual arithmetic on random cells —
    /// a guard for the wavefront dependency tests above.
    #[test]
    fn rep_cell_sources_in_bounds_only() {
        let dims = Dims::new(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                for dep in [RepCell::W, RepCell::Nw, RepCell::N, RepCell::Ne] {
                    let src = dep.source(i, j, dims.rows, dims.cols);
                    if let Some((si, sj)) = src {
                        assert!(dims.contains(si, sj));
                    }
                }
            }
        }
    }
}
