//! Rolling wave-band execution: exact anti-diagonal solves with an
//! `O(rows + cols)` working set.
//!
//! Every grid-producing engine materializes the full `O(n·m)` table,
//! which caps grid size at RAM long before it caps it at compute. For
//! the anti-diagonal pattern the dependency structure is shallow: wave
//! `w` reads only waves `w-1` (W, N) and `w-2` (NW), so a ring of three
//! band buffers — each `min(rows, cols)` cells — is a complete working
//! set. This module walks the wave schedule over that ring and hands
//! each sealed wave to a visitor, from which the public helpers capture
//! exactly what answer-level callers need:
//!
//! * [`solve_corner`] — the bottom-right cell (LCS length, edit
//!   distance, global alignment score, DTW distance);
//! * [`solve_row`] — one full grid row (the Hirschberg midpoint split);
//! * [`solve_best`] — an arg-best fold over every cell (Smith–Waterman
//!   local maxima).
//!
//! The band layout deliberately matches [`WaveKernel::compute_run`]'s
//! run orientation — position `p` within a wave is cell
//! `(w - j_lo - p, j_lo + p)`, i.e. increasing `j`, decreasing `i` — so
//! interior runs are handed to the *same* bulk/SIMD bodies the
//! full-table engine uses, as plain slices into the ring. Within one
//! wave at most the first and last cells touch the table border; the
//! rest is a single contiguous interior run. Results are therefore
//! bit-identical to the full-table engines by construction (the same
//! `compute`/`compute_run` code computes every cell), which the
//! property tests and the cross-engine consistency matrix pin down.
//!
//! Patterns other than anti-diagonal are rejected with
//! [`Error::PlanMismatch`]; the caller falls back to a full-table
//! solve. The multi-threaded rolling path lives in `lddp-parallel`,
//! layered over the same indexing scheme.

use crate::cell::RepCell;
use crate::error::{Error, Result};
use crate::kernel::{simd_available, ExecTier, Kernel};
use crate::kernel::{MemoryMode, Neighbors};
use crate::pattern::{classify, Pattern};

/// What a rolling solve used and touched, for telemetry and tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollingStats {
    /// Tier the interior runs executed on (never `BitParallel`).
    pub tier: ExecTier,
    /// Number of waves walked (`rows + cols - 1`, 0 for empty tables).
    pub waves: usize,
    /// Peak working-set bytes: the three ring bands. This is the number
    /// the `lddp_engine_table_bytes` gauge reports in rolling mode.
    pub peak_bytes: usize,
}

/// Bytes the full-table engine would allocate for `kernel`'s grid —
/// the other arm of the tuner's memory model.
pub fn full_table_bytes<K: Kernel + ?Sized>(kernel: &K) -> usize {
    kernel.dims().len() * std::mem::size_of::<K::Cell>()
}

/// Bytes the rolling ring will allocate for `kernel`'s grid.
pub fn rolling_bytes<K: Kernel + ?Sized>(kernel: &K) -> usize {
    let d = kernel.dims();
    3 * d.rows.min(d.cols) * std::mem::size_of::<K::Cell>()
}

/// Resolves the tier a rolling solve will run interior runs on:
/// auto-selects the best available rung, honors an explicit request by
/// downgrading past rungs the kernel doesn't implement. `BitParallel`
/// is answer-level and table-free, so it maps to auto here.
pub fn resolve_tier<K: Kernel + ?Sized>(kernel: &K, requested: Option<ExecTier>) -> ExecTier {
    let auto = if kernel.simd_kernel().is_some() && simd_available() {
        ExecTier::Simd
    } else if kernel.wave_kernel().is_some() {
        ExecTier::Bulk
    } else {
        ExecTier::Scalar
    };
    match requested {
        None | Some(ExecTier::BitParallel) => auto,
        Some(t) => {
            let mut t = t.min(auto);
            if t == ExecTier::Bulk && kernel.wave_kernel().is_none() {
                t = ExecTier::Scalar;
            }
            t
        }
    }
}

/// Is `kernel` eligible for rolling execution? True exactly when its
/// contributing set schedules as a pure anti-diagonal wavefront with
/// dependencies no deeper than two waves back (`W`, `NW`, `N`).
pub fn supports_rolling<K: Kernel + ?Sized>(kernel: &K) -> bool {
    let set = kernel.contributing_set();
    classify(set).map(Pattern::canonical) == Some(Pattern::AntiDiagonal)
        && !set.contains(RepCell::Ne)
}

/// Walks the anti-diagonal wave schedule over a ring of three band
/// buffers, calling `visit(w, j_lo, cells)` once per sealed wave.
///
/// `cells[p]` is cell `(w - j_lo - p, j_lo + p)` where
/// `j_lo = max(0, w - rows + 1)` — increasing column order, matching
/// [`crate::kernel::WaveKernel::compute_run`].
///
/// `requested` pins the execution tier as in the full-table engine
/// (downgrading past unavailable rungs); `None` auto-selects.
pub fn solve_waves<K, F>(
    kernel: &K,
    requested: Option<ExecTier>,
    mut visit: F,
) -> Result<RollingStats>
where
    K: Kernel + ?Sized,
    F: FnMut(usize, usize, &[K::Cell]),
{
    let dims = kernel.dims();
    let set = kernel.contributing_set();
    if set.is_empty() {
        return Err(Error::EmptyContributingSet);
    }
    if !supports_rolling(kernel) {
        return Err(Error::PlanMismatch {
            expected: "anti-diagonal contributing set (rolling wave-band mode)".into(),
            found: format!("{set:?}"),
        });
    }
    let tier = resolve_tier(kernel, requested);
    if dims.is_empty() {
        return Ok(RollingStats {
            tier,
            waves: 0,
            peak_bytes: 0,
        });
    }
    let (rows, cols) = (dims.rows, dims.cols);
    let band = rows.min(cols);
    let num_waves = rows + cols - 1;
    let mut bufs: [Vec<K::Cell>; 3] = [
        vec![K::Cell::default(); band],
        vec![K::Cell::default(); band],
        vec![K::Cell::default(); band],
    ];
    let has_w = set.contains(RepCell::W);
    let has_nw = set.contains(RepCell::Nw);
    let has_n = set.contains(RepCell::N);
    let wave_body = kernel.wave_kernel();
    let simd_body = kernel.simd_kernel();

    for w in 0..num_waves {
        let j_lo = w.saturating_sub(rows - 1);
        let j_hi = (cols - 1).min(w);
        // Band positions of the two previous waves in the ring.
        let j_lo1 = (w.saturating_sub(1)).saturating_sub(rows - 1);
        let j_lo2 = (w.saturating_sub(2)).saturating_sub(rows - 1);
        let [b0, b1, b2] = &mut bufs;
        let (cur, prev1, prev2) = match w % 3 {
            0 => (&mut b0[..], &b2[..], &b1[..]),
            1 => (&mut b1[..], &b0[..], &b2[..]),
            _ => (&mut b2[..], &b1[..], &b0[..]),
        };
        // Interior columns: every declared dependency in bounds
        // (i ≥ 1 and j ≥ 1), so bulk/SIMD run bodies apply.
        let ji_lo = j_lo.max(1);
        let ji_hi = j_hi.min(w.saturating_sub(1));
        let interior = tier != ExecTier::Scalar && ji_lo <= ji_hi && w >= 1;

        let scalar_cell = |cur: &mut [K::Cell], j: usize| {
            let i = w - j;
            let mut nb = Neighbors::empty();
            if j > 0 {
                // (i, j-1) sits on wave w-1; (i-1, j-1) on wave w-2.
                if has_w {
                    nb.w = Some(prev1[j - 1 - j_lo1]);
                }
                if has_nw && i > 0 {
                    nb.nw = Some(prev2[j - 1 - j_lo2]);
                }
            }
            if has_n && i > 0 {
                nb.n = Some(prev1[j - j_lo1]);
            }
            cur[j - j_lo] = kernel.compute(i, j, &nb);
        };

        if !interior {
            for j in j_lo..=j_hi {
                scalar_cell(cur, j);
            }
        } else {
            for j in j_lo..ji_lo {
                scalar_cell(cur, j);
            }
            for j in (ji_hi + 1)..=j_hi {
                scalar_cell(cur, j);
            }
            let count = ji_hi - ji_lo + 1;
            let i0 = w - ji_lo;
            let p0 = ji_lo - j_lo;
            let out = &mut cur[p0..p0 + count];
            let empty: &[K::Cell] = &[];
            let w_run = if has_w {
                &prev1[ji_lo - 1 - j_lo1..ji_lo - 1 - j_lo1 + count]
            } else {
                empty
            };
            let n_run = if has_n {
                &prev1[ji_lo - j_lo1..ji_lo - j_lo1 + count]
            } else {
                empty
            };
            let nw_run = if has_nw {
                &prev2[ji_lo - 1 - j_lo2..ji_lo - 1 - j_lo2 + count]
            } else {
                empty
            };
            match tier {
                ExecTier::Simd => {
                    let body = simd_body.expect("Simd tier implies simd_kernel");
                    body.compute_run_simd(i0, ji_lo, out, w_run, nw_run, n_run, empty);
                }
                _ => {
                    let body = wave_body.expect("Bulk tier implies wave_kernel");
                    body.compute_run(i0, ji_lo, out, w_run, nw_run, n_run, empty);
                }
            }
        }

        visit(w, j_lo, &cur[..j_hi - j_lo + 1]);
    }

    Ok(RollingStats {
        tier,
        waves: num_waves,
        peak_bytes: 3 * band * std::mem::size_of::<K::Cell>(),
    })
}

/// Solves in rolling mode and returns the bottom-right cell — the
/// answer cell for LCS / Levenshtein / Needleman–Wunsch / DTW. `None`
/// only for empty tables.
pub fn solve_corner<K: Kernel + ?Sized>(
    kernel: &K,
    requested: Option<ExecTier>,
) -> Result<(Option<K::Cell>, RollingStats)> {
    let dims = kernel.dims();
    let mut corner = None;
    let last = (dims.rows + dims.cols).saturating_sub(2);
    let stats = solve_waves(kernel, requested, |w, _j_lo, cells| {
        if w == last {
            corner = cells.last().copied();
        }
    })?;
    Ok((corner, stats))
}

/// Solves in rolling mode and captures grid row `row` (all `cols`
/// cells) — the forward half of a Hirschberg midpoint split.
pub fn solve_row<K: Kernel + ?Sized>(
    kernel: &K,
    row: usize,
    requested: Option<ExecTier>,
) -> Result<(Vec<K::Cell>, RollingStats)> {
    let dims = kernel.dims();
    assert!(
        row < dims.rows,
        "solve_row: row {row} out of range for {} rows",
        dims.rows
    );
    let mut out = vec![K::Cell::default(); dims.cols];
    let stats = solve_waves(kernel, requested, |w, j_lo, cells| {
        // Row `row` contributes cell (row, w - row) to wave w.
        if w >= row {
            let j = w - row;
            if j < dims.cols {
                out[j] = cells[j - j_lo];
            }
        }
    })?;
    Ok((out, stats))
}

/// Arg-best of a rolling solve: the winning `(row, col, cell)`, or
/// `None` for an empty grid.
pub type BestCell<C> = Option<(usize, usize, C)>;

/// Solves in rolling mode and returns the arg-best cell under `score`,
/// with ties resolved to the earliest cell in wave order (increasing
/// wave, then increasing column) — the Smith–Waterman endpoint scan.
pub fn solve_best<K: Kernel + ?Sized>(
    kernel: &K,
    requested: Option<ExecTier>,
    score: impl Fn(&K::Cell) -> i64,
) -> Result<(BestCell<K::Cell>, RollingStats)> {
    let mut best: Option<(i64, usize, usize, K::Cell)> = None;
    let stats = solve_waves(kernel, requested, |w, j_lo, cells| {
        for (p, c) in cells.iter().enumerate() {
            let s = score(c);
            if best.is_none_or(|(bs, ..)| s > bs) {
                let j = j_lo + p;
                best = Some((s, w - j, j, *c));
            }
        }
    })?;
    Ok((best.map(|(_, i, j, c)| (i, j, c)), stats))
}

/// One completed slice of the wave schedule, as emitted by a streaming
/// rolling solve (`lddp-parallel`'s `solve_rolling_stream`, the serve
/// crate's `POST /solve?stream=1`).
///
/// Bands are slices of the *wave* schedule, not literal row bands: on a
/// square grid, row 0 only seals at wave `cols - 1` — halfway through
/// the schedule — so equal-row bands would hold the first frame back
/// for ~50% of the solve. Equal-cell wave bands instead put the first
/// frame `~cells_total / bands` cells in, and each event reports the
/// `rows_completed` watermark (grid rows fully sealed so far) for
/// callers that think in rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandEvent {
    /// 0-based index of this band.
    pub band: usize,
    /// Total bands in the schedule.
    pub bands: usize,
    /// First wave of the band.
    pub wave_lo: usize,
    /// Last wave of the band (inclusive); the band is sealed once this
    /// wave's barrier passes.
    pub wave_hi: usize,
    /// Grid rows fully computed after `wave_hi` (row `r` seals at wave
    /// `r + cols - 1`).
    pub rows_completed: usize,
    /// Total grid rows.
    pub rows: usize,
    /// Cells computed so far, cumulative across bands.
    pub cells_done: u64,
    /// Total cells in the grid.
    pub cells_total: u64,
    /// Running frontier score: the value of the last cell of `wave_hi`
    /// (the cell walking down the rightmost column toward the corner),
    /// projected to `f64` by the caller's score function.
    pub score: f64,
    /// Running arg-best score, when the solve tracks one (the
    /// Smith–Waterman endpoint fold); `None` otherwise.
    pub best: Option<f64>,
}

/// An equal-cell split of the anti-diagonal wave schedule into at most
/// `bands` contiguous slices — the emission plan of a streaming rolling
/// solve. Waves are never split across bands, so a band boundary is
/// always a sealed barrier the emitter can publish behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandSchedule {
    /// Last wave (inclusive) of each band, strictly increasing; the
    /// final entry is the last wave of the schedule.
    ends: Vec<usize>,
    rows: usize,
    cols: usize,
    cells_total: u64,
}

impl BandSchedule {
    /// Splits the `rows + cols - 1` waves of a `rows × cols` grid into
    /// at most `bands` slices of near-equal cell count. Requests are
    /// clamped: at least one band, never more bands than waves. Empty
    /// grids get an empty schedule.
    pub fn new(rows: usize, cols: usize, bands: usize) -> BandSchedule {
        if rows == 0 || cols == 0 {
            return BandSchedule {
                ends: Vec::new(),
                rows,
                cols,
                cells_total: 0,
            };
        }
        let num_waves = rows + cols - 1;
        let bands = bands.clamp(1, num_waves) as u64;
        let cells_total = (rows * cols) as u64;
        let mut ends = Vec::with_capacity(bands as usize);
        let mut cum = 0u64;
        let mut k = 1u64;
        for w in 0..num_waves {
            cum += Self::wave_len_of(rows, cols, w) as u64;
            // Close band k-1 at the first wave reaching its share of
            // the cell budget; a wave crossing several thresholds
            // closes one band and skips the rest.
            if cum * bands >= k * cells_total {
                ends.push(w);
                while k <= bands && cum * bands >= k * cells_total {
                    k += 1;
                }
            }
        }
        debug_assert_eq!(ends.last().copied(), Some(num_waves - 1));
        BandSchedule {
            ends,
            rows,
            cols,
            cells_total,
        }
    }

    /// Number of bands actually scheduled (≤ the requested count).
    pub fn bands(&self) -> usize {
        self.ends.len()
    }

    /// Last wave (inclusive) of each band, strictly increasing.
    pub fn ends(&self) -> &[usize] {
        &self.ends
    }

    /// Total cells in the grid.
    pub fn cells_total(&self) -> u64 {
        self.cells_total
    }

    /// Cells on wave `w` of the schedule.
    pub fn wave_len(&self, w: usize) -> usize {
        Self::wave_len_of(self.rows, self.cols, w)
    }

    fn wave_len_of(rows: usize, cols: usize, w: usize) -> usize {
        (cols - 1).min(w) - w.saturating_sub(rows - 1) + 1
    }

    /// Grid rows fully sealed once wave `w` has completed: row `r`
    /// computes its last cell `(r, cols - 1)` on wave `r + cols - 1`.
    pub fn rows_completed(&self, w: usize) -> usize {
        (w + 2).saturating_sub(self.cols).min(self.rows)
    }

    /// Builds the [`BandEvent`] for band `band` sealing at wave `w`
    /// with `cells_done` cumulative cells; `score`/`best` come from the
    /// executor's captures.
    pub fn event(
        &self,
        band: usize,
        w: usize,
        cells_done: u64,
        score: f64,
        best: Option<f64>,
    ) -> BandEvent {
        let wave_lo = if band == 0 {
            0
        } else {
            self.ends[band - 1] + 1
        };
        BandEvent {
            band,
            bands: self.ends.len(),
            wave_lo,
            wave_hi: w,
            rows_completed: self.rows_completed(w),
            rows: self.rows,
            cells_done,
            cells_total: self.cells_total,
            score,
            best,
        }
    }
}

/// Formats a `(mode, bytes)` pair the way the CLI and docs report
/// working sets, e.g. `rolling (96.0 KiB)`.
pub fn describe(mode: MemoryMode, bytes: usize) -> String {
    let human = if bytes >= 1 << 30 {
        format!("{:.1} GiB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    };
    format!("{mode} ({human})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::ContributingSet;
    use crate::kernel::ClosureKernel;
    use crate::seq::solve_row_major;
    use crate::wavefront::Dims;

    /// LCS-shaped closure kernel over deterministic pseudo-sequences.
    fn lcs_like(
        rows: usize,
        cols: usize,
    ) -> ClosureKernel<u32, impl Fn(usize, usize, &Neighbors<u32>) -> u32 + Sync> {
        let a: Vec<u8> = (0..rows).map(|i| (i * 7 % 5) as u8).collect();
        let b: Vec<u8> = (0..cols).map(|j| (j * 3 % 5) as u8).collect();
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        ClosureKernel::new(
            Dims::new(rows, cols),
            set,
            move |i, j, nb: &Neighbors<u32>| {
                if i == 0 || j == 0 {
                    0
                } else if a[i - 1] == b[j - 1] {
                    nb.nw.unwrap() + 1
                } else {
                    nb.w.unwrap().max(nb.n.unwrap())
                }
            },
        )
    }

    #[test]
    fn corner_matches_full_table_oracle_across_shapes() {
        for (rows, cols) in [
            (1, 1),
            (1, 9),
            (9, 1),
            (2, 2),
            (7, 13),
            (13, 7),
            (33, 33),
            (64, 5),
        ] {
            let k = lcs_like(rows, cols);
            let grid = solve_row_major(&k).unwrap();
            let (corner, stats) = solve_corner(&k, None).unwrap();
            assert_eq!(corner, Some(grid.get(rows - 1, cols - 1)), "{rows}x{cols}");
            assert_eq!(stats.waves, rows + cols - 1);
            assert!(stats.peak_bytes <= 3 * rows.min(cols) * 4);
        }
    }

    #[test]
    fn every_wave_cell_matches_the_oracle() {
        let k = lcs_like(11, 17);
        let grid = solve_row_major(&k).unwrap();
        let stats = solve_waves(&k, None, |w, j_lo, cells| {
            for (p, c) in cells.iter().enumerate() {
                let (i, j) = (w - j_lo - p, j_lo + p);
                assert_eq!(*c, grid.get(i, j), "cell ({i}, {j}) wave {w}");
            }
        })
        .unwrap();
        assert_eq!(stats.waves, 27);
    }

    #[test]
    fn captured_rows_match_the_oracle() {
        let k = lcs_like(10, 6);
        let grid = solve_row_major(&k).unwrap();
        for row in [0, 1, 5, 9] {
            let (cells, _) = solve_row(&k, row, None).unwrap();
            let want: Vec<u32> = (0..6).map(|j| grid.get(row, j)).collect();
            assert_eq!(cells, want, "row {row}");
        }
    }

    #[test]
    fn best_fold_finds_the_maximum_cell() {
        let k = lcs_like(12, 12);
        let grid = solve_row_major(&k).unwrap();
        let (best, _) = solve_best(&k, None, |c| *c as i64).unwrap();
        let (i, j, c) = best.unwrap();
        assert_eq!(c, grid.get(i, j));
        let max = (0..12)
            .flat_map(|i| (0..12).map(move |j| (i, j)))
            .map(|(i, j)| grid.get(i, j))
            .max()
            .unwrap();
        assert_eq!(c, max);
    }

    #[test]
    fn scalar_tier_request_matches_auto() {
        let k = lcs_like(19, 23);
        let (auto, s_auto) = solve_corner(&k, None).unwrap();
        let (scalar, s_scalar) = solve_corner(&k, Some(ExecTier::Scalar)).unwrap();
        assert_eq!(auto, scalar);
        assert_eq!(s_scalar.tier, ExecTier::Scalar);
        // ClosureKernel has no wave body, so auto is scalar too.
        assert_eq!(s_auto.tier, ExecTier::Scalar);
    }

    #[test]
    fn non_antidiagonal_patterns_are_rejected() {
        let set = ContributingSet::new(&[RepCell::W]);
        let k = ClosureKernel::new(Dims::new(4, 4), set, |_, _, nb: &Neighbors<u32>| {
            nb.w.unwrap_or(0) + 1
        });
        match solve_waves(&k, None, |_, _, _| {}) {
            Err(Error::PlanMismatch { .. }) => {}
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
        assert!(!supports_rolling(&k));
    }

    #[test]
    fn band_schedule_partitions_waves_with_near_equal_cells() {
        for (rows, cols, bands) in [
            (8usize, 8usize, 4usize),
            (64, 64, 8),
            (64, 64, 32),
            (100, 7, 5),
            (7, 100, 5),
            (1, 9, 3),
            (9, 1, 3),
            (5, 5, 64), // more bands than waves: clamped
        ] {
            let s = BandSchedule::new(rows, cols, bands);
            let num_waves = rows + cols - 1;
            assert!(s.bands() >= 1 && s.bands() <= bands.min(num_waves));
            assert_eq!(*s.ends().last().unwrap(), num_waves - 1, "{rows}x{cols}");
            assert!(s.ends().windows(2).all(|p| p[0] < p[1]));
            // Bands partition every wave exactly once; cell totals add
            // up to the grid.
            let mut lo = 0usize;
            let mut total = 0u64;
            let max_wave = (0..num_waves).map(|w| s.wave_len(w)).max().unwrap() as u64;
            let fair = s.cells_total() / s.bands() as u64;
            for (b, &end) in s.ends().iter().enumerate() {
                let cells: u64 = (lo..=end).map(|w| s.wave_len(w) as u64).sum();
                assert!(
                    cells <= fair + max_wave,
                    "{rows}x{cols} band {b}: {cells} cells vs fair {fair} + wave {max_wave}"
                );
                total += cells;
                lo = end + 1;
            }
            assert_eq!(total, s.cells_total());
            assert_eq!(s.cells_total(), (rows * cols) as u64);
        }
    }

    #[test]
    fn band_schedule_first_band_is_an_early_fraction_of_the_grid() {
        // The streaming TTFB claim rests on this: the first band seals
        // after ~1/bands of the cells, far before the first full *row*
        // would (wave cols-1, i.e. ~half the schedule on squares).
        let s = BandSchedule::new(512, 512, 32);
        let first_end = s.ends()[0];
        let first_cells: u64 = (0..=first_end).map(|w| s.wave_len(w) as u64).sum();
        assert!(
            first_cells <= s.cells_total() / 16,
            "first band holds {first_cells} of {} cells",
            s.cells_total()
        );
        assert_eq!(
            s.rows_completed(first_end),
            0,
            "wave bands seal long before any full row does"
        );
        assert_eq!(s.rows_completed(511 + 512 - 1), 512);
    }

    #[test]
    fn rows_completed_matches_brute_force() {
        let (rows, cols) = (9usize, 6usize);
        let s = BandSchedule::new(rows, cols, 4);
        for w in 0..rows + cols - 1 {
            let brute = (0..rows).filter(|&r| w >= r + cols - 1).count();
            assert_eq!(s.rows_completed(w), brute, "wave {w}");
        }
    }

    #[test]
    fn band_events_carry_the_schedule_geometry() {
        let s = BandSchedule::new(16, 16, 4);
        let mut cells = 0u64;
        let mut lo = 0usize;
        for (b, &end) in s.ends().to_vec().iter().enumerate() {
            cells += (lo..=end).map(|w| s.wave_len(w) as u64).sum::<u64>();
            let ev = s.event(b, end, cells, 1.5, Some(2.5));
            assert_eq!(ev.band, b);
            assert_eq!(ev.bands, s.bands());
            assert_eq!(ev.wave_lo, lo);
            assert_eq!(ev.wave_hi, end);
            assert_eq!(ev.rows, 16);
            assert_eq!(ev.cells_total, 256);
            assert_eq!(ev.cells_done, cells);
            assert_eq!(ev.score, 1.5);
            assert_eq!(ev.best, Some(2.5));
            lo = end + 1;
        }
        assert_eq!(cells, 256);
        // Empty grids: no bands, nothing to stream.
        assert_eq!(BandSchedule::new(0, 4, 3).bands(), 0);
    }

    #[test]
    fn memory_model_prefers_rolling_exactly_when_it_is_smaller() {
        let k = lcs_like(64, 64);
        assert_eq!(full_table_bytes(&k), 64 * 64 * 4);
        assert_eq!(rolling_bytes(&k), 3 * 64 * 4);
        assert!(rolling_bytes(&k) < full_table_bytes(&k));
        assert_eq!(
            describe(MemoryMode::Rolling, 96 * 1024),
            "rolling (96.0 KiB)"
        );
    }
}
