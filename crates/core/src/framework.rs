//! Framework front door: classification, symmetry adapters and execution
//! choices (§III).
//!
//! The framework receives a user [`Kernel`], classifies its contributing
//! set (Table I), and decides *how to execute it*:
//!
//! - Anti-diagonal and knight-move problems run under their own pattern.
//! - Inverted-L and mirrored-inverted-L problems run under **horizontal
//!   case 1** — §V-B shows the uniform, coalescing-friendly rows beat the
//!   shrinking L-shells (both `{NW}` and `{NE}` are row-only sets, so no
//!   adapter is needed, just a different wave order).
//! - Vertical problems (`{W}`, `{W, NW}`) are *transposed* — the
//!   [`TransposedKernel`] adapter swaps rows and columns, turning them
//!   into horizontal problems.

use crate::cell::{ContributingSet, RepCell};
use crate::error::{Error, Result};
use crate::grid::LayoutKind;
use crate::kernel::{Kernel, Neighbors};
use crate::pattern::{classify, Pattern};
use crate::schedule::{transfer_need, TransferNeed};
use crate::wavefront::Dims;

/// A kernel executed with rows and columns swapped.
///
/// Cell `(i, j)` of the adapter is cell `(j, i)` of the inner kernel;
/// representative cells map `W ↔ N`, `NW ↔ NW`. Only kernels without an
/// `NE` dependency can be transposed (its image falls outside the
/// representative set).
#[derive(Debug, Clone)]
pub struct TransposedKernel<K> {
    inner: K,
}

impl<K: Kernel> TransposedKernel<K> {
    /// Wraps `inner`, which must not read `NE`.
    pub fn new(inner: K) -> Result<Self> {
        if inner.contributing_set().contains(RepCell::Ne) {
            return Err(Error::InvalidSchedule {
                pattern: Pattern::Vertical,
                reason: "kernels reading NE cannot be transposed".into(),
            });
        }
        Ok(TransposedKernel { inner })
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &K {
        &self.inner
    }

    /// Maps adapter coordinates back to inner coordinates.
    pub fn to_inner(&self, i: usize, j: usize) -> (usize, usize) {
        (j, i)
    }
}

impl<K: Kernel> Kernel for TransposedKernel<K> {
    type Cell = K::Cell;

    fn dims(&self) -> Dims {
        let d = self.inner.dims();
        Dims::new(d.cols, d.rows)
    }

    fn contributing_set(&self) -> ContributingSet {
        self.inner
            .contributing_set()
            .transposed()
            .expect("checked at construction")
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<K::Cell>) -> K::Cell {
        // Outer W = inner N, outer N = inner W, NW fixed.
        let inner_nbrs = Neighbors {
            w: nbrs.n,
            nw: nbrs.nw,
            n: nbrs.w,
            ne: None,
        };
        self.inner.compute(j, i, &inner_nbrs)
    }

    fn cost_ops(&self) -> u32 {
        self.inner.cost_ops()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// A kernel executed with columns reversed (left–right mirror).
///
/// Cell `(i, j)` of the adapter is cell `(i, cols-1-j)` of the inner
/// kernel; representative cells map `NW ↔ NE`, `N ↔ N`. Only kernels
/// without a `W` dependency can be mirrored.
#[derive(Debug, Clone)]
pub struct MirroredKernel<K> {
    inner: K,
}

impl<K: Kernel> MirroredKernel<K> {
    /// Wraps `inner`, which must not read `W`.
    pub fn new(inner: K) -> Result<Self> {
        if inner.contributing_set().contains(RepCell::W) {
            return Err(Error::InvalidSchedule {
                pattern: Pattern::MirroredInvertedL,
                reason: "kernels reading W cannot be mirrored".into(),
            });
        }
        Ok(MirroredKernel { inner })
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &K {
        &self.inner
    }

    /// Maps adapter coordinates back to inner coordinates.
    pub fn to_inner(&self, i: usize, j: usize) -> (usize, usize) {
        (i, self.inner.dims().cols - 1 - j)
    }
}

impl<K: Kernel> Kernel for MirroredKernel<K> {
    type Cell = K::Cell;

    fn dims(&self) -> Dims {
        self.inner.dims()
    }

    fn contributing_set(&self) -> ContributingSet {
        self.inner
            .contributing_set()
            .mirrored()
            .expect("checked at construction")
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<K::Cell>) -> K::Cell {
        let inner_nbrs = Neighbors {
            w: None,
            nw: nbrs.ne,
            n: nbrs.n,
            ne: nbrs.nw,
        };
        let (ii, ij) = self.to_inner(i, j);
        self.inner.compute(ii, ij, &inner_nbrs)
    }

    fn cost_ops(&self) -> u32 {
        self.inner.cost_ops()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Which geometric adapter the framework applies before scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adapter {
    /// Run the kernel as-is.
    None,
    /// Swap rows and columns ([`TransposedKernel`]).
    Transpose,
    /// Reverse columns ([`MirroredKernel`]).
    Mirror,
}

/// The framework's execution decision for a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// Table I pattern of the declared contributing set.
    pub raw_pattern: Pattern,
    /// Pattern the framework actually schedules.
    pub exec_pattern: Pattern,
    /// Geometric adapter required first (only `Transpose` is ever
    /// needed; `Mirror` is available for completeness).
    pub adapter: Adapter,
    /// Coalescing-friendly layout for the execution pattern (§IV-B).
    pub layout: LayoutKind,
    /// Table II transfer requirement of the executed schedule.
    pub transfer: TransferNeed,
}

/// Classifies a contributing set and picks the execution strategy.
///
/// `prefer_horizontal_for_l` enables the §V-B optimization (on by
/// default in [`choose_execution`]).
pub fn choose_execution_with(
    set: ContributingSet,
    prefer_horizontal_for_l: bool,
) -> Result<Classification> {
    let raw = classify(set).ok_or(Error::EmptyContributingSet)?;
    let (exec, adapter, exec_set) = match raw {
        Pattern::AntiDiagonal => (Pattern::AntiDiagonal, Adapter::None, set),
        Pattern::KnightMove => (Pattern::KnightMove, Adapter::None, set),
        Pattern::Horizontal => (Pattern::Horizontal, Adapter::None, set),
        Pattern::InvertedL | Pattern::MirroredInvertedL => {
            if prefer_horizontal_for_l {
                // {NW} and {NE} are row-only sets: run them under
                // horizontal case 1 directly.
                (Pattern::Horizontal, Adapter::None, set)
            } else if raw == Pattern::MirroredInvertedL {
                (
                    Pattern::InvertedL,
                    Adapter::Mirror,
                    set.mirrored().expect("mirrored-L sets never contain W"),
                )
            } else {
                (Pattern::InvertedL, Adapter::None, set)
            }
        }
        Pattern::Vertical => (
            Pattern::Horizontal,
            Adapter::Transpose,
            set.transposed().expect("vertical sets never contain NE"),
        ),
    };
    Ok(Classification {
        raw_pattern: raw,
        exec_pattern: exec,
        adapter,
        layout: LayoutKind::preferred_for(exec),
        transfer: transfer_need(exec, exec_set)?,
    })
}

/// [`choose_execution_with`] using the paper's defaults.
pub fn choose_execution(set: ContributingSet) -> Result<Classification> {
    choose_execution_with(set, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::RepCell::{Ne, Nw, N, W};
    use crate::kernel::ClosureKernel;
    use crate::schedule::CopyDir;
    use crate::seq::solve_row_major;

    fn set(cells: &[RepCell]) -> ContributingSet {
        ContributingSet::new(cells)
    }

    #[test]
    fn execution_choices_cover_table_one() {
        for s in ContributingSet::table_one_rows() {
            let c = choose_execution(s).unwrap();
            assert!(c.exec_pattern.is_canonical(), "{s}");
            assert!(c.layout.is_coalesced_for(c.exec_pattern), "{s}");
            match c.raw_pattern {
                Pattern::Vertical => assert_eq!(c.adapter, Adapter::Transpose),
                _ => assert_eq!(c.adapter, Adapter::None),
            }
        }
    }

    #[test]
    fn l_patterns_run_horizontally_by_default() {
        let c = choose_execution(set(&[Nw])).unwrap();
        assert_eq!(c.raw_pattern, Pattern::InvertedL);
        assert_eq!(c.exec_pattern, Pattern::Horizontal);
        assert_eq!(c.transfer, TransferNeed::OneWay(CopyDir::ToGpu));
        let c = choose_execution(set(&[Ne])).unwrap();
        assert_eq!(c.raw_pattern, Pattern::MirroredInvertedL);
        assert_eq!(c.exec_pattern, Pattern::Horizontal);
        assert_eq!(c.transfer, TransferNeed::OneWay(CopyDir::ToCpu));
    }

    #[test]
    fn l_patterns_can_keep_their_shape_when_asked() {
        let c = choose_execution_with(set(&[Nw]), false).unwrap();
        assert_eq!(c.exec_pattern, Pattern::InvertedL);
        assert_eq!(c.adapter, Adapter::None);
        let c = choose_execution_with(set(&[Ne]), false).unwrap();
        assert_eq!(c.exec_pattern, Pattern::InvertedL);
        assert_eq!(c.adapter, Adapter::Mirror);
    }

    #[test]
    fn vertical_transposes_to_horizontal() {
        for cells in [&[W][..], &[W, Nw][..]] {
            let c = choose_execution(set(cells)).unwrap();
            assert_eq!(c.raw_pattern, Pattern::Vertical);
            assert_eq!(c.exec_pattern, Pattern::Horizontal);
            assert_eq!(c.adapter, Adapter::Transpose);
        }
    }

    #[test]
    fn empty_set_rejected() {
        assert!(matches!(
            choose_execution(ContributingSet::EMPTY),
            Err(Error::EmptyContributingSet)
        ));
    }

    /// A vertical prefix-sum kernel: f = W + own, i.e. row-wise running
    /// sums. Transposing and solving must equal solving directly.
    #[test]
    fn transposed_kernel_matches_direct_solve() {
        let dims = Dims::new(5, 7);
        let inner = ClosureKernel::new(dims, set(&[W, Nw]), |i, j, n: &Neighbors<u64>| {
            let own = (i * 13 + j * 3 + 1) as u64;
            own.wrapping_add(n.w.unwrap_or(0).wrapping_mul(3))
                .wrapping_add(n.nw.unwrap_or(0).wrapping_mul(7))
        });
        let direct = solve_row_major(&inner).unwrap();
        let transposed = TransposedKernel::new(inner).unwrap();
        assert_eq!(transposed.dims(), Dims::new(7, 5));
        assert_eq!(transposed.contributing_set(), set(&[N, Nw]));
        let via_adapter = solve_row_major(&transposed).unwrap();
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(via_adapter.get(j, i), direct.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn transpose_rejects_ne_readers() {
        let k = ClosureKernel::new(Dims::new(2, 2), set(&[W, Ne]), |_, _, _: &Neighbors<u8>| {
            0u8
        });
        assert!(TransposedKernel::new(k).is_err());
    }

    /// A mirrored-inverted-L kernel ({NE}): mirroring must flip it into a
    /// plain inverted-L kernel with identical (reflected) results.
    #[test]
    fn mirrored_kernel_matches_direct_solve() {
        let dims = Dims::new(6, 4);
        let inner = ClosureKernel::new(dims, set(&[Ne]), |i, j, n: &Neighbors<u64>| {
            let own = (i * 17 + j * 5 + 1) as u64;
            own.wrapping_add(n.ne.unwrap_or(0).wrapping_mul(31))
        });
        let direct = solve_row_major(&inner).unwrap();
        let mirrored = MirroredKernel::new(inner).unwrap();
        assert_eq!(mirrored.contributing_set(), set(&[Nw]));
        let via_adapter = solve_row_major(&mirrored).unwrap();
        for i in 0..6 {
            for j in 0..4 {
                assert_eq!(via_adapter.get(i, 4 - 1 - j), direct.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn mirror_rejects_w_readers() {
        let k = ClosureKernel::new(Dims::new(2, 2), set(&[W]), |_, _, _: &Neighbors<u8>| 0u8);
        assert!(MirroredKernel::new(k).is_err());
    }

    #[test]
    fn adapters_preserve_metadata() {
        let k = ClosureKernel::new(Dims::new(3, 4), set(&[N]), |_, _, _: &Neighbors<u8>| 0u8)
            .with_cost_ops(99)
            .with_name("meta");
        let t = TransposedKernel::new(k).unwrap();
        assert_eq!(t.cost_ops(), 99);
        assert_eq!(t.name(), "meta");
        assert_eq!(t.to_inner(1, 2), (2, 1));
    }
}
