//! The user-facing kernel abstraction.
//!
//! §V-C of the paper: to use the framework a user provides (1) the
//! function `f` defining how `cell(i,j)` is computed from its
//! representative cells plus any per-problem resources, and (2) the
//! initialization of the table. Everything else — classification, layout,
//! scheduling, CPU/GPU division and data transfer — is the framework's
//! job.

use crate::cell::{ContributingSet, RepCell};
use crate::wavefront::Dims;
use std::fmt;

/// How the engine retires the cells of one solve — the execution tier.
///
/// Tiers form a ladder of increasingly specialized inner loops over the
/// same wavefront schedule. Every tier is required to produce results
/// bit-identical to [`Kernel::compute`] applied cell by cell; the only
/// difference is throughput.
///
/// | tier          | inner loop                                         |
/// |---------------|----------------------------------------------------|
/// | `Scalar`      | per-cell [`Kernel::compute`] with `Option` checks  |
/// | `Bulk`        | slice-based [`WaveKernel::compute_run`] over runs  |
/// | `Simd`        | [`SimdWaveKernel::compute_run_simd`] lane chunks   |
/// | `BitParallel` | word-parallel whole-problem algorithm (no grid)    |
///
/// `BitParallel` is special: it computes the *answer* without
/// materializing the DP table, so the grid-producing engine never
/// selects it — answer-level callers (the CLI, the serving backend) do,
/// for problems that provide one (LCS).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExecTier {
    /// Per-cell scalar execution through [`Kernel::compute`].
    Scalar,
    /// Slice-based bulk runs through [`WaveKernel::compute_run`].
    Bulk,
    /// Runtime-dispatched vector lanes through
    /// [`SimdWaveKernel::compute_run_simd`].
    Simd,
    /// Word-parallel answer-only algorithm (bit-parallel LCS).
    BitParallel,
}

impl ExecTier {
    /// Every tier, slowest first.
    pub const ALL: [ExecTier; 4] = [
        ExecTier::Scalar,
        ExecTier::Bulk,
        ExecTier::Simd,
        ExecTier::BitParallel,
    ];

    /// Stable lowercase name (trace args, JSON, `LDDP_FORCE_TIER`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ExecTier::Scalar => "scalar",
            ExecTier::Bulk => "bulk",
            ExecTier::Simd => "simd",
            ExecTier::BitParallel => "bitparallel",
        }
    }

    /// Parses [`ExecTier::as_str`] output (case-insensitive).
    pub fn parse(s: &str) -> Option<ExecTier> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(ExecTier::Scalar),
            "bulk" => Some(ExecTier::Bulk),
            "simd" => Some(ExecTier::Simd),
            "bitparallel" | "bit-parallel" => Some(ExecTier::BitParallel),
            _ => None,
        }
    }
}

impl fmt::Display for ExecTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a solve materializes the DP table — the memory axis orthogonal
/// to [`ExecTier`].
///
/// | mode      | working set                | output                     |
/// |-----------|----------------------------|----------------------------|
/// | `Full`    | the whole `O(n·m)` table   | every cell (traceback-ready)|
/// | `Rolling` | the live wavefronts, `O(n+m)` | scores / captured bands |
///
/// `Rolling` is score-only at the engine level; tracebacks in rolling
/// mode go through the Hirschberg-style divide and conquer built on top
/// of it (`lddp-problems::hirschberg`). The tuner picks the mode from a
/// memory model (full-table bytes vs the platform budget), and the
/// serving path accepts it as a per-request override.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryMode {
    /// Materialize the full table (traceback available from the grid).
    #[default]
    Full,
    /// Keep only the live wavefronts; answers come from captured
    /// corners/rows/maxima (see `rolling`).
    Rolling,
}

impl MemoryMode {
    /// Every mode, largest working set first.
    pub const ALL: [MemoryMode; 2] = [MemoryMode::Full, MemoryMode::Rolling];

    /// Stable lowercase name (trace args, JSON, tuner cache).
    pub fn as_str(&self) -> &'static str {
        match self {
            MemoryMode::Full => "full",
            MemoryMode::Rolling => "rolling",
        }
    }

    /// Parses [`MemoryMode::as_str`] output (case-insensitive).
    pub fn parse(s: &str) -> Option<MemoryMode> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Some(MemoryMode::Full),
            "rolling" => Some(MemoryMode::Rolling),
            _ => None,
        }
    }
}

impl fmt::Display for MemoryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// True when the host has a vector unit the SIMD tier can dispatch to
/// (AVX2 on x86_64, NEON on aarch64). Checked at runtime, once per call
/// site — the binary stays portable across feature levels.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// True when the host additionally exposes the AVX-512 foundation
/// subset (`avx512f`). Detection groundwork only: no kernel body
/// dispatches to 512-bit vectors yet, so [`simd_backend`] still names
/// the tier that actually runs (`avx2`) — but `bench --quick` and the
/// server's `/healthz` surface this bit so deployments can see the
/// vector headroom an AVX-512 tier would unlock.
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Name of the vector backend [`simd_available`] would dispatch to:
/// `"avx2"`, `"neon"`, or `"scalar"` when no vector unit is usable.
/// AVX-512 hosts still report `"avx2"` here (that is what executes);
/// see [`avx512_available`] for the wider-unit probe.
pub fn simd_backend() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            "avx2"
        } else {
            "scalar"
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "scalar"
    }
}

/// The values of the four representative cells visible to `f` when
/// computing `cell(i, j)`.
///
/// A direction is `None` when the neighbour falls outside the table *or*
/// is not in the kernel's declared contributing set: the framework only
/// materializes (and only transfers between devices) the cells a kernel
/// declared it reads, so an undeclared read is surfaced as `None` rather
/// than silently returning stale data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbors<T> {
    /// `cell(i, j-1)`.
    pub w: Option<T>,
    /// `cell(i-1, j-1)`.
    pub nw: Option<T>,
    /// `cell(i-1, j)`.
    pub n: Option<T>,
    /// `cell(i-1, j+1)`.
    pub ne: Option<T>,
}

impl<T> Neighbors<T> {
    /// Neighbourhood with no visible cells (used at table corners).
    pub const fn empty() -> Self {
        Neighbors {
            w: None,
            nw: None,
            n: None,
            ne: None,
        }
    }

    /// The value in the given direction.
    pub fn get(&self, cell: RepCell) -> Option<&T> {
        match cell {
            RepCell::W => self.w.as_ref(),
            RepCell::Nw => self.nw.as_ref(),
            RepCell::N => self.n.as_ref(),
            RepCell::Ne => self.ne.as_ref(),
        }
    }

    /// Sets the value in the given direction.
    pub fn set(&mut self, cell: RepCell, value: T) {
        match cell {
            RepCell::W => self.w = Some(value),
            RepCell::Nw => self.nw = Some(value),
            RepCell::N => self.n = Some(value),
            RepCell::Ne => self.ne = Some(value),
        }
    }

    /// Number of visible neighbours.
    pub fn len(&self) -> usize {
        self.w.is_some() as usize
            + self.nw.is_some() as usize
            + self.n.is_some() as usize
            + self.ne.is_some() as usize
    }

    /// True when no neighbour is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Neighbors<T> {
    fn default() -> Self {
        Neighbors::empty()
    }
}

/// An LDDP-Plus problem instance: the function `f`, the declared
/// contributing set, and the table dimensions.
///
/// The cell type must be `Copy` — LDDP tables are dense arrays of small
/// plain values (costs, distances, error terms) and the framework moves
/// them between simulated devices by value.
pub trait Kernel: Sync {
    /// The table's cell type.
    type Cell: Copy + Send + Sync + PartialEq + fmt::Debug + Default;

    /// Table dimensions.
    fn dims(&self) -> Dims;

    /// The representative cells `f` reads — a row of Table I. Must be
    /// non-empty and must not change between calls.
    fn contributing_set(&self) -> ContributingSet;

    /// Computes the value of `cell(i, j)` from its visible neighbours.
    ///
    /// Called exactly once per cell, in an order where every declared
    /// in-bounds neighbour has already been computed (and is `Some`).
    /// Boundary and base-case logic lives here: when a declared neighbour
    /// is out of bounds, its entry is `None` and `f` must supply the base
    /// case (e.g. the `max(i,j) if min(i,j)=0` row of the Levenshtein
    /// recurrence).
    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<Self::Cell>) -> Self::Cell;

    /// Relative computational weight of one `f` evaluation, in abstract
    /// "operations" used by the device cost models. Defaults to 16 —
    /// roughly a handful of compares, adds and memory touches.
    fn cost_ops(&self) -> u32 {
        16
    }

    /// Human-readable problem name for traces and reports.
    fn name(&self) -> &str {
        "lddp-kernel"
    }

    /// The kernel's bulk execution path, if it has one.
    ///
    /// Returning `Some(self)` opts the kernel into
    /// [`WaveKernel::compute_run`] for the *interior* runs of each wave
    /// (every declared neighbour in bounds); boundary cells always go
    /// through [`Kernel::compute`]. The default (`None`) keeps the
    /// scalar path for every existing kernel.
    fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = Self::Cell>> {
        None
    }

    /// The kernel's vectorized execution path, if it has one.
    ///
    /// Returning `Some(self)` opts the kernel into
    /// [`SimdWaveKernel::compute_run_simd`] for interior runs when the
    /// engine selects [`ExecTier::Simd`]. A kernel that opts in must
    /// also implement [`WaveKernel`] — the SIMD tier is a refinement of
    /// the bulk contract, and lane remainders fall back to it. The
    /// default (`None`) keeps existing kernels on the scalar/bulk
    /// ladder.
    fn simd_kernel(&self) -> Option<&dyn SimdWaveKernel<Cell = Self::Cell>> {
        None
    }
}

/// Bulk form of a [`Kernel`]: computes a contiguous interior run of one
/// wave in a single call, with the declared neighbours presented as
/// plain slices — no per-cell `Option` checks, no boundary branches, so
/// the loop body is a straight-line candidate for autovectorization.
///
/// A run is `out.len()` consecutive cells of one wave, in the pattern's
/// canonical within-wave order, starting at `(i, j0)`. The pattern is
/// the kernel's own classification (`classify(contributing_set())`),
/// which fixes how cell `p` of the run steps from the start:
///
/// | pattern       | cell `p`            |
/// |---------------|---------------------|
/// | Anti-diagonal | `(i - p, j0 + p)`   |
/// | Horizontal    | `(i, j0 + p)`       |
/// | Vertical      | `(i + p, j0)`       |
/// | Knight-move   | `(i - p, j0 + 2p)`  |
/// | Inverted-L    | column arm `(i + p, j0)`, row arm `(i, j0 + p)` |
/// | mInverted-L   | column arm `(i + p, j0)`, row arm `(i, j0 - p)` |
///
/// (An Inverted-L run never mixes arms — the engine splits at the
/// corner.) For each direction in the contributing set, the matching
/// slice holds the neighbour of cell `p` at index `p`; directions
/// outside the set are passed as empty slices. Every cell of the run is
/// interior: all declared neighbours exist, so implementations skip the
/// base-case logic entirely. Results must be bit-identical to calling
/// [`Kernel::compute`] cell by cell.
pub trait WaveKernel: Kernel {
    /// Computes the run of cells starting at `(i, j0)` into `out`.
    // One fixed slice per representative direction beats a packed
    // `&[&[T]; 4]` here: implementations index all four by `p` in the
    // hot loop, and separate parameters keep them borrow-checkable.
    #[allow(clippy::too_many_arguments)]
    fn compute_run(
        &self,
        i: usize,
        j0: usize,
        out: &mut [Self::Cell],
        w: &[Self::Cell],
        nw: &[Self::Cell],
        n: &[Self::Cell],
        ne: &[Self::Cell],
    );
}

/// Vectorized form of a [`WaveKernel`]: the same run contract as
/// [`WaveKernel::compute_run`] — same stepping table, same slice
/// layout, same bit-identity requirement — but the implementation
/// processes `lanes()`-wide chunks of the run in vector registers,
/// peeling the sub-lane tail back to scalar code.
///
/// Implementations own their runtime dispatch: `compute_run_simd`
/// checks the host feature set (`is_x86_feature_detected!("avx2")` on
/// x86_64, compile-time NEON on aarch64) and falls back to
/// [`WaveKernel::compute_run`] when no vector unit is usable, so
/// callers may invoke it unconditionally on any host.
pub trait SimdWaveKernel: WaveKernel {
    /// Lane width (cells per vector step) the host backend processes.
    /// Purely advisory — the engine rounds chunk boundaries to
    /// multiples of it so workers hand the vector body aligned
    /// sub-runs; any value is correct.
    fn lanes(&self) -> usize;

    /// Computes the run of cells starting at `(i, j0)` into `out`,
    /// vector lanes first, scalar tail last. Bit-identical to
    /// [`WaveKernel::compute_run`] (and therefore to per-cell
    /// [`Kernel::compute`]).
    #[allow(clippy::too_many_arguments)]
    fn compute_run_simd(
        &self,
        i: usize,
        j0: usize,
        out: &mut [Self::Cell],
        w: &[Self::Cell],
        nw: &[Self::Cell],
        n: &[Self::Cell],
        ne: &[Self::Cell],
    );
}

impl<K: Kernel + ?Sized> Kernel for &K {
    type Cell = K::Cell;

    fn dims(&self) -> Dims {
        (**self).dims()
    }

    fn contributing_set(&self) -> ContributingSet {
        (**self).contributing_set()
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<Self::Cell>) -> Self::Cell {
        (**self).compute(i, j, nbrs)
    }

    fn cost_ops(&self) -> u32 {
        (**self).cost_ops()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = Self::Cell>> {
        (**self).wave_kernel()
    }

    fn simd_kernel(&self) -> Option<&dyn SimdWaveKernel<Cell = Self::Cell>> {
        (**self).simd_kernel()
    }
}

/// A [`Kernel`] built from a closure — the quickest way to hand the
/// framework a new problem.
///
/// ```
/// use lddp_core::kernel::{ClosureKernel, Neighbors};
/// use lddp_core::cell::{ContributingSet, RepCell};
/// use lddp_core::wavefront::Dims;
///
/// // f(i,j) = min(nw, n) + 1, the Fig 9 benchmark kernel.
/// let k = ClosureKernel::new(
///     Dims::new(64, 64),
///     ContributingSet::new(&[RepCell::Nw, RepCell::N]),
///     |_i, _j, nbrs: &Neighbors<u32>| {
///         match (nbrs.nw, nbrs.n) {
///             (Some(a), Some(b)) => a.min(b) + 1,
///             (Some(a), None) => a + 1,
///             (None, Some(b)) => b + 1,
///             (None, None) => 0,
///         }
///     },
/// );
/// # let _ = k;
/// ```
pub struct ClosureKernel<T, F> {
    dims: Dims,
    set: ContributingSet,
    f: F,
    cost_ops: u32,
    name: String,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T, F> ClosureKernel<T, F>
where
    T: Copy + Send + Sync + PartialEq + fmt::Debug + Default,
    F: Fn(usize, usize, &Neighbors<T>) -> T + Sync,
{
    /// Wraps `f` with the given dimensions and contributing set.
    pub fn new(dims: Dims, set: ContributingSet, f: F) -> Self {
        ClosureKernel {
            dims,
            set,
            f,
            cost_ops: 16,
            name: "closure-kernel".to_string(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Overrides the abstract per-cell cost used by the device models.
    #[must_use]
    pub fn with_cost_ops(mut self, ops: u32) -> Self {
        self.cost_ops = ops;
        self
    }

    /// Names the kernel for traces and reports.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl<T, F> Kernel for ClosureKernel<T, F>
where
    T: Copy + Send + Sync + PartialEq + fmt::Debug + Default,
    F: Fn(usize, usize, &Neighbors<T>) -> T + Sync,
{
    type Cell = T;

    fn dims(&self) -> Dims {
        self.dims
    }

    fn contributing_set(&self) -> ContributingSet {
        self.set
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<T>) -> T {
        (self.f)(i, j, nbrs)
    }

    fn cost_ops(&self) -> u32 {
        self.cost_ops
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::RepCell::{Nw, N};

    #[test]
    fn neighbors_get_set() {
        let mut n: Neighbors<u32> = Neighbors::empty();
        assert!(n.is_empty());
        n.set(RepCell::W, 1);
        n.set(RepCell::Ne, 4);
        assert_eq!(n.get(RepCell::W), Some(&1));
        assert_eq!(n.get(RepCell::Nw), None);
        assert_eq!(n.get(RepCell::Ne), Some(&4));
        assert_eq!(n.len(), 2);
        assert!(!n.is_empty());
    }

    #[test]
    fn neighbors_default_is_empty() {
        let n: Neighbors<i64> = Neighbors::default();
        assert!(n.is_empty());
        for c in RepCell::ALL {
            assert_eq!(n.get(c), None);
        }
    }

    #[test]
    fn simd_probes_are_consistent() {
        // The backend name and the availability bit must agree, and the
        // AVX-512 probe is groundwork: it never changes what executes.
        let backend = simd_backend();
        assert_eq!(simd_available(), backend != "scalar");
        if avx512_available() {
            // avx512f implies the 256-bit subset the SIMD tier uses.
            assert_eq!(backend, "avx2");
        }
        assert!(["avx2", "neon", "scalar"].contains(&backend));
    }

    #[test]
    fn closure_kernel_carries_metadata() {
        let k = ClosureKernel::new(
            Dims::new(8, 9),
            ContributingSet::new(&[Nw, N]),
            |_i, _j, _n: &Neighbors<u32>| 0u32,
        )
        .with_cost_ops(42)
        .with_name("demo");
        assert_eq!(k.dims(), Dims::new(8, 9));
        assert_eq!(k.contributing_set(), ContributingSet::new(&[Nw, N]));
        assert_eq!(k.cost_ops(), 42);
        assert_eq!(k.name(), "demo");
    }

    #[test]
    fn closure_kernel_computes() {
        let k = ClosureKernel::new(
            Dims::new(2, 2),
            ContributingSet::new(&[N]),
            |i, j, n: &Neighbors<u32>| n.n.unwrap_or(0) + (i + j) as u32,
        );
        let mut nbrs = Neighbors::empty();
        assert_eq!(k.compute(0, 0, &nbrs), 0);
        nbrs.set(RepCell::N, 10);
        assert_eq!(k.compute(1, 1, &nbrs), 12);
    }

    #[test]
    fn wave_kernel_hook_defaults_to_none_and_forwards() {
        let k = ClosureKernel::new(
            Dims::new(2, 2),
            ContributingSet::new(&[N]),
            |_, _, _: &Neighbors<u8>| 0u8,
        );
        assert!(k.wave_kernel().is_none());
        let kr = &k;
        assert!(
            Kernel::wave_kernel(&kr).is_none(),
            "reference blanket forwards"
        );
    }

    #[test]
    fn wave_kernel_is_object_safe_and_reachable_through_the_hook() {
        struct Ramp;
        impl Kernel for Ramp {
            type Cell = u32;
            fn dims(&self) -> Dims {
                Dims::new(3, 3)
            }
            fn contributing_set(&self) -> ContributingSet {
                ContributingSet::new(&[RepCell::W, Nw, N])
            }
            fn compute(&self, i: usize, j: usize, _nbrs: &Neighbors<u32>) -> u32 {
                (i + j) as u32
            }
            fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = u32>> {
                Some(self)
            }
        }
        impl WaveKernel for Ramp {
            fn compute_run(
                &self,
                i: usize,
                j0: usize,
                out: &mut [u32],
                _w: &[u32],
                _nw: &[u32],
                _n: &[u32],
                _ne: &[u32],
            ) {
                // Anti-diagonal stepping: cell p is (i - p, j0 + p).
                for (p, slot) in out.iter_mut().enumerate() {
                    *slot = ((i - p) + (j0 + p)) as u32;
                }
            }
        }
        let k = Ramp;
        let wk = k.wave_kernel().expect("opted in");
        let mut out = [0u32; 2];
        wk.compute_run(2, 1, &mut out, &[], &[], &[], &[]);
        assert_eq!(out, [3, 3]);
        let kr = &k;
        assert!(Kernel::wave_kernel(&kr).is_some());
    }

    #[test]
    fn exec_tier_names_round_trip() {
        for tier in ExecTier::ALL {
            assert_eq!(ExecTier::parse(tier.as_str()), Some(tier));
            assert_eq!(format!("{tier}"), tier.as_str());
        }
        assert_eq!(ExecTier::parse("SIMD"), Some(ExecTier::Simd));
        assert_eq!(ExecTier::parse("bit-parallel"), Some(ExecTier::BitParallel));
        assert_eq!(ExecTier::parse("turbo"), None);
    }

    #[test]
    fn simd_backend_matches_availability() {
        // Whatever the host, the two probes must agree.
        assert_eq!(simd_available(), simd_backend() != "scalar");
    }

    #[test]
    fn simd_kernel_hook_defaults_to_none_and_forwards() {
        let k = ClosureKernel::new(
            Dims::new(2, 2),
            ContributingSet::new(&[N]),
            |_, _, _: &Neighbors<u8>| 0u8,
        );
        assert!(k.simd_kernel().is_none());
        let kr = &k;
        assert!(
            Kernel::simd_kernel(&kr).is_none(),
            "reference blanket forwards"
        );
    }

    #[test]
    fn simd_kernel_is_object_safe_and_reachable_through_the_hook() {
        struct Ramp;
        impl Kernel for Ramp {
            type Cell = u32;
            fn dims(&self) -> Dims {
                Dims::new(3, 3)
            }
            fn contributing_set(&self) -> ContributingSet {
                ContributingSet::new(&[RepCell::W, Nw, N])
            }
            fn compute(&self, i: usize, j: usize, _nbrs: &Neighbors<u32>) -> u32 {
                (i + j) as u32
            }
            fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = u32>> {
                Some(self)
            }
            fn simd_kernel(&self) -> Option<&dyn SimdWaveKernel<Cell = u32>> {
                Some(self)
            }
        }
        impl WaveKernel for Ramp {
            fn compute_run(
                &self,
                i: usize,
                j0: usize,
                out: &mut [u32],
                _w: &[u32],
                _nw: &[u32],
                _n: &[u32],
                _ne: &[u32],
            ) {
                for (p, slot) in out.iter_mut().enumerate() {
                    *slot = ((i - p) + (j0 + p)) as u32;
                }
            }
        }
        impl SimdWaveKernel for Ramp {
            fn lanes(&self) -> usize {
                4
            }
            fn compute_run_simd(
                &self,
                i: usize,
                j0: usize,
                out: &mut [u32],
                w: &[u32],
                nw: &[u32],
                n: &[u32],
                ne: &[u32],
            ) {
                self.compute_run(i, j0, out, w, nw, n, ne);
            }
        }
        let k = Ramp;
        let sk = k.simd_kernel().expect("opted in");
        assert_eq!(sk.lanes(), 4);
        let mut out = [0u32; 2];
        sk.compute_run_simd(2, 1, &mut out, &[], &[], &[], &[]);
        assert_eq!(out, [3, 3]);
        let kr = &k;
        assert!(Kernel::simd_kernel(&kr).is_some());
    }

    #[test]
    fn default_cost_ops() {
        let k = ClosureKernel::new(
            Dims::new(1, 1),
            ContributingSet::new(&[N]),
            |_, _, _: &Neighbors<u8>| 0u8,
        );
        assert_eq!(k.cost_ops(), 16);
        assert_eq!(k.name(), "closure-kernel");
    }
}
