//! Error type shared across the framework.

use crate::pattern::Pattern;
use std::fmt;

/// Errors surfaced by classification, scheduling and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The kernel declared an empty contributing set; `f` must read at
    /// least one representative cell to be an LDDP-Plus problem.
    EmptyContributingSet,
    /// A schedule parameter is out of range for the problem size.
    InvalidSchedule {
        /// The pattern being scheduled.
        pattern: Pattern,
        /// Human-readable reason.
        reason: String,
    },
    /// The tuner was asked to search an empty candidate range.
    EmptyTuningRange,
    /// An executor was handed a plan built for different dimensions or a
    /// different pattern than the kernel's.
    PlanMismatch {
        /// What the plan was built for.
        expected: String,
        /// What the kernel declares.
        found: String,
    },
    /// A kernel (or an injected fault) panicked during execution; the
    /// panic was caught and the run isolated, but the table is unusable.
    ExecutionPanicked {
        /// Short description of where the panic surfaced.
        detail: String,
    },
    /// The simulated device (or one of its boundary transfers) failed
    /// mid-run; the device-side table state is lost from that wave on.
    DeviceFault {
        /// Wave index at which the device failed.
        wave: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyContributingSet => {
                write!(
                    f,
                    "contributing set is empty: f must read at least one representative cell"
                )
            }
            Error::InvalidSchedule { pattern, reason } => {
                write!(f, "invalid schedule for {pattern} pattern: {reason}")
            }
            Error::EmptyTuningRange => write!(f, "tuning candidate range is empty"),
            Error::PlanMismatch { expected, found } => {
                write!(
                    f,
                    "plan mismatch: plan built for {expected}, kernel declares {found}"
                )
            }
            Error::ExecutionPanicked { detail } => {
                write!(f, "execution panicked: {detail}")
            }
            Error::DeviceFault { wave } => {
                write!(f, "device fault at wave {wave}: device-side state lost")
            }
        }
    }
}

/// One rung taken on the graceful-degradation ladder while recovering
/// from a fault. Recorded in `Solution`s and solve responses so callers
/// can see *how* an answer was produced, not just that it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeStep {
    /// Bulk (contiguous-run) kernel path failed; retried scalar.
    BulkToScalar,
    /// Pooled parallel execution failed; retried single-threaded.
    ParallelToSequential,
    /// Simulated device failed; re-ran the schedule CPU-only.
    HeteroToCpuOnly,
}

impl DegradeStep {
    /// Stable snake_case code used in JSON payloads and stats.
    pub fn code(self) -> &'static str {
        match self {
            DegradeStep::BulkToScalar => "bulk_to_scalar",
            DegradeStep::ParallelToSequential => "parallel_to_sequential",
            DegradeStep::HeteroToCpuOnly => "hetero_to_cpu_only",
        }
    }

    /// Parses a stable code back into a step.
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "bulk_to_scalar" => Some(DegradeStep::BulkToScalar),
            "parallel_to_sequential" => Some(DegradeStep::ParallelToSequential),
            "hetero_to_cpu_only" => Some(DegradeStep::HeteroToCpuOnly),
            _ => None,
        }
    }
}

impl fmt::Display for DegradeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeStep::BulkToScalar => write!(f, "bulk kernel path → scalar"),
            DegradeStep::ParallelToSequential => write!(f, "pooled parallel → sequential"),
            DegradeStep::HeteroToCpuOnly => write!(f, "heterogeneous schedule → CPU-only"),
        }
    }
}

impl std::error::Error for Error {}

/// Framework result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::EmptyContributingSet.to_string().contains("empty"));
        let e = Error::InvalidSchedule {
            pattern: Pattern::Horizontal,
            reason: "t_share exceeds row width".into(),
        };
        assert!(e.to_string().contains("Horizontal"));
        assert!(e.to_string().contains("t_share"));
        assert!(Error::EmptyTuningRange.to_string().contains("tuning"));
        let e = Error::PlanMismatch {
            expected: "4x4".into(),
            found: "5x5".into(),
        };
        assert!(e.to_string().contains("4x4"));
        let e = Error::ExecutionPanicked {
            detail: "worker 3 at wave 7".into(),
        };
        assert!(e.to_string().contains("worker 3"));
        assert!(Error::DeviceFault { wave: 9 }
            .to_string()
            .contains("wave 9"));
    }

    #[test]
    fn degrade_step_codes_round_trip() {
        for step in [
            DegradeStep::BulkToScalar,
            DegradeStep::ParallelToSequential,
            DegradeStep::HeteroToCpuOnly,
        ] {
            assert_eq!(DegradeStep::from_code(step.code()), Some(step));
            assert!(!step.to_string().is_empty());
        }
        assert_eq!(DegradeStep::from_code("bogus"), None);
    }
}
