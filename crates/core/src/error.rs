//! Error type shared across the framework.

use crate::pattern::Pattern;
use std::fmt;

/// Errors surfaced by classification, scheduling and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The kernel declared an empty contributing set; `f` must read at
    /// least one representative cell to be an LDDP-Plus problem.
    EmptyContributingSet,
    /// A schedule parameter is out of range for the problem size.
    InvalidSchedule {
        /// The pattern being scheduled.
        pattern: Pattern,
        /// Human-readable reason.
        reason: String,
    },
    /// The tuner was asked to search an empty candidate range.
    EmptyTuningRange,
    /// An executor was handed a plan built for different dimensions or a
    /// different pattern than the kernel's.
    PlanMismatch {
        /// What the plan was built for.
        expected: String,
        /// What the kernel declares.
        found: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyContributingSet => {
                write!(
                    f,
                    "contributing set is empty: f must read at least one representative cell"
                )
            }
            Error::InvalidSchedule { pattern, reason } => {
                write!(f, "invalid schedule for {pattern} pattern: {reason}")
            }
            Error::EmptyTuningRange => write!(f, "tuning candidate range is empty"),
            Error::PlanMismatch { expected, found } => {
                write!(
                    f,
                    "plan mismatch: plan built for {expected}, kernel declares {found}"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Framework result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::EmptyContributingSet.to_string().contains("empty"));
        let e = Error::InvalidSchedule {
            pattern: Pattern::Horizontal,
            reason: "t_share exceeds row width".into(),
        };
        assert!(e.to_string().contains("Horizontal"));
        assert!(e.to_string().contains("t_share"));
        assert!(Error::EmptyTuningRange.to_string().contains("tuning"));
        let e = Error::PlanMismatch {
            expected: "4x4".into(),
            found: "5x5".into(),
        };
        assert!(e.to_string().contains("4x4"));
    }
}
