//! A keyed cache for tuned schedule parameters — the serving-side
//! amortization of the paper's §V-A empirical sweeps.
//!
//! Tuning is by far the most expensive step of a solve (tens of
//! schedule evaluations), yet its result depends only on the executed
//! *pattern*, the table *shape* and the *platform* — not on the cell
//! values. A server handling many requests for the same problem family
//! can therefore tune once and reuse: [`TuneKey`] buckets the exact
//! dimensions to their next power of two, so any instance in the same
//! bucket shares one `(t_switch, t_share)` artifact. Consumers must
//! re-legalize cached parameters for the exact instance with
//! [`ScheduleParams::clamped_for`](crate::schedule::ScheduleParams::clamped_for)
//! (a cached `t_switch` tuned near the top of the bucket can exceed a
//! smaller instance's wave count).
//!
//! The cache is thread-safe and intentionally tiny: a mutexed map plus
//! hit/miss counters. Single-flight de-duplication is left to the
//! caller (the serve batcher already serializes tunes per batch key).

use crate::pattern::Pattern;
use crate::schedule::ScheduleParams;
use crate::wavefront::Dims;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: executed pattern + power-of-two dims bucket + platform.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// The canonical execution pattern (after any symmetry adapter).
    pub pattern: Pattern,
    /// `rows` rounded up to the next power of two.
    pub rows_bucket: usize,
    /// `cols` rounded up to the next power of two.
    pub cols_bucket: usize,
    /// Platform preset name the tune was measured on.
    pub platform: String,
}

impl TuneKey {
    /// Builds the key for an instance of `dims` executing as `pattern`
    /// on `platform`.
    pub fn new(pattern: Pattern, dims: Dims, platform: impl Into<String>) -> TuneKey {
        TuneKey {
            pattern,
            rows_bucket: dims.rows.next_power_of_two(),
            cols_bucket: dims.cols.next_power_of_two(),
            platform: platform.into(),
        }
    }

    /// A compact human-readable form, e.g. `AntiDiagonal/1024x1024/high`
    /// (used as a trace-span argument).
    pub fn label(&self) -> String {
        format!(
            "{:?}/{}x{}/{}",
            self.pattern, self.rows_bucket, self.cols_bucket, self.platform
        )
    }
}

/// Thread-safe `TuneKey → ScheduleParams` cache with hit/miss counters.
#[derive(Debug, Default)]
pub struct TunerCache {
    map: Mutex<HashMap<TuneKey, ScheduleParams>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TunerCache {
    /// An empty cache.
    pub fn new() -> TunerCache {
        TunerCache::default()
    }

    /// The cached parameters for `key`, if present (counts a hit or a
    /// miss).
    pub fn get(&self, key: &TuneKey) -> Option<ScheduleParams> {
        let found = self.map.lock().unwrap().get(key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores `params` for `key` (last write wins).
    pub fn insert(&self, key: TuneKey, params: ScheduleParams) {
        self.map.lock().unwrap().insert(key, params);
    }

    /// The cached parameters for `key`, tuning via `tune` on a miss and
    /// caching the result. Returns `(params, hit)`. The tune closure
    /// runs outside the cache lock, so concurrent misses on the same
    /// key may tune redundantly (both results are equal; last wins).
    pub fn get_or_tune<E>(
        &self,
        key: &TuneKey,
        tune: impl FnOnce() -> std::result::Result<ScheduleParams, E>,
    ) -> std::result::Result<(ScheduleParams, bool), E> {
        if let Some(params) = self.get(key) {
            return Ok((params, true));
        }
        let params = tune()?;
        self.insert(key.clone(), params);
        Ok((params, false))
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_bucket_dims_to_powers_of_two() {
        let a = TuneKey::new(Pattern::AntiDiagonal, Dims::new(700, 1000), "high");
        let b = TuneKey::new(Pattern::AntiDiagonal, Dims::new(1024, 513), "high");
        assert_eq!(a.rows_bucket, 1024);
        assert_eq!(a.cols_bucket, 1024);
        assert_eq!(a, b);
        // Different platform or pattern → different key.
        assert_ne!(
            a,
            TuneKey::new(Pattern::AntiDiagonal, Dims::new(700, 1000), "low")
        );
        assert_ne!(
            a,
            TuneKey::new(Pattern::Horizontal, Dims::new(700, 1000), "high")
        );
        assert!(a.label().contains("1024x1024/high"));
    }

    #[test]
    fn get_or_tune_caches_and_counts() {
        let cache = TunerCache::new();
        let key = TuneKey::new(Pattern::Horizontal, Dims::new(64, 64), "high");
        let mut tunes = 0;
        let (p, hit) = cache
            .get_or_tune(&key, || -> Result<_, ()> {
                tunes += 1;
                Ok(ScheduleParams::new(0, 8))
            })
            .unwrap();
        assert!(!hit);
        assert_eq!(p, ScheduleParams::new(0, 8));
        let (p2, hit2) = cache
            .get_or_tune(&key, || -> Result<_, ()> {
                tunes += 1;
                Ok(ScheduleParams::new(0, 99))
            })
            .unwrap();
        assert!(hit2);
        assert_eq!(p2, ScheduleParams::new(0, 8));
        assert_eq!(tunes, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn tune_errors_are_not_cached() {
        let cache = TunerCache::new();
        let key = TuneKey::new(Pattern::Horizontal, Dims::new(8, 8), "low");
        let r: Result<_, String> = cache.get_or_tune(&key, || Err("boom".to_string()));
        assert!(r.is_err());
        assert!(cache.is_empty());
        let (_, hit) = cache
            .get_or_tune(&key, || -> Result<_, String> {
                Ok(ScheduleParams::new(0, 1))
            })
            .unwrap();
        assert!(!hit);
    }
}
