//! A keyed cache for tuned schedule parameters — the serving-side
//! amortization of the paper's §V-A empirical sweeps.
//!
//! Tuning is by far the most expensive step of a solve (tens of
//! schedule evaluations), yet its result depends only on the executed
//! *pattern*, the table *shape* and the *platform* — not on the cell
//! values. A server handling many requests for the same problem family
//! can therefore tune once and reuse: [`TuneKey`] buckets the exact
//! dimensions to their next power of two, so any instance in the same
//! bucket shares one tuned artifact. Alongside the paper's
//! `(t_switch, t_share)` pair the artifact carries the measured-fastest
//! [`ExecTier`] ([`TunedConfig`]), so a cache hit also skips the tier
//! sweep. Consumers must re-legalize cached parameters for the exact
//! instance with
//! [`ScheduleParams::clamped_for`](crate::schedule::ScheduleParams::clamped_for)
//! (a cached `t_switch` tuned near the top of the bucket can exceed a
//! smaller instance's wave count).
//!
//! The cache is thread-safe and intentionally tiny: a mutexed map plus
//! hit/miss counters. Single-flight de-duplication is left to the
//! caller (the serve batcher already serializes tunes per batch key).
//! [`TunerCache::save_to`] / [`TunerCache::load_from`] persist the map
//! as a small JSON document so tier and schedule choices survive
//! process restarts (the serve binary pre-warms from it on start and
//! flushes it on graceful drain).

use crate::kernel::{ExecTier, MemoryMode};
use crate::pattern::Pattern;
use crate::schedule::ScheduleParams;
use crate::wavefront::Dims;
use lddp_trace::json::{self, escape, Json};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: executed pattern + power-of-two dims bucket + platform.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// The canonical execution pattern (after any symmetry adapter).
    pub pattern: Pattern,
    /// `rows` rounded up to the next power of two.
    pub rows_bucket: usize,
    /// `cols` rounded up to the next power of two.
    pub cols_bucket: usize,
    /// Platform preset name the tune was measured on.
    pub platform: String,
}

impl TuneKey {
    /// Builds the key for an instance of `dims` executing as `pattern`
    /// on `platform`.
    pub fn new(pattern: Pattern, dims: Dims, platform: impl Into<String>) -> TuneKey {
        TuneKey {
            pattern,
            rows_bucket: dims.rows.next_power_of_two(),
            cols_bucket: dims.cols.next_power_of_two(),
            platform: platform.into(),
        }
    }

    /// A compact human-readable form, e.g. `AntiDiagonal/1024x1024/high`
    /// (used as a trace-span argument).
    pub fn label(&self) -> String {
        format!(
            "{:?}/{}x{}/{}",
            self.pattern, self.rows_bucket, self.cols_bucket, self.platform
        )
    }
}

/// One cached tuning artifact: the paper's schedule parameters plus the
/// execution tier that measured fastest for the key's bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedConfig {
    /// The tuned `(t_switch, t_share)` pair.
    pub params: ScheduleParams,
    /// The execution tier to run the bucket's solves on.
    pub tier: ExecTier,
    /// How the bucket's solves materialize the table. `Rolling` is
    /// chosen when the memory model says the full table busts the
    /// platform budget (and the problem supports wave-band execution).
    pub memory_mode: MemoryMode,
}

impl TunedConfig {
    /// Convenience constructor (full-table mode).
    pub const fn new(params: ScheduleParams, tier: ExecTier) -> TunedConfig {
        TunedConfig {
            params,
            tier,
            memory_mode: MemoryMode::Full,
        }
    }

    /// Sets the memory mode.
    #[must_use]
    pub const fn with_memory_mode(mut self, mode: MemoryMode) -> TunedConfig {
        self.memory_mode = mode;
        self
    }
}

/// Thread-safe `TuneKey → TunedConfig` cache with hit/miss counters.
#[derive(Debug, Default)]
pub struct TunerCache {
    map: Mutex<HashMap<TuneKey, TunedConfig>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TunerCache {
    /// An empty cache.
    pub fn new() -> TunerCache {
        TunerCache::default()
    }

    /// The cached config for `key`, if present (counts a hit or a
    /// miss).
    pub fn get(&self, key: &TuneKey) -> Option<TunedConfig> {
        let found = self.map.lock().unwrap().get(key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores `config` for `key` (last write wins).
    pub fn insert(&self, key: TuneKey, config: TunedConfig) {
        self.map.lock().unwrap().insert(key, config);
    }

    /// The cached config for `key`, tuning via `tune` on a miss and
    /// caching the result. Returns `(config, hit)`. The tune closure
    /// runs outside the cache lock, so concurrent misses on the same
    /// key may tune redundantly (both results are equal; last wins).
    pub fn get_or_tune<E>(
        &self,
        key: &TuneKey,
        tune: impl FnOnce() -> std::result::Result<TunedConfig, E>,
    ) -> std::result::Result<(TunedConfig, bool), E> {
        if let Some(config) = self.get(key) {
            return Ok((config, true));
        }
        let config = tune()?;
        self.insert(key.clone(), config);
        Ok((config, false))
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Serializes every entry as a JSON document (`version` +
    /// `entries` array). Entries are emitted in a deterministic order
    /// (sorted by key label) so repeated saves of the same cache are
    /// byte-identical.
    pub fn save_json(&self) -> String {
        let mut entries: Vec<(TuneKey, TunedConfig)> = self
            .map
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        entries.sort_by_key(|(k, _)| k.label());
        let rows: Vec<String> = entries
            .iter()
            .map(|(k, c)| {
                format!(
                    concat!(
                        "{{\"pattern\":\"{}\",\"rows_bucket\":{},\"cols_bucket\":{},",
                        "\"platform\":\"{}\",\"t_switch\":{},\"t_share\":{},\"tier\":\"{}\",",
                        "\"memory_mode\":\"{}\"}}"
                    ),
                    escape(&format!("{:?}", k.pattern)),
                    k.rows_bucket,
                    k.cols_bucket,
                    escape(&k.platform),
                    c.params.t_switch,
                    c.params.t_share,
                    c.tier.as_str(),
                    c.memory_mode.as_str(),
                )
            })
            .collect();
        format!("{{\"version\":1,\"entries\":[{}]}}", rows.join(","))
    }

    /// Merges entries from a [`TunerCache::save_json`] document into
    /// this cache (loaded entries overwrite same-key entries). Returns
    /// the number of entries loaded. Individual entries that fail to
    /// decode (unknown pattern/tier name, missing field) are skipped —
    /// a cache file written by a newer build pre-warms what it can —
    /// but a document that is not shaped like a cache file at all is an
    /// error.
    pub fn load_json(&self, text: &str) -> std::result::Result<usize, String> {
        let doc = json::parse(text)?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| "tuner cache file has no \"entries\" array".to_string())?;
        let mut loaded = 0;
        for e in entries {
            let Some((key, config)) = decode_entry(e) else {
                continue;
            };
            self.insert(key, config);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Writes [`TunerCache::save_json`] to `path` (trailing newline
    /// included, parent directories not created).
    pub fn save_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.save_json() + "\n")
    }

    /// Loads and merges a cache file written by [`TunerCache::save_to`].
    /// Returns the number of entries loaded.
    pub fn load_from(&self, path: impl AsRef<Path>) -> std::result::Result<usize, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
        self.load_json(&text)
    }
}

/// Decodes one persisted entry, or `None` if any field is missing or
/// unrecognized.
fn decode_entry(e: &Json) -> Option<(TuneKey, TunedConfig)> {
    let pattern_name = e.get("pattern")?.as_str()?;
    let pattern = *Pattern::ALL
        .iter()
        .find(|p| format!("{p:?}") == pattern_name)?;
    let field = |name: &str| -> Option<usize> {
        let v = e.get(name)?.as_f64()?;
        (v.fract() == 0.0 && v >= 0.0).then_some(v as usize)
    };
    let key = TuneKey {
        pattern,
        rows_bucket: field("rows_bucket")?,
        cols_bucket: field("cols_bucket")?,
        platform: e.get("platform")?.as_str()?.to_string(),
    };
    // `memory_mode` is tolerated absent (caches written before the
    // rolling tier default to full-table mode), but a present,
    // unrecognized value rejects the entry like any other bad field.
    let memory_mode = match e.get("memory_mode") {
        None => MemoryMode::Full,
        Some(v) => MemoryMode::parse(v.as_str()?)?,
    };
    let config = TunedConfig {
        params: ScheduleParams::new(field("t_switch")?, field("t_share")?),
        tier: ExecTier::parse(e.get("tier")?.as_str()?)?,
        memory_mode,
    };
    Some((key, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(t_switch: usize, t_share: usize, tier: ExecTier) -> TunedConfig {
        TunedConfig::new(ScheduleParams::new(t_switch, t_share), tier)
    }

    #[test]
    fn keys_bucket_dims_to_powers_of_two() {
        let a = TuneKey::new(Pattern::AntiDiagonal, Dims::new(700, 1000), "high");
        let b = TuneKey::new(Pattern::AntiDiagonal, Dims::new(1024, 513), "high");
        assert_eq!(a.rows_bucket, 1024);
        assert_eq!(a.cols_bucket, 1024);
        assert_eq!(a, b);
        // Different platform or pattern → different key.
        assert_ne!(
            a,
            TuneKey::new(Pattern::AntiDiagonal, Dims::new(700, 1000), "low")
        );
        assert_ne!(
            a,
            TuneKey::new(Pattern::Horizontal, Dims::new(700, 1000), "high")
        );
        assert!(a.label().contains("1024x1024/high"));
    }

    #[test]
    fn get_or_tune_caches_and_counts() {
        let cache = TunerCache::new();
        let key = TuneKey::new(Pattern::Horizontal, Dims::new(64, 64), "high");
        let mut tunes = 0;
        let (c, hit) = cache
            .get_or_tune(&key, || -> Result<_, ()> {
                tunes += 1;
                Ok(cfg(0, 8, ExecTier::Simd))
            })
            .unwrap();
        assert!(!hit);
        assert_eq!(c, cfg(0, 8, ExecTier::Simd));
        let (c2, hit2) = cache
            .get_or_tune(&key, || -> Result<_, ()> {
                tunes += 1;
                Ok(cfg(0, 99, ExecTier::Scalar))
            })
            .unwrap();
        assert!(hit2);
        assert_eq!(c2, cfg(0, 8, ExecTier::Simd));
        assert_eq!(tunes, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn tune_errors_are_not_cached() {
        let cache = TunerCache::new();
        let key = TuneKey::new(Pattern::Horizontal, Dims::new(8, 8), "low");
        let r: Result<_, String> = cache.get_or_tune(&key, || Err("boom".to_string()));
        assert!(r.is_err());
        assert!(cache.is_empty());
        let (_, hit) = cache
            .get_or_tune(&key, || -> Result<_, String> {
                Ok(cfg(0, 1, ExecTier::Bulk))
            })
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn json_round_trip_preserves_every_entry() {
        let cache = TunerCache::new();
        cache.insert(
            TuneKey::new(Pattern::AntiDiagonal, Dims::new(700, 1000), "high"),
            cfg(4, 16, ExecTier::Simd),
        );
        cache.insert(
            TuneKey::new(Pattern::KnightMove, Dims::new(64, 64), "low"),
            cfg(0, 0, ExecTier::Scalar),
        );
        cache.insert(
            TuneKey::new(
                Pattern::AntiDiagonal,
                Dims::new(4096, 4096),
                "with \"quotes\"",
            ),
            cfg(2, 8, ExecTier::BitParallel),
        );
        let text = cache.save_json();
        let restored = TunerCache::new();
        assert_eq!(restored.load_json(&text), Ok(3));
        assert_eq!(restored.len(), 3);
        assert_eq!(
            restored.get(&TuneKey::new(
                Pattern::AntiDiagonal,
                Dims::new(700, 1000),
                "high"
            )),
            Some(cfg(4, 16, ExecTier::Simd))
        );
        assert_eq!(
            restored.get(&TuneKey::new(
                Pattern::AntiDiagonal,
                Dims::new(4096, 4096),
                "with \"quotes\""
            )),
            Some(cfg(2, 8, ExecTier::BitParallel))
        );
        // Deterministic output: saving the restored cache reproduces
        // the document byte for byte.
        assert_eq!(restored.save_json(), text);
    }

    #[test]
    fn load_skips_bad_entries_but_rejects_bad_documents() {
        let cache = TunerCache::new();
        assert!(cache.load_json("not json").is_err());
        assert!(cache.load_json("{\"version\":1}").is_err());
        // One good entry among unknown-pattern / unknown-tier /
        // missing-field junk: only the good one loads.
        let text = concat!(
            "{\"version\":1,\"entries\":[",
            "{\"pattern\":\"Diagonal9\",\"rows_bucket\":8,\"cols_bucket\":8,",
            "\"platform\":\"p\",\"t_switch\":0,\"t_share\":0,\"tier\":\"bulk\"},",
            "{\"pattern\":\"Horizontal\",\"rows_bucket\":8,\"cols_bucket\":8,",
            "\"platform\":\"p\",\"t_switch\":0,\"t_share\":0,\"tier\":\"warp\"},",
            "{\"pattern\":\"Horizontal\",\"rows_bucket\":8,\"cols_bucket\":8,",
            "\"platform\":\"p\",\"t_share\":0,\"tier\":\"bulk\"},",
            "{\"pattern\":\"Horizontal\",\"rows_bucket\":16,\"cols_bucket\":8,",
            "\"platform\":\"p\",\"t_switch\":1,\"t_share\":2,\"tier\":\"bit-parallel\"}",
            "]}"
        );
        assert_eq!(cache.load_json(text), Ok(1));
        assert_eq!(
            cache.get(&TuneKey::new(Pattern::Horizontal, Dims::new(16, 8), "p")),
            Some(cfg(1, 2, ExecTier::BitParallel))
        );
    }

    #[test]
    fn memory_mode_round_trips_and_defaults_to_full() {
        let cache = TunerCache::new();
        let key = TuneKey::new(Pattern::AntiDiagonal, Dims::new(8192, 8192), "low");
        cache.insert(
            key.clone(),
            cfg(4, 16, ExecTier::Simd).with_memory_mode(MemoryMode::Rolling),
        );
        let text = cache.save_json();
        assert!(text.contains("\"memory_mode\":\"rolling\""), "{text}");
        let restored = TunerCache::new();
        assert_eq!(restored.load_json(&text), Ok(1));
        assert_eq!(restored.get(&key).unwrap().memory_mode, MemoryMode::Rolling);
        assert_eq!(restored.save_json(), text);
        // A cache written before the rolling tier has no memory_mode
        // field: the entry still loads, defaulting to full-table mode.
        // A present-but-unknown value skips the entry like other junk.
        let legacy = concat!(
            "{\"version\":1,\"entries\":[",
            "{\"pattern\":\"Horizontal\",\"rows_bucket\":8,\"cols_bucket\":8,",
            "\"platform\":\"p\",\"t_switch\":0,\"t_share\":4,\"tier\":\"bulk\"},",
            "{\"pattern\":\"Horizontal\",\"rows_bucket\":16,\"cols_bucket\":8,",
            "\"platform\":\"p\",\"t_switch\":0,\"t_share\":4,\"tier\":\"bulk\",",
            "\"memory_mode\":\"paged\"}",
            "]}"
        );
        let tolerant = TunerCache::new();
        assert_eq!(tolerant.load_json(legacy), Ok(1));
        let loaded = tolerant
            .get(&TuneKey::new(Pattern::Horizontal, Dims::new(8, 8), "p"))
            .unwrap();
        assert_eq!(loaded.memory_mode, MemoryMode::Full);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("lddp-tc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tune_cache.json");
        let cache = TunerCache::new();
        cache.insert(
            TuneKey::new(Pattern::Vertical, Dims::new(100, 3), "host"),
            cfg(1, 2, ExecTier::Bulk),
        );
        cache.save_to(&path).unwrap();
        let restored = TunerCache::new();
        assert_eq!(restored.load_from(&path), Ok(1));
        assert_eq!(
            restored.get(&TuneKey::new(Pattern::Vertical, Dims::new(100, 3), "host")),
            Some(cfg(1, 2, ExecTier::Bulk))
        );
        assert!(restored.load_from(dir.join("missing.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
