//! Property tests for the k-way multi-accelerator schedule
//! ([`lddp_core::multi::MultiPlan`]), written as deterministic
//! exhaustive sweeps (no external test dependencies) over patterns,
//! contributing sets, dimensions, ramp lengths, and band boundaries.
//!
//! The three invariants a band partition must uphold:
//!
//! 1. **Partition** — `assignment(w)` returns per-device ranges that
//!    are pairwise disjoint and tile the wavefront exactly;
//! 2. **Consistency** — the range a device receives contains exactly
//!    the wave positions whose cells it `owner()`s;
//! 3. **Locality** — `transfers(w)` lists only genuine cross-owner
//!    dependency edges (producer owns the source, consumer owns the
//!    reader, producer ≠ consumer), covers *all* such edges, and keeps
//!    each cell list deduplicated and sorted.

use lddp_core::cell::RepCell::{Ne, Nw, N, W};
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::multi::MultiPlan;
use lddp_core::pattern::Pattern;
use lddp_core::schedule::max_t_switch;
use lddp_core::wavefront::{self, Dims};

fn set(cells: &[RepCell]) -> ContributingSet {
    ContributingSet::new(cells)
}

/// Canonical pattern / compatible contributing set pairs to sweep.
fn cases() -> Vec<(Pattern, ContributingSet)> {
    vec![
        (Pattern::AntiDiagonal, set(&[W, Nw, N])),
        (Pattern::AntiDiagonal, set(&[W, N])),
        (Pattern::AntiDiagonal, set(&[Nw])),
        (Pattern::Horizontal, set(&[Nw, N, Ne])),
        (Pattern::Horizontal, set(&[N])),
        (Pattern::Horizontal, set(&[Nw, Ne])),
        (Pattern::KnightMove, set(&[W, Ne])),
        (Pattern::KnightMove, set(&[W, Nw, N, Ne])),
        (Pattern::InvertedL, set(&[Nw])),
    ]
}

/// Dimension / boundary configurations, including degenerate bands
/// (empty first band, empty last band, duplicate boundaries, single
/// device).
fn configs() -> Vec<(Dims, Vec<usize>)> {
    vec![
        (Dims::new(6, 7), vec![]),
        (Dims::new(6, 7), vec![3]),
        (Dims::new(8, 10), vec![2, 6]),
        (Dims::new(8, 10), vec![0, 5]),
        (Dims::new(8, 10), vec![4, 4]),
        (Dims::new(9, 11), vec![1, 4, 8]),
        (Dims::new(9, 11), vec![11]),
        (Dims::new(12, 5), vec![2, 3]),
        (Dims::new(5, 12), vec![3, 6, 9, 12]),
    ]
}

/// Legal ramp lengths to try for a pattern at the given dims.
fn switches(pattern: Pattern, dims: Dims) -> Vec<usize> {
    let max = max_t_switch(pattern, dims);
    let mut v = vec![0];
    if max > 0 {
        v.push(max / 2);
        v.push(max);
    }
    v.dedup();
    v
}

fn plans() -> impl Iterator<Item = (MultiPlan, Pattern, ContributingSet, Dims)> {
    cases().into_iter().flat_map(|(pattern, s)| {
        configs().into_iter().flat_map(move |(dims, boundaries)| {
            switches(pattern, dims).into_iter().map(move |t_switch| {
                let plan = MultiPlan::new(pattern, s, dims, t_switch, boundaries.clone())
                    .unwrap_or_else(|e| panic!("{pattern} {s} {dims:?} t_switch={t_switch}: {e}"));
                (plan, pattern, s, dims)
            })
        })
    })
}

#[test]
fn assignments_are_disjoint_and_tile_every_wave() {
    for (plan, pattern, _s, dims) in plans() {
        let mut total = 0usize;
        for w in 0..plan.num_waves() {
            let len = pattern.wave_len(dims.rows, dims.cols, w);
            let ranges = plan.assignment(w);
            assert_eq!(ranges.len(), plan.devices());
            // Contiguous ascending prefixes: disjoint by construction,
            // and together they tile 0..len exactly.
            let mut next = 0usize;
            for r in &ranges {
                assert!(r.start <= r.end, "{pattern} wave {w}: inverted range {r:?}");
                assert_eq!(
                    r.start, next,
                    "{pattern} wave {w}: gap or overlap at position {next}"
                );
                next = r.end;
            }
            assert_eq!(next, len, "{pattern} wave {w}: ranges do not tile the wave");
            total += len;
        }
        // Summed over all waves, the wavefront enumerates each cell once.
        assert_eq!(total, dims.rows * dims.cols, "{pattern} {dims:?}");
        assert_eq!(
            plan.cell_counts().iter().sum::<usize>(),
            dims.rows * dims.cols
        );
    }
}

#[test]
fn assignment_ranges_agree_with_cell_ownership() {
    for (plan, pattern, _s, dims) in plans() {
        for w in 0..plan.num_waves() {
            let ranges = plan.assignment(w);
            let cells: Vec<(usize, usize)> = wavefront::wave_cells(pattern, dims, w).collect();
            for (device, r) in ranges.iter().enumerate() {
                for pos in r.clone() {
                    let (i, j) = cells[pos];
                    assert_eq!(
                        plan.owner(i, j),
                        device,
                        "{pattern} wave {w}: position {pos} = ({i},{j}) assigned to \
                         device {device} but owned elsewhere"
                    );
                }
            }
        }
    }
}

#[test]
fn transfers_cross_owner_boundaries_exactly() {
    for (plan, pattern, s, dims) in plans() {
        for w in 0..plan.num_waves() {
            let transfers = plan.transfers(w);

            // Soundness: each listed transfer is a genuine cross-owner
            // dependency edge of this wave, and the producer really owns
            // every cell it ships.
            for t in &transfers {
                assert_ne!(t.from, t.to, "{pattern} wave {w}: self-transfer {t:?}");
                assert!(!t.cells.is_empty(), "{pattern} wave {w}: empty transfer");
                let mut sorted = t.cells.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted, t.cells, "{pattern} wave {w}: not canonical {t:?}");
                for &(si, sj) in &t.cells {
                    assert_eq!(
                        plan.owner(si, sj),
                        t.from,
                        "{pattern} wave {w}: shipped cell ({si},{sj}) not owned by d{}",
                        t.from
                    );
                    let feeds_consumer = wavefront::wave_cells(pattern, dims, w).any(|(i, j)| {
                        plan.owner(i, j) == t.to
                            && s.iter()
                                .any(|dep| dep.source(i, j, dims.rows, dims.cols) == Some((si, sj)))
                    });
                    assert!(
                        feeds_consumer,
                        "{pattern} wave {w}: ({si},{sj}) shipped to d{} feeds none of \
                         its cells",
                        t.to
                    );
                }
            }

            // Completeness: every cross-owner dependency of the wave is
            // listed.
            for (i, j) in wavefront::wave_cells(pattern, dims, w) {
                let reader = plan.owner(i, j);
                for dep in s.iter() {
                    if let Some(src) = dep.source(i, j, dims.rows, dims.cols) {
                        let producer = plan.owner(src.0, src.1);
                        if producer != reader {
                            assert!(
                                transfers.iter().any(|t| t.from == producer
                                    && t.to == reader
                                    && t.cells.contains(&src)),
                                "{pattern} wave {w}: dependency ({i},{j}) <- {src:?} \
                                 crosses d{producer}->d{reader} but is not transferred"
                            );
                        }
                    }
                }
            }
        }
    }
}
