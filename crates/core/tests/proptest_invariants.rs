//! Property-based tests of the core geometric machinery: wavefront
//! enumeration, layouts, schedules and transfers must uphold their
//! invariants for *arbitrary* table shapes, contributing sets and
//! parameters — not just the hand-picked cases of the unit tests.

use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::{Grid, Layout, LayoutKind};
use lddp_core::kernel::{ClosureKernel, Neighbors};
use lddp_core::pattern::{classify, Pattern, ProfileShape};
use lddp_core::schedule::{compatible, Device, PhaseKind, Plan, ScheduleParams};
use lddp_core::seq::{solve_row_major, solve_wavefront};
use lddp_core::wavefront::{self, Dims};
use proptest::prelude::*;

/// Arbitrary small dims (non-empty).
fn dims_strategy() -> impl Strategy<Value = Dims> {
    (1usize..14, 1usize..14).prop_map(|(r, c)| Dims::new(r, c))
}

/// Arbitrary non-empty contributing set.
fn set_strategy() -> impl Strategy<Value = ContributingSet> {
    (1u8..16).prop_map(|bits| ContributingSet::from_bits(bits).unwrap())
}

/// Arbitrary pattern.
fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    prop::sample::select(Pattern::ALL.to_vec())
}

/// A valid (pattern, set, dims, params) combination for Plan::new.
fn plan_strategy() -> impl Strategy<Value = Plan> {
    (set_strategy(), dims_strategy(), 0usize..8, 0usize..16).prop_filter_map(
        "must classify to a canonical pattern with legal params",
        |(set, dims, t_switch, t_share)| {
            let pattern = classify(set)?.canonical();
            if !compatible(pattern, set) {
                return None;
            }
            let waves = pattern.num_waves(dims.rows, dims.cols);
            let t_switch = match pattern.profile_shape() {
                ProfileShape::Constant => 0,
                ProfileShape::RampUpDown => t_switch.min(waves / 2),
                ProfileShape::Decreasing => t_switch.min(waves),
            };
            Plan::new(
                pattern,
                set,
                dims,
                ScheduleParams::new(t_switch, t_share.min(dims.cols)),
            )
            .ok()
        },
    )
}

proptest! {
    /// Waves tile the table exactly once, for any pattern and shape.
    #[test]
    fn waves_partition_table(p in pattern_strategy(), dims in dims_strategy()) {
        let mut seen = vec![false; dims.len()];
        for w in 0..p.num_waves(dims.rows, dims.cols) {
            for (i, j) in wavefront::wave_cells(p, dims, w) {
                let idx = i * dims.cols + j;
                prop_assert!(!seen[idx], "({i},{j}) visited twice");
                seen[idx] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// position_in_wave / cell_at are inverse bijections.
    #[test]
    fn wave_position_roundtrip(p in pattern_strategy(), dims in dims_strategy()) {
        for i in 0..dims.rows {
            for j in 0..dims.cols {
                let w = wavefront::wave_of(p, dims, i, j);
                let pos = wavefront::position_in_wave(p, dims, i, j);
                prop_assert!(pos < p.wave_len(dims.rows, dims.cols, w));
                prop_assert_eq!(wavefront::cell_at(p, dims, w, pos), (i, j));
            }
        }
    }

    /// Every classified set's dependencies land strictly earlier in its
    /// pattern's wave order.
    #[test]
    fn classification_is_schedulable(set in set_strategy(), dims in dims_strategy()) {
        let pattern = classify(set).unwrap();
        for i in 0..dims.rows {
            for j in 0..dims.cols {
                for dep in set.iter() {
                    if let Some((si, sj)) = dep.source(i, j, dims.rows, dims.cols) {
                        prop_assert!(
                            wavefront::wave_of(pattern, dims, si, sj)
                                < wavefront::wave_of(pattern, dims, i, j)
                        );
                    }
                }
            }
        }
    }

    /// Layout index maps are bijections for every layout kind.
    #[test]
    fn layout_bijection(p in pattern_strategy(), dims in dims_strategy()) {
        for kind in [LayoutKind::RowMajor, LayoutKind::WaveMajor(p)] {
            let layout = Layout::new(kind, dims);
            let mut seen = vec![false; dims.len()];
            for i in 0..dims.rows {
                for j in 0..dims.cols {
                    let idx = layout.index(i, j);
                    prop_assert!(idx < dims.len());
                    prop_assert!(!seen[idx]);
                    seen[idx] = true;
                    prop_assert_eq!(layout.coords(idx), (i, j));
                }
            }
        }
    }

    /// Grid set/get roundtrips under any layout.
    #[test]
    fn grid_roundtrip(p in pattern_strategy(), dims in dims_strategy(),
                      values in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut g: Grid<u32> = Grid::new(LayoutKind::WaveMajor(p), dims);
        let mut expected = vec![0u32; dims.len()];
        for (k, &v) in values.iter().enumerate() {
            let i = (k * 7) % dims.rows;
            let j = (k * 13) % dims.cols;
            g.set(i, j, v);
            expected[i * dims.cols + j] = v;
        }
        prop_assert_eq!(g.to_row_major(), expected);
    }

    /// Wave-order solving equals row-major solving for random sets,
    /// shapes and cell arithmetic.
    #[test]
    fn wavefront_solve_equals_oracle(set in set_strategy(), dims in dims_strategy(),
                                     salt in any::<u64>()) {
        let kernel = ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
            let mut acc = salt ^ ((i as u64) << 32 | j as u64).wrapping_mul(0x9e3779b97f4a7c15);
            for c in RepCell::ALL {
                if let Some(v) = n.get(c) {
                    acc = acc.wrapping_mul(31).wrapping_add(*v);
                }
            }
            acc
        });
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let pattern = classify(set).unwrap();
        let got = solve_wavefront(&kernel, LayoutKind::preferred_for(pattern.canonical()))
            .unwrap()
            .to_row_major();
        prop_assert_eq!(got, oracle);
    }

    /// Plans: CPU + GPU assignments tile every wave; owner agrees with
    /// the ranges; audit counts every cell exactly once.
    #[test]
    fn plan_partition_invariants(plan in plan_strategy()) {
        let dims = plan.dims();
        let pattern = plan.pattern();
        let mut cpu_cells = 0;
        let mut gpu_cells = 0;
        for a in plan.assignments() {
            prop_assert_eq!(a.cpu.start, 0);
            prop_assert_eq!(a.cpu.end, a.gpu.start);
            prop_assert_eq!(a.gpu.end, pattern.wave_len(dims.rows, dims.cols, a.wave));
            cpu_cells += a.cpu_len();
            gpu_cells += a.gpu_len();
            for (pos, (i, j)) in wavefront::wave_cells(pattern, dims, a.wave).enumerate() {
                let expected = if pos < a.cpu.end { Device::Cpu } else { Device::Gpu };
                prop_assert_eq!(plan.owner(i, j), expected);
            }
            if a.phase == PhaseKind::CpuOnly {
                prop_assert_eq!(a.gpu_len(), 0);
            }
        }
        prop_assert_eq!(cpu_cells + gpu_cells, dims.len());
        let audit = plan.audit();
        prop_assert_eq!(audit.cpu_cells, cpu_cells);
        prop_assert_eq!(audit.gpu_cells, gpu_cells);
    }

    /// Plans: transfer lists cover every cross-device dependency (THE
    /// transfer-correctness property), and never list same-device or
    /// future cells.
    #[test]
    fn plan_transfer_invariants(plan in plan_strategy()) {
        let dims = plan.dims();
        let pattern = plan.pattern();
        let set = plan.set();
        for w in 0..plan.num_waves() {
            let t = plan.transfers(w);
            for &(i, j) in t.to_gpu.iter() {
                prop_assert_eq!(plan.owner(i, j), Device::Cpu);
                prop_assert!(wavefront::wave_of(pattern, dims, i, j) < w);
            }
            for &(i, j) in t.to_cpu.iter() {
                prop_assert_eq!(plan.owner(i, j), Device::Gpu);
                prop_assert!(wavefront::wave_of(pattern, dims, i, j) < w);
            }
            for (i, j) in wavefront::wave_cells(pattern, dims, w) {
                let reader = plan.owner(i, j);
                for dep in set.iter() {
                    if let Some(src) = dep.source(i, j, dims.rows, dims.cols) {
                        if plan.owner(src.0, src.1) != reader {
                            let list = match reader {
                                Device::Cpu => &t.to_cpu,
                                Device::Gpu => &t.to_gpu,
                            };
                            prop_assert!(list.contains(&src),
                                "wave {w}: ({i},{j}) missing import {src:?}");
                        }
                    }
                }
            }
        }
    }

    /// Phase spans are contiguous, exhaustive and consistent with
    /// phase_of.
    #[test]
    fn plan_phase_invariants(plan in plan_strategy()) {
        let mut next = 0;
        for span in plan.phases() {
            prop_assert_eq!(span.waves.start, next);
            next = span.waves.end;
            for w in span.waves.clone() {
                prop_assert_eq!(plan.phase_of(w), span.kind);
            }
        }
        prop_assert_eq!(next, plan.num_waves());
    }

    /// Symmetry adapters: transposing twice (via classification data) is
    /// the identity on sets; mirrored sets classify to mirrored patterns.
    #[test]
    fn set_symmetries(set in set_strategy()) {
        if let Some(t) = set.transposed() {
            prop_assert_eq!(t.transposed(), Some(set));
        }
        if let Some(m) = set.mirrored() {
            prop_assert_eq!(m.mirrored(), Some(set));
            let a = classify(set).unwrap();
            let b = classify(m).unwrap();
            // Mirroring maps the L patterns onto each other and fixes
            // horizontal.
            let expected = match a {
                Pattern::InvertedL => Pattern::MirroredInvertedL,
                Pattern::MirroredInvertedL => Pattern::InvertedL,
                other => other,
            };
            prop_assert_eq!(b, expected);
        }
    }

    /// Larger t_share never decreases the CPU's share of cells.
    #[test]
    fn t_share_monotone(set in set_strategy(), dims in dims_strategy(), a in 0usize..8, b in 0usize..8) {
        let pattern = classify(set).unwrap().canonical();
        if !compatible(pattern, set) {
            return Ok(());
        }
        let (lo, hi) = (a.min(b).min(dims.cols), a.max(b).min(dims.cols));
        let t_switch = 0;
        let plan_lo = Plan::new(pattern, set, dims, ScheduleParams::new(t_switch, lo));
        let plan_hi = Plan::new(pattern, set, dims, ScheduleParams::new(t_switch, hi));
        if let (Ok(plan_lo), Ok(plan_hi)) = (plan_lo, plan_hi) {
            prop_assert!(plan_hi.audit().cpu_cells >= plan_lo.audit().cpu_cells);
        }
    }
}

/// Strategy for k-way plans: classified canonical pattern + sorted
/// boundaries.
fn multi_plan_strategy() -> impl Strategy<Value = lddp_core::multi::MultiPlan> {
    (
        set_strategy(),
        dims_strategy(),
        0usize..6,
        proptest::collection::vec(0usize..14, 0..4),
    )
        .prop_filter_map(
            "canonical pattern with legal boundaries",
            |(set, dims, t_switch, mut bounds)| {
                let pattern = classify(set)?.canonical();
                if !compatible(pattern, set) {
                    return None;
                }
                bounds.sort_unstable();
                bounds.retain(|&b| b <= dims.cols);
                let waves = pattern.num_waves(dims.rows, dims.cols);
                let t_switch = match pattern.profile_shape() {
                    ProfileShape::Constant => 0,
                    ProfileShape::RampUpDown => t_switch.min(waves / 2),
                    ProfileShape::Decreasing => t_switch.min(waves),
                };
                lddp_core::multi::MultiPlan::new(pattern, set, dims, t_switch, bounds).ok()
            },
        )
}

proptest! {
    /// k-way assignments tile every wave; owners agree with ranges.
    #[test]
    fn multi_plan_partition_invariants(plan in multi_plan_strategy()) {
        let dims = plan.dims();
        let pattern = plan.pattern();
        let mut total = 0usize;
        for w in 0..plan.num_waves() {
            let ranges = plan.assignment(w);
            prop_assert_eq!(ranges.len(), plan.devices());
            let mut next = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, next);
                next = r.end;
            }
            prop_assert_eq!(next, pattern.wave_len(dims.rows, dims.cols, w));
            for (d, r) in ranges.iter().enumerate() {
                total += r.len();
                for pos in r.clone() {
                    let (i, j) = wavefront::cell_at(pattern, dims, w, pos);
                    prop_assert_eq!(plan.owner(i, j), d, "wave {} pos {}", w, pos);
                }
            }
        }
        prop_assert_eq!(total, dims.len());
    }

    /// k-way transfers cover every cross-device dependency and only list
    /// cells the producer really owns, from strictly earlier waves.
    #[test]
    fn multi_plan_transfer_invariants(plan in multi_plan_strategy()) {
        let dims = plan.dims();
        let pattern = plan.pattern();
        let set = plan.set();
        for w in 0..plan.num_waves() {
            let transfers = plan.transfers(w);
            for t in &transfers {
                prop_assert_ne!(t.from, t.to);
                for &(i, j) in &t.cells {
                    prop_assert_eq!(plan.owner(i, j), t.from);
                    prop_assert!(wavefront::wave_of(pattern, dims, i, j) < w);
                }
            }
            for (i, j) in wavefront::wave_cells(pattern, dims, w) {
                let reader = plan.owner(i, j);
                for dep in set.iter() {
                    if let Some(src) = dep.source(i, j, dims.rows, dims.cols) {
                        let producer = plan.owner(src.0, src.1);
                        if producer != reader {
                            let found = transfers.iter().any(|t| {
                                t.from == producer && t.to == reader && t.cells.contains(&src)
                            });
                            prop_assert!(found, "wave {}: ({}, {}) missing {:?}", w, i, j, src);
                        }
                    }
                }
            }
        }
    }
}
