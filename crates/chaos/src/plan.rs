//! Seeded, deterministic fault plans.
//!
//! A [`FaultPlan`] decides each potential fault from a pure function of
//! `(seed, site, draw index)`: every decision point draws the next index
//! for its site from an atomic counter and hashes it. Two runs with the
//! same seed that reach the same decision points in the same per-site
//! order therefore inject the same faults — concurrency may interleave
//! *sites* differently, but each site's fault sequence is fixed, which
//! is what makes campaign reports comparable across runs.

use crate::FaultInjector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Maps a hash to the unit interval `[0, 1)`.
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Decision-point categories, one draw counter each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Pool worker panics mid-wave (parallel engine).
    WorkerPanic,
    /// Bulk kernel path fails (recoverable by the scalar path).
    BulkPanic,
    /// Simulated device / boundary-transfer failure (hetero-sim).
    DeviceFault,
    /// HTTP connection reset without a response.
    TornConnection,
    /// HTTP response delayed.
    SlowConnection,
    /// Serve worker stalls after queue pickup.
    QueueStall,
    /// Admission amplified into a synthetic batch-class arrival burst.
    AdmissionStorm,
}

impl FaultSite {
    /// All sites, in report order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::WorkerPanic,
        FaultSite::BulkPanic,
        FaultSite::DeviceFault,
        FaultSite::TornConnection,
        FaultSite::SlowConnection,
        FaultSite::QueueStall,
        FaultSite::AdmissionStorm,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::WorkerPanic => 0,
            FaultSite::BulkPanic => 1,
            FaultSite::DeviceFault => 2,
            FaultSite::TornConnection => 3,
            FaultSite::SlowConnection => 4,
            FaultSite::QueueStall => 5,
            FaultSite::AdmissionStorm => 6,
        }
    }

    /// Stable per-site salt folded into the hash stream.
    fn salt(self) -> u64 {
        // Arbitrary odd constants; changing them changes every seeded
        // campaign, so treat them as part of the on-disk format.
        [
            0xa076_1d64_78bd_642f,
            0xe703_7ed1_a0b4_28db,
            0x8ebc_6af0_9c88_c6e3,
            0x5899_65cc_7537_4cc3,
            0x1d8e_4e27_c47d_124f,
            0xeb44_acca_b455_d165,
            0x2f1b_9d4a_6c83_e507,
        ][self.index()]
    }

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::BulkPanic => "bulk_panic",
            FaultSite::DeviceFault => "device_fault",
            FaultSite::TornConnection => "torn_connection",
            FaultSite::SlowConnection => "slow_connection",
            FaultSite::QueueStall => "queue_stall",
            FaultSite::AdmissionStorm => "admission_storm",
        }
    }
}

/// Per-site injection probabilities and delay magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanConfig {
    /// Probability a given `(worker, wave)` panics.
    pub worker_panic_prob: f64,
    /// Probability a given bulk wave fails.
    pub bulk_panic_prob: f64,
    /// Probability a given hetero wave suffers a device fault.
    pub device_fault_prob: f64,
    /// Probability an HTTP exchange is torn down without a response.
    pub torn_conn_prob: f64,
    /// Probability an HTTP response is delayed, and by how much.
    pub slow_conn_prob: f64,
    /// Delay imposed on slow connections, milliseconds.
    pub slow_conn_ms: u64,
    /// Probability a serve worker stalls after pickup, and for how long.
    pub queue_stall_prob: f64,
    /// Stall duration, milliseconds.
    pub queue_stall_ms: u64,
    /// Probability an admitted request is amplified into a synthetic
    /// batch-class arrival burst.
    pub admission_storm_prob: f64,
    /// Number of synthetic batch clones per storm.
    pub admission_storm_burst: usize,
}

impl FaultPlanConfig {
    /// Nothing injected; useful as a base for struct-update syntax.
    pub fn none() -> Self {
        FaultPlanConfig {
            worker_panic_prob: 0.0,
            bulk_panic_prob: 0.0,
            device_fault_prob: 0.0,
            torn_conn_prob: 0.0,
            slow_conn_prob: 0.0,
            slow_conn_ms: 0,
            queue_stall_prob: 0.0,
            queue_stall_ms: 0,
            admission_storm_prob: 0.0,
            admission_storm_burst: 0,
        }
    }

    /// The `--campaign quick` preset: low per-decision rates (worker
    /// panics are drawn per worker×wave, so even 0.2% fires often on a
    /// real solve) with short stalls, suitable for CI smoke runs.
    pub fn quick() -> Self {
        FaultPlanConfig {
            worker_panic_prob: 0.002,
            bulk_panic_prob: 0.01,
            device_fault_prob: 0.02,
            torn_conn_prob: 0.05,
            slow_conn_prob: 0.05,
            slow_conn_ms: 20,
            queue_stall_prob: 0.05,
            queue_stall_ms: 30,
            admission_storm_prob: 0.02,
            admission_storm_burst: 4,
        }
    }

    /// The `--campaign heavy` preset: every site fires frequently.
    pub fn heavy() -> Self {
        FaultPlanConfig {
            worker_panic_prob: 0.01,
            bulk_panic_prob: 0.05,
            device_fault_prob: 0.1,
            torn_conn_prob: 0.15,
            slow_conn_prob: 0.15,
            slow_conn_ms: 50,
            queue_stall_prob: 0.1,
            queue_stall_ms: 60,
            admission_storm_prob: 0.05,
            admission_storm_burst: 8,
        }
    }

    fn prob(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::WorkerPanic => self.worker_panic_prob,
            FaultSite::BulkPanic => self.bulk_panic_prob,
            FaultSite::DeviceFault => self.device_fault_prob,
            FaultSite::TornConnection => self.torn_conn_prob,
            FaultSite::SlowConnection => self.slow_conn_prob,
            FaultSite::QueueStall => self.queue_stall_prob,
            FaultSite::AdmissionStorm => self.admission_storm_prob,
        }
    }
}

/// Injection tallies for one site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteTally {
    /// Decision points consulted.
    pub drawn: u64,
    /// Faults injected.
    pub injected: u64,
}

/// Snapshot of what a plan injected so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Seed the plan was built with.
    pub seed: u64,
    /// Per-site tallies, indexed in [`FaultSite::ALL`] order.
    tallies: [SiteTally; 7],
}

impl FaultReport {
    /// Tally for one site.
    pub fn site(&self, site: FaultSite) -> SiteTally {
        self.tallies[site.index()]
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.tallies.iter().map(|t| t.injected).sum()
    }

    /// JSON object keyed by site name: `{"worker_panic":{"drawn":N,"injected":M},...}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (k, site) in FaultSite::ALL.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let t = self.site(*site);
            out.push_str(&format!(
                "\"{}\":{{\"drawn\":{},\"injected\":{}}}",
                site.name(),
                t.drawn,
                t.injected
            ));
        }
        out.push('}');
        out
    }
}

/// A seeded deterministic [`FaultInjector`].
///
/// Thread-safe and lock-free: each site keeps an atomic draw counter,
/// and the decision for draw `k` of site `s` is a pure hash of
/// `(seed, s, k)`.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultPlanConfig,
    draws: [AtomicU64; 7],
    injected: [AtomicU64; 7],
}

impl FaultPlan {
    /// Builds a plan from a seed and per-site rates.
    pub fn new(seed: u64, cfg: FaultPlanConfig) -> Self {
        FaultPlan {
            seed,
            cfg,
            draws: Default::default(),
            injected: Default::default(),
        }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rates.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.cfg
    }

    /// Draws the next decision for `site`; deterministic per seed and
    /// per-site draw order.
    fn decide(&self, site: FaultSite) -> bool {
        let p = self.cfg.prob(site);
        let i = site.index();
        let k = self.draws[i].fetch_add(1, Ordering::Relaxed);
        if p <= 0.0 {
            return false;
        }
        let h = mix64(self.seed ^ site.salt() ^ k.wrapping_mul(0x9e3779b97f4a7c15));
        let hit = unit_f64(h) < p;
        if hit {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Snapshot of draws and injections so far.
    pub fn report(&self) -> FaultReport {
        let mut tallies = [SiteTally::default(); 7];
        for (i, t) in tallies.iter_mut().enumerate() {
            t.drawn = self.draws[i].load(Ordering::Relaxed);
            t.injected = self.injected[i].load(Ordering::Relaxed);
        }
        FaultReport {
            seed: self.seed,
            tallies,
        }
    }
}

impl FaultInjector for FaultPlan {
    fn active(&self) -> bool {
        true
    }

    fn worker_panic(&self, _worker: usize, _wave: usize) -> bool {
        self.decide(FaultSite::WorkerPanic)
    }

    fn bulk_panic(&self, _wave: usize) -> bool {
        self.decide(FaultSite::BulkPanic)
    }

    fn device_fault(&self, _wave: usize) -> bool {
        self.decide(FaultSite::DeviceFault)
    }

    fn torn_connection(&self) -> bool {
        self.decide(FaultSite::TornConnection)
    }

    fn slow_connection(&self) -> Option<Duration> {
        if self.decide(FaultSite::SlowConnection) {
            Some(Duration::from_millis(self.cfg.slow_conn_ms))
        } else {
            None
        }
    }

    fn queue_stall(&self) -> Option<Duration> {
        if self.decide(FaultSite::QueueStall) {
            Some(Duration::from_millis(self.cfg.queue_stall_ms))
        } else {
            None
        }
    }

    fn admission_storm(&self) -> Option<usize> {
        if self.decide(FaultSite::AdmissionStorm) && self.cfg.admission_storm_burst > 0 {
            Some(self.cfg.admission_storm_burst)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fault_sequence() {
        let a = FaultPlan::new(42, FaultPlanConfig::heavy());
        let b = FaultPlan::new(42, FaultPlanConfig::heavy());
        let seq_a: Vec<bool> = (0..200).map(|w| a.device_fault(w)).collect();
        let seq_b: Vec<bool> = (0..200).map(|w| b.device_fault(w)).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, FaultPlanConfig::heavy());
        let b = FaultPlan::new(2, FaultPlanConfig::heavy());
        let seq_a: Vec<bool> = (0..200).map(|w| a.device_fault(w)).collect();
        let seq_b: Vec<bool> = (0..200).map(|w| b.device_fault(w)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::new(7, FaultPlanConfig::heavy());
        let n = 20_000;
        let hits = (0..n).filter(|&w| plan.device_fault(w)).count();
        let rate = hits as f64 / n as f64;
        assert!(
            (rate - 0.1).abs() < 0.02,
            "device fault rate {rate} far from configured 0.1"
        );
    }

    #[test]
    fn zero_prob_never_fires_but_still_draws() {
        let plan = FaultPlan::new(3, FaultPlanConfig::none());
        for w in 0..100 {
            assert!(!plan.worker_panic(0, w));
        }
        let r = plan.report();
        assert_eq!(r.site(FaultSite::WorkerPanic).drawn, 100);
        assert_eq!(r.site(FaultSite::WorkerPanic).injected, 0);
        assert_eq!(r.total_injected(), 0);
    }

    #[test]
    fn sites_draw_independently() {
        let plan = FaultPlan::new(9, FaultPlanConfig::heavy());
        let _ = plan.torn_connection();
        let _ = plan.slow_connection();
        let _ = plan.queue_stall();
        let r = plan.report();
        assert_eq!(r.site(FaultSite::TornConnection).drawn, 1);
        assert_eq!(r.site(FaultSite::SlowConnection).drawn, 1);
        assert_eq!(r.site(FaultSite::QueueStall).drawn, 1);
        assert_eq!(r.site(FaultSite::WorkerPanic).drawn, 0);
    }

    #[test]
    fn admission_storm_is_seeded_and_sized() {
        let cfg = FaultPlanConfig {
            admission_storm_prob: 1.0,
            admission_storm_burst: 5,
            ..FaultPlanConfig::none()
        };
        let plan = FaultPlan::new(11, cfg);
        assert_eq!(plan.admission_storm(), Some(5));
        let r = plan.report();
        assert_eq!(r.site(FaultSite::AdmissionStorm).drawn, 1);
        assert_eq!(r.site(FaultSite::AdmissionStorm).injected, 1);
        // Same seed, same decisions.
        let a = FaultPlan::new(23, FaultPlanConfig::heavy());
        let b = FaultPlan::new(23, FaultPlanConfig::heavy());
        let seq_a: Vec<_> = (0..200).map(|_| a.admission_storm()).collect();
        let seq_b: Vec<_> = (0..200).map(|_| b.admission_storm()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|s| s == &Some(8)));
    }

    #[test]
    fn report_json_names_every_site() {
        let plan = FaultPlan::new(5, FaultPlanConfig::quick());
        let json = plan.report().to_json();
        for site in FaultSite::ALL {
            assert!(json.contains(site.name()), "{json} missing {}", site.name());
        }
    }
}
