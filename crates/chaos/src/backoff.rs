//! Jittered exponential backoff.
//!
//! LDDP solves are pure functions of the request, so retrying a failed
//! or torn exchange is always safe (the related wavefront literature
//! leans on exactly this re-executability). The only question is *when*
//! to retry; the answer here is capped exponential backoff with "equal
//! jitter": attempt `k` sleeps uniformly in `[d/2, d)` for
//! `d = min(cap, base << k)`, which keeps retry storms decorrelated
//! while bounding worst-case added latency.

use crate::plan::{mix64, unit_f64};
use std::time::Duration;

/// Retry schedule shared by the HTTP client and the load generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff base, milliseconds.
    pub base_ms: u64,
    /// Backoff cap, milliseconds.
    pub cap_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// Sensible serving default: 3 attempts, 25 ms base, 400 ms cap.
    pub fn default_serving(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_ms: 25,
            cap_ms: 400,
            seed,
        }
    }

    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_ms: 0,
            cap_ms: 0,
            seed: 0,
        }
    }

    /// Whether a failed attempt number `attempt` (0-based) may retry.
    pub fn may_retry(&self, attempt: u32) -> bool {
        attempt + 1 < self.max_attempts
    }

    /// Jittered delay before retry number `attempt` (0-based: the delay
    /// after the first failure is `delay(0)`). Deterministic in
    /// `(seed, attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        if self.base_ms == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .base_ms
            .checked_shl(attempt.min(32))
            .unwrap_or(u64::MAX);
        let d = exp.min(self.cap_ms.max(self.base_ms));
        let h = mix64(self.seed ^ (attempt as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
        let jittered = d / 2 + (unit_f64(h) * (d as f64 / 2.0)) as u64;
        Duration::from_millis(jittered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_then_cap() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_ms: 10,
            cap_ms: 80,
            seed: 42,
        };
        // Jitter keeps each delay in [d/2, d).
        for (attempt, d) in [(0u32, 10u64), (1, 20), (2, 40), (3, 80), (6, 80)] {
            let ms = p.delay(attempt).as_millis() as u64;
            assert!(
                ms >= d / 2 && ms < d,
                "attempt {attempt}: {ms}ms outside [{}, {})",
                d / 2,
                d
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RetryPolicy::default_serving(7);
        let b = RetryPolicy::default_serving(7);
        let c = RetryPolicy::default_serving(8);
        assert_eq!(a.delay(1), b.delay(1));
        // Different seeds almost surely jitter differently for at least
        // one attempt.
        assert!((0..8).any(|k| a.delay(k) != c.delay(k)));
    }

    #[test]
    fn attempt_budget() {
        let p = RetryPolicy::default_serving(1);
        assert!(p.may_retry(0));
        assert!(p.may_retry(1));
        assert!(!p.may_retry(2));
        assert!(!RetryPolicy::none().may_retry(0));
        assert_eq!(RetryPolicy::none().delay(0), Duration::ZERO);
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let p = RetryPolicy {
            max_attempts: 100,
            base_ms: 1000,
            cap_ms: 5000,
            seed: 3,
        };
        let ms = p.delay(99).as_millis() as u64;
        assert!((2500..5000).contains(&ms));
    }
}
