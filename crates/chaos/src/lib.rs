//! # lddp-chaos — deterministic fault injection and recovery primitives
//!
//! The paper's schedules assume both devices and every boundary transfer
//! succeed; a long-lived serving deployment cannot. This crate supplies
//! the *failure half* of the reproduction:
//!
//! - [`FaultInjector`] — a hook trait threaded through the parallel
//!   engine, the hetero-sim executor and the HTTP serving stack. Every
//!   method defaults to "no fault", so release paths pay one virtual
//!   call (usually on [`NoFaults`], which the compiler sees through) and
//!   no branches.
//! - [`FaultPlan`] — a seeded, deterministic injector: given the same
//!   seed and the same sequence of decision points it injects the same
//!   faults, which makes chaos campaigns reproducible and bisectable.
//! - [`RetryPolicy`] — jittered exponential backoff with a deterministic
//!   per-seed jitter stream, used by the loadgen/HTTP retry path.
//! - [`CircuitBreaker`] — a closed → open → half-open breaker used by
//!   the server to shed load after repeated backend failures and to
//!   surface a `degraded` health state plus `Retry-After` hints.
//!
//! Everything here is `std`-only and wall-clock-free except the breaker
//! (which reasons about real elapsed time by design; its internals take
//! explicit `Instant`s so tests stay deterministic).

mod backoff;
mod breaker;
mod plan;

pub use backoff::RetryPolicy;
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use plan::{mix64, unit_f64, FaultPlan, FaultPlanConfig, FaultReport, FaultSite};

use std::time::Duration;

/// Hook points where the engines consult the injector.
///
/// Implementations must be cheap and thread-safe: the worker-panic hook
/// is called from every pool worker on every wave. All methods default
/// to "no fault injected" so a plain `impl FaultInjector for X {}` is a
/// valid no-op.
pub trait FaultInjector: Send + Sync {
    /// Fast gate: `false` means no hook will ever fire, letting hot
    /// paths skip per-wave consultation entirely.
    fn active(&self) -> bool {
        false
    }

    /// Should pool worker `worker` panic at wave `wave`? (parallel
    /// engine, scalar and bulk paths).
    fn worker_panic(&self, worker: usize, wave: usize) -> bool {
        let _ = (worker, wave);
        false
    }

    /// Should the bulk (contiguous-run) kernel path fail at `wave`?
    /// Injected *only* on the bulk path, so degrading bulk→scalar
    /// genuinely recovers from it.
    fn bulk_panic(&self, wave: usize) -> bool {
        let _ = wave;
        false
    }

    /// Should the simulated device (or its boundary transfer) fail at
    /// `wave`? (hetero-sim executor).
    fn device_fault(&self, wave: usize) -> bool {
        let _ = wave;
        false
    }

    /// Should the server tear this HTTP connection down mid-exchange
    /// (reset without a response)?
    fn torn_connection(&self) -> bool {
        false
    }

    /// Extra latency to impose on this HTTP response, if any.
    fn slow_connection(&self) -> Option<Duration> {
        None
    }

    /// Stall to impose on a serve worker between queue pickup and
    /// batch processing, if any (exercises deadline shedding).
    fn queue_stall(&self) -> Option<Duration> {
        None
    }

    /// Should this admission be amplified into a synthetic batch-class
    /// arrival burst, and by how many clones? Consulted once per
    /// admitted request; exercises tenant quotas and the brownout
    /// ladder under seeded, reproducible overload.
    fn admission_storm(&self) -> Option<usize> {
        None
    }
}

/// The no-op injector used by release paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_injects_nothing() {
        let inj = NoFaults;
        assert!(!inj.active());
        assert!(!inj.worker_panic(0, 0));
        assert!(!inj.bulk_panic(3));
        assert!(!inj.device_fault(7));
        assert!(!inj.torn_connection());
        assert!(inj.slow_connection().is_none());
        assert!(inj.queue_stall().is_none());
        assert!(inj.admission_storm().is_none());
    }

    #[test]
    fn trait_objects_are_usable_across_threads() {
        let inj: std::sync::Arc<dyn FaultInjector> = std::sync::Arc::new(NoFaults);
        let inj2 = std::sync::Arc::clone(&inj);
        std::thread::spawn(move || assert!(!inj2.worker_panic(1, 1)))
            .join()
            .unwrap();
        assert!(!inj.device_fault(0));
    }
}
