//! Per-backend circuit breaker.
//!
//! Classic three-state machine:
//!
//! ```text
//!            N consecutive failures
//!   Closed ───────────────────────────▶ Open
//!     ▲                                  │ open_for elapsed
//!     │  probe succeeds                  ▼
//!     └─────────────────────────────  HalfOpen
//!                 probe fails ─▶ back to Open
//! ```
//!
//! While `Open`, [`CircuitBreaker::allow`] rejects with the remaining
//! cooldown so callers can emit `Retry-After`. `HalfOpen` admits a
//! bounded number of concurrent probes; one success closes the breaker,
//! one failure re-opens it. All time-dependent transitions take an
//! explicit `Instant` internally so tests never sleep.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// How long Open lasts before probing.
    pub open_for: Duration,
    /// Concurrent probe budget while HalfOpen.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_for: Duration::from_secs(2),
            half_open_probes: 1,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: everything admitted.
    Closed,
    /// Shedding: nothing admitted until the cooldown elapses.
    Open,
    /// Probing: a bounded number of requests admitted to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name used in health/stats JSON.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probes_in_flight: u32,
    opens: u64,
}

/// Thread-safe circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// Builds a closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probes_in_flight: 0,
                opens: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admission check at `Instant::now()`; `Err` carries the suggested
    /// `Retry-After` duration.
    pub fn allow(&self) -> Result<(), Duration> {
        self.allow_at(Instant::now())
    }

    /// Admission check at an explicit instant (testable form).
    pub fn allow_at(&self, now: Instant) -> Result<(), Duration> {
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                let opened = g.opened_at.expect("open breaker has an open timestamp");
                let elapsed = now.saturating_duration_since(opened);
                if elapsed >= self.cfg.open_for {
                    g.state = BreakerState::HalfOpen;
                    g.probes_in_flight = 1;
                    Ok(())
                } else {
                    Err(self.cfg.open_for - elapsed)
                }
            }
            BreakerState::HalfOpen => {
                if g.probes_in_flight < self.cfg.half_open_probes {
                    g.probes_in_flight += 1;
                    Ok(())
                } else {
                    // Probes already in flight will decide; tell other
                    // callers to come back after a short beat.
                    Err(self.cfg.open_for / 2)
                }
            }
        }
    }

    /// Records a successful solve; closes the breaker from HalfOpen.
    pub fn record_success(&self) {
        let mut g = self.lock();
        g.consecutive_failures = 0;
        if g.state != BreakerState::Closed {
            g.state = BreakerState::Closed;
            g.opened_at = None;
        }
        g.probes_in_flight = 0;
    }

    /// Records a failed solve at `Instant::now()`; returns `true` when
    /// this call tripped the breaker open.
    pub fn record_failure(&self) -> bool {
        self.record_failure_at(Instant::now())
    }

    /// Records a failed solve at an explicit instant (testable form).
    pub fn record_failure_at(&self, now: Instant) -> bool {
        let mut g = self.lock();
        match g.state {
            BreakerState::HalfOpen => {
                // The probe failed: straight back to Open.
                g.state = BreakerState::Open;
                g.opened_at = Some(now);
                g.probes_in_flight = 0;
                g.opens += 1;
                true
            }
            BreakerState::Open => false,
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.cfg.failure_threshold {
                    g.state = BreakerState::Open;
                    g.opened_at = Some(now);
                    g.opens += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Current state (Open may still report Open even if the cooldown
    /// has elapsed; the transition happens on the next `allow`).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Times the breaker has transitioned to Open.
    pub fn opens(&self) -> u64 {
        self.lock().opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_for: Duration::from_millis(100),
            half_open_probes: 1,
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        assert!(!b.record_failure_at(t0));
        assert!(!b.record_failure_at(t0));
        assert!(b.record_failure_at(t0));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        let err = b.allow_at(t0).unwrap_err();
        assert!(err <= Duration::from_millis(100));
    }

    #[test]
    fn success_resets_the_failure_run() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        b.record_failure_at(t0);
        b.record_failure_at(t0);
        b.record_success();
        assert!(!b.record_failure_at(t0));
        assert!(!b.record_failure_at(t0));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure_at(t0);
        }
        let later = t0 + Duration::from_millis(150);
        // First caller becomes the probe; the second is held back.
        assert!(b.allow_at(later).is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow_at(later).is_err());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow_at(later).is_ok());
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure_at(t0);
        }
        let later = t0 + Duration::from_millis(150);
        assert!(b.allow_at(later).is_ok());
        assert!(b.record_failure_at(later));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert!(b.allow_at(later).is_err());
    }

    #[test]
    fn state_names_are_stable() {
        assert_eq!(BreakerState::Closed.name(), "closed");
        assert_eq!(BreakerState::Open.name(), "open");
        assert_eq!(BreakerState::HalfOpen.name(), "half_open");
    }
}
