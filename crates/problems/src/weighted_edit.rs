//! Weighted edit distance (general Wagner–Fischer): per-operation
//! costs for insertion, deletion and substitution. Same anti-diagonal
//! LDDP structure as Levenshtein; shows that the framework consumes the
//! whole cost-parameterized family, not just the unit-cost case.
//!
//! Scope note: *Damerau*–Levenshtein (adjacent transpositions) is **not**
//! an LDDP-Plus problem — its recurrence reads `(i-2, j-2)`, which lies
//! outside the representative set — and is deliberately absent.

use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::Grid;
use lddp_core::kernel::{Kernel, Neighbors};
use lddp_core::wavefront::Dims;

/// Operation costs (non-negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditCosts {
    /// Cost of inserting a symbol of `b`.
    pub insert: u32,
    /// Cost of deleting a symbol of `a`.
    pub delete: u32,
    /// Cost of substituting a mismatching pair.
    pub substitute: u32,
}

impl Default for EditCosts {
    fn default() -> Self {
        EditCosts {
            insert: 1,
            delete: 1,
            substitute: 1,
        }
    }
}

/// Weighted-edit-distance kernel over two byte strings.
#[derive(Debug, Clone)]
pub struct WeightedEditKernel {
    a: Vec<u8>,
    b: Vec<u8>,
    costs: EditCosts,
}

impl WeightedEditKernel {
    /// Builds the kernel with the given costs.
    pub fn new(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>, costs: EditCosts) -> Self {
        WeightedEditKernel {
            a: a.into(),
            b: b.into(),
            costs,
        }
    }

    /// Distance from a filled table.
    pub fn distance_from(&self, grid: &Grid<u32>) -> u32 {
        let d = self.dims();
        grid.get(d.rows - 1, d.cols - 1)
    }
}

impl Kernel for WeightedEditKernel {
    type Cell = u32;

    fn dims(&self) -> Dims {
        Dims::new(self.a.len() + 1, self.b.len() + 1)
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<u32>) -> u32 {
        let c = self.costs;
        if i == 0 {
            return j as u32 * c.insert;
        }
        if j == 0 {
            return i as u32 * c.delete;
        }
        let w = nbrs.w.expect("W in bounds");
        let nw = nbrs.nw.expect("NW in bounds");
        let n = nbrs.n.expect("N in bounds");
        let sub = if self.a[i - 1] == self.b[j - 1] {
            nw
        } else {
            nw + c.substitute
        };
        sub.min(w + c.insert).min(n + c.delete)
    }

    fn cost_ops(&self) -> u32 {
        26
    }

    fn name(&self) -> &str {
        "weighted-edit"
    }
}

/// Independent two-row reference.
pub fn weighted_distance(a: &[u8], b: &[u8], c: EditCosts) -> u32 {
    let n = b.len();
    let mut prev: Vec<u32> = (0..=n as u32).map(|j| j * c.insert).collect();
    let mut cur = vec![0u32; n + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = (i as u32 + 1) * c.delete;
        for (j, &cb) in b.iter().enumerate() {
            let sub = if ca == cb {
                prev[j]
            } else {
                prev[j] + c.substitute
            };
            cur[j + 1] = sub.min(cur[j] + c.insert).min(prev[j + 1] + c.delete);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::distance;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn classified_as_anti_diagonal() {
        let k = WeightedEditKernel::new(*b"ab", *b"cd", EditCosts::default());
        assert_eq!(classify(k.contributing_set()), Some(Pattern::AntiDiagonal));
    }

    #[test]
    fn unit_costs_recover_levenshtein() {
        for (a, b) in [
            (&b"kitten"[..], &b"sitting"[..]),
            (b"", b"abc"),
            (b"flaw", b"lawn"),
        ] {
            assert_eq!(
                weighted_distance(a, b, EditCosts::default()),
                distance(a, b)
            );
        }
    }

    #[test]
    fn expensive_substitution_prefers_indel() {
        // sub = 3 > insert + delete = 2: a mismatch should be resolved by
        // delete+insert.
        let costs = EditCosts {
            insert: 1,
            delete: 1,
            substitute: 3,
        };
        assert_eq!(weighted_distance(b"a", b"b", costs), 2);
        // With cheap substitution it is 1.
        assert_eq!(weighted_distance(b"a", b"b", EditCosts::default()), 1);
    }

    #[test]
    fn asymmetric_costs() {
        let costs = EditCosts {
            insert: 5,
            delete: 1,
            substitute: 2,
        };
        // a → "" uses deletes only.
        assert_eq!(weighted_distance(b"xyz", b"", costs), 3);
        // "" → b uses inserts only.
        assert_eq!(weighted_distance(b"", b"xyz", costs), 15);
    }

    proptest! {
        #[test]
        fn kernel_matches_reference(
            a in proptest::collection::vec(0u8..4, 0..20),
            b in proptest::collection::vec(0u8..4, 0..20),
            ins in 1u32..5, del in 1u32..5, sub in 1u32..7,
        ) {
            let costs = EditCosts { insert: ins, delete: del, substitute: sub };
            let k = WeightedEditKernel::new(a.clone(), b.clone(), costs);
            let grid = solve_row_major(&k).unwrap();
            prop_assert_eq!(k.distance_from(&grid), weighted_distance(&a, &b, costs));
        }

        /// Effective substitution cost is capped by insert + delete.
        #[test]
        fn substitution_capped_by_indel(
            a in proptest::collection::vec(0u8..3, 0..14),
            b in proptest::collection::vec(0u8..3, 0..14),
            sub in 1u32..12,
        ) {
            let costs = EditCosts { insert: 1, delete: 1, substitute: sub };
            let capped = EditCosts { insert: 1, delete: 1, substitute: sub.min(2) };
            prop_assert_eq!(
                weighted_distance(&a, &b, costs),
                weighted_distance(&a, &b, capped)
            );
        }

        /// Scaling all costs scales the distance.
        #[test]
        fn cost_scaling(
            a in proptest::collection::vec(0u8..4, 0..14),
            b in proptest::collection::vec(0u8..4, 0..14),
            k in 1u32..5,
        ) {
            let unit = EditCosts::default();
            let scaled = EditCosts { insert: k, delete: k, substitute: k };
            prop_assert_eq!(
                weighted_distance(&a, &b, scaled),
                k * weighted_distance(&a, &b, unit)
            );
        }
    }
}
