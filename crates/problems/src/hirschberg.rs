//! Hirschberg's linear-space LCS recovery — the classic
//! divide-and-conquer companion to the bit-parallel length algorithm:
//! reconstructs an actual longest common subsequence in `O(min(m, n))`
//! space and `O(m·n)` time, where the naive traceback needs the full
//! quadratic table. Rounds out the "problem-specific excellent
//! solutions" the paper's introduction contrasts the generic framework
//! against.

/// Last row of the LCS length table for `a` vs `b` (forward direction),
/// in `O(|b|)` space.
fn lcs_last_row(a: &[u8], b: &[u8]) -> Vec<u32> {
    let mut prev = vec![0u32; b.len() + 1];
    let mut cur = vec![0u32; b.len() + 1];
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                cur[j].max(prev[j + 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    prev
}

/// One longest common subsequence of `a` and `b`, computed in linear
/// space with Hirschberg's divide-and-conquer.
///
/// ```
/// use lddp_problems::hirschberg::lcs_string;
/// assert_eq!(lcs_string(b"AGGTAB", b"GXTXAYB"), b"GTAB".to_vec());
/// ```
pub fn lcs_string(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len() == 1 {
        return if b.contains(&a[0]) {
            vec![a[0]]
        } else {
            Vec::new()
        };
    }
    // Split a in half; find the column where an optimal path crosses.
    let mid = a.len() / 2;
    let (a_top, a_bot) = a.split_at(mid);
    let forward = lcs_last_row(a_top, b);
    let b_rev: Vec<u8> = b.iter().rev().copied().collect();
    let a_bot_rev: Vec<u8> = a_bot.iter().rev().copied().collect();
    let backward = lcs_last_row(&a_bot_rev, &b_rev);
    let split = (0..=b.len())
        .max_by_key(|&j| forward[j] + backward[b.len() - j])
        .expect("non-empty range");
    let mut left = lcs_string(a_top, &b[..split]);
    let right = lcs_string(a_bot, &b[split..]);
    left.extend(right);
    left
}

/// Checks whether `sub` is a subsequence of `s`.
pub fn is_subsequence(sub: &[u8], s: &[u8]) -> bool {
    let mut it = s.iter();
    sub.iter().all(|c| it.any(|x| x == c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::{lcs_length, lcs_length_bitparallel};
    use proptest::prelude::*;

    #[test]
    fn known_cases() {
        assert_eq!(lcs_string(b"ABCBDAB", b"BDCABA").len(), 4);
        assert_eq!(lcs_string(b"AGGTAB", b"GXTXAYB"), b"GTAB".to_vec());
        assert_eq!(lcs_string(b"", b"abc"), Vec::<u8>::new());
        assert_eq!(lcs_string(b"abc", b""), Vec::<u8>::new());
        assert_eq!(lcs_string(b"same", b"same"), b"same".to_vec());
        assert_eq!(lcs_string(b"abc", b"def"), Vec::<u8>::new());
        assert_eq!(lcs_string(b"x", b"axa"), b"x".to_vec());
    }

    #[test]
    fn subsequence_checker() {
        assert!(is_subsequence(b"ace", b"abcde"));
        assert!(!is_subsequence(b"aec", b"abcde"));
        assert!(is_subsequence(b"", b"abc"));
        assert!(!is_subsequence(b"a", b""));
    }

    proptest! {
        /// The recovered string is a common subsequence of both inputs
        /// with exactly the optimal length.
        #[test]
        fn recovers_an_optimal_common_subsequence(
            a in proptest::collection::vec(0u8..4, 0..60),
            b in proptest::collection::vec(0u8..4, 0..60),
        ) {
            let s = lcs_string(&a, &b);
            prop_assert!(is_subsequence(&s, &a), "not a subsequence of a");
            prop_assert!(is_subsequence(&s, &b), "not a subsequence of b");
            prop_assert_eq!(s.len() as u32, lcs_length(&a, &b));
            prop_assert_eq!(s.len() as u32, lcs_length_bitparallel(&a, &b));
        }

        /// Identical strings recover themselves.
        #[test]
        fn identity(a in proptest::collection::vec(any::<u8>(), 0..40)) {
            prop_assert_eq!(lcs_string(&a, &a), a);
        }
    }
}
