//! Hirschberg-style linear-space traceback for every wave problem.
//!
//! The classic divide-and-conquer recovers a full alignment/path in
//! `O(n + m)` space and `O(n·m)` time by splitting the first sequence
//! at its midpoint, running a *score-only* forward pass over the top
//! half and a backward pass over the reversed bottom half, and
//! recursing on the two sub-rectangles that meet at the best crossing
//! column. The naive traceback needs the full quadratic table.
//!
//! This module provides that recovery for all five wave problems. The
//! original two-row LCS implementation ([`lcs_string`]) is kept as a
//! standalone reference; the kernel-backed variants
//! ([`lcs_string_rolling`], [`levenshtein_ops`], [`nw_alignment`],
//! [`sw_alignment`], [`dtw_path`]) run their score-only passes through
//! [`lddp_core::rolling`], so the forward/backward sweeps reuse the
//! engine's bulk/SIMD wave bodies and honor an [`ExecTier`] request.
//! Smith–Waterman composes Huang–Miller endpoint discovery with a
//! Myers–Miller affine-gap global glue; DTW splices warp-path halves
//! with a shared-cell correction at the crossing row.

/// Last row of the LCS length table for `a` vs `b` (forward direction),
/// in `O(|b|)` space.
fn lcs_last_row(a: &[u8], b: &[u8]) -> Vec<u32> {
    let mut prev = vec![0u32; b.len() + 1];
    let mut cur = vec![0u32; b.len() + 1];
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                cur[j].max(prev[j + 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    prev
}

/// One longest common subsequence of `a` and `b`, computed in linear
/// space with Hirschberg's divide-and-conquer.
///
/// ```
/// use lddp_problems::hirschberg::lcs_string;
/// assert_eq!(lcs_string(b"AGGTAB", b"GXTXAYB"), b"GTAB".to_vec());
/// ```
pub fn lcs_string(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len() == 1 {
        return if b.contains(&a[0]) {
            vec![a[0]]
        } else {
            Vec::new()
        };
    }
    // Split a in half; find the column where an optimal path crosses.
    let mid = a.len() / 2;
    let (a_top, a_bot) = a.split_at(mid);
    let forward = lcs_last_row(a_top, b);
    let b_rev: Vec<u8> = b.iter().rev().copied().collect();
    let a_bot_rev: Vec<u8> = a_bot.iter().rev().copied().collect();
    let backward = lcs_last_row(&a_bot_rev, &b_rev);
    let split = (0..=b.len())
        .max_by_key(|&j| forward[j] + backward[b.len() - j])
        .expect("non-empty range");
    let mut left = lcs_string(a_top, &b[..split]);
    let right = lcs_string(a_bot, &b[split..]);
    left.extend(right);
    left
}

/// Checks whether `sub` is a subsequence of `s`.
pub fn is_subsequence(sub: &[u8], s: &[u8]) -> bool {
    let mut it = s.iter();
    sub.iter().all(|c| it.any(|x| x == c))
}

use lddp_core::kernel::{ExecTier, Kernel};
use lddp_core::{rolling, seq};

use crate::dtw::DtwKernel;
use crate::lcs::LcsKernel;
use crate::levenshtein::{EditOp, LevenshteinKernel};
use crate::needleman_wunsch::{NeedlemanWunschKernel, NwScoring};
use crate::smith_waterman::{Scoring, SmithWatermanKernel, SwCell};

fn rev(s: &[u8]) -> Vec<u8> {
    s.iter().rev().copied().collect()
}

/// Last grid row of `kernel`, computed through the rolling wave-band
/// score-only path (three live bands, engine-tier wave bodies).
fn last_row_of<K: Kernel>(kernel: &K, tier: Option<ExecTier>) -> Vec<K::Cell> {
    let rows = kernel.dims().rows;
    rolling::solve_row(kernel, rows - 1, tier)
        .expect("wave kernels classify anti-diagonal")
        .0
}

/// One longest common subsequence, recovered in linear space with the
/// score-only passes running through the rolling wave-band engine path
/// (so `tier` selects scalar/bulk/SIMD wave bodies). Split selection
/// matches [`lcs_string`] exactly, so the two agree byte-for-byte.
pub fn lcs_string_rolling(a: &[u8], b: &[u8], tier: Option<ExecTier>) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len() == 1 {
        return if b.contains(&a[0]) {
            vec![a[0]]
        } else {
            Vec::new()
        };
    }
    let mid = a.len() / 2;
    let forward = last_row_of(&LcsKernel::new(&a[..mid], b), tier);
    let backward = last_row_of(&LcsKernel::new(rev(&a[mid..]), rev(b)), tier);
    let split = (0..=b.len())
        .max_by_key(|&j| forward[j] + backward[b.len() - j])
        .expect("non-empty range");
    let mut left = lcs_string_rolling(&a[..mid], &b[..split], tier);
    left.extend(lcs_string_rolling(&a[mid..], &b[split..], tier));
    left
}

/// An optimal edit script turning `a` into `b`, recovered in linear
/// space: forward/backward Levenshtein rows via the rolling path, full
/// tables only for `|a| ≤ 1` or `|b| ≤ 1` base cases (O(n + m) cells).
pub fn levenshtein_ops(a: &[u8], b: &[u8], tier: Option<ExecTier>) -> Vec<EditOp> {
    if a.len() <= 1 || b.len() <= 1 {
        let k = LevenshteinKernel::new(a, b);
        let grid = seq::solve_row_major(&k).expect("non-empty contributing set");
        return k.edit_script(&grid);
    }
    let mid = a.len() / 2;
    let forward = last_row_of(&LevenshteinKernel::new(&a[..mid], b), tier);
    let backward = last_row_of(&LevenshteinKernel::new(rev(&a[mid..]), rev(b)), tier);
    let split = (0..=b.len())
        .min_by_key(|&j| forward[j] + backward[b.len() - j])
        .expect("non-empty range");
    let mut ops = levenshtein_ops(&a[..mid], &b[..split], tier);
    ops.extend(levenshtein_ops(&a[mid..], &b[split..], tier));
    ops
}

/// An optimal global alignment (gapped rows for `a` and `b`) under
/// linear gap scoring `s`, recovered in linear space via midpoint
/// splits on rolling score rows.
pub fn nw_alignment(
    a: &[u8],
    b: &[u8],
    s: NwScoring,
    tier: Option<ExecTier>,
) -> (Vec<u8>, Vec<u8>) {
    if a.len() <= 1 || b.len() <= 1 {
        let k = NeedlemanWunschKernel::new(a, b).with_scoring(s);
        let grid = seq::solve_row_major(&k).expect("non-empty contributing set");
        return k.alignment_from(&grid);
    }
    let mid = a.len() / 2;
    let fwd_kernel = NeedlemanWunschKernel::new(&a[..mid], b).with_scoring(s);
    let bwd_kernel = NeedlemanWunschKernel::new(rev(&a[mid..]), rev(b)).with_scoring(s);
    let forward = last_row_of(&fwd_kernel, tier);
    let backward = last_row_of(&bwd_kernel, tier);
    let split = (0..=b.len())
        .max_by_key(|&j| forward[j] + backward[b.len() - j])
        .expect("non-empty range");
    let (mut ra, mut rb) = nw_alignment(&a[..mid], &b[..split], s, tier);
    let (ta, tb) = nw_alignment(&a[mid..], &b[split..], s, tier);
    ra.extend(ta);
    rb.extend(tb);
    (ra, rb)
}

// ---------------------------------------------------------------------------
// Smith–Waterman: Huang–Miller endpoints + Myers–Miller affine glue.
// ---------------------------------------------------------------------------

/// A best local alignment recovered in linear space.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwAlignment {
    /// Optimal local-alignment score (0 when no positive-scoring pair
    /// exists; the rows are empty in that case).
    pub score: i32,
    /// Half-open aligned span in `a`.
    pub a_range: (usize, usize),
    /// Half-open aligned span in `b`.
    pub b_range: (usize, usize),
    /// `a`'s aligned row, `b'-'`-padded at gaps.
    pub row_a: Vec<u8>,
    /// `b`'s aligned row, `b'-'`-padded at gaps.
    pub row_b: Vec<u8>,
}

/// Forward Gotoh rows over `y` for all of `x` (score-maximising,
/// affine gaps `open + (k-1)·extend`, matching the Smith–Waterman
/// kernel's recurrence). Returns the last row of `cc` (best score, any
/// end state) and `dd` (best score ending in an `x`-gap, that gap's
/// open charge included). `lead_free` waives the open charge of a
/// deletion run that starts the alignment (a vertical gap continuing
/// from above a Myers–Miller split).
fn affine_rows(x: &[u8], y: &[u8], s: Scoring, lead_free: bool) -> (Vec<i64>, Vec<i64>) {
    const NEG: i64 = i64::MIN / 4;
    let (o, e) = (s.gap_open as i64, s.gap_extend as i64);
    let n = y.len();
    let mut cc = vec![0i64; n + 1];
    let mut dd = vec![NEG; n + 1];
    for (j, c) in cc.iter_mut().enumerate().skip(1) {
        *c = o + (j as i64 - 1) * e;
    }
    for (i, &xi) in x.iter().enumerate() {
        let mut diag = cc[0];
        cc[0] = if lead_free {
            (i as i64 + 1) * e
        } else {
            o + i as i64 * e
        };
        dd[0] = cc[0];
        let mut ii = NEG;
        for (j, &yj) in y.iter().enumerate() {
            let jj = j + 1;
            dd[jj] = (cc[jj] + o).max(dd[jj] + e);
            ii = (cc[jj - 1] + o).max(ii + e);
            let sub = if xi == yj { s.matches } else { s.mismatch } as i64;
            let m = diag + sub;
            diag = cc[jj];
            cc[jj] = m.max(dd[jj]).max(ii);
        }
    }
    (cc, dd)
}

/// Best "anchored" score `max over (i, j)` of the *global* affine
/// alignment of `x[..i]` vs `y[..j]` — i.e. alignments forced to start
/// at the origin with a free end. Returns `(score, i, j)`.
fn best_anchored(x: &[u8], y: &[u8], s: Scoring) -> (i64, usize, usize) {
    const NEG: i64 = i64::MIN / 4;
    let (o, e) = (s.gap_open as i64, s.gap_extend as i64);
    let n = y.len();
    let mut cc = vec![0i64; n + 1];
    let mut dd = vec![NEG; n + 1];
    for (j, c) in cc.iter_mut().enumerate().skip(1) {
        *c = o + (j as i64 - 1) * e;
    }
    let mut best = (0i64, 0usize, 0usize);
    for (i, &xi) in x.iter().enumerate() {
        let mut diag = cc[0];
        cc[0] = o + i as i64 * e;
        dd[0] = cc[0];
        let mut ii = NEG;
        for (j, &yj) in y.iter().enumerate() {
            let jj = j + 1;
            dd[jj] = (cc[jj] + o).max(dd[jj] + e);
            ii = (cc[jj - 1] + o).max(ii + e);
            let sub = if xi == yj { s.matches } else { s.mismatch } as i64;
            let m = diag + sub;
            diag = cc[jj];
            cc[jj] = m.max(dd[jj]).max(ii);
            if cc[jj] > best.0 {
                best = (cc[jj], i + 1, jj);
            }
        }
    }
    best
}

/// Myers–Miller linear-space global affine-gap alignment. Appends the
/// gapped rows of `x` and `y` to `out_a`/`out_b`. `top_free` /
/// `bot_free` waive the gap-open charge of a leading / trailing
/// deletion run (it continues a vertical gap across the recursion
/// boundary), which keeps split scores exact when a gap straddles the
/// midpoint row.
fn mm_align(
    x: &[u8],
    y: &[u8],
    s: Scoring,
    top_free: bool,
    bot_free: bool,
    out_a: &mut Vec<u8>,
    out_b: &mut Vec<u8>,
) {
    let (o, e) = (s.gap_open as i64, s.gap_extend as i64);
    if x.is_empty() {
        out_a.extend(std::iter::repeat_n(b'-', y.len()));
        out_b.extend_from_slice(y);
        return;
    }
    if y.is_empty() {
        out_a.extend_from_slice(x);
        out_b.extend(std::iter::repeat_n(b'-', x.len()));
        return;
    }
    if x.len() == 1 {
        // Either delete x[0] and insert all of y, or align x[0] with
        // some y[k] between two insert runs. The lone deletion's open
        // charge is waived when it can merge with a boundary gap.
        let gap = |k: i64| if k == 0 { 0 } else { o + (k - 1) * e };
        let del = if top_free || bot_free { e } else { o };
        let mut best = del + gap(y.len() as i64);
        let mut best_k: Option<usize> = None;
        for (k, &yk) in y.iter().enumerate() {
            let sub = if x[0] == yk { s.matches } else { s.mismatch } as i64;
            let v = gap(k as i64) + sub + gap((y.len() - k - 1) as i64);
            if v > best {
                best = v;
                best_k = Some(k);
            }
        }
        match best_k {
            Some(k) => {
                out_a.extend(std::iter::repeat_n(b'-', k));
                out_b.extend_from_slice(&y[..k]);
                out_a.push(x[0]);
                out_b.push(y[k]);
                out_a.extend(std::iter::repeat_n(b'-', y.len() - k - 1));
                out_b.extend_from_slice(&y[k + 1..]);
            }
            None if bot_free && !top_free => {
                // Deletion last, so it abuts the continuing gap below.
                out_a.extend(std::iter::repeat_n(b'-', y.len()));
                out_b.extend_from_slice(y);
                out_a.push(x[0]);
                out_b.push(b'-');
            }
            None => {
                out_a.push(x[0]);
                out_b.push(b'-');
                out_a.extend(std::iter::repeat_n(b'-', y.len()));
                out_b.extend_from_slice(y);
            }
        }
        return;
    }
    let mid = x.len() / 2;
    let n = y.len();
    // Score rows are dropped before recursing, keeping space linear.
    let (split, through_gap) = {
        let (cc_f, dd_f) = affine_rows(&x[..mid], y, s, top_free);
        let (cc_r, dd_r) = affine_rows(&rev(&x[mid..]), &rev(y), s, bot_free);
        let mut best = i64::MIN;
        let mut at = (0usize, false);
        for j in 0..=n {
            let type1 = cc_f[j] + cc_r[n - j];
            if type1 > best {
                best = type1;
                at = (j, false);
            }
            // A vertical gap crossing the midpoint row is charged open
            // on both sides; refund one (open - extend).
            let type2 = dd_f[j] + dd_r[n - j] - (o - e);
            if type2 > best {
                best = type2;
                at = (j, true);
            }
        }
        at
    };
    if through_gap {
        mm_align(&x[..mid - 1], &y[..split], s, top_free, true, out_a, out_b);
        out_a.push(x[mid - 1]);
        out_b.push(b'-');
        out_a.push(x[mid]);
        out_b.push(b'-');
        mm_align(&x[mid + 1..], &y[split..], s, true, bot_free, out_a, out_b);
    } else {
        mm_align(&x[..mid], &y[..split], s, top_free, false, out_a, out_b);
        mm_align(&x[mid..], &y[split..], s, false, bot_free, out_a, out_b);
    }
}

/// A best local alignment under affine-gap scoring `s`, recovered in
/// linear space (Huang & Miller 1991): the end point comes from a
/// rolling score-only sweep ([`rolling::solve_best`] over
/// [`SwCell::best`]), the start point from an anchored sweep over the
/// reversed prefixes, and the aligned rows from a Myers–Miller global
/// glue over the spanned sub-rectangle.
pub fn sw_alignment(a: &[u8], b: &[u8], s: Scoring, tier: Option<ExecTier>) -> SwAlignment {
    let k = SmithWatermanKernel::new(a, b).with_scoring(s);
    let (best, _) = rolling::solve_best(&k, tier, |c: &SwCell| c.best() as i64)
        .expect("wave kernels classify anti-diagonal");
    let Some((ie, je, cell)) = best else {
        return SwAlignment::default();
    };
    let score = cell.best();
    if score <= 0 {
        return SwAlignment::default();
    }
    // Optimal local alignments never end in a gap, so (ie, je) consumes
    // a[ie-1], b[je-1]; anchor the reversed problem there to find the
    // start. Its max equals `score` because spans map one-to-one.
    let (rscore, rlen_a, rlen_b) = best_anchored(&rev(&a[..ie]), &rev(&b[..je]), s);
    debug_assert_eq!(rscore, score as i64);
    let (a0, b0) = (ie - rlen_a, je - rlen_b);
    let mut row_a = Vec::new();
    let mut row_b = Vec::new();
    mm_align(
        &a[a0..ie],
        &b[b0..je],
        s,
        false,
        false,
        &mut row_a,
        &mut row_b,
    );
    SwAlignment {
        score,
        a_range: (a0, ie),
        b_range: (b0, je),
        row_a,
        row_b,
    }
}

// ---------------------------------------------------------------------------
// DTW: warp-path recovery with a shared-cell split correction.
// ---------------------------------------------------------------------------

fn rev_f32(s: &[f32]) -> Vec<f32> {
    s.iter().rev().copied().collect()
}

/// An optimal warp path and the DTW distance, in linear space. The
/// distance comes from the rolling forward pass (bit-identical to the
/// full-table engine); the path from recursive midpoint splits where
/// the crossing cell's local cost — counted by both the forward and
/// backward half — is subtracted once. Unbanded only (a Sakoe–Chiba
/// band can sever the returned path); returns `None` on empty input.
pub fn dtw_path(
    a: &[f32],
    b: &[f32],
    tier: Option<ExecTier>,
) -> Option<(Vec<(usize, usize)>, f32)> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let k = DtwKernel::new(a.to_vec(), b.to_vec());
    let (corner, _) = rolling::solve_corner(&k, tier).expect("wave kernels classify anti-diagonal");
    let distance = corner.expect("non-empty grid has a corner");
    let mut path = Vec::new();
    dtw_path_rec(a, b, 0, 0, tier, &mut path);
    Some((path, distance))
}

fn dtw_path_rec(
    a: &[f32],
    b: &[f32],
    off_i: usize,
    off_j: usize,
    tier: Option<ExecTier>,
    out: &mut Vec<(usize, usize)>,
) {
    if a.len() <= 2 || b.len() <= 2 {
        // One dimension is ≤ 2, so the full table is O(n + m) cells.
        let k = DtwKernel::new(a.to_vec(), b.to_vec());
        let grid = seq::solve_row_major(&k).expect("non-empty contributing set");
        let (mut i, mut j) = (a.len() - 1, b.len() - 1);
        let start = out.len();
        out.push((off_i + i, off_j + j));
        while i > 0 || j > 0 {
            // The cell was computed as local + min(preds); re-derive
            // that min rather than comparing against cell - local,
            // which is not exact in floating point.
            let mut next = (f32::INFINITY, i, j);
            let mut consider = |ci: usize, cj: usize| {
                let v = grid.get(ci, cj);
                if v < next.0 {
                    next = (v, ci, cj);
                }
            };
            if i > 0 && j > 0 {
                consider(i - 1, j - 1);
            }
            if i > 0 {
                consider(i - 1, j);
            }
            if j > 0 {
                consider(i, j - 1);
            }
            (i, j) = (next.1, next.2);
            out.push((off_i + i, off_j + j));
        }
        out[start..].reverse();
        return;
    }
    let mid = a.len() / 2;
    let split = {
        let forward = last_row_of(&DtwKernel::new(a[..=mid].to_vec(), b.to_vec()), tier);
        let backward = last_row_of(&DtwKernel::new(rev_f32(&a[mid..]), rev_f32(b)), tier);
        let n = b.len();
        let mut best = (f32::INFINITY, 0usize);
        for (j, &f) in forward.iter().enumerate() {
            // Both halves include the crossing cell's local cost.
            let v = f + backward[n - 1 - j] - (a[mid] - b[j]).abs();
            if v < best.0 {
                best = (v, j);
            }
        }
        best.1
    };
    dtw_path_rec(&a[..=mid], &b[..=split], off_i, off_j, tier, out);
    // The prefix ends at the crossing cell and the suffix starts there.
    out.pop();
    dtw_path_rec(
        &a[mid..],
        &b[split..],
        off_i + mid,
        off_j + split,
        tier,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::{lcs_length, lcs_length_bitparallel};
    use proptest::prelude::*;

    #[test]
    fn known_cases() {
        assert_eq!(lcs_string(b"ABCBDAB", b"BDCABA").len(), 4);
        assert_eq!(lcs_string(b"AGGTAB", b"GXTXAYB"), b"GTAB".to_vec());
        assert_eq!(lcs_string(b"", b"abc"), Vec::<u8>::new());
        assert_eq!(lcs_string(b"abc", b""), Vec::<u8>::new());
        assert_eq!(lcs_string(b"same", b"same"), b"same".to_vec());
        assert_eq!(lcs_string(b"abc", b"def"), Vec::<u8>::new());
        assert_eq!(lcs_string(b"x", b"axa"), b"x".to_vec());
    }

    #[test]
    fn subsequence_checker() {
        assert!(is_subsequence(b"ace", b"abcde"));
        assert!(!is_subsequence(b"aec", b"abcde"));
        assert!(is_subsequence(b"", b"abc"));
        assert!(!is_subsequence(b"a", b""));
    }

    proptest! {
        /// The recovered string is a common subsequence of both inputs
        /// with exactly the optimal length.
        #[test]
        fn recovers_an_optimal_common_subsequence(
            a in proptest::collection::vec(0u8..4, 0..60),
            b in proptest::collection::vec(0u8..4, 0..60),
        ) {
            let s = lcs_string(&a, &b);
            prop_assert!(is_subsequence(&s, &a), "not a subsequence of a");
            prop_assert!(is_subsequence(&s, &b), "not a subsequence of b");
            prop_assert_eq!(s.len() as u32, lcs_length(&a, &b));
            prop_assert_eq!(s.len() as u32, lcs_length_bitparallel(&a, &b));
        }

        /// Identical strings recover themselves.
        #[test]
        fn identity(a in proptest::collection::vec(any::<u8>(), 0..40)) {
            prop_assert_eq!(lcs_string(&a, &a), a);
        }
    }

    use crate::dtw::dtw_distance;
    use crate::levenshtein::{self, apply_edit_script};
    use crate::needleman_wunsch::global_score;
    use crate::smith_waterman::best_local_score;

    /// Tier choices exercised by the recovery proptests: engine auto,
    /// plus each forced rung (rolling downgrades unavailable ones).
    fn tier_choice(t: usize) -> Option<ExecTier> {
        [
            None,
            Some(ExecTier::Scalar),
            Some(ExecTier::Bulk),
            Some(ExecTier::Simd),
        ][t % 4]
    }

    /// Affine-gap score of a gapped row pair, charging `gap_open` for
    /// the first residue of each maximal gap run and `gap_extend` for
    /// the rest — the Smith–Waterman kernel's cost model.
    fn affine_rows_score(row_a: &[u8], row_b: &[u8], s: Scoring) -> i64 {
        assert_eq!(row_a.len(), row_b.len());
        let mut total = 0i64;
        let (mut in_del, mut in_ins) = (false, false);
        for (&x, &y) in row_a.iter().zip(row_b) {
            assert!(x != b'-' || y != b'-', "gap aligned to gap");
            if x == b'-' {
                total += if in_ins { s.gap_extend } else { s.gap_open } as i64;
                (in_del, in_ins) = (false, true);
            } else if y == b'-' {
                total += if in_del { s.gap_extend } else { s.gap_open } as i64;
                (in_del, in_ins) = (true, false);
            } else {
                total += if x == y { s.matches } else { s.mismatch } as i64;
                (in_del, in_ins) = (false, false);
            }
        }
        total
    }

    fn degap(row: &[u8]) -> Vec<u8> {
        row.iter().copied().filter(|&c| c != b'-').collect()
    }

    #[test]
    fn levenshtein_ops_known_and_degenerate_shapes() {
        // 1 × m, n × 1, and odd-length splits all hit base cases.
        for (a, b) in [
            (&b""[..], &b""[..]),
            (b"", b"abc"),
            (b"abc", b""),
            (b"x", b"abcdefg"),
            (b"abcdefg", b"x"),
            (b"kitten", b"sitting"),
            (b"abcdefghijk", b"acefgik"),
        ] {
            let ops = levenshtein_ops(a, b, Some(ExecTier::Scalar));
            let cost = ops.iter().filter(|op| !matches!(op, EditOp::Keep)).count() as u32;
            assert_eq!(cost, levenshtein::distance(a, b));
            assert_eq!(apply_edit_script(a, b, &ops), b.to_vec());
        }
    }

    #[test]
    fn sw_alignment_empty_and_all_mismatch_inputs() {
        let s = Scoring::default();
        assert_eq!(sw_alignment(b"", b"", s, None), SwAlignment::default());
        assert_eq!(sw_alignment(b"abc", b"", s, None), SwAlignment::default());
        let no_hit = sw_alignment(b"aaa", b"bbb", s, None);
        assert_eq!(no_hit.score, 0);
        assert!(no_hit.row_a.is_empty());
    }

    #[test]
    fn dtw_path_degenerate_shapes() {
        for (a, b) in [
            (vec![1.0f32], vec![2.0f32, 3.0, 4.0]),
            (vec![1.0, 2.0, 3.0], vec![5.0]),
            (vec![0.5], vec![0.5]),
            (vec![1.0, 3.0, 2.0, 4.0, 0.0], vec![1.0, 2.0, 4.0]),
        ] {
            let (path, dist) = dtw_path(&a, &b, Some(ExecTier::Scalar)).unwrap();
            assert_eq!(dist, dtw_distance(&a, &b, None));
            assert_eq!(path[0], (0, 0));
            assert_eq!(*path.last().unwrap(), (a.len() - 1, b.len() - 1));
        }
        assert!(dtw_path(&[], &[1.0], None).is_none());
    }

    proptest! {
        /// The rolling-band Hirschberg recovers the same bytes as the
        /// two-row reference on every tier.
        #[test]
        fn lcs_rolling_matches_reference(
            a in proptest::collection::vec(0u8..4, 0..40),
            b in proptest::collection::vec(0u8..4, 0..40),
            t in 0usize..4,
        ) {
            prop_assert_eq!(lcs_string_rolling(&a, &b, tier_choice(t)), lcs_string(&a, &b));
        }

        /// Linear-space edit scripts are optimal and replay correctly.
        #[test]
        fn levenshtein_ops_are_optimal(
            a in proptest::collection::vec(0u8..4, 0..40),
            b in proptest::collection::vec(0u8..4, 0..40),
            t in 0usize..4,
        ) {
            let ops = levenshtein_ops(&a, &b, tier_choice(t));
            let cost = ops.iter().filter(|op| !matches!(op, EditOp::Keep)).count() as u32;
            prop_assert_eq!(cost, levenshtein::distance(&a, &b));
            prop_assert_eq!(apply_edit_script(&a, &b, &ops), b);
        }

        /// Linear-space global alignments score exactly the optimum.
        #[test]
        fn nw_alignment_is_optimal(
            a in proptest::collection::vec(0u8..4, 0..40),
            b in proptest::collection::vec(0u8..4, 0..40),
            t in 0usize..4,
        ) {
            let s = NwScoring::default();
            let (ra, rb) = nw_alignment(&a, &b, s, tier_choice(t));
            prop_assert_eq!(ra.len(), rb.len());
            prop_assert_eq!(degap(&ra), a.clone());
            prop_assert_eq!(degap(&rb), b.clone());
            let mut score = 0i64;
            for (&x, &y) in ra.iter().zip(&rb) {
                prop_assert!(x != b'-' || y != b'-');
                score += if x == b'-' || y == b'-' {
                    s.gap
                } else if x == y {
                    s.matches
                } else {
                    s.mismatch
                } as i64;
            }
            prop_assert_eq!(score, global_score(&a, &b, s) as i64);
        }

        /// Linear-space local alignments hit the Gotoh optimum: the
        /// reported score matches the oracle, and re-scoring the glued
        /// rows under affine gap charges reproduces it exactly.
        #[test]
        fn sw_alignment_is_optimal(
            a in proptest::collection::vec(0u8..4, 0..40),
            b in proptest::collection::vec(0u8..4, 0..40),
            t in 0usize..4,
        ) {
            let s = Scoring::default();
            let out = sw_alignment(&a, &b, s, tier_choice(t));
            prop_assert_eq!(out.score, best_local_score(&a, &b, s));
            if out.score > 0 {
                prop_assert_eq!(affine_rows_score(&out.row_a, &out.row_b, s), out.score as i64);
                prop_assert_eq!(degap(&out.row_a), a[out.a_range.0..out.a_range.1].to_vec());
                prop_assert_eq!(degap(&out.row_b), b[out.b_range.0..out.b_range.1].to_vec());
            }
        }

        /// Warp paths are monotone, span corner to corner, and cost
        /// (nearly) the returned distance; the distance itself is
        /// bit-identical to the reference.
        #[test]
        fn dtw_path_is_valid_and_tight(
            a in proptest::collection::vec(0u8..8, 1..30),
            b in proptest::collection::vec(0u8..8, 1..30),
            t in 0usize..4,
        ) {
            let a: Vec<f32> = a.into_iter().map(f32::from).collect();
            let b: Vec<f32> = b.into_iter().map(f32::from).collect();
            let (path, dist) = dtw_path(&a, &b, tier_choice(t)).unwrap();
            prop_assert_eq!(dist, dtw_distance(&a, &b, None));
            prop_assert_eq!(path[0], (0, 0));
            prop_assert_eq!(*path.last().unwrap(), (a.len() - 1, b.len() - 1));
            for w in path.windows(2) {
                let (di, dj) = (w[1].0 - w[0].0, w[1].1 - w[0].1);
                prop_assert!(di <= 1 && dj <= 1 && di + dj >= 1, "bad step {:?}", w);
            }
            let cost: f32 = path.iter().map(|&(i, j)| (a[i] - b[j]).abs()).sum();
            prop_assert!((cost - dist).abs() <= 1e-3 * dist.max(1.0), "path cost {cost} vs {dist}");
        }
    }
}
