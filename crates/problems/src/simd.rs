//! Shared plumbing for the [`SimdWaveKernel`] implementations.
//!
//! Every vectorized kernel in this crate follows the same shape: a safe
//! `compute_run_simd` wrapper that picks the host backend at runtime
//! (AVX2 on x86_64, NEON on aarch64, the scalar bulk path everywhere
//! else), hands full lane-width chunks to an `unsafe` vector body, and
//! peels the sub-lane tail back to `compute_run`. The helpers here are
//! the pieces those bodies share; the bodies themselves live next to
//! the kernels they vectorize, because they read the kernels' private
//! fields.
//!
//! [`SimdWaveKernel`]: lddp_core::kernel::SimdWaveKernel

/// Lane width (cells per vector step) of the integer/f32 kernels on
/// this target: 8 with AVX2's 256-bit registers, 4 with NEON's 128-bit
/// ones, 1 where no vector backend exists.
#[cfg(target_arch = "x86_64")]
pub(crate) const LANES: usize = 8;
/// Lane width (cells per vector step) of the integer/f32 kernels on
/// this target.
#[cfg(target_arch = "aarch64")]
pub(crate) const LANES: usize = 4;
/// Lane width (cells per vector step) of the integer/f32 kernels on
/// this target.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) const LANES: usize = 1;

/// `&s[off..]`, tolerating slices shorter than `off` (the undeclared
/// neighbour directions arrive as empty slices and must stay empty when
/// the tail of a run is re-offset for scalar peeling).
pub(crate) fn offset<T>(s: &[T], off: usize) -> &[T] {
    s.get(off..).unwrap_or(&[])
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    //! AVX2 helpers for the anti-diagonal string kernels.

    use std::arch::x86_64::*;

    /// Eight lanes of all-ones/all-zero `u32`: lane `k` reports whether
    /// the `a` and `b` characters of anti-diagonal cell `p0 + k` match.
    ///
    /// On an anti-diagonal run the `a` index *decreases* with `p`
    /// (`a[i - p - 1]`) while the `b` index increases (`b[j0 + p - 1]`),
    /// so the eight `a` bytes are loaded from the lowest address and
    /// byte-reversed before the compare. `a_rev` must point at
    /// `a[i - p0 - 8]` (the byte of lane 7); `b_fwd` at
    /// `b[j0 + p0 - 1]` (the byte of lane 0).
    ///
    /// # Safety
    /// Eight bytes must be readable at both pointers, and the host must
    /// support AVX2.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn eq_mask_rev8(a_rev: *const u8, b_fwd: *const u8) -> __m256i {
        let av = _mm_loadl_epi64(a_rev as *const __m128i);
        let bv = _mm_loadl_epi64(b_fwd as *const __m128i);
        // Output byte k takes input byte 7 - k; the high 8 bytes of the
        // control have their sign bit set, zeroing lanes we never read.
        let rev = _mm_set_epi8(-1, -1, -1, -1, -1, -1, -1, -1, 0, 1, 2, 3, 4, 5, 6, 7);
        let eq = _mm_cmpeq_epi8(_mm_shuffle_epi8(av, rev), bv);
        // Sign-extend 0x00/0xFF bytes to full-width u32 masks.
        _mm256_cvtepi8_epi32(eq)
    }
}

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon {
    //! NEON helpers for the anti-diagonal string kernels.

    /// Four lanes of all-ones/all-zero `u32`: lane `k` reports whether
    /// the `a` and `b` characters of anti-diagonal cell `p0 + k` match
    /// (`a[i - (p0 + k) - 1]` vs `b[j0 + (p0 + k) - 1]`). The compare
    /// itself is scalar — the win on NEON comes from vectorizing the
    /// min/max/add arithmetic, and four byte compares don't justify a
    /// shuffle dance.
    #[inline]
    pub(crate) fn eq_lanes4(a: &[u8], b: &[u8], i: usize, j0: usize, p: usize) -> [u32; 4] {
        let lane = |k: usize| 0u32.wrapping_sub((a[i - p - k - 1] == b[j0 + p + k - 1]) as u32);
        [lane(0), lane(1), lane(2), lane(3)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_clamps_short_slices() {
        let s = [1u32, 2, 3];
        assert_eq!(offset(&s, 1), &[2, 3]);
        assert_eq!(offset(&s, 3), &[] as &[u32]);
        assert_eq!(offset::<u32>(&[], 2), &[] as &[u32]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn eq_mask_reverses_a_and_widens() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        // a is consumed in reverse, b forward: with i = 9, j0 = 1,
        // p0 = 0, lane k compares a[8 - k] against b[k].
        let a: Vec<u8> = (0..16).collect();
        let b: Vec<u8> = vec![8, 9, 6, 42, 4, 3, 99, 1];
        let expect = [true, false, true, false, true, true, false, true];
        let mut lanes = [0u32; 8];
        unsafe {
            let m = x86::eq_mask_rev8(a.as_ptr().add(1), b.as_ptr());
            std::arch::x86_64::_mm256_storeu_si256(
                lanes.as_mut_ptr() as *mut std::arch::x86_64::__m256i,
                m,
            );
        }
        for (k, &want) in expect.iter().enumerate() {
            assert_eq!(lanes[k] == u32::MAX, want, "lane {k}");
            assert!(lanes[k] == 0 || lanes[k] == u32::MAX);
        }
    }
}
