//! Needleman–Wunsch global alignment (linear gap penalty) — the
//! classical "pairwise sequence alignment" workload of the paper's
//! bioinformatics motivation, complementing the local (Smith–Waterman)
//! variant. Anti-diagonal pattern, contributing set `{W, NW, N}`.

use crate::simd;
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::Grid;
use lddp_core::kernel::{Kernel, Neighbors, SimdWaveKernel, WaveKernel};
use lddp_core::wavefront::Dims;

/// Global-alignment scoring (linear gaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NwScoring {
    /// Score for a matching pair.
    pub matches: i32,
    /// Score for a mismatching pair.
    pub mismatch: i32,
    /// Per-symbol gap penalty (negative).
    pub gap: i32,
}

impl Default for NwScoring {
    fn default() -> Self {
        NwScoring {
            matches: 1,
            mismatch: -1,
            gap: -1,
        }
    }
}

/// Needleman–Wunsch kernel (table `(m+1) × (n+1)`).
#[derive(Debug, Clone)]
pub struct NeedlemanWunschKernel {
    a: Vec<u8>,
    b: Vec<u8>,
    scoring: NwScoring,
}

impl NeedlemanWunschKernel {
    /// Builds the kernel with default scoring.
    pub fn new(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        NeedlemanWunschKernel {
            a: a.into(),
            b: b.into(),
            scoring: NwScoring::default(),
        }
    }

    /// Overrides the scoring scheme.
    #[must_use]
    pub fn with_scoring(mut self, scoring: NwScoring) -> Self {
        self.scoring = scoring;
        self
    }

    /// Global alignment score from a filled table.
    pub fn score_from(&self, grid: &Grid<i32>) -> i32 {
        let d = self.dims();
        grid.get(d.rows - 1, d.cols - 1)
    }

    /// Reconstructs one optimal alignment as `(a_row, b_row)` with `-`
    /// for gaps.
    pub fn alignment_from(&self, grid: &Grid<i32>) -> (Vec<u8>, Vec<u8>) {
        let s = self.scoring;
        let (mut i, mut j) = (self.a.len(), self.b.len());
        let mut ra = Vec::new();
        let mut rb = Vec::new();
        while i > 0 || j > 0 {
            let here = grid.get(i, j);
            if i > 0 && j > 0 {
                let sub = if self.a[i - 1] == self.b[j - 1] {
                    s.matches
                } else {
                    s.mismatch
                };
                if grid.get(i - 1, j - 1) + sub == here {
                    ra.push(self.a[i - 1]);
                    rb.push(self.b[j - 1]);
                    i -= 1;
                    j -= 1;
                    continue;
                }
            }
            if i > 0 && grid.get(i - 1, j) + s.gap == here {
                ra.push(self.a[i - 1]);
                rb.push(b'-');
                i -= 1;
            } else {
                debug_assert!(j > 0 && grid.get(i, j - 1) + s.gap == here);
                ra.push(b'-');
                rb.push(self.b[j - 1]);
                j -= 1;
            }
        }
        ra.reverse();
        rb.reverse();
        (ra, rb)
    }
}

impl Kernel for NeedlemanWunschKernel {
    type Cell = i32;

    fn dims(&self) -> Dims {
        Dims::new(self.a.len() + 1, self.b.len() + 1)
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<i32>) -> i32 {
        let s = self.scoring;
        if i == 0 {
            return j as i32 * s.gap;
        }
        if j == 0 {
            return i as i32 * s.gap;
        }
        let sub = if self.a[i - 1] == self.b[j - 1] {
            s.matches
        } else {
            s.mismatch
        };
        (nbrs.nw.expect("NW in bounds") + sub)
            .max(nbrs.n.expect("N in bounds") + s.gap)
            .max(nbrs.w.expect("W in bounds") + s.gap)
    }

    fn cost_ops(&self) -> u32 {
        26
    }

    fn name(&self) -> &str {
        "needleman-wunsch"
    }

    fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = i32>> {
        Some(self)
    }

    fn simd_kernel(&self) -> Option<&dyn SimdWaveKernel<Cell = i32>> {
        Some(self)
    }
}

impl WaveKernel for NeedlemanWunschKernel {
    fn compute_run(
        &self,
        i: usize,
        j0: usize,
        out: &mut [i32],
        w: &[i32],
        nw: &[i32],
        n: &[i32],
        _ne: &[i32],
    ) {
        // Interior anti-diagonal run: i ≥ 1 and j ≥ 1 throughout. Same
        // max order as `compute` (NW, then N, then W).
        let s = self.scoring;
        for p in 0..out.len() {
            let sub = if self.a[i - p - 1] == self.b[j0 + p - 1] {
                s.matches
            } else {
                s.mismatch
            };
            out[p] = (nw[p] + sub).max(n[p] + s.gap).max(w[p] + s.gap);
        }
    }
}

impl SimdWaveKernel for NeedlemanWunschKernel {
    fn lanes(&self) -> usize {
        simd::LANES
    }

    fn compute_run_simd(
        &self,
        i: usize,
        j0: usize,
        out: &mut [i32],
        w: &[i32],
        nw: &[i32],
        n: &[i32],
        ne: &[i32],
    ) {
        let len = out.len();
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            let vl = len - len % 8;
            if vl > 0 {
                // Safety: interior run — the scalar body reads the same
                // a/b bytes and slice indices the vector body loads.
                unsafe { self.run_avx2(i, j0, &mut out[..vl], &w[..vl], &nw[..vl], &n[..vl]) };
            }
            if vl < len {
                self.compute_run(
                    i - vl,
                    j0 + vl,
                    &mut out[vl..],
                    simd::offset(w, vl),
                    simd::offset(nw, vl),
                    simd::offset(n, vl),
                    simd::offset(ne, vl),
                );
            }
            return;
        }
        #[cfg(target_arch = "aarch64")]
        {
            let vl = len - len % 4;
            if vl > 0 {
                // Safety: NEON is baseline on aarch64; bounds as above.
                unsafe { self.run_neon(i, j0, &mut out[..vl], &w[..vl], &nw[..vl], &n[..vl]) };
            }
            if vl < len {
                self.compute_run(
                    i - vl,
                    j0 + vl,
                    &mut out[vl..],
                    simd::offset(w, vl),
                    simd::offset(nw, vl),
                    simd::offset(n, vl),
                    simd::offset(ne, vl),
                );
            }
            return;
        }
        #[cfg(not(target_arch = "aarch64"))]
        self.compute_run(i, j0, out, w, nw, n, ne);
    }
}

#[cfg(target_arch = "x86_64")]
impl NeedlemanWunschKernel {
    /// AVX2 body: eight anti-diagonal cells per step. The substitution
    /// score is a blend of the match/mismatch splats on the widened
    /// byte-compare mask; the three candidates reduce with signed
    /// 32-bit max in the same order as `compute` (NW, N, W).
    /// `out.len()` must be a multiple of 8.
    #[target_feature(enable = "avx2")]
    unsafe fn run_avx2(
        &self,
        i: usize,
        j0: usize,
        out: &mut [i32],
        w: &[i32],
        nw: &[i32],
        n: &[i32],
    ) {
        use std::arch::x86_64::*;
        let s = self.scoring;
        let mat = _mm256_set1_epi32(s.matches);
        let mis = _mm256_set1_epi32(s.mismatch);
        let gap = _mm256_set1_epi32(s.gap);
        let a = self.a.as_ptr();
        let b = self.b.as_ptr();
        let mut p = 0;
        while p < out.len() {
            let eq = simd::x86::eq_mask_rev8(a.add(i - p - 8), b.add(j0 + p - 1));
            let wv = _mm256_loadu_si256(w.as_ptr().add(p) as *const __m256i);
            let nwv = _mm256_loadu_si256(nw.as_ptr().add(p) as *const __m256i);
            let nv = _mm256_loadu_si256(n.as_ptr().add(p) as *const __m256i);
            let sub = _mm256_blendv_epi8(mis, mat, eq);
            let diag = _mm256_add_epi32(nwv, sub);
            let up = _mm256_add_epi32(nv, gap);
            let left = _mm256_add_epi32(wv, gap);
            let res = _mm256_max_epi32(_mm256_max_epi32(diag, up), left);
            _mm256_storeu_si256(out.as_mut_ptr().add(p) as *mut __m256i, res);
            p += 8;
        }
    }
}

#[cfg(target_arch = "aarch64")]
impl NeedlemanWunschKernel {
    /// NEON body: four cells per step. `out.len()` must be a multiple
    /// of 4.
    unsafe fn run_neon(
        &self,
        i: usize,
        j0: usize,
        out: &mut [i32],
        w: &[i32],
        nw: &[i32],
        n: &[i32],
    ) {
        use std::arch::aarch64::*;
        let s = self.scoring;
        let mat = vdupq_n_s32(s.matches);
        let mis = vdupq_n_s32(s.mismatch);
        let gap = vdupq_n_s32(s.gap);
        let mut p = 0;
        while p < out.len() {
            let eq = vld1q_u32(simd::neon::eq_lanes4(&self.a, &self.b, i, j0, p).as_ptr());
            let wv = vld1q_s32(w.as_ptr().add(p));
            let nwv = vld1q_s32(nw.as_ptr().add(p));
            let nv = vld1q_s32(n.as_ptr().add(p));
            let sub = vbslq_s32(eq, mat, mis);
            let diag = vaddq_s32(nwv, sub);
            let res = vmaxq_s32(vmaxq_s32(diag, vaddq_s32(nv, gap)), vaddq_s32(wv, gap));
            vst1q_s32(out.as_mut_ptr().add(p), res);
            p += 4;
        }
    }
}

/// Independent two-row reference.
pub fn global_score(a: &[u8], b: &[u8], s: NwScoring) -> i32 {
    let n = b.len();
    let mut prev: Vec<i32> = (0..=n as i32).map(|j| j * s.gap).collect();
    let mut cur = vec![0i32; n + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = (i as i32 + 1) * s.gap;
        for (j, &cb) in b.iter().enumerate() {
            let sub = if ca == cb { s.matches } else { s.mismatch };
            cur[j + 1] = (prev[j] + sub).max(prev[j + 1] + s.gap).max(cur[j] + s.gap);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::distance;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn simd_run_matches_scalar_run() {
        let a: Vec<u8> = (0..96u32).map(|x| (x * 7 % 5) as u8).collect();
        let b: Vec<u8> = (0..96u32).map(|x| (x * 11 % 5) as u8).collect();
        let k = NeedlemanWunschKernel::new(a, b);
        for len in [1usize, 3, 4, 7, 8, 9, 16, 31, 40] {
            let (i, j0) = (len + 5, 3);
            let w: Vec<i32> = (0..len as i32).map(|x| x * 3 % 17 - 8).collect();
            let nw: Vec<i32> = (0..len as i32).map(|x| x * 5 % 13 - 6).collect();
            let n: Vec<i32> = (0..len as i32).map(|x| x * 7 % 11 - 5).collect();
            let mut scalar = vec![0i32; len];
            let mut vector = vec![0i32; len];
            k.compute_run(i, j0, &mut scalar, &w, &nw, &n, &[]);
            k.compute_run_simd(i, j0, &mut vector, &w, &nw, &n, &[]);
            assert_eq!(scalar, vector, "len {len}");
        }
    }

    #[test]
    fn classified_as_anti_diagonal() {
        let k = NeedlemanWunschKernel::new(*b"AC", *b"GT");
        assert_eq!(classify(k.contributing_set()), Some(Pattern::AntiDiagonal));
    }

    #[test]
    fn identical_sequences_score_full_matches() {
        let k = NeedlemanWunschKernel::new(*b"ACGT", *b"ACGT");
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.score_from(&grid), 4);
        let (ra, rb) = k.alignment_from(&grid);
        assert_eq!(ra, b"ACGT");
        assert_eq!(rb, b"ACGT");
    }

    #[test]
    fn classic_example() {
        // GATTACA vs GCATGCU with +1/-1/-1: optimal score 0.
        let k = NeedlemanWunschKernel::new(*b"GATTACA", *b"GCATGCU");
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.score_from(&grid), 0);
    }

    #[test]
    fn alignment_rows_are_consistent() {
        let k = NeedlemanWunschKernel::new(*b"ACGTTA", *b"AGTTCA");
        let grid = solve_row_major(&k).unwrap();
        let (ra, rb) = k.alignment_from(&grid);
        assert_eq!(ra.len(), rb.len());
        // Removing gaps recovers the inputs.
        let strip = |v: &[u8]| -> Vec<u8> { v.iter().copied().filter(|&c| c != b'-').collect() };
        assert_eq!(strip(&ra), b"ACGTTA");
        assert_eq!(strip(&rb), b"AGTTCA");
        // No column aligns two gaps.
        assert!(ra.iter().zip(&rb).all(|(&x, &y)| x != b'-' || y != b'-'));
        // Recomputing the score from the alignment matches the table.
        let score: i32 = ra
            .iter()
            .zip(&rb)
            .map(|(&x, &y)| {
                if x == b'-' || y == b'-' {
                    -1
                } else if x == y {
                    1
                } else {
                    -1
                }
            })
            .sum();
        assert_eq!(score, k.score_from(&grid));
    }

    proptest! {
        #[test]
        fn kernel_matches_reference(
            a in proptest::collection::vec(0u8..4, 0..20),
            b in proptest::collection::vec(0u8..4, 0..20),
        ) {
            let k = NeedlemanWunschKernel::new(a.clone(), b.clone());
            let grid = solve_row_major(&k).unwrap();
            prop_assert_eq!(k.score_from(&grid), global_score(&a, &b, NwScoring::default()));
        }

        /// With match = 0, mismatch = gap = -1, the NW score is exactly
        /// minus the Levenshtein distance.
        #[test]
        fn unit_costs_recover_edit_distance(
            a in proptest::collection::vec(0u8..4, 0..16),
            b in proptest::collection::vec(0u8..4, 0..16),
        ) {
            let scoring = NwScoring { matches: 0, mismatch: -1, gap: -1 };
            prop_assert_eq!(
                global_score(&a, &b, scoring),
                -(distance(&a, &b) as i32)
            );
        }

        /// Alignment reconstruction is always consistent and optimal.
        #[test]
        fn alignment_reconstruction(
            a in proptest::collection::vec(0u8..4, 0..14),
            b in proptest::collection::vec(0u8..4, 0..14),
        ) {
            let k = NeedlemanWunschKernel::new(a.clone(), b.clone());
            let grid = solve_row_major(&k).unwrap();
            let (ra, rb) = k.alignment_from(&grid);
            let strip = |v: &[u8]| -> Vec<u8> {
                v.iter().copied().filter(|&c| c != b'-').collect()
            };
            prop_assert_eq!(strip(&ra), a);
            prop_assert_eq!(strip(&rb), b);
            let score: i32 = ra.iter().zip(&rb).map(|(&x, &y)| {
                if x == b'-' || y == b'-' { -1 } else if x == y { 1 } else { -1 }
            }).sum();
            prop_assert_eq!(score, k.score_from(&grid));
        }
    }
}
