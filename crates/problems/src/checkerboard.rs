//! The checkerboard shortest-path problem — the paper's §VI-C case study
//! (horizontal pattern, case 2).
//!
//! An `n × n` grid of per-cell costs; a path starts anywhere in the first
//! row and moves to the diagonally-left-forward, straight-forward, or
//! diagonally-right-forward neighbour each step. `cell(i,j)` depends on
//! `NW`, `N` and `NE`, which needs two-way boundary transfers under the
//! band partition (Table II, horizontal case 2).

use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::Grid;
use lddp_core::kernel::{Kernel, Neighbors};
use lddp_core::wavefront::Dims;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Checkerboard kernel: minimum path cost to reach each cell.
#[derive(Debug, Clone)]
pub struct CheckerboardKernel {
    rows: usize,
    cols: usize,
    /// Row-major per-cell costs (u8 — small integer costs, which also
    /// keeps the device upload cheap).
    costs: Vec<u8>,
}

impl CheckerboardKernel {
    /// Builds the kernel from a row-major cost matrix.
    pub fn new(rows: usize, cols: usize, costs: Vec<u8>) -> Self {
        assert_eq!(costs.len(), rows * cols, "cost matrix shape mismatch");
        CheckerboardKernel { rows, cols, costs }
    }

    /// Random costs in `1..=max_cost` from a seeded generator.
    pub fn random(rows: usize, cols: usize, max_cost: u8, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let costs = (0..rows * cols)
            .map(|_| rng.gen_range(1..=max_cost))
            .collect();
        CheckerboardKernel::new(rows, cols, costs)
    }

    /// The cost of cell `(i, j)`.
    pub fn cost(&self, i: usize, j: usize) -> u32 {
        self.costs[i * self.cols + j] as u32
    }

    /// Bytes of input the device needs (the cost matrix) — feeds
    /// `ExecOptions::setup_to_gpu_bytes`.
    pub fn input_bytes(&self) -> usize {
        self.costs.len()
    }

    /// Cheapest cost over the last row — the answer.
    pub fn best_cost_from(&self, grid: &Grid<u32>) -> u32 {
        (0..self.cols)
            .map(|j| grid.get(self.rows - 1, j))
            .min()
            .expect("non-empty board")
    }

    /// Reconstructs one cheapest path (top row → bottom row) from a
    /// filled table, as column indices per row.
    pub fn traceback(&self, grid: &Grid<u32>) -> Vec<usize> {
        let mut path = vec![0usize; self.rows];
        let mut j = (0..self.cols)
            .min_by_key(|&j| grid.get(self.rows - 1, j))
            .expect("non-empty board");
        path[self.rows - 1] = j;
        for i in (1..self.rows).rev() {
            let mut best_j = None;
            let mut best = u32::MAX;
            for dj in [-1isize, 0, 1] {
                let pj = j as isize + dj;
                if pj < 0 || pj >= self.cols as isize {
                    continue;
                }
                let v = grid.get(i - 1, pj as usize);
                if v < best {
                    best = v;
                    best_j = Some(pj as usize);
                }
            }
            j = best_j.expect("interior rows always have a predecessor");
            path[i - 1] = j;
        }
        path
    }
}

impl Kernel for CheckerboardKernel {
    type Cell = u32;

    fn dims(&self) -> Dims {
        Dims::new(self.rows, self.cols)
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne])
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<u32>) -> u32 {
        if i == 0 {
            return self.cost(i, j);
        }
        // min over the in-bounds predecessors; out-of-bounds are None
        // (the recurrence's ∞ guard).
        let best = [nbrs.nw, nbrs.n, nbrs.ne]
            .into_iter()
            .flatten()
            .min()
            .expect("row > 0 always has an in-bounds predecessor");
        best + self.cost(i, j)
    }

    fn cost_ops(&self) -> u32 {
        18
    }

    fn name(&self) -> &str {
        "checkerboard"
    }
}

/// Independent reference: straightforward row sweep.
pub fn min_path_cost(rows: usize, cols: usize, costs: &[u8]) -> u32 {
    assert_eq!(costs.len(), rows * cols);
    let cost = |i: usize, j: usize| costs[i * cols + j] as u32;
    let mut prev: Vec<u32> = (0..cols).map(|j| cost(0, j)).collect();
    for i in 1..rows {
        let mut cur = vec![0u32; cols];
        for (j, slot) in cur.iter_mut().enumerate() {
            let mut best = prev[j];
            if j > 0 {
                best = best.min(prev[j - 1]);
            }
            if j + 1 < cols {
                best = best.min(prev[j + 1]);
            }
            *slot = best + cost(i, j);
        }
        prev = cur;
    }
    prev.into_iter().min().expect("non-empty board")
}

/// Exhaustive path enumeration for small boards (test oracle).
pub fn brute_force_cost(rows: usize, cols: usize, costs: &[u8]) -> u32 {
    fn go(rows: usize, cols: usize, costs: &[u8], i: usize, j: usize) -> u32 {
        let c = costs[i * cols + j] as u32;
        if i + 1 == rows {
            return c;
        }
        let mut best = u32::MAX;
        for dj in [-1isize, 0, 1] {
            let nj = j as isize + dj;
            if nj >= 0 && nj < cols as isize {
                best = best.min(go(rows, cols, costs, i + 1, nj as usize));
            }
        }
        c + best
    }
    (0..cols)
        .map(|j| go(rows, cols, costs, 0, j))
        .min()
        .expect("non-empty board")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::schedule::{transfer_need, TransferNeed};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn classified_as_horizontal_case_two() {
        let k = CheckerboardKernel::random(4, 4, 9, 1);
        assert_eq!(classify(k.contributing_set()), Some(Pattern::Horizontal));
        assert_eq!(
            transfer_need(Pattern::Horizontal, k.contributing_set()).unwrap(),
            TransferNeed::TwoWay
        );
    }

    #[test]
    fn tiny_board_by_hand() {
        // costs:   1 9
        //          9 1   → best path 1 → 1 (diagonal) = 2.
        let k = CheckerboardKernel::new(2, 2, vec![1, 9, 9, 1]);
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.best_cost_from(&grid), 2);
        assert_eq!(k.traceback(&grid), vec![0, 1]);
    }

    #[test]
    fn single_column_sums_costs() {
        let k = CheckerboardKernel::new(4, 1, vec![2, 3, 4, 5]);
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.best_cost_from(&grid), 14);
        assert_eq!(k.traceback(&grid), vec![0, 0, 0, 0]);
    }

    #[test]
    fn traceback_is_a_legal_cheapest_path() {
        let k = CheckerboardKernel::random(8, 8, 9, 42);
        let grid = solve_row_major(&k).unwrap();
        let path = k.traceback(&grid);
        assert_eq!(path.len(), 8);
        let mut total = 0;
        for (i, &j) in path.iter().enumerate() {
            assert!(j < 8);
            if i > 0 {
                assert!(path[i - 1].abs_diff(j) <= 1, "illegal move at row {i}");
            }
            total += k.cost(i, j);
        }
        assert_eq!(total, k.best_cost_from(&grid), "path cost must be optimal");
    }

    proptest! {
        #[test]
        fn kernel_matches_reference(rows in 1usize..7, cols in 1usize..7,
                                    seed in any::<u64>()) {
            let k = CheckerboardKernel::random(rows, cols, 9, seed);
            let grid = solve_row_major(&k).unwrap();
            let expected = min_path_cost(rows, cols,
                &(0..rows * cols).map(|idx| k.costs[idx]).collect::<Vec<_>>());
            prop_assert_eq!(k.best_cost_from(&grid), expected);
        }

        #[test]
        fn reference_matches_brute_force(rows in 1usize..5, cols in 1usize..5,
                                         costs in proptest::collection::vec(1u8..9, 16)) {
            let costs = costs[..rows * cols].to_vec();
            prop_assert_eq!(
                min_path_cost(rows, cols, &costs),
                brute_force_cost(rows, cols, &costs)
            );
        }

        /// Raising any single cost never lowers the best path cost.
        #[test]
        fn monotone_in_costs(seed in any::<u64>(), bump in 0usize..16) {
            let k = CheckerboardKernel::random(4, 4, 8, seed);
            let base = min_path_cost(4, 4, &k.costs);
            let mut bumped = k.costs.clone();
            bumped[bump] = bumped[bump].saturating_add(5);
            prop_assert!(min_path_cost(4, 4, &bumped) >= base);
        }
    }
}
