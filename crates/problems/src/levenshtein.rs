//! Levenshtein edit distance — the paper's §VI-A case study
//! (anti-diagonal pattern).
//!
//! The DP table is `(m+1) × (n+1)`; `cell(i,j)` depends on `W`, `NW` and
//! `N`, so Table I classifies it as Anti-Diagonal. Base cases
//! (`min(i,j) = 0 → max(i,j)`) live inside the kernel function, exactly
//! as the framework contract (§V-C) prescribes.

use crate::simd;
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::kernel::{Kernel, Neighbors, SimdWaveKernel, WaveKernel};
use lddp_core::wavefront::Dims;

/// Levenshtein kernel over two byte strings.
///
/// ```
/// use lddp_problems::levenshtein::LevenshteinKernel;
/// use lddp_core::seq::solve_row_major;
///
/// let k = LevenshteinKernel::new(*b"kitten", *b"sitting");
/// let grid = solve_row_major(&k).unwrap();
/// assert_eq!(k.distance_from(&grid), 3);
/// ```
#[derive(Debug, Clone)]
pub struct LevenshteinKernel {
    a: Vec<u8>,
    b: Vec<u8>,
}

impl LevenshteinKernel {
    /// Builds the kernel for sequences `a` (rows) and `b` (columns).
    pub fn new(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        LevenshteinKernel {
            a: a.into(),
            b: b.into(),
        }
    }

    /// The compared sequences.
    pub fn sequences(&self) -> (&[u8], &[u8]) {
        (&self.a, &self.b)
    }

    /// Extracts the distance from a filled table: the bottom-right cell.
    pub fn distance_from(&self, grid: &lddp_core::grid::Grid<u32>) -> u32 {
        let d = self.dims();
        grid.get(d.rows - 1, d.cols - 1)
    }
}

impl Kernel for LevenshteinKernel {
    type Cell = u32;

    fn dims(&self) -> Dims {
        Dims::new(self.a.len() + 1, self.b.len() + 1)
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<u32>) -> u32 {
        if i == 0 || j == 0 {
            return (i + j) as u32; // max(i, j) with min(i, j) = 0
        }
        let w = nbrs.w.expect("W in bounds for i,j >= 1");
        let nw = nbrs.nw.expect("NW in bounds");
        let n = nbrs.n.expect("N in bounds");
        if self.a[i - 1] == self.b[j - 1] {
            nw
        } else {
            1 + w.min(nw).min(n)
        }
    }

    fn cost_ops(&self) -> u32 {
        24 // compare + three mins + adds + index math
    }

    fn name(&self) -> &str {
        "levenshtein"
    }

    fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = u32>> {
        Some(self)
    }

    fn simd_kernel(&self) -> Option<&dyn SimdWaveKernel<Cell = u32>> {
        Some(self)
    }
}

impl WaveKernel for LevenshteinKernel {
    fn compute_run(
        &self,
        i: usize,
        j0: usize,
        out: &mut [u32],
        w: &[u32],
        nw: &[u32],
        n: &[u32],
        _ne: &[u32],
    ) {
        // Interior anti-diagonal run: i ≥ 1 and j ≥ 1 throughout, so the
        // base-case branch of `compute` cannot occur.
        for p in 0..out.len() {
            out[p] = if self.a[i - p - 1] == self.b[j0 + p - 1] {
                nw[p]
            } else {
                1 + w[p].min(nw[p]).min(n[p])
            };
        }
    }
}

impl SimdWaveKernel for LevenshteinKernel {
    fn lanes(&self) -> usize {
        simd::LANES
    }

    fn compute_run_simd(
        &self,
        i: usize,
        j0: usize,
        out: &mut [u32],
        w: &[u32],
        nw: &[u32],
        n: &[u32],
        ne: &[u32],
    ) {
        let len = out.len();
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            let vl = len - len % 8;
            if vl > 0 {
                // Safety: interior run — the scalar body reads the same
                // a/b bytes and slice indices the vector body loads.
                unsafe { self.run_avx2(i, j0, &mut out[..vl], &w[..vl], &nw[..vl], &n[..vl]) };
            }
            if vl < len {
                self.compute_run(
                    i - vl,
                    j0 + vl,
                    &mut out[vl..],
                    simd::offset(w, vl),
                    simd::offset(nw, vl),
                    simd::offset(n, vl),
                    simd::offset(ne, vl),
                );
            }
            return;
        }
        #[cfg(target_arch = "aarch64")]
        {
            let vl = len - len % 4;
            if vl > 0 {
                // Safety: NEON is baseline on aarch64; bounds as above.
                unsafe { self.run_neon(i, j0, &mut out[..vl], &w[..vl], &nw[..vl], &n[..vl]) };
            }
            if vl < len {
                self.compute_run(
                    i - vl,
                    j0 + vl,
                    &mut out[vl..],
                    simd::offset(w, vl),
                    simd::offset(nw, vl),
                    simd::offset(n, vl),
                    simd::offset(ne, vl),
                );
            }
            return;
        }
        #[cfg(not(target_arch = "aarch64"))]
        self.compute_run(i, j0, out, w, nw, n, ne);
    }
}

#[cfg(target_arch = "x86_64")]
impl LevenshteinKernel {
    /// AVX2 body: eight anti-diagonal cells per step,
    /// `eq ? nw : 1 + min(w, nw, n)` via a widened byte-compare mask.
    /// `out.len()` must be a multiple of 8.
    #[target_feature(enable = "avx2")]
    unsafe fn run_avx2(
        &self,
        i: usize,
        j0: usize,
        out: &mut [u32],
        w: &[u32],
        nw: &[u32],
        n: &[u32],
    ) {
        use std::arch::x86_64::*;
        let ones = _mm256_set1_epi32(1);
        let a = self.a.as_ptr();
        let b = self.b.as_ptr();
        let mut p = 0;
        while p < out.len() {
            let eq = simd::x86::eq_mask_rev8(a.add(i - p - 8), b.add(j0 + p - 1));
            let wv = _mm256_loadu_si256(w.as_ptr().add(p) as *const __m256i);
            let nwv = _mm256_loadu_si256(nw.as_ptr().add(p) as *const __m256i);
            let nv = _mm256_loadu_si256(n.as_ptr().add(p) as *const __m256i);
            let m3 = _mm256_min_epu32(_mm256_min_epu32(wv, nwv), nv);
            let skip = _mm256_add_epi32(m3, ones);
            let res = _mm256_blendv_epi8(skip, nwv, eq);
            _mm256_storeu_si256(out.as_mut_ptr().add(p) as *mut __m256i, res);
            p += 8;
        }
    }
}

#[cfg(target_arch = "aarch64")]
impl LevenshteinKernel {
    /// NEON body: four cells per step. `out.len()` must be a multiple
    /// of 4.
    unsafe fn run_neon(
        &self,
        i: usize,
        j0: usize,
        out: &mut [u32],
        w: &[u32],
        nw: &[u32],
        n: &[u32],
    ) {
        use std::arch::aarch64::*;
        let ones = vdupq_n_u32(1);
        let mut p = 0;
        while p < out.len() {
            let eq = vld1q_u32(simd::neon::eq_lanes4(&self.a, &self.b, i, j0, p).as_ptr());
            let wv = vld1q_u32(w.as_ptr().add(p));
            let nwv = vld1q_u32(nw.as_ptr().add(p));
            let nv = vld1q_u32(n.as_ptr().add(p));
            let skip = vaddq_u32(vminq_u32(vminq_u32(wv, nwv), nv), ones);
            vst1q_u32(out.as_mut_ptr().add(p), vbslq_u32(eq, nwv, skip));
            p += 4;
        }
    }
}

/// One step of an edit script transforming `a` into `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Characters match; consume one from each.
    Keep,
    /// Replace `a[i]` with `b[j]`.
    Substitute,
    /// Insert `b[j]` into `a`.
    Insert,
    /// Delete `a[i]`.
    Delete,
}

impl LevenshteinKernel {
    /// Reconstructs one optimal edit script (in forward order) from a
    /// filled table. The number of non-[`EditOp::Keep`] operations
    /// equals the distance.
    pub fn edit_script(&self, grid: &lddp_core::grid::Grid<u32>) -> Vec<EditOp> {
        let mut ops = Vec::new();
        let (mut i, mut j) = (self.a.len(), self.b.len());
        while i > 0 || j > 0 {
            let here = grid.get(i, j);
            if i > 0 && j > 0 && self.a[i - 1] == self.b[j - 1] && grid.get(i - 1, j - 1) == here {
                ops.push(EditOp::Keep);
                i -= 1;
                j -= 1;
            } else if i > 0 && j > 0 && grid.get(i - 1, j - 1) + 1 == here {
                ops.push(EditOp::Substitute);
                i -= 1;
                j -= 1;
            } else if i > 0 && grid.get(i - 1, j) + 1 == here {
                ops.push(EditOp::Delete);
                i -= 1;
            } else {
                debug_assert!(j > 0 && grid.get(i, j - 1) + 1 == here);
                ops.push(EditOp::Insert);
                j -= 1;
            }
        }
        ops.reverse();
        ops
    }
}

/// Applies an edit script to `a`, producing the target string — the
/// executable semantics of [`LevenshteinKernel::edit_script`].
pub fn apply_edit_script(a: &[u8], b: &[u8], ops: &[EditOp]) -> Vec<u8> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    for op in ops {
        match op {
            EditOp::Keep => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
            EditOp::Substitute => {
                out.push(b[j]);
                i += 1;
                j += 1;
            }
            EditOp::Insert => {
                out.push(b[j]);
                j += 1;
            }
            EditOp::Delete => {
                i += 1;
            }
        }
    }
    out
}

/// Textbook two-row reference implementation (independent of the
/// framework), used as the oracle.
pub fn distance(a: &[u8], b: &[u8]) -> u32 {
    let n = b.len();
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i as u32 + 1;
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j]
            } else {
                1 + cur[j].min(prev[j]).min(prev[j + 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn simd_run_matches_scalar_run() {
        let a: Vec<u8> = (0..96u32).map(|x| (x * 7 % 5) as u8).collect();
        let b: Vec<u8> = (0..96u32).map(|x| (x * 11 % 5) as u8).collect();
        let k = LevenshteinKernel::new(a, b);
        for len in [1usize, 3, 4, 7, 8, 9, 16, 31, 40] {
            let (i, j0) = (len + 5, 3);
            let w: Vec<u32> = (0..len as u32).map(|x| x * 3 % 17).collect();
            let nw: Vec<u32> = (0..len as u32).map(|x| x * 5 % 13).collect();
            let n: Vec<u32> = (0..len as u32).map(|x| x * 7 % 11).collect();
            let mut scalar = vec![0u32; len];
            let mut vector = vec![0u32; len];
            k.compute_run(i, j0, &mut scalar, &w, &nw, &n, &[]);
            k.compute_run_simd(i, j0, &mut vector, &w, &nw, &n, &[]);
            assert_eq!(scalar, vector, "len {len}");
        }
    }

    #[test]
    fn classified_as_anti_diagonal() {
        let k = LevenshteinKernel::new(*b"abc", *b"de");
        assert_eq!(classify(k.contributing_set()), Some(Pattern::AntiDiagonal));
        assert_eq!(k.dims(), Dims::new(4, 3));
    }

    #[test]
    fn known_distances() {
        for (a, b, d) in [
            (&b"kitten"[..], &b"sitting"[..], 3),
            (b"flaw", b"lawn", 2),
            (b"", b"", 0),
            (b"", b"abc", 3),
            (b"abc", b"", 3),
            (b"abc", b"abc", 0),
            (b"abcdef", b"azced", 3),
        ] {
            assert_eq!(distance(a, b), d, "{a:?} vs {b:?}");
            let k = LevenshteinKernel::new(a, b);
            let grid = solve_row_major(&k).unwrap();
            assert_eq!(k.distance_from(&grid), d);
        }
    }

    #[test]
    fn kernel_table_matches_reference_everywhere() {
        let k = LevenshteinKernel::new(*b"saturday", *b"sunday");
        let grid = solve_row_major(&k).unwrap();
        // Spot-check the classic table: full distance is 3.
        assert_eq!(k.distance_from(&grid), 3);
        // First row and column are the base cases.
        for j in 0..k.dims().cols {
            assert_eq!(grid.get(0, j), j as u32);
        }
        for i in 0..k.dims().rows {
            assert_eq!(grid.get(i, 0), i as u32);
        }
    }

    #[test]
    fn edit_script_for_kitten() {
        let k = LevenshteinKernel::new(*b"kitten", *b"sitting");
        let grid = solve_row_major(&k).unwrap();
        let ops = k.edit_script(&grid);
        let cost = ops.iter().filter(|&&op| op != EditOp::Keep).count();
        assert_eq!(cost, 3);
        assert_eq!(apply_edit_script(b"kitten", b"sitting", &ops), b"sitting");
    }

    #[test]
    fn edit_script_degenerate_cases() {
        // Pure insertion and pure deletion.
        let k = LevenshteinKernel::new(*b"", *b"abc");
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.edit_script(&grid), vec![EditOp::Insert; 3]);
        let k = LevenshteinKernel::new(*b"abc", *b"");
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.edit_script(&grid), vec![EditOp::Delete; 3]);
        let k = LevenshteinKernel::new(*b"same", *b"same");
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.edit_script(&grid), vec![EditOp::Keep; 4]);
    }

    proptest! {
        /// The reconstructed edit script really transforms a into b with
        /// exactly `distance` paid operations.
        #[test]
        fn edit_script_is_valid_and_optimal(
            a in proptest::collection::vec(0u8..4, 0..20),
            b in proptest::collection::vec(0u8..4, 0..20),
        ) {
            let k = LevenshteinKernel::new(a.clone(), b.clone());
            let grid = solve_row_major(&k).unwrap();
            let ops = k.edit_script(&grid);
            prop_assert_eq!(apply_edit_script(&a, &b, &ops), b.clone());
            let cost = ops.iter().filter(|&&op| op != EditOp::Keep).count() as u32;
            prop_assert_eq!(cost, distance(&a, &b));
        }

        /// Framework solve equals the independent two-row reference.
        #[test]
        fn matches_reference(a in proptest::collection::vec(0u8..4, 0..24),
                             b in proptest::collection::vec(0u8..4, 0..24)) {
            let k = LevenshteinKernel::new(a.clone(), b.clone());
            let grid = solve_row_major(&k).unwrap();
            prop_assert_eq!(k.distance_from(&grid), distance(&a, &b));
        }

        /// Metric axioms: identity, symmetry, triangle inequality.
        #[test]
        fn is_a_metric(a in proptest::collection::vec(0u8..3, 0..12),
                       b in proptest::collection::vec(0u8..3, 0..12),
                       c in proptest::collection::vec(0u8..3, 0..12)) {
            prop_assert_eq!(distance(&a, &a), 0);
            prop_assert_eq!(distance(&a, &b), distance(&b, &a));
            prop_assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c));
        }

        /// Distance is bounded by the longer length and at least the
        /// length difference.
        #[test]
        fn bounds(a in proptest::collection::vec(any::<u8>(), 0..20),
                  b in proptest::collection::vec(any::<u8>(), 0..20)) {
            let d = distance(&a, &b) as usize;
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }
    }
}
