//! Longest common subsequence — the problem behind the paper's Fig 7
//! tuning experiment (anti-diagonal pattern), plus the Allison–Dix
//! bit-parallel algorithm [1] as the "fast problem-specific solution"
//! the introduction contrasts the generic framework against.
//!
//! [1] L. Allison, T. I. Dix, *A bit-string longest-common-subsequence
//! algorithm*, Inf. Process. Lett. 23(6), 1986.

use crate::simd;
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::kernel::{Kernel, Neighbors, SimdWaveKernel, WaveKernel};
use lddp_core::wavefront::Dims;

/// LCS-length kernel over two byte strings (table `(m+1) × (n+1)`).
#[derive(Debug, Clone)]
pub struct LcsKernel {
    a: Vec<u8>,
    b: Vec<u8>,
}

impl LcsKernel {
    /// Builds the kernel for sequences `a` (rows) and `b` (columns).
    pub fn new(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        LcsKernel {
            a: a.into(),
            b: b.into(),
        }
    }

    /// LCS length from a filled table.
    pub fn length_from(&self, grid: &lddp_core::grid::Grid<u32>) -> u32 {
        let d = self.dims();
        grid.get(d.rows - 1, d.cols - 1)
    }
}

impl Kernel for LcsKernel {
    type Cell = u32;

    fn dims(&self) -> Dims {
        Dims::new(self.a.len() + 1, self.b.len() + 1)
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<u32>) -> u32 {
        if i == 0 || j == 0 {
            return 0;
        }
        if self.a[i - 1] == self.b[j - 1] {
            nbrs.nw.expect("NW in bounds") + 1
        } else {
            nbrs.w
                .expect("W in bounds")
                .max(nbrs.n.expect("N in bounds"))
        }
    }

    fn cost_ops(&self) -> u32 {
        20
    }

    fn name(&self) -> &str {
        "lcs"
    }

    fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = u32>> {
        Some(self)
    }

    fn simd_kernel(&self) -> Option<&dyn SimdWaveKernel<Cell = u32>> {
        Some(self)
    }
}

impl WaveKernel for LcsKernel {
    fn compute_run(
        &self,
        i: usize,
        j0: usize,
        out: &mut [u32],
        w: &[u32],
        nw: &[u32],
        n: &[u32],
        _ne: &[u32],
    ) {
        // Interior anti-diagonal run: cell p is (i - p, j0 + p) with all
        // of W/NW/N in bounds, so i ≥ 1 and j ≥ 1 throughout — the base
        // cases of `compute` cannot occur here.
        for p in 0..out.len() {
            out[p] = if self.a[i - p - 1] == self.b[j0 + p - 1] {
                nw[p] + 1
            } else {
                w[p].max(n[p])
            };
        }
    }
}

impl SimdWaveKernel for LcsKernel {
    fn lanes(&self) -> usize {
        simd::LANES
    }

    fn compute_run_simd(
        &self,
        i: usize,
        j0: usize,
        out: &mut [u32],
        w: &[u32],
        nw: &[u32],
        n: &[u32],
        ne: &[u32],
    ) {
        let len = out.len();
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            let vl = len - len % 8;
            if vl > 0 {
                // Safety: every cell of the run is interior, so the
                // scalar body reads a[i - p - 1] and b[j0 + p - 1] for
                // each p < vl — exactly the bytes the vector body
                // loads — and the dependency slices cover [0, vl).
                unsafe { self.run_avx2(i, j0, &mut out[..vl], &w[..vl], &nw[..vl], &n[..vl]) };
            }
            if vl < len {
                // Scalar tail: cell vl of this run is (i - vl, j0 + vl).
                self.compute_run(
                    i - vl,
                    j0 + vl,
                    &mut out[vl..],
                    simd::offset(w, vl),
                    simd::offset(nw, vl),
                    simd::offset(n, vl),
                    simd::offset(ne, vl),
                );
            }
            return;
        }
        #[cfg(target_arch = "aarch64")]
        {
            let vl = len - len % 4;
            if vl > 0 {
                // Safety: NEON is baseline on aarch64; bounds as above.
                unsafe { self.run_neon(i, j0, &mut out[..vl], &w[..vl], &nw[..vl], &n[..vl]) };
            }
            if vl < len {
                self.compute_run(
                    i - vl,
                    j0 + vl,
                    &mut out[vl..],
                    simd::offset(w, vl),
                    simd::offset(nw, vl),
                    simd::offset(n, vl),
                    simd::offset(ne, vl),
                );
            }
            return;
        }
        #[cfg(not(target_arch = "aarch64"))]
        self.compute_run(i, j0, out, w, nw, n, ne);
    }
}

#[cfg(target_arch = "x86_64")]
impl LcsKernel {
    /// AVX2 body: eight anti-diagonal cells per step,
    /// `eq ? nw + 1 : max(w, n)` as a widened byte-compare mask blending
    /// two 8×u32 candidate vectors. `out.len()` must be a multiple of 8.
    #[target_feature(enable = "avx2")]
    unsafe fn run_avx2(
        &self,
        i: usize,
        j0: usize,
        out: &mut [u32],
        w: &[u32],
        nw: &[u32],
        n: &[u32],
    ) {
        use std::arch::x86_64::*;
        let ones = _mm256_set1_epi32(1);
        let a = self.a.as_ptr();
        let b = self.b.as_ptr();
        let mut p = 0;
        while p < out.len() {
            let eq = simd::x86::eq_mask_rev8(a.add(i - p - 8), b.add(j0 + p - 1));
            let wv = _mm256_loadu_si256(w.as_ptr().add(p) as *const __m256i);
            let nwv = _mm256_loadu_si256(nw.as_ptr().add(p) as *const __m256i);
            let nv = _mm256_loadu_si256(n.as_ptr().add(p) as *const __m256i);
            let taken = _mm256_add_epi32(nwv, ones);
            let skip = _mm256_max_epu32(wv, nv);
            let res = _mm256_blendv_epi8(skip, taken, eq);
            _mm256_storeu_si256(out.as_mut_ptr().add(p) as *mut __m256i, res);
            p += 8;
        }
    }
}

#[cfg(target_arch = "aarch64")]
impl LcsKernel {
    /// NEON body: four cells per step. `out.len()` must be a multiple
    /// of 4.
    unsafe fn run_neon(
        &self,
        i: usize,
        j0: usize,
        out: &mut [u32],
        w: &[u32],
        nw: &[u32],
        n: &[u32],
    ) {
        use std::arch::aarch64::*;
        let ones = vdupq_n_u32(1);
        let mut p = 0;
        while p < out.len() {
            let eq = vld1q_u32(simd::neon::eq_lanes4(&self.a, &self.b, i, j0, p).as_ptr());
            let wv = vld1q_u32(w.as_ptr().add(p));
            let nwv = vld1q_u32(nw.as_ptr().add(p));
            let nv = vld1q_u32(n.as_ptr().add(p));
            let taken = vaddq_u32(nwv, ones);
            let skip = vmaxq_u32(wv, nv);
            vst1q_u32(out.as_mut_ptr().add(p), vbslq_u32(eq, taken, skip));
            p += 4;
        }
    }
}

/// Quadratic two-row reference (independent oracle).
pub fn lcs_length(a: &[u8], b: &[u8]) -> u32 {
    let n = b.len();
    let mut prev = vec![0u32; n + 1];
    let mut cur = vec![0u32; n + 1];
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                cur[j].max(prev[j + 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Allison–Dix bit-parallel LCS length: processes one row per iteration
/// with whole-word boolean operations — `O(m·n/64)`. The specialized
/// baseline of the ablation benchmark.
pub fn lcs_length_bitparallel(a: &[u8], b: &[u8]) -> u32 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let n = b.len();
    let words = n.div_ceil(64);
    // Per-symbol match masks for the column string b.
    let mut table = vec![0u64; 256 * words];
    for (j, &cb) in b.iter().enumerate() {
        table[cb as usize * words + j / 64] |= 1u64 << (j % 64);
    }
    // Row state: bit j set means "no LCS-length step at column j yet"
    // in the complemented representation of Allison–Dix.
    let mut row = vec![!0u64; words];
    // Mask off bits beyond n in the last word.
    let tail_bits = n % 64;
    let tail_mask = if tail_bits == 0 {
        !0u64
    } else {
        (1u64 << tail_bits) - 1
    };
    row[words - 1] &= tail_mask;
    for &ca in a {
        let m = &table[ca as usize * words..ca as usize * words + words];
        // row' = (row + (row & m)) | (row & !m), with carry across words.
        let mut carry = 0u64;
        for w in 0..words {
            let x = row[w] & m[w];
            let (sum, c1) = row[w].overflowing_add(x);
            let (sum, c2) = sum.overflowing_add(carry);
            carry = u64::from(c1) | u64::from(c2);
            row[w] = sum | (row[w] & !m[w]);
        }
        row[words - 1] &= tail_mask;
    }
    // LCS length = number of zero bits among the n column positions.
    let mut zeros = 0u32;
    for (w, &word) in row.iter().enumerate() {
        let valid = if w == words - 1 { tail_mask } else { !0u64 };
        zeros += (!word & valid).count_ones();
    }
    zeros
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn classified_as_anti_diagonal() {
        let k = LcsKernel::new(*b"ab", *b"cd");
        assert_eq!(classify(k.contributing_set()), Some(Pattern::AntiDiagonal));
    }

    #[test]
    fn known_lengths() {
        for (a, b, len) in [
            (&b"ABCBDAB"[..], &b"BDCABA"[..], 4),
            (b"AGGTAB", b"GXTXAYB", 4),
            (b"", b"", 0),
            (b"abc", b"", 0),
            (b"", b"abc", 0),
            (b"abc", b"abc", 3),
            (b"abc", b"def", 0),
        ] {
            assert_eq!(lcs_length(a, b), len, "reference {a:?} {b:?}");
            assert_eq!(
                lcs_length_bitparallel(a, b),
                len,
                "bit-parallel {a:?} {b:?}"
            );
            let k = LcsKernel::new(a, b);
            let grid = solve_row_major(&k).unwrap();
            assert_eq!(k.length_from(&grid), len, "kernel {a:?} {b:?}");
        }
    }

    #[test]
    fn simd_run_matches_scalar_run() {
        // Lane-unaligned lengths exercise both the vector body and the
        // scalar tail peel.
        let a: Vec<u8> = (0..96u32).map(|x| (x * 7 % 5) as u8).collect();
        let b: Vec<u8> = (0..96u32).map(|x| (x * 11 % 5) as u8).collect();
        let k = LcsKernel::new(a, b);
        for len in [1usize, 3, 4, 7, 8, 9, 16, 31, 40] {
            let (i, j0) = (len + 5, 3);
            let w: Vec<u32> = (0..len as u32).map(|x| x * 3 % 17).collect();
            let nw: Vec<u32> = (0..len as u32).map(|x| x * 5 % 13).collect();
            let n: Vec<u32> = (0..len as u32).map(|x| x * 7 % 11).collect();
            let mut scalar = vec![0u32; len];
            let mut vector = vec![0u32; len];
            k.compute_run(i, j0, &mut scalar, &w, &nw, &n, &[]);
            k.compute_run_simd(i, j0, &mut vector, &w, &nw, &n, &[]);
            assert_eq!(scalar, vector, "len {len}");
        }
    }

    #[test]
    fn bitparallel_crosses_word_boundaries() {
        // Strings longer than 64 symbols exercise the multi-word carry.
        let a: Vec<u8> = (0..200u32).map(|i| (i % 7) as u8).collect();
        let b: Vec<u8> = (0..150u32).map(|i| (i % 5) as u8).collect();
        assert_eq!(lcs_length_bitparallel(&a, &b), lcs_length(&a, &b));
    }

    proptest! {
        #[test]
        fn kernel_matches_reference(a in proptest::collection::vec(0u8..4, 0..24),
                                    b in proptest::collection::vec(0u8..4, 0..24)) {
            let k = LcsKernel::new(a.clone(), b.clone());
            let grid = solve_row_major(&k).unwrap();
            prop_assert_eq!(k.length_from(&grid), lcs_length(&a, &b));
        }

        #[test]
        fn bitparallel_matches_reference(a in proptest::collection::vec(0u8..6, 0..140),
                                         b in proptest::collection::vec(0u8..6, 0..140)) {
            prop_assert_eq!(lcs_length_bitparallel(&a, &b), lcs_length(&a, &b));
        }

        /// LCS length is monotone under appending a common suffix.
        #[test]
        fn appending_common_symbol_increments(a in proptest::collection::vec(0u8..4, 0..20),
                                              b in proptest::collection::vec(0u8..4, 0..20)) {
            let base = lcs_length(&a, &b);
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            a2.push(9);
            b2.push(9);
            prop_assert_eq!(lcs_length(&a2, &b2), base + 1);
        }

        /// Relation to edit distance without substitutions:
        /// |a| + |b| − 2·LCS = insert/delete distance ≥ Levenshtein.
        #[test]
        fn relates_to_edit_distance(a in proptest::collection::vec(0u8..3, 0..16),
                                    b in proptest::collection::vec(0u8..3, 0..16)) {
            let lcs = lcs_length(&a, &b) as usize;
            let indel = a.len() + b.len() - 2 * lcs;
            let lev = crate::levenshtein::distance(&a, &b) as usize;
            prop_assert!(lev <= indel);
        }
    }
}
