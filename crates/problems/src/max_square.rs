//! Maximal all-ones square sub-matrix — the classic interview DP is an
//! LDDP-Plus instance: `dp(i,j) = min(W, NW, N) + 1` on set cells, which
//! is contributing set `{W, NW, N}`, anti-diagonal pattern.

use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::Grid;
use lddp_core::kernel::{Kernel, Neighbors};
use lddp_core::wavefront::Dims;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximal-square kernel over a binary matrix.
#[derive(Debug, Clone)]
pub struct MaxSquareKernel {
    rows: usize,
    cols: usize,
    /// Row-major cell occupancy.
    bits: Vec<bool>,
}

impl MaxSquareKernel {
    /// Builds the kernel from a row-major boolean matrix.
    pub fn new(rows: usize, cols: usize, bits: Vec<bool>) -> Self {
        assert_eq!(bits.len(), rows * cols, "matrix shape mismatch");
        MaxSquareKernel { rows, cols, bits }
    }

    /// Random matrix with the given fill density.
    pub fn random(rows: usize, cols: usize, density: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bits = (0..rows * cols).map(|_| rng.gen_bool(density)).collect();
        MaxSquareKernel::new(rows, cols, bits)
    }

    /// Is `(i, j)` set?
    pub fn bit(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.cols + j]
    }

    /// Side length of the largest all-ones square, from a filled table.
    pub fn max_side_from(&self, grid: &Grid<u32>) -> u32 {
        let mut best = 0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                best = best.max(grid.get(i, j));
            }
        }
        best
    }
}

impl Kernel for MaxSquareKernel {
    type Cell = u32;

    fn dims(&self) -> Dims {
        Dims::new(self.rows, self.cols)
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<u32>) -> u32 {
        if !self.bit(i, j) {
            return 0;
        }
        // Out-of-bounds neighbours act as 0 (first row/column squares
        // have side 1), exactly matching `unwrap_or(0)`.
        let w = nbrs.w.unwrap_or(0);
        let nw = nbrs.nw.unwrap_or(0);
        let n = nbrs.n.unwrap_or(0);
        w.min(nw).min(n) + 1
    }

    fn cost_ops(&self) -> u32 {
        14
    }

    fn name(&self) -> &str {
        "max-square"
    }
}

/// Quadratic-per-candidate brute force (test oracle).
pub fn brute_force_max_side(rows: usize, cols: usize, bits: &[bool]) -> u32 {
    let get = |i: usize, j: usize| bits[i * cols + j];
    let mut best = 0u32;
    for i in 0..rows {
        for j in 0..cols {
            let mut side = 1;
            'grow: while i + side <= rows && j + side <= cols {
                for di in 0..side {
                    for dj in 0..side {
                        if !get(i + di, j + dj) {
                            break 'grow;
                        }
                    }
                }
                best = best.max(side as u32);
                side += 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn classified_as_anti_diagonal() {
        let k = MaxSquareKernel::new(1, 1, vec![true]);
        assert_eq!(classify(k.contributing_set()), Some(Pattern::AntiDiagonal));
    }

    #[test]
    fn known_cases() {
        // Full 3x3 of ones → side 3.
        let k = MaxSquareKernel::new(3, 3, vec![true; 9]);
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.max_side_from(&grid), 3);
        // All zeros → 0.
        let k = MaxSquareKernel::new(3, 3, vec![false; 9]);
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.max_side_from(&grid), 0);
        // A hole in the middle caps the square at 2... actually at 2x2
        // corners: matrix 3x3 minus centre.
        let mut bits = vec![true; 9];
        bits[4] = false;
        let k = MaxSquareKernel::new(3, 3, bits);
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.max_side_from(&grid), 1);
    }

    #[test]
    fn rectangular_edges() {
        let k = MaxSquareKernel::new(1, 7, vec![true; 7]);
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.max_side_from(&grid), 1);
        let k = MaxSquareKernel::new(7, 1, vec![true; 7]);
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.max_side_from(&grid), 1);
    }

    proptest! {
        #[test]
        fn matches_brute_force(rows in 1usize..7, cols in 1usize..7,
                               bits in proptest::collection::vec(any::<bool>(), 36)) {
            let bits = bits[..rows * cols].to_vec();
            let k = MaxSquareKernel::new(rows, cols, bits.clone());
            let grid = solve_row_major(&k).unwrap();
            prop_assert_eq!(
                k.max_side_from(&grid),
                brute_force_max_side(rows, cols, &bits)
            );
        }

        /// Setting one more bit never shrinks the best square.
        #[test]
        fn monotone_in_bits(seed in any::<u64>(), flip in 0usize..25) {
            let k = MaxSquareKernel::random(5, 5, 0.6, seed);
            let grid = solve_row_major(&k).unwrap();
            let base = k.max_side_from(&grid);
            let mut bits = k.bits.clone();
            bits[flip] = true;
            let k2 = MaxSquareKernel::new(5, 5, bits);
            let grid2 = solve_row_major(&k2).unwrap();
            prop_assert!(k2.max_side_from(&grid2) >= base);
        }
    }
}
