//! Dynamic time warping — the speech-processing motivation of §I
//! (anti-diagonal pattern), with an optional Sakoe–Chiba band.

use crate::simd;
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::Grid;
use lddp_core::kernel::{Kernel, Neighbors, SimdWaveKernel, WaveKernel};
use lddp_core::wavefront::Dims;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel for unreachable cells (outside the band / before the start).
const INF: f32 = f32::INFINITY;

/// DTW kernel over two scalar time series.
#[derive(Debug, Clone)]
pub struct DtwKernel {
    a: Vec<f32>,
    b: Vec<f32>,
    /// Sakoe–Chiba band radius; `None` = unconstrained.
    band: Option<usize>,
}

impl DtwKernel {
    /// Unconstrained DTW between `a` (rows) and `b` (columns).
    pub fn new(a: Vec<f32>, b: Vec<f32>) -> Self {
        DtwKernel { a, b, band: None }
    }

    /// Restricts the warping path to `|i - j| ≤ radius`.
    #[must_use]
    pub fn with_band(mut self, radius: usize) -> Self {
        self.band = Some(radius);
        self
    }

    /// Random-walk test series from a seeded generator.
    pub fn random_walk(len_a: usize, len_b: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut walk = |len: usize| {
            let mut v = Vec::with_capacity(len);
            let mut x = 0.0f32;
            for _ in 0..len {
                x += rng.gen_range(-1.0..1.0);
                v.push(x);
            }
            v
        };
        let a = walk(len_a);
        let b = walk(len_b);
        DtwKernel::new(a, b)
    }

    fn in_band(&self, i: usize, j: usize) -> bool {
        match self.band {
            None => true,
            Some(r) => i.abs_diff(j) <= r,
        }
    }

    /// DTW distance from a filled table.
    pub fn distance_from(&self, grid: &Grid<f32>) -> f32 {
        let d = self.dims();
        grid.get(d.rows - 1, d.cols - 1)
    }
}

impl Kernel for DtwKernel {
    type Cell = f32;

    fn dims(&self) -> Dims {
        Dims::new(self.a.len(), self.b.len())
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<f32>) -> f32 {
        if !self.in_band(i, j) {
            return INF;
        }
        let local = (self.a[i] - self.b[j]).abs();
        if i == 0 && j == 0 {
            return local;
        }
        // Out-of-bounds predecessors are None → ∞.
        let best = [nbrs.w, nbrs.nw, nbrs.n]
            .into_iter()
            .flatten()
            .fold(INF, f32::min);
        local + best
    }

    fn cost_ops(&self) -> u32 {
        28
    }

    fn name(&self) -> &str {
        "dtw"
    }

    fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = f32>> {
        Some(self)
    }

    fn simd_kernel(&self) -> Option<&dyn SimdWaveKernel<Cell = f32>> {
        Some(self)
    }
}

impl WaveKernel for DtwKernel {
    fn compute_run(
        &self,
        i: usize,
        j0: usize,
        out: &mut [f32],
        w: &[f32],
        nw: &[f32],
        n: &[f32],
        _ne: &[f32],
    ) {
        // Interior anti-diagonal run over the m × n table: i ≥ 1 and
        // j ≥ 1 throughout, so the (0,0) base case cannot occur. The
        // band check must still run per cell, and `min(INF, x) = x`
        // exactly, so skipping the scalar fold's INF seed is
        // bit-identical (no NaN arises from finite series).
        for p in 0..out.len() {
            let (ci, cj) = (i - p, j0 + p);
            out[p] = if !self.in_band(ci, cj) {
                INF
            } else {
                (self.a[ci] - self.b[cj]).abs() + w[p].min(nw[p]).min(n[p])
            };
        }
    }
}

impl SimdWaveKernel for DtwKernel {
    fn lanes(&self) -> usize {
        simd::LANES
    }

    fn compute_run_simd(
        &self,
        i: usize,
        j0: usize,
        out: &mut [f32],
        w: &[f32],
        nw: &[f32],
        n: &[f32],
        ne: &[f32],
    ) {
        let len = out.len();
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            let vl = len - len % 8;
            if vl > 0 {
                // Safety: interior run — the scalar body reads a[i - p]
                // and b[j0 + p] for each p < vl, exactly the f32s the
                // vector body loads.
                unsafe { self.run_avx2(i, j0, &mut out[..vl], &w[..vl], &nw[..vl], &n[..vl]) };
            }
            if vl < len {
                self.compute_run(
                    i - vl,
                    j0 + vl,
                    &mut out[vl..],
                    simd::offset(w, vl),
                    simd::offset(nw, vl),
                    simd::offset(n, vl),
                    simd::offset(ne, vl),
                );
            }
            return;
        }
        #[cfg(target_arch = "aarch64")]
        {
            let vl = len - len % 4;
            if vl > 0 {
                // Safety: NEON is baseline on aarch64; bounds as above.
                unsafe { self.run_neon(i, j0, &mut out[..vl], &w[..vl], &nw[..vl], &n[..vl]) };
            }
            if vl < len {
                self.compute_run(
                    i - vl,
                    j0 + vl,
                    &mut out[vl..],
                    simd::offset(w, vl),
                    simd::offset(nw, vl),
                    simd::offset(n, vl),
                    simd::offset(ne, vl),
                );
            }
            return;
        }
        #[cfg(not(target_arch = "aarch64"))]
        self.compute_run(i, j0, out, w, nw, n, ne);
    }
}

#[cfg(target_arch = "x86_64")]
impl DtwKernel {
    /// AVX2 body: eight anti-diagonal cells per step in f32 lanes. The
    /// `a` samples are loaded forward from the lane-7 index and lane-
    /// reversed (the anti-diagonal walks `a` backwards); |a - b| is a
    /// sign-bit clear; `min_ps` matches `f32::min` bit-for-bit here
    /// because the series are finite and the accumulated costs are
    /// never NaN or -0.0. Out-of-band lanes blend to +∞ from an i32
    /// compare on `|ci - cj| > r`. `out.len()` must be a multiple of 8.
    #[target_feature(enable = "avx2")]
    unsafe fn run_avx2(
        &self,
        i: usize,
        j0: usize,
        out: &mut [f32],
        w: &[f32],
        nw: &[f32],
        n: &[f32],
    ) {
        use std::arch::x86_64::*;
        let rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
        let sign = _mm256_set1_ps(-0.0);
        let inf = _mm256_set1_ps(f32::INFINITY);
        let lane_step = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
        let a = self.a.as_ptr();
        let b = self.b.as_ptr();
        let mut p = 0;
        while p < out.len() {
            // Lane k is cell p + k at (i - p - k, j0 + p + k).
            let av = _mm256_permutevar8x32_ps(_mm256_loadu_ps(a.add(i - p - 7)), rev);
            let bv = _mm256_loadu_ps(b.add(j0 + p));
            let local = _mm256_andnot_ps(sign, _mm256_sub_ps(av, bv));
            let wv = _mm256_loadu_ps(w.as_ptr().add(p));
            let nwv = _mm256_loadu_ps(nw.as_ptr().add(p));
            let nv = _mm256_loadu_ps(n.as_ptr().add(p));
            let best = _mm256_min_ps(_mm256_min_ps(wv, nwv), nv);
            let mut res = _mm256_add_ps(local, best);
            if let Some(r) = self.band {
                // ci - cj = (i - j0 - 2p) - 2k per lane.
                let base = _mm256_set1_epi32(i as i32 - j0 as i32 - 2 * p as i32);
                let delta = _mm256_sub_epi32(base, lane_step);
                let oob = _mm256_cmpgt_epi32(_mm256_abs_epi32(delta), _mm256_set1_epi32(r as i32));
                res = _mm256_blendv_ps(res, inf, _mm256_castsi256_ps(oob));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(p), res);
            p += 8;
        }
    }
}

#[cfg(target_arch = "aarch64")]
impl DtwKernel {
    /// NEON body: four cells per step. `out.len()` must be a multiple
    /// of 4.
    unsafe fn run_neon(
        &self,
        i: usize,
        j0: usize,
        out: &mut [f32],
        w: &[f32],
        nw: &[f32],
        n: &[f32],
    ) {
        use std::arch::aarch64::*;
        let inf = vdupq_n_f32(f32::INFINITY);
        let mut p = 0;
        while p < out.len() {
            let ar = [
                self.a[i - p],
                self.a[i - p - 1],
                self.a[i - p - 2],
                self.a[i - p - 3],
            ];
            let av = vld1q_f32(ar.as_ptr());
            let bv = vld1q_f32(self.b.as_ptr().add(j0 + p));
            let local = vabsq_f32(vsubq_f32(av, bv));
            let wv = vld1q_f32(w.as_ptr().add(p));
            let nwv = vld1q_f32(nw.as_ptr().add(p));
            let nv = vld1q_f32(n.as_ptr().add(p));
            let best = vminq_f32(vminq_f32(wv, nwv), nv);
            let mut res = vaddq_f32(local, best);
            if let Some(r) = self.band {
                let lane =
                    |k: usize| 0u32.wrapping_sub(((i - p - k).abs_diff(j0 + p + k) > r) as u32);
                let oob = [lane(0), lane(1), lane(2), lane(3)];
                res = vbslq_f32(vld1q_u32(oob.as_ptr()), inf, res);
            }
            vst1q_f32(out.as_mut_ptr().add(p), res);
            p += 4;
        }
    }
}

/// Independent full-matrix reference.
pub fn dtw_distance(a: &[f32], b: &[f32], band: Option<usize>) -> f32 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            0.0
        } else {
            INF
        };
    }
    let n = b.len();
    let mut table = vec![INF; a.len() * n];
    for i in 0..a.len() {
        for j in 0..n {
            if let Some(r) = band {
                if i.abs_diff(j) > r {
                    continue;
                }
            }
            let local = (a[i] - b[j]).abs();
            let best = if i == 0 && j == 0 {
                0.0
            } else {
                let mut m = INF;
                if j > 0 {
                    m = m.min(table[i * n + j - 1]);
                }
                if i > 0 {
                    m = m.min(table[(i - 1) * n + j]);
                    if j > 0 {
                        m = m.min(table[(i - 1) * n + j - 1]);
                    }
                }
                m
            };
            table[i * n + j] = local + best;
        }
    }
    table[a.len() * n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn simd_run_matches_scalar_run_bit_for_bit() {
        let series = |mul: u32| -> Vec<f32> {
            (0..96u32)
                .map(|x| (x * mul % 19) as f32 * 0.5 - 3.0)
                .collect()
        };
        for band in [None, Some(3), Some(64)] {
            let mut k = DtwKernel::new(series(7), series(11));
            if let Some(r) = band {
                k = k.with_band(r);
            }
            for len in [1usize, 3, 4, 7, 8, 9, 16, 31, 40] {
                let (i, j0) = (len, 1);
                let w: Vec<f32> = (0..len as u32)
                    .map(|x| (x * 3 % 17) as f32 * 0.25)
                    .collect();
                let nw: Vec<f32> = (0..len as u32)
                    .map(|x| (x * 5 % 13) as f32 * 0.25)
                    .collect();
                let n: Vec<f32> = (0..len as u32)
                    .map(|x| (x * 7 % 11) as f32 * 0.25)
                    .collect();
                let mut scalar = vec![0f32; len];
                let mut vector = vec![0f32; len];
                k.compute_run(i, j0, &mut scalar, &w, &nw, &n, &[]);
                k.compute_run_simd(i, j0, &mut vector, &w, &nw, &n, &[]);
                let sb: Vec<u32> = scalar.iter().map(|x| x.to_bits()).collect();
                let vb: Vec<u32> = vector.iter().map(|x| x.to_bits()).collect();
                assert_eq!(sb, vb, "band {band:?} len {len}");
            }
        }
    }

    #[test]
    fn classified_as_anti_diagonal() {
        let k = DtwKernel::new(vec![0.0], vec![0.0]);
        assert_eq!(classify(k.contributing_set()), Some(Pattern::AntiDiagonal));
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let s = vec![1.0, 2.0, 3.0, 2.0, 1.0];
        let k = DtwKernel::new(s.clone(), s);
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.distance_from(&grid), 0.0);
    }

    #[test]
    fn warping_absorbs_time_shift() {
        // A step function and its delayed copy align perfectly.
        let a = vec![0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let b = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0];
        let k = DtwKernel::new(a.clone(), b.clone());
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.distance_from(&grid), 0.0);
        // Euclidean (lock-step) distance would be 2.0.
        let lockstep: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert_eq!(lockstep, 2.0);
    }

    #[test]
    fn band_zero_is_lockstep_on_equal_lengths() {
        let a = vec![0.0, 1.0, 0.0, 1.0];
        let b = vec![1.0, 0.0, 1.0, 0.0];
        let k = DtwKernel::new(a.clone(), b.clone()).with_band(0);
        let grid = solve_row_major(&k).unwrap();
        let lockstep: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert_eq!(k.distance_from(&grid), lockstep);
    }

    #[test]
    fn tight_band_can_only_increase_distance() {
        let k_free = DtwKernel::random_walk(24, 24, 5);
        let grid = solve_row_major(&k_free).unwrap();
        let free = k_free.distance_from(&grid);
        let k_band = DtwKernel::random_walk(24, 24, 5).with_band(2);
        let grid = solve_row_major(&k_band).unwrap();
        let banded = k_band.distance_from(&grid);
        assert!(banded >= free);
    }

    proptest! {
        #[test]
        fn kernel_matches_reference(
            a in proptest::collection::vec(-10.0f32..10.0, 1..16),
            b in proptest::collection::vec(-10.0f32..10.0, 1..16),
            band in proptest::option::of(0usize..8),
        ) {
            let mut k = DtwKernel::new(a.clone(), b.clone());
            if let Some(r) = band {
                k = k.with_band(r);
            }
            let grid = solve_row_major(&k).unwrap();
            let got = k.distance_from(&grid);
            let expected = dtw_distance(&a, &b, band);
            if expected.is_infinite() {
                prop_assert!(got.is_infinite());
            } else {
                prop_assert!((got - expected).abs() <= 1e-3 * expected.abs().max(1.0),
                             "{got} vs {expected}");
            }
        }

        /// DTW is symmetric and non-negative.
        #[test]
        fn symmetric_nonnegative(
            a in proptest::collection::vec(-5.0f32..5.0, 1..12),
            b in proptest::collection::vec(-5.0f32..5.0, 1..12),
        ) {
            let ab = dtw_distance(&a, &b, None);
            let ba = dtw_distance(&b, &a, None);
            prop_assert!(ab >= 0.0);
            prop_assert!((ab - ba).abs() <= 1e-3 * ab.abs().max(1.0));
        }
    }
}
