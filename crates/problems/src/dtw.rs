//! Dynamic time warping — the speech-processing motivation of §I
//! (anti-diagonal pattern), with an optional Sakoe–Chiba band.

use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::Grid;
use lddp_core::kernel::{Kernel, Neighbors, WaveKernel};
use lddp_core::wavefront::Dims;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel for unreachable cells (outside the band / before the start).
const INF: f32 = f32::INFINITY;

/// DTW kernel over two scalar time series.
#[derive(Debug, Clone)]
pub struct DtwKernel {
    a: Vec<f32>,
    b: Vec<f32>,
    /// Sakoe–Chiba band radius; `None` = unconstrained.
    band: Option<usize>,
}

impl DtwKernel {
    /// Unconstrained DTW between `a` (rows) and `b` (columns).
    pub fn new(a: Vec<f32>, b: Vec<f32>) -> Self {
        DtwKernel { a, b, band: None }
    }

    /// Restricts the warping path to `|i - j| ≤ radius`.
    #[must_use]
    pub fn with_band(mut self, radius: usize) -> Self {
        self.band = Some(radius);
        self
    }

    /// Random-walk test series from a seeded generator.
    pub fn random_walk(len_a: usize, len_b: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut walk = |len: usize| {
            let mut v = Vec::with_capacity(len);
            let mut x = 0.0f32;
            for _ in 0..len {
                x += rng.gen_range(-1.0..1.0);
                v.push(x);
            }
            v
        };
        let a = walk(len_a);
        let b = walk(len_b);
        DtwKernel::new(a, b)
    }

    fn in_band(&self, i: usize, j: usize) -> bool {
        match self.band {
            None => true,
            Some(r) => i.abs_diff(j) <= r,
        }
    }

    /// DTW distance from a filled table.
    pub fn distance_from(&self, grid: &Grid<f32>) -> f32 {
        let d = self.dims();
        grid.get(d.rows - 1, d.cols - 1)
    }
}

impl Kernel for DtwKernel {
    type Cell = f32;

    fn dims(&self) -> Dims {
        Dims::new(self.a.len(), self.b.len())
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<f32>) -> f32 {
        if !self.in_band(i, j) {
            return INF;
        }
        let local = (self.a[i] - self.b[j]).abs();
        if i == 0 && j == 0 {
            return local;
        }
        // Out-of-bounds predecessors are None → ∞.
        let best = [nbrs.w, nbrs.nw, nbrs.n]
            .into_iter()
            .flatten()
            .fold(INF, f32::min);
        local + best
    }

    fn cost_ops(&self) -> u32 {
        28
    }

    fn name(&self) -> &str {
        "dtw"
    }

    fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = f32>> {
        Some(self)
    }
}

impl WaveKernel for DtwKernel {
    fn compute_run(
        &self,
        i: usize,
        j0: usize,
        out: &mut [f32],
        w: &[f32],
        nw: &[f32],
        n: &[f32],
        _ne: &[f32],
    ) {
        // Interior anti-diagonal run over the m × n table: i ≥ 1 and
        // j ≥ 1 throughout, so the (0,0) base case cannot occur. The
        // band check must still run per cell, and `min(INF, x) = x`
        // exactly, so skipping the scalar fold's INF seed is
        // bit-identical (no NaN arises from finite series).
        for p in 0..out.len() {
            let (ci, cj) = (i - p, j0 + p);
            out[p] = if !self.in_band(ci, cj) {
                INF
            } else {
                (self.a[ci] - self.b[cj]).abs() + w[p].min(nw[p]).min(n[p])
            };
        }
    }
}

/// Independent full-matrix reference.
pub fn dtw_distance(a: &[f32], b: &[f32], band: Option<usize>) -> f32 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            0.0
        } else {
            INF
        };
    }
    let n = b.len();
    let mut table = vec![INF; a.len() * n];
    for i in 0..a.len() {
        for j in 0..n {
            if let Some(r) = band {
                if i.abs_diff(j) > r {
                    continue;
                }
            }
            let local = (a[i] - b[j]).abs();
            let best = if i == 0 && j == 0 {
                0.0
            } else {
                let mut m = INF;
                if j > 0 {
                    m = m.min(table[i * n + j - 1]);
                }
                if i > 0 {
                    m = m.min(table[(i - 1) * n + j]);
                    if j > 0 {
                        m = m.min(table[(i - 1) * n + j - 1]);
                    }
                }
                m
            };
            table[i * n + j] = local + best;
        }
    }
    table[a.len() * n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn classified_as_anti_diagonal() {
        let k = DtwKernel::new(vec![0.0], vec![0.0]);
        assert_eq!(classify(k.contributing_set()), Some(Pattern::AntiDiagonal));
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let s = vec![1.0, 2.0, 3.0, 2.0, 1.0];
        let k = DtwKernel::new(s.clone(), s);
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.distance_from(&grid), 0.0);
    }

    #[test]
    fn warping_absorbs_time_shift() {
        // A step function and its delayed copy align perfectly.
        let a = vec![0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let b = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0];
        let k = DtwKernel::new(a.clone(), b.clone());
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.distance_from(&grid), 0.0);
        // Euclidean (lock-step) distance would be 2.0.
        let lockstep: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert_eq!(lockstep, 2.0);
    }

    #[test]
    fn band_zero_is_lockstep_on_equal_lengths() {
        let a = vec![0.0, 1.0, 0.0, 1.0];
        let b = vec![1.0, 0.0, 1.0, 0.0];
        let k = DtwKernel::new(a.clone(), b.clone()).with_band(0);
        let grid = solve_row_major(&k).unwrap();
        let lockstep: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert_eq!(k.distance_from(&grid), lockstep);
    }

    #[test]
    fn tight_band_can_only_increase_distance() {
        let k_free = DtwKernel::random_walk(24, 24, 5);
        let grid = solve_row_major(&k_free).unwrap();
        let free = k_free.distance_from(&grid);
        let k_band = DtwKernel::random_walk(24, 24, 5).with_band(2);
        let grid = solve_row_major(&k_band).unwrap();
        let banded = k_band.distance_from(&grid);
        assert!(banded >= free);
    }

    proptest! {
        #[test]
        fn kernel_matches_reference(
            a in proptest::collection::vec(-10.0f32..10.0, 1..16),
            b in proptest::collection::vec(-10.0f32..10.0, 1..16),
            band in proptest::option::of(0usize..8),
        ) {
            let mut k = DtwKernel::new(a.clone(), b.clone());
            if let Some(r) = band {
                k = k.with_band(r);
            }
            let grid = solve_row_major(&k).unwrap();
            let got = k.distance_from(&grid);
            let expected = dtw_distance(&a, &b, band);
            if expected.is_infinite() {
                prop_assert!(got.is_infinite());
            } else {
                prop_assert!((got - expected).abs() <= 1e-3 * expected.abs().max(1.0),
                             "{got} vs {expected}");
            }
        }

        /// DTW is symmetric and non-negative.
        #[test]
        fn symmetric_nonnegative(
            a in proptest::collection::vec(-5.0f32..5.0, 1..12),
            b in proptest::collection::vec(-5.0f32..5.0, 1..12),
        ) {
            let ab = dtw_distance(&a, &b, None);
            let ba = dtw_distance(&b, &a, None);
            prop_assert!(ab >= 0.0);
            prop_assert!((ab - ba).abs() <= 1e-3 * ab.abs().max(1.0));
        }
    }
}
