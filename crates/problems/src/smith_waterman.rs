//! Smith–Waterman local alignment with affine gap costs — the
//! bioinformatics workload the paper's introduction motivates ("pairwise
//! sequence alignment with affine gap cost", after Chowdhury et al.).
//!
//! The affine-gap recurrence uses three interleaved matrices (M, Ix, Iy);
//! packing them into one composite cell keeps the problem a single-table
//! LDDP instance with contributing set `{W, NW, N}` — anti-diagonal.

use crate::simd;
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::Grid;
use lddp_core::kernel::{Kernel, Neighbors, SimdWaveKernel, WaveKernel};
use lddp_core::wavefront::Dims;

/// Score floor standing in for −∞ (safe against i32 underflow).
const NEG: i32 = i32::MIN / 4;

/// Composite affine-gap cell: best scores ending in a match/mismatch
/// (`m`), a gap in `a` (`ix`, vertical extension), or a gap in `b`
/// (`iy`, horizontal extension).
///
/// `repr(C)` pins the `m`/`ix`/`iy` field order so the SIMD tier can
/// gather the three planes from the array-of-structs layout with fixed
/// strides.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwCell {
    /// Best local score ending at `(i, j)` with `a[i-1]` aligned to
    /// `b[j-1]`.
    pub m: i32,
    /// Best score ending with a gap in `b` (consuming `a[i-1]`).
    pub ix: i32,
    /// Best score ending with a gap in `a` (consuming `b[j-1]`).
    pub iy: i32,
}

impl Default for SwCell {
    fn default() -> Self {
        SwCell {
            m: 0,
            ix: NEG,
            iy: NEG,
        }
    }
}

impl SwCell {
    /// Best local score at this cell.
    pub fn best(&self) -> i32 {
        self.m.max(self.ix).max(self.iy).max(0)
    }
}

/// Alignment scoring scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoring {
    /// Score for a matching pair (positive).
    pub matches: i32,
    /// Score for a mismatching pair (negative).
    pub mismatch: i32,
    /// Cost of opening a gap (negative).
    pub gap_open: i32,
    /// Cost of extending a gap (negative).
    pub gap_extend: i32,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring {
            matches: 2,
            mismatch: -1,
            gap_open: -3,
            gap_extend: -1,
        }
    }
}

/// Smith–Waterman affine-gap kernel (table `(m+1) × (n+1)`).
#[derive(Debug, Clone)]
pub struct SmithWatermanKernel {
    a: Vec<u8>,
    b: Vec<u8>,
    scoring: Scoring,
}

impl SmithWatermanKernel {
    /// Builds the kernel with default scoring.
    pub fn new(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        SmithWatermanKernel {
            a: a.into(),
            b: b.into(),
            scoring: Scoring::default(),
        }
    }

    /// Overrides the scoring scheme.
    #[must_use]
    pub fn with_scoring(mut self, scoring: Scoring) -> Self {
        self.scoring = scoring;
        self
    }

    /// Best local-alignment score over the whole filled table.
    pub fn best_score_from(&self, grid: &Grid<SwCell>) -> i32 {
        let d = self.dims();
        let mut best = 0;
        for i in 0..d.rows {
            for j in 0..d.cols {
                best = best.max(grid.get(i, j).best());
            }
        }
        best
    }
}

impl Kernel for SmithWatermanKernel {
    type Cell = SwCell;

    fn dims(&self) -> Dims {
        Dims::new(self.a.len() + 1, self.b.len() + 1)
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<SwCell>) -> SwCell {
        if i == 0 || j == 0 {
            return SwCell::default();
        }
        let s = self.scoring;
        let w = nbrs.w.expect("W in bounds");
        let nw = nbrs.nw.expect("NW in bounds");
        let n = nbrs.n.expect("N in bounds");
        let sub = if self.a[i - 1] == self.b[j - 1] {
            s.matches
        } else {
            s.mismatch
        };
        // Local alignment: M may restart from 0.
        let m = nw.m.max(nw.ix).max(nw.iy).max(0) + sub;
        let ix = (n.m + s.gap_open).max(n.ix + s.gap_extend);
        let iy = (w.m + s.gap_open).max(w.iy + s.gap_extend);
        SwCell { m, ix, iy }
    }

    fn cost_ops(&self) -> u32 {
        48 // three-lane max-plus update
    }

    fn name(&self) -> &str {
        "smith-waterman-affine"
    }

    fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = SwCell>> {
        Some(self)
    }

    fn simd_kernel(&self) -> Option<&dyn SimdWaveKernel<Cell = SwCell>> {
        Some(self)
    }
}

impl WaveKernel for SmithWatermanKernel {
    fn compute_run(
        &self,
        i: usize,
        j0: usize,
        out: &mut [SwCell],
        w: &[SwCell],
        nw: &[SwCell],
        n: &[SwCell],
        _ne: &[SwCell],
    ) {
        // Interior anti-diagonal run: i ≥ 1 and j ≥ 1 throughout, so the
        // base-case branch of `compute` cannot occur.
        let s = self.scoring;
        for p in 0..out.len() {
            let sub = if self.a[i - p - 1] == self.b[j0 + p - 1] {
                s.matches
            } else {
                s.mismatch
            };
            let m = nw[p].m.max(nw[p].ix).max(nw[p].iy).max(0) + sub;
            let ix = (n[p].m + s.gap_open).max(n[p].ix + s.gap_extend);
            let iy = (w[p].m + s.gap_open).max(w[p].iy + s.gap_extend);
            out[p] = SwCell { m, ix, iy };
        }
    }
}

impl SimdWaveKernel for SmithWatermanKernel {
    fn lanes(&self) -> usize {
        // The composite cell vectorizes on x86_64 only (AVX2 gathers
        // pull the m/ix/iy planes out of the AoS layout); aarch64 has
        // no gather and falls back to the bulk path.
        #[cfg(target_arch = "x86_64")]
        {
            8
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            1
        }
    }

    fn compute_run_simd(
        &self,
        i: usize,
        j0: usize,
        out: &mut [SwCell],
        w: &[SwCell],
        nw: &[SwCell],
        n: &[SwCell],
        ne: &[SwCell],
    ) {
        let len = out.len();
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            let vl = len - len % 8;
            if vl > 0 {
                // Safety: interior run — the scalar body reads the same
                // a/b bytes and the gathers stay inside the w/nw/n
                // slices (stride-3 i32 offsets over [p, p + 8) cells).
                unsafe { self.run_avx2(i, j0, &mut out[..vl], &w[..vl], &nw[..vl], &n[..vl]) };
            }
            if vl < len {
                self.compute_run(
                    i - vl,
                    j0 + vl,
                    &mut out[vl..],
                    simd::offset(w, vl),
                    simd::offset(nw, vl),
                    simd::offset(n, vl),
                    simd::offset(ne, vl),
                );
            }
            return;
        }
        self.compute_run(i, j0, out, w, nw, n, ne);
    }
}

#[cfg(target_arch = "x86_64")]
impl SmithWatermanKernel {
    /// AVX2 body: eight composite cells per step. The three score
    /// planes are gathered from the 12-byte AoS cells with stride-3
    /// i32 indices, updated with signed max/add lanes in the same
    /// order as `compute`, and scattered back through small stack
    /// buffers (AVX2 has gathers but no scatters). `out.len()` must be
    /// a multiple of 8.
    #[target_feature(enable = "avx2")]
    unsafe fn run_avx2(
        &self,
        i: usize,
        j0: usize,
        out: &mut [SwCell],
        w: &[SwCell],
        nw: &[SwCell],
        n: &[SwCell],
    ) {
        use std::arch::x86_64::*;
        let s = self.scoring;
        let mat = _mm256_set1_epi32(s.matches);
        let mis = _mm256_set1_epi32(s.mismatch);
        let go = _mm256_set1_epi32(s.gap_open);
        let ge = _mm256_set1_epi32(s.gap_extend);
        let zero = _mm256_setzero_si256();
        // i32 offsets of the `m` field of cells p .. p+7 (stride 3).
        let idx = _mm256_setr_epi32(0, 3, 6, 9, 12, 15, 18, 21);
        let a = self.a.as_ptr();
        let b = self.b.as_ptr();
        let mut p = 0;
        while p < out.len() {
            let eq = simd::x86::eq_mask_rev8(a.add(i - p - 8), b.add(j0 + p - 1));
            let nw_base = nw.as_ptr().add(p) as *const i32;
            let n_base = n.as_ptr().add(p) as *const i32;
            let w_base = w.as_ptr().add(p) as *const i32;
            let nw_m = _mm256_i32gather_epi32::<4>(nw_base, idx);
            let nw_ix = _mm256_i32gather_epi32::<4>(nw_base.add(1), idx);
            let nw_iy = _mm256_i32gather_epi32::<4>(nw_base.add(2), idx);
            let n_m = _mm256_i32gather_epi32::<4>(n_base, idx);
            let n_ix = _mm256_i32gather_epi32::<4>(n_base.add(1), idx);
            let w_m = _mm256_i32gather_epi32::<4>(w_base, idx);
            let w_iy = _mm256_i32gather_epi32::<4>(w_base.add(2), idx);
            let sub = _mm256_blendv_epi8(mis, mat, eq);
            let best_nw =
                _mm256_max_epi32(_mm256_max_epi32(nw_m, nw_ix), _mm256_max_epi32(nw_iy, zero));
            let m_out = _mm256_add_epi32(best_nw, sub);
            let ix_out = _mm256_max_epi32(_mm256_add_epi32(n_m, go), _mm256_add_epi32(n_ix, ge));
            let iy_out = _mm256_max_epi32(_mm256_add_epi32(w_m, go), _mm256_add_epi32(w_iy, ge));
            let mut ms = [0i32; 8];
            let mut ixs = [0i32; 8];
            let mut iys = [0i32; 8];
            _mm256_storeu_si256(ms.as_mut_ptr() as *mut __m256i, m_out);
            _mm256_storeu_si256(ixs.as_mut_ptr() as *mut __m256i, ix_out);
            _mm256_storeu_si256(iys.as_mut_ptr() as *mut __m256i, iy_out);
            for k in 0..8 {
                out[p + k] = SwCell {
                    m: ms[k],
                    ix: ixs[k],
                    iy: iys[k],
                };
            }
            p += 8;
        }
    }
}

/// Independent full-matrix affine-gap reference (Gotoh's algorithm,
/// local-alignment variant).
pub fn best_local_score(a: &[u8], b: &[u8], s: Scoring) -> i32 {
    let n = b.len();
    let mut m = vec![vec![0i32; n + 1]; a.len() + 1];
    let mut ix = vec![vec![NEG; n + 1]; a.len() + 1];
    let mut iy = vec![vec![NEG; n + 1]; a.len() + 1];
    let mut best = 0;
    for i in 1..=a.len() {
        for j in 1..=n {
            let sub = if a[i - 1] == b[j - 1] {
                s.matches
            } else {
                s.mismatch
            };
            m[i][j] = m[i - 1][j - 1]
                .max(ix[i - 1][j - 1])
                .max(iy[i - 1][j - 1])
                .max(0)
                + sub;
            ix[i][j] = (m[i - 1][j] + s.gap_open).max(ix[i - 1][j] + s.gap_extend);
            iy[i][j] = (m[i][j - 1] + s.gap_open).max(iy[i][j - 1] + s.gap_extend);
            best = best.max(m[i][j]).max(ix[i][j]).max(iy[i][j]);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn simd_run_matches_scalar_run() {
        let a: Vec<u8> = (0..96u32).map(|x| (x * 7 % 5) as u8).collect();
        let b: Vec<u8> = (0..96u32).map(|x| (x * 11 % 5) as u8).collect();
        let k = SmithWatermanKernel::new(a, b);
        let cell = |x: i32| SwCell {
            m: x * 3 % 9,
            ix: if x % 4 == 0 { NEG } else { x % 7 - 3 },
            iy: if x % 5 == 0 { NEG } else { x % 6 - 2 },
        };
        for len in [1usize, 3, 4, 7, 8, 9, 16, 31, 40] {
            let (i, j0) = (len + 5, 3);
            let w: Vec<SwCell> = (0..len as i32).map(cell).collect();
            let nw: Vec<SwCell> = (0..len as i32).map(|x| cell(x + 1)).collect();
            let n: Vec<SwCell> = (0..len as i32).map(|x| cell(x + 2)).collect();
            let mut scalar = vec![SwCell::default(); len];
            let mut vector = vec![SwCell::default(); len];
            k.compute_run(i, j0, &mut scalar, &w, &nw, &n, &[]);
            k.compute_run_simd(i, j0, &mut vector, &w, &nw, &n, &[]);
            assert_eq!(scalar, vector, "len {len}");
        }
    }

    #[test]
    fn classified_as_anti_diagonal() {
        let k = SmithWatermanKernel::new(*b"ACGT", *b"TGCA");
        assert_eq!(classify(k.contributing_set()), Some(Pattern::AntiDiagonal));
    }

    #[test]
    fn perfect_match_scores_full_length() {
        let k = SmithWatermanKernel::new(*b"ACGTACGT", *b"ACGTACGT");
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.best_score_from(&grid), 16); // 8 matches × 2
    }

    #[test]
    fn disjoint_alphabets_score_zero() {
        let k = SmithWatermanKernel::new(*b"AAAA", *b"TTTT");
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.best_score_from(&grid), 0);
    }

    #[test]
    fn local_alignment_finds_embedded_motif() {
        // The motif ACGTACGT is embedded in noise on both sides.
        let a = b"TTTTTACGTACGTCCCCC".to_vec();
        let b = b"GGGGGACGTACGTAAAAA".to_vec();
        let k = SmithWatermanKernel::new(a, b);
        let grid = solve_row_major(&k).unwrap();
        assert!(k.best_score_from(&grid) >= 16);
    }

    #[test]
    fn affine_gap_prefers_one_long_gap() {
        // With gap_open = -3 / gap_extend = -1, one gap of length 3
        // costs -5; three gaps of length 1 cost -9. The affine scheme
        // must favour the contiguous gap: score(AAATTTAAA vs AAAAAA)
        // with the gap bridging TTT = 6·2 - 5 = 7.
        let k = SmithWatermanKernel::new(*b"AAATTTAAA", *b"AAAAAA");
        let grid = solve_row_major(&k).unwrap();
        assert_eq!(k.best_score_from(&grid), 7);
    }

    proptest! {
        #[test]
        fn kernel_matches_gotoh_reference(
            a in proptest::collection::vec(0u8..4, 0..20),
            b in proptest::collection::vec(0u8..4, 0..20),
        ) {
            let k = SmithWatermanKernel::new(a.clone(), b.clone());
            let grid = solve_row_major(&k).unwrap();
            prop_assert_eq!(
                k.best_score_from(&grid),
                best_local_score(&a, &b, Scoring::default())
            );
        }

        /// Scores are never negative and bounded by 2·min(|a|, |b|).
        #[test]
        fn score_bounds(
            a in proptest::collection::vec(0u8..4, 0..16),
            b in proptest::collection::vec(0u8..4, 0..16),
        ) {
            let best = best_local_score(&a, &b, Scoring::default());
            prop_assert!(best >= 0);
            prop_assert!(best <= 2 * a.len().min(b.len()) as i32);
        }
    }
}
