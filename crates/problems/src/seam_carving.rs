//! Content-aware image resizing (seam carving, Avidan & Shamir) — a
//! modern LDDP-Plus workload: the cumulative-energy map is exactly the
//! checkerboard recurrence (`min(NW, N, NE) + energy`), i.e. horizontal
//! pattern case 2, and the minimal vertical seam is its traceback.
//!
//! Demonstrates the framework's claim that *any* problem matching a
//! Table I row plugs in with just `f` and an initialization.

use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::Grid;
use lddp_core::kernel::{Kernel, Neighbors};
use lddp_core::wavefront::Dims;

/// Cumulative-energy kernel over a grayscale image.
#[derive(Debug, Clone)]
pub struct SeamCarvingKernel {
    rows: usize,
    cols: usize,
    /// Row-major per-pixel energy (gradient magnitude).
    energy: Vec<u32>,
}

impl SeamCarvingKernel {
    /// Builds the kernel from a precomputed energy map.
    pub fn new(rows: usize, cols: usize, energy: Vec<u32>) -> Self {
        assert_eq!(energy.len(), rows * cols, "energy map shape mismatch");
        SeamCarvingKernel { rows, cols, energy }
    }

    /// Builds the kernel from a grayscale image using the L1 gradient
    /// magnitude as energy.
    pub fn from_image(rows: usize, cols: usize, image: &[u8]) -> Self {
        assert_eq!(image.len(), rows * cols);
        let px = |i: isize, j: isize| -> i32 {
            let i = i.clamp(0, rows as isize - 1) as usize;
            let j = j.clamp(0, cols as isize - 1) as usize;
            image[i * cols + j] as i32
        };
        let mut energy = Vec::with_capacity(rows * cols);
        for i in 0..rows as isize {
            for j in 0..cols as isize {
                let dx = (px(i, j + 1) - px(i, j - 1)).abs();
                let dy = (px(i + 1, j) - px(i - 1, j)).abs();
                energy.push((dx + dy) as u32);
            }
        }
        SeamCarvingKernel::new(rows, cols, energy)
    }

    /// Pixel energy.
    pub fn energy(&self, i: usize, j: usize) -> u32 {
        self.energy[i * self.cols + j]
    }

    /// The minimal vertical seam (one column index per row, adjacent
    /// rows differing by at most one) from a filled cumulative map.
    pub fn min_seam(&self, grid: &Grid<u64>) -> Vec<usize> {
        let mut seam = vec![0usize; self.rows];
        let mut j = (0..self.cols)
            .min_by_key(|&j| grid.get(self.rows - 1, j))
            .expect("non-empty image");
        seam[self.rows - 1] = j;
        for i in (1..self.rows).rev() {
            let mut best_j = j;
            let mut best = u64::MAX;
            for dj in [-1isize, 0, 1] {
                let pj = j as isize + dj;
                if pj < 0 || pj >= self.cols as isize {
                    continue;
                }
                let v = grid.get(i - 1, pj as usize);
                if v < best {
                    best = v;
                    best_j = pj as usize;
                }
            }
            j = best_j;
            seam[i - 1] = j;
        }
        seam
    }

    /// Total energy of a seam.
    pub fn seam_energy(&self, seam: &[usize]) -> u64 {
        seam.iter()
            .enumerate()
            .map(|(i, &j)| self.energy(i, j) as u64)
            .sum()
    }

    /// Removes a vertical seam from a row-major image, returning the
    /// narrowed image (`cols - 1` wide).
    pub fn remove_seam(rows: usize, cols: usize, image: &[u8], seam: &[usize]) -> Vec<u8> {
        assert_eq!(image.len(), rows * cols);
        assert_eq!(seam.len(), rows);
        let mut out = Vec::with_capacity(rows * (cols - 1));
        for i in 0..rows {
            for j in 0..cols {
                if j != seam[i] {
                    out.push(image[i * cols + j]);
                }
            }
        }
        out
    }
}

impl Kernel for SeamCarvingKernel {
    type Cell = u64;

    fn dims(&self) -> Dims {
        Dims::new(self.rows, self.cols)
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne])
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<u64>) -> u64 {
        let e = self.energy(i, j) as u64;
        if i == 0 {
            return e;
        }
        let best = [nbrs.nw, nbrs.n, nbrs.ne]
            .into_iter()
            .flatten()
            .min()
            .expect("row > 0 has a predecessor");
        e + best
    }

    fn cost_ops(&self) -> u32 {
        18
    }

    fn name(&self) -> &str {
        "seam-carving"
    }
}

/// Exhaustive minimal-seam search for small images (test oracle).
pub fn brute_force_min_seam_energy(rows: usize, cols: usize, energy: &[u32]) -> u64 {
    fn go(rows: usize, cols: usize, energy: &[u32], i: usize, j: usize) -> u64 {
        let e = energy[i * cols + j] as u64;
        if i + 1 == rows {
            return e;
        }
        let mut best = u64::MAX;
        for dj in [-1isize, 0, 1] {
            let nj = j as isize + dj;
            if nj >= 0 && nj < cols as isize {
                best = best.min(go(rows, cols, energy, i + 1, nj as usize));
            }
        }
        e + best
    }
    (0..cols)
        .map(|j| go(rows, cols, energy, 0, j))
        .min()
        .expect("non-empty image")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn classified_as_horizontal() {
        let k = SeamCarvingKernel::new(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(classify(k.contributing_set()), Some(Pattern::Horizontal));
    }

    #[test]
    fn seam_follows_the_low_energy_column() {
        // A cheap valley down column 2.
        let mut energy = vec![9u32; 5 * 5];
        for i in 0..5 {
            energy[i * 5 + 2] = 1;
        }
        let k = SeamCarvingKernel::new(5, 5, energy);
        let grid = solve_row_major(&k).unwrap();
        let seam = k.min_seam(&grid);
        assert_eq!(seam, vec![2; 5]);
        assert_eq!(k.seam_energy(&seam), 5);
    }

    #[test]
    fn seam_can_slide_diagonally() {
        // Valley moves one column per row: (0,0),(1,1),(2,2).
        let mut energy = vec![9u32; 9];
        energy[0] = 0;
        energy[3 + 1] = 0;
        energy[6 + 2] = 0;
        let k = SeamCarvingKernel::new(3, 3, energy);
        let grid = solve_row_major(&k).unwrap();
        let seam = k.min_seam(&grid);
        assert_eq!(seam, vec![0, 1, 2]);
        assert_eq!(k.seam_energy(&seam), 0);
    }

    #[test]
    fn gradient_energy_is_zero_on_flat_images() {
        let k = SeamCarvingKernel::from_image(4, 4, &[100u8; 16]);
        assert!((0..4).all(|i| (0..4).all(|j| k.energy(i, j) == 0)));
    }

    #[test]
    fn remove_seam_narrows_the_image() {
        let image: Vec<u8> = (0..12).collect();
        let seam = vec![1usize, 2, 0];
        let out = SeamCarvingKernel::remove_seam(3, 4, &image, &seam);
        assert_eq!(out, vec![0, 2, 3, 4, 5, 7, 9, 10, 11]);
    }

    proptest! {
        /// The DP seam energy equals the brute-force optimum.
        #[test]
        fn seam_is_optimal(rows in 1usize..5, cols in 1usize..5,
                           energy in proptest::collection::vec(0u32..20, 16)) {
            let energy = energy[..rows * cols].to_vec();
            let k = SeamCarvingKernel::new(rows, cols, energy.clone());
            let grid = solve_row_major(&k).unwrap();
            let seam = k.min_seam(&grid);
            prop_assert_eq!(
                k.seam_energy(&seam),
                brute_force_min_seam_energy(rows, cols, &energy)
            );
        }

        /// Seams are always legal paths (adjacent columns).
        #[test]
        fn seam_is_connected(seed in any::<u64>()) {
            let mut rng = seed;
            let mut next = || {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                (rng >> 33) as u32 % 50
            };
            let energy: Vec<u32> = (0..8 * 6).map(|_| next()).collect();
            let k = SeamCarvingKernel::new(8, 6, energy);
            let grid = solve_row_major(&k).unwrap();
            let seam = k.min_seam(&grid);
            prop_assert_eq!(seam.len(), 8);
            for w in seam.windows(2) {
                prop_assert!(w[0].abs_diff(w[1]) <= 1);
            }
        }

        /// Removing k seams shrinks width by k and never panics.
        #[test]
        fn iterated_carving(seed in any::<u64>()) {
            let rows = 6;
            let mut cols = 8;
            let mut image: Vec<u8> = (0..rows * cols)
                .map(|x| ((x as u64).wrapping_mul(seed) >> 5) as u8)
                .collect();
            for _ in 0..4 {
                let k = SeamCarvingKernel::from_image(rows, cols, &image);
                let grid = solve_row_major(&k).unwrap();
                let seam = k.min_seam(&grid);
                image = SeamCarvingKernel::remove_seam(rows, cols, &image, &seam);
                cols -= 1;
                prop_assert_eq!(image.len(), rows * cols);
            }
        }
    }
}
