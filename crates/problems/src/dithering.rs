//! Floyd–Steinberg error-diffusion dithering — the paper's §VI-B case
//! study (knight-move pattern), after Deshpande et al. [11].
//!
//! Each pixel is quantized against a threshold; the quantization error is
//! diffused to the East (7/16), South-West (3/16), South (5/16) and
//! South-East (1/16) neighbours. Reading the diffusion backwards,
//! `cell(i,j)` needs the errors of `W` (its East source, 7/16), `NE`
//! (its SW source, 3/16), `N` (its S source, 5/16) and `NW` (its SE
//! source, 1/16) — the full representative set, hence Knight-Move
//! (Fig 11 and the scheduling constraint of §VI-B).

use lddp_core::cell::ContributingSet;
use lddp_core::grid::Grid;
use lddp_core::kernel::{Kernel, Neighbors};
use lddp_core::wavefront::Dims;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One dithered pixel: the 1-bit output and the residual error it
/// diffuses onward.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DitherCell {
    /// Quantized output level (0 or 255).
    pub out: u8,
    /// Quantization error (signed, in gray levels).
    pub err: f32,
}

/// Floyd–Steinberg kernel over a grayscale image.
#[derive(Debug, Clone)]
pub struct DitherKernel {
    rows: usize,
    cols: usize,
    /// Row-major input gray levels.
    image: Vec<u8>,
    /// Quantization threshold (classically 128).
    threshold: f32,
}

impl DitherKernel {
    /// Builds the kernel for a row-major grayscale image.
    pub fn new(rows: usize, cols: usize, image: Vec<u8>) -> Self {
        assert_eq!(image.len(), rows * cols, "image shape mismatch");
        DitherKernel {
            rows,
            cols,
            image,
            threshold: 128.0,
        }
    }

    /// A horizontal gray gradient test image.
    pub fn gradient(rows: usize, cols: usize) -> Self {
        let image = (0..rows * cols)
            .map(|idx| ((idx % cols) * 255 / cols.max(1)) as u8)
            .collect();
        DitherKernel::new(rows, cols, image)
    }

    /// A noise test image from a seeded generator.
    pub fn noise(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let image = (0..rows * cols).map(|_| rng.gen::<u8>()).collect();
        DitherKernel::new(rows, cols, image)
    }

    /// Input gray level of pixel `(i, j)`.
    pub fn input(&self, i: usize, j: usize) -> f32 {
        self.image[i * self.cols + j] as f32
    }

    /// Bytes of input the device needs (the image).
    pub fn input_bytes(&self) -> usize {
        self.image.len()
    }

    /// Extracts the dithered output image (row-major) from a filled
    /// table.
    pub fn output_from(&self, grid: &Grid<DitherCell>) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.push(grid.get(i, j).out);
            }
        }
        out
    }
}

impl Kernel for DitherKernel {
    type Cell = DitherCell;

    fn dims(&self) -> Dims {
        Dims::new(self.rows, self.cols)
    }

    fn contributing_set(&self) -> ContributingSet {
        ContributingSet::FULL
    }

    fn compute(&self, i: usize, j: usize, nbrs: &Neighbors<DitherCell>) -> DitherCell {
        // Accumulate in the order the raster scan pushes errors in
        // (sources processed NW, N, NE, W) so the f32 result matches the
        // serial reference bit-for-bit.
        let mut v = self.input(i, j);
        if let Some(nw) = nbrs.nw {
            v += nw.err * (1.0 / 16.0);
        }
        if let Some(n) = nbrs.n {
            v += n.err * (5.0 / 16.0);
        }
        if let Some(ne) = nbrs.ne {
            v += ne.err * (3.0 / 16.0);
        }
        if let Some(w) = nbrs.w {
            v += w.err * (7.0 / 16.0);
        }
        let out = if v < self.threshold { 0u8 } else { 255u8 };
        DitherCell {
            out,
            err: v - out as f32,
        }
    }

    fn cost_ops(&self) -> u32 {
        40 // four multiply-adds, threshold, error update
    }

    fn name(&self) -> &str {
        "floyd-steinberg"
    }
}

/// Independent raster-scan reference (the textbook serial algorithm):
/// walk pixels row-major, pushing errors forward to E, SW, S, SE.
pub fn dither_reference(rows: usize, cols: usize, image: &[u8]) -> Vec<u8> {
    assert_eq!(image.len(), rows * cols);
    let mut work: Vec<f32> = image.iter().map(|&p| p as f32).collect();
    let mut out = vec![0u8; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            let idx = i * cols + j;
            let v = work[idx];
            let q = if v < 128.0 { 0u8 } else { 255u8 };
            out[idx] = q;
            let err = v - q as f32;
            if j + 1 < cols {
                work[idx + 1] += err * (7.0 / 16.0);
            }
            if i + 1 < rows {
                if j > 0 {
                    work[idx + cols - 1] += err * (3.0 / 16.0);
                }
                work[idx + cols] += err * (5.0 / 16.0);
                if j + 1 < cols {
                    work[idx + cols + 1] += err * (1.0 / 16.0);
                }
            }
        }
    }
    out
}

/// Writes a binary PGM (P5) image — used by the dithering example.
pub fn write_pgm(
    path: &std::path::Path,
    rows: usize,
    cols: usize,
    pixels: &[u8],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P5\n{cols} {rows}\n255")?;
    f.write_all(pixels)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::solve_row_major;
    use proptest::prelude::*;

    #[test]
    fn classified_as_knight_move() {
        let k = DitherKernel::gradient(4, 4);
        assert_eq!(classify(k.contributing_set()), Some(Pattern::KnightMove));
    }

    #[test]
    fn uniform_black_and_white_pass_through() {
        for (level, expect) in [(0u8, 0u8), (255, 255)] {
            let k = DitherKernel::new(3, 5, vec![level; 15]);
            let grid = solve_row_major(&k).unwrap();
            let out = k.output_from(&grid);
            assert!(out.iter().all(|&p| p == expect), "level {level}");
        }
    }

    #[test]
    fn kernel_matches_raster_reference_exactly() {
        // The wavefront order computes each pixel with exactly the same
        // incoming errors as the raster scan, so outputs (and errors)
        // match bit-for-bit in f32.
        for k in [
            DitherKernel::gradient(16, 24),
            DitherKernel::noise(24, 16, 7),
            DitherKernel::noise(1, 40, 3),
            DitherKernel::noise(40, 1, 4),
        ] {
            let grid = solve_row_major(&k).unwrap();
            let ours = k.output_from(&grid);
            let reference = dither_reference(k.rows, k.cols, &k.image);
            assert_eq!(ours, reference);
        }
    }

    #[test]
    fn mid_gray_alternates_rather_than_banding() {
        // A flat 50% gray must produce a roughly half-on pattern.
        let k = DitherKernel::new(16, 16, vec![128; 256]);
        let grid = solve_row_major(&k).unwrap();
        let out = k.output_from(&grid);
        let on = out.iter().filter(|&&p| p == 255).count();
        assert!((96..=160).contains(&on), "on pixels: {on}");
    }

    proptest! {
        #[test]
        fn wavefront_equals_raster(rows in 1usize..12, cols in 1usize..12,
                                   seed in any::<u64>()) {
            let k = DitherKernel::noise(rows, cols, seed);
            let grid = solve_row_major(&k).unwrap();
            prop_assert_eq!(
                k.output_from(&grid),
                dither_reference(rows, cols, &k.image)
            );
        }

        /// Error diffusion conserves total intensity up to the residual
        /// errors left at the bottom/right boundary: average output is
        /// close to average input.
        #[test]
        fn preserves_mean_intensity(seed in any::<u64>()) {
            let k = DitherKernel::noise(32, 32, seed);
            let grid = solve_row_major(&k).unwrap();
            let out = k.output_from(&grid);
            let mean_in: f64 =
                k.image.iter().map(|&p| p as f64).sum::<f64>() / 1024.0;
            let mean_out: f64 = out.iter().map(|&p| p as f64).sum::<f64>() / 1024.0;
            // Boundary cells swallow some error; allow a few levels.
            prop_assert!((mean_in - mean_out).abs() < 8.0,
                         "in {mean_in} vs out {mean_out}");
        }

        /// Output is strictly binary.
        #[test]
        fn output_is_binary(seed in any::<u64>()) {
            let k = DitherKernel::noise(9, 13, seed);
            let grid = solve_row_major(&k).unwrap();
            prop_assert!(k.output_from(&grid).iter().all(|&p| p == 0 || p == 255));
        }
    }
}
