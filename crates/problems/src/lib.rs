//! # lddp-problems
//!
//! The paper's case-study problems as [`Kernel`](lddp_core::kernel::Kernel)
//! implementations, each paired with an independent reference
//! implementation that serves as its correctness oracle:
//!
//! - [`levenshtein`] — edit distance (§VI-A, anti-diagonal, Fig 10);
//! - [`lcs`] — longest common subsequence (Fig 7 tuning workload) plus
//!   the Allison–Dix bit-parallel specialized baseline;
//! - [`dithering`] — Floyd–Steinberg error diffusion (§VI-B,
//!   knight-move, Fig 12);
//! - [`checkerboard`] — shortest checkerboard path (§VI-C, horizontal
//!   case 2, Fig 13);
//! - [`dtw`] — dynamic time warping (§I speech motivation, banded);
//! - [`smith_waterman`] — affine-gap local alignment (§I bioinformatics
//!   motivation);
//! - [`synthetic`] — the exact Fig 8 / Fig 9 benchmark functions and a
//!   dependency-mixing kernel for coverage tests.

#![warn(missing_docs)]

pub mod checkerboard;
pub mod dithering;
pub mod dtw;
pub mod hirschberg;
pub mod lcs;
pub mod levenshtein;
pub mod max_square;
pub mod needleman_wunsch;
pub mod seam_carving;
mod simd;
pub mod smith_waterman;
pub mod synthetic;
pub mod weighted_edit;

/// Canonical names of every DP problem this crate ships a kernel for,
/// as drivers (the CLI, the solve server) spell them. Adding a kernel
/// module without registering its name here fails the CLI coverage
/// test, so the registry cannot silently drift.
pub const NAMES: &[&str] = &[
    "levenshtein",
    "lcs",
    "dtw",
    "checkerboard",
    "dithering",
    "seam",
    "maxsquare",
    "needleman-wunsch",
    "smith-waterman",
    "weighted-edit",
];

pub use checkerboard::CheckerboardKernel;
pub use dithering::{DitherCell, DitherKernel};
pub use dtw::DtwKernel;
pub use lcs::LcsKernel;
pub use levenshtein::LevenshteinKernel;
pub use max_square::MaxSquareKernel;
pub use needleman_wunsch::NeedlemanWunschKernel;
pub use seam_carving::SeamCarvingKernel;
pub use smith_waterman::{SmithWatermanKernel, SwCell};
pub use weighted_edit::WeightedEditKernel;
