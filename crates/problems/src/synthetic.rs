//! Synthetic kernels for the framework experiments — the exact functions
//! the paper benchmarks in §V (Figs 8 and 9) plus one workload per row of
//! Table I for exhaustive coverage tests.

use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::kernel::{ClosureKernel, Neighbors};
use lddp_core::wavefront::Dims;

/// The Fig 8 kernel: `f(i,j) = max(cell_{i,j}, f(i-1,j-1)) + c`, a pure
/// `{NW}` (inverted-L) dependency. The "cell value" term is modelled as a
/// position hash so the recurrence has real data flow.
pub fn fig8_kernel(
    dims: Dims,
    c: u32,
) -> ClosureKernel<u32, impl Fn(usize, usize, &Neighbors<u32>) -> u32 + Sync> {
    ClosureKernel::new(
        dims,
        ContributingSet::new(&[RepCell::Nw]),
        move |i, j, n: &Neighbors<u32>| {
            let own = ((i * 2654435761) ^ (j * 40503)) as u32 % 1024;
            own.max(n.nw.unwrap_or(0)) + c
        },
    )
    .with_cost_ops(16)
    .with_name("fig8-max-nw")
}

/// The Fig 9 kernel: `f(i,j) = min(f(i-1,j-1), f(i-1,j)) + c`, horizontal
/// pattern case 1.
pub fn fig9_kernel(
    dims: Dims,
    c: u32,
) -> ClosureKernel<u32, impl Fn(usize, usize, &Neighbors<u32>) -> u32 + Sync> {
    ClosureKernel::new(
        dims,
        ContributingSet::new(&[RepCell::Nw, RepCell::N]),
        move |i, j, n: &Neighbors<u32>| match (n.nw, n.n) {
            (Some(a), Some(b)) => a.min(b) + c,
            (Some(a), None) => a + c,
            (None, Some(b)) => b + c,
            (None, None) => ((i * 31 + j * 7) as u32) % 64,
        },
    )
    .with_cost_ops(16)
    .with_name("fig9-min-nw-n")
}

/// A dependency-mixing kernel over an arbitrary contributing set: every
/// declared neighbour perturbs the output, so scheduling/transfer bugs
/// change results. Used by cross-crate tests and examples.
pub fn mix_kernel(
    dims: Dims,
    set: ContributingSet,
) -> ClosureKernel<u64, impl Fn(usize, usize, &Neighbors<u64>) -> u64 + Sync> {
    ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
        let mut acc = ((i as u64) << 24) ^ (j as u64).wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for c in RepCell::ALL {
            if let Some(v) = n.get(c) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(*v);
            }
        }
        acc
    })
    .with_name("mix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::grid::LayoutKind;
    use lddp_core::kernel::Kernel;
    use lddp_core::pattern::{classify, Pattern};
    use lddp_core::seq::{solve_row_major, solve_wavefront_as};

    #[test]
    fn fig8_is_inverted_l() {
        let k = fig8_kernel(Dims::new(8, 8), 1);
        assert_eq!(classify(k.contributing_set()), Some(Pattern::InvertedL));
    }

    #[test]
    fn fig9_is_horizontal() {
        let k = fig9_kernel(Dims::new(8, 8), 1);
        assert_eq!(classify(k.contributing_set()), Some(Pattern::Horizontal));
    }

    #[test]
    fn fig8_solves_identically_under_both_patterns() {
        // §V-B: inverted-L problems may run under horizontal case 1.
        let k = fig8_kernel(Dims::new(12, 9), 3);
        let oracle = solve_row_major(&k).unwrap().to_row_major();
        for p in [Pattern::InvertedL, Pattern::Horizontal] {
            let got = solve_wavefront_as(&k, p, LayoutKind::preferred_for(p)).unwrap();
            assert_eq!(got.to_row_major(), oracle, "{p}");
        }
    }

    #[test]
    fn fig9_values_accumulate_per_row() {
        // Along any column, value grows by exactly c per row once past
        // row 0 (min of two parents, both ≥ row-1 min + c).
        let k = fig9_kernel(Dims::new(6, 6), 5);
        let g = solve_row_major(&k).unwrap();
        for i in 1..6 {
            for j in 0..6 {
                let v = g.get(i, j);
                let mut parents = Vec::new();
                if j > 0 {
                    parents.push(g.get(i - 1, j - 1));
                }
                parents.push(g.get(i - 1, j));
                assert_eq!(v, parents.into_iter().min().unwrap() + 5);
            }
        }
    }

    #[test]
    fn mix_kernel_depends_on_every_declared_neighbour() {
        // Flipping which set is declared changes the output table.
        let dims = Dims::new(6, 6);
        let full = solve_row_major(&mix_kernel(dims, ContributingSet::FULL))
            .unwrap()
            .to_row_major();
        for c in RepCell::ALL {
            let partial = solve_row_major(&mix_kernel(dims, ContributingSet::FULL.without(c)))
                .unwrap()
                .to_row_major();
            assert_ne!(full, partial, "removing {c} must change results");
        }
    }
}
