//! Live telemetry: always-on, bounded-memory instruments for a running
//! server, as opposed to the snapshot-and-export [`Recorder`] layer.
//!
//! The offline layer ([`Recorder`](crate::Recorder) → [`chrome`](crate::chrome) /
//! [`metrics`](crate::metrics)) keeps *every* event in memory until an
//! exporter drains it — ideal for a bounded run, fatal for a server
//! handling live traffic. This module provides the complementary live
//! layer, all of it O(1) in request count:
//!
//! - [`Counter`] — a sharded monotonic `u64` counter (one cache line
//!   per shard, relaxed atomics; increments never contend on a lock).
//! - [`FloatCounter`] — a monotonic `f64` counter (CAS-loop add) for
//!   accumulating seconds of busy time.
//! - [`Gauge`] — a last-write-wins `f64` instantaneous value.
//! - [`HistogramSketch`] — a mergeable log-linear sketch: fixed bucket
//!   array keyed by the sample's binary exponent plus a linear
//!   subdivision, so quantile estimates carry a bounded relative error
//!   ([`SKETCH_RELATIVE_ERROR`], ≤ 3.2%) without storing samples.
//! - [`FlightRecorder`] — a fixed-capacity ring of the most recent
//!   spans/instants, always on, dumpable after the fact (the "what was
//!   the server doing just before the incident" view).
//! - [`LiveRegistry`] — the named-series registry tying them together,
//!   with Prometheus text exposition ([`LiveRegistry::to_prometheus`]).
//!
//! The hot path is lock-free: every instrument hands out `Arc` handles,
//! and recording through a handle touches only atomics. Registration
//! (name → handle lookup) takes a read lock on a `BTreeMap` — callers
//! on latency-critical paths should resolve handles once and keep them.

use crate::{InstantEvent, Span, TraceData};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

// ---- counters ------------------------------------------------------

/// Shards per [`Counter`]. Eight cache lines bound the memory cost
/// while splitting increment traffic across enough lines that worker
/// pools of typical size do not false-share.
const COUNTER_SHARDS: usize = 8;

#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a fixed shard by arrival order; round-robin
    /// assignment keeps a worker pool spread across all shards.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

/// A monotonic counter sharded across cache lines: `add` touches one
/// relaxed atomic on the calling thread's shard, `get` sums the shards.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `delta` (lock-free, relaxed).
    pub fn add(&self, delta: u64) {
        let shard = SHARD.with(|s| *s);
        self.shards[shard].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A monotonic `f64` counter (e.g. accumulated busy seconds). Adds are
/// a CAS loop on the value's bit pattern — lock-free, no allocation.
#[derive(Debug, Default)]
pub struct FloatCounter {
    bits: AtomicU64,
}

impl FloatCounter {
    /// A zeroed counter.
    pub fn new() -> FloatCounter {
        FloatCounter::default()
    }

    /// Adds `delta` (negative deltas are ignored: the counter is
    /// monotonic by contract).
    pub fn add(&self, delta: f64) {
        // NaN and non-positive deltas are both ignored: the counter is
        // monotonic by contract.
        if delta.is_nan() || delta <= 0.0 {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// An instantaneous `f64` value (queue depth, breaker state). Writes
/// are last-write-wins relaxed stores.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

// ---- histogram sketch ----------------------------------------------

/// Linear subdivisions per power of two. Sixteen keeps the relative
/// quantile error under 1/32 while the whole sketch stays ~8 KiB.
const SUBBUCKETS: usize = 16;
/// Smallest binary exponent with its own buckets (≈ 9.3e-10); values
/// below land in the first range bucket.
const MIN_EXP: i64 = -30;
/// Largest binary exponent with its own buckets (≈ 1.7e10); values
/// above land in the overflow bucket.
const MAX_EXP: i64 = 33;
const RANGE_BUCKETS: usize = ((MAX_EXP - MIN_EXP + 1) as usize) * SUBBUCKETS;
/// Bucket 0 holds zero/negative/non-finite samples; the last bucket is
/// overflow.
const NUM_BUCKETS: usize = RANGE_BUCKETS + 2;

/// Worst-case relative error of [`HistogramSketch::quantile`] for
/// positive samples inside the sketch range: a bucket spans
/// `2^e/16`, the estimate is its midpoint, so the estimate is within
/// `1/32` (3.125%) of any sample in the bucket.
pub const SKETCH_RELATIVE_ERROR: f64 = 1.0 / (2.0 * SUBBUCKETS as f64);

/// Bucket index of a sample, derived from the `f64` bit pattern: the
/// biased exponent picks the octave, the top four mantissa bits pick
/// the linear sub-bucket. No floating-point math on the hot path.
fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    if exp < MIN_EXP {
        return 1;
    }
    if exp > MAX_EXP {
        return NUM_BUCKETS - 1;
    }
    let sub = ((bits >> 48) & 0xf) as usize;
    1 + (exp - MIN_EXP) as usize * SUBBUCKETS + sub
}

/// Midpoint representative of a bucket (what quantile estimates
/// report).
fn bucket_mid(idx: usize) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    if idx >= NUM_BUCKETS - 1 {
        return (2f64).powi((MAX_EXP + 1) as i32);
    }
    let (exp, sub) = ((idx - 1) / SUBBUCKETS, (idx - 1) % SUBBUCKETS);
    let base = (2f64).powi((MIN_EXP + exp as i64) as i32);
    base * (1.0 + (sub as f64 + 0.5) / SUBBUCKETS as f64)
}

/// Exclusive upper bound of a bucket (Prometheus `le` labels).
fn bucket_upper(idx: usize) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    if idx >= NUM_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let (exp, sub) = ((idx - 1) / SUBBUCKETS, (idx - 1) % SUBBUCKETS);
    let base = (2f64).powi((MIN_EXP + exp as i64) as i32);
    base * (1.0 + (sub as f64 + 1.0) / SUBBUCKETS as f64)
}

/// A mergeable log-linear histogram sketch: fixed memory (~8 KiB),
/// lock-free recording, quantile estimation with relative error
/// bounded by [`SKETCH_RELATIVE_ERROR`] — no samples stored.
///
/// Buckets subdivide each power of two into [`SUBBUCKETS`] linear
/// steps across `2^-30 ..= 2^33` (≈ 1 ns to ≈ 500 years when samples
/// are seconds). Zero/negative/non-finite samples count in a dedicated
/// bucket whose representative is 0.
pub struct HistogramSketch {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    /// Exact maximum, tracked as a bit-pattern `fetch_max` (valid for
    /// non-negative floats, whose IEEE-754 order matches integer
    /// order).
    max_bits: AtomicU64,
}

impl std::fmt::Debug for HistogramSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSketch")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for HistogramSketch {
    fn default() -> Self {
        HistogramSketch::new()
    }
}

impl HistogramSketch {
    /// An empty sketch.
    pub fn new() -> HistogramSketch {
        let counts: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        HistogramSketch {
            counts: counts.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }
    }

    /// Records one sample (lock-free).
    pub fn observe(&self, v: f64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() && v > 0.0 {
            self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of positive finite samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Exact largest positive sample seen (0 when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`q` clamped to 0..=1): the midpoint of
    /// the bucket holding the rank, clamped to the exact tracked
    /// maximum so estimates never exceed an observed value's ceiling.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0.0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.0
        };
        // Rank of the target sample among `total`, 1-based.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for idx in 0..NUM_BUCKETS {
            seen += self.counts[idx].load(Ordering::Relaxed);
            if seen >= rank {
                if idx == NUM_BUCKETS - 1 {
                    // Overflow bucket: the exact max is the only
                    // representative we have.
                    return self.max();
                }
                return bucket_mid(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Folds another sketch into this one (bucket-wise add; the exact
    /// max is the max of both).
    pub fn merge(&self, other: &HistogramSketch) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_bits
            .fetch_max(other.max_bits.load(Ordering::Relaxed), Ordering::Relaxed);
        let add = other.sum();
        if add > 0.0 {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + add).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs in
    /// ascending order, ending with `(+Inf, total)` — the Prometheus
    /// `_bucket` series. The zero/negative bucket reports upper bound 0.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for idx in 0..NUM_BUCKETS {
            let c = self.counts[idx].load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                if idx < NUM_BUCKETS - 1 {
                    out.push((bucket_upper(idx), cum));
                }
            }
        }
        out.push((f64::INFINITY, cum));
        out
    }
}

// ---- flight recorder -----------------------------------------------

/// Default number of events a [`FlightRecorder`] retains.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// One retained flight-recorder event.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEvent {
    /// A complete span.
    Span(Span),
    /// An instant marker.
    Instant(InstantEvent),
}

impl FlightEvent {
    /// Event name.
    pub fn name(&self) -> &str {
        match self {
            FlightEvent::Span(s) => &s.name,
            FlightEvent::Instant(e) => &e.name,
        }
    }

    /// End time (instants end when they happen), seconds on the
    /// emitter's clock.
    pub fn end_s(&self) -> f64 {
        match self {
            FlightEvent::Span(s) => s.end_s(),
            FlightEvent::Instant(e) => e.t_s,
        }
    }
}

/// A fixed-capacity ring of the most recent spans/instants: always on,
/// bounded memory, oldest events overwritten first. The write path
/// takes a short mutex (spans are emitted a handful of times per
/// request, not per cell); counters and histograms — the truly hot
/// instruments — never touch it.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<VecDeque<FlightEvent>>,
    capacity: usize,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A ring retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
        }
    }

    /// Retention capacity, events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, event: FlightEvent) {
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Records a span.
    pub fn record_span(&self, span: Span) {
        self.push(FlightEvent::Span(span));
    }

    /// Records an instant.
    pub fn record_instant(&self, event: InstantEvent) {
        self.push(FlightEvent::Instant(event));
    }

    /// The retained events in recording order (oldest first).
    pub fn events(&self) -> Vec<FlightEvent> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// The retained events whose end time is at or after `min_end_s`,
    /// as a [`TraceData`] ready for [`chrome::to_chrome_json`]
    /// (crate::chrome). Pass `f64::NEG_INFINITY` for everything.
    pub fn snapshot_since(&self, min_end_s: f64) -> TraceData {
        let mut data = TraceData::default();
        let ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for ev in ring.iter() {
            if ev.end_s() < min_end_s {
                continue;
            }
            match ev {
                FlightEvent::Span(s) => data.spans.push(s.clone()),
                FlightEvent::Instant(e) => data.instants.push(e.clone()),
            }
        }
        data
    }
}

// ---- registry ------------------------------------------------------

/// A fully-qualified series: metric family plus its label set, in
/// emission order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    family: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(family: &str, labels: &[(&str, &str)]) -> SeriesKey {
        SeriesKey {
            family: family.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

/// The live-telemetry registry: named counters, gauges and histogram
/// sketches plus one [`FlightRecorder`], exposable as Prometheus text.
///
/// Handle resolution (`counter`/`gauge`/`histogram`) takes a read lock
/// and returns an `Arc` — resolve once on setup paths, record through
/// the handle on hot paths.
#[derive(Debug)]
pub struct LiveRegistry {
    counters: RwLock<BTreeMap<SeriesKey, Arc<Counter>>>,
    fcounters: RwLock<BTreeMap<SeriesKey, Arc<FloatCounter>>>,
    gauges: RwLock<BTreeMap<SeriesKey, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<SeriesKey, Arc<HistogramSketch>>>,
    help: RwLock<BTreeMap<String, String>>,
    flight: FlightRecorder,
}

impl Default for LiveRegistry {
    fn default() -> Self {
        LiveRegistry::new()
    }
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<SeriesKey, Arc<T>>>, key: SeriesKey) -> Arc<T> {
    if let Some(found) = map.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return Arc::clone(found);
    }
    let mut write = map.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(write.entry(key).or_default())
}

impl LiveRegistry {
    /// An empty registry with the default flight-recorder capacity.
    pub fn new() -> LiveRegistry {
        LiveRegistry::with_flight_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// An empty registry whose flight recorder retains `capacity`
    /// events.
    pub fn with_flight_capacity(capacity: usize) -> LiveRegistry {
        LiveRegistry {
            counters: RwLock::new(BTreeMap::new()),
            fcounters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            help: RwLock::new(BTreeMap::new()),
            flight: FlightRecorder::new(capacity),
        }
    }

    fn note_help(&self, family: &str, help: &str) {
        if help.is_empty() {
            return;
        }
        let mut map = self.help.write().unwrap_or_else(|e| e.into_inner());
        map.entry(family.to_string())
            .or_insert_with(|| help.to_string());
    }

    /// The counter for `family` + `labels`, created on first use.
    pub fn counter(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        self.note_help(family, help);
        get_or_create(&self.counters, SeriesKey::new(family, labels))
    }

    /// The float counter for `family` + `labels`, created on first use.
    pub fn fcounter(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Arc<FloatCounter> {
        self.note_help(family, help);
        get_or_create(&self.fcounters, SeriesKey::new(family, labels))
    }

    /// The gauge for `family` + `labels`, created on first use.
    pub fn gauge(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        self.note_help(family, help);
        get_or_create(&self.gauges, SeriesKey::new(family, labels))
    }

    /// The histogram sketch for `family` + `labels`, created on first
    /// use.
    pub fn histogram(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<HistogramSketch> {
        self.note_help(family, help);
        get_or_create(&self.histograms, SeriesKey::new(family, labels))
    }

    /// The always-on flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Renders every registered series in the Prometheus text
    /// exposition format (version 0.0.4): `# HELP` / `# TYPE` lines per
    /// family, then one sample line per series, label values escaped.
    /// Families are sorted by name; series within a family by label
    /// set. Histograms render cumulative `_bucket{le=…}` lines for
    /// non-empty buckets plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let help = self.help.read().unwrap_or_else(|e| e.into_inner());
        let help_of = |family: &str| -> String { help.get(family).cloned().unwrap_or_default() };
        let mut out = String::with_capacity(4096);

        // family -> (type, rendered series lines)
        let mut families: BTreeMap<String, (&'static str, Vec<String>)> = BTreeMap::new();
        let mut push = |family: &str, kind: &'static str, line: String| {
            families
                .entry(family.to_string())
                .or_insert_with(|| (kind, Vec::new()))
                .1
                .push(line);
        };

        for (key, c) in self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let mut line = String::new();
            write_series(
                &mut line,
                &key.family,
                &borrow_labels(&key.labels),
                c.get() as f64,
            );
            push(&key.family, "counter", line);
        }
        for (key, c) in self
            .fcounters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let mut line = String::new();
            write_series(&mut line, &key.family, &borrow_labels(&key.labels), c.get());
            push(&key.family, "counter", line);
        }
        for (key, g) in self.gauges.read().unwrap_or_else(|e| e.into_inner()).iter() {
            let mut line = String::new();
            write_series(&mut line, &key.family, &borrow_labels(&key.labels), g.get());
            push(&key.family, "gauge", line);
        }
        for (key, h) in self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let mut lines = String::new();
            let base = borrow_labels(&key.labels);
            for (upper, cum) in h.cumulative_buckets() {
                let le = fmt_value(upper);
                let mut labels: Vec<(&str, &str)> = base.clone();
                labels.push(("le", &le));
                write_series(
                    &mut lines,
                    &format!("{}_bucket", key.family),
                    &labels,
                    cum as f64,
                );
            }
            write_series(&mut lines, &format!("{}_sum", key.family), &base, h.sum());
            write_series(
                &mut lines,
                &format!("{}_count", key.family),
                &base,
                h.count() as f64,
            );
            // Trailing newline is re-added per line by write_series;
            // strip the final one so the Vec join below stays uniform.
            push(&key.family, "histogram", lines.trim_end().to_string());
        }

        for (family, (kind, lines)) in &families {
            let h = help_of(family);
            if !h.is_empty() {
                out.push_str("# HELP ");
                out.push_str(family);
                out.push(' ');
                out.push_str(&h.replace('\\', "\\\\").replace('\n', "\\n"));
                out.push('\n');
            }
            out.push_str("# TYPE ");
            out.push_str(family);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            for line in lines {
                out.push_str(line.trim_end());
                out.push('\n');
            }
        }
        out
    }
}

fn borrow_labels(labels: &[(String, String)]) -> Vec<(&str, &str)> {
    labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

// ---- exposition helpers --------------------------------------------

/// Escapes a Prometheus label value (`\`, `"`, newline).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value the way Prometheus text exposition expects
/// (`+Inf`/`-Inf` for infinities, shortest-round-trip otherwise).
pub fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        crate::json::num(v)
    }
}

/// Appends one `name{labels} value` exposition line to `out`.
pub fn write_series(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&fmt_value(value));
    out.push('\n');
}

/// Appends `# HELP` / `# TYPE` lines for a family rendered outside the
/// registry (values computed at scrape time).
pub fn write_family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Parses Prometheus text exposition into `(series, value)` pairs,
/// where `series` is the full `name{labels}` string. Comment and blank
/// lines are skipped; unparsable values are dropped. This is the
/// scrape side used by the load generator's before/after delta.
pub fn parse_prometheus(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(split) = line.rfind(' ') else {
            continue;
        };
        let (series, value) = line.split_at(split);
        let value = value.trim();
        let parsed = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => match v.parse::<f64>() {
                Ok(f) => f,
                Err(_) => continue,
            },
        };
        out.push((series.trim().to_string(), parsed));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracks;

    #[test]
    fn concurrent_counter_increments_total_correctly() {
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per = 10_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per);
    }

    #[test]
    fn float_counter_accumulates_and_ignores_nonpositive() {
        let c = FloatCounter::new();
        c.add(0.5);
        c.add(1.25);
        c.add(-3.0);
        c.add(f64::NAN);
        assert!((c.get() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(42.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn sketch_quantiles_match_exact_within_documented_error() {
        let sketch = HistogramSketch::new();
        // Latency-shaped samples spanning three decades: 1 ms … 1 s.
        let mut exact: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        for &v in &exact {
            sketch.observe(v);
        }
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let est = sketch.quantile(q);
            let rel = (est - truth).abs() / truth;
            assert!(
                rel <= SKETCH_RELATIVE_ERROR + 1e-9,
                "q={q}: est {est} vs exact {truth} (rel {rel})"
            );
        }
        assert_eq!(sketch.count(), 1000);
        assert!((sketch.max() - 1.0).abs() < 1e-12);
        assert!((sketch.sum() - exact.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn sketch_concurrent_observes_keep_count() {
        let sketch = Arc::new(HistogramSketch::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let sk = Arc::clone(&sketch);
                s.spawn(move || {
                    for i in 0..5_000 {
                        sk.observe((t * 5_000 + i) as f64 * 1e-6 + 1e-6);
                    }
                });
            }
        });
        assert_eq!(sketch.count(), 20_000);
    }

    #[test]
    fn sketch_handles_degenerate_samples_and_empty() {
        let sketch = HistogramSketch::new();
        assert_eq!(sketch.quantile(0.5), 0.0);
        sketch.observe(0.0);
        sketch.observe(-3.0);
        sketch.observe(f64::NAN);
        assert_eq!(sketch.count(), 3);
        assert_eq!(sketch.quantile(0.5), 0.0);
        sketch.observe(1e300); // overflow bucket, clamped to exact max
        assert_eq!(sketch.quantile(1.0), 1e300);
    }

    #[test]
    fn sketch_merge_folds_counts_and_max() {
        let a = HistogramSketch::new();
        let b = HistogramSketch::new();
        for i in 1..=100 {
            a.observe(i as f64 * 1e-3);
            b.observe(i as f64 * 1e-2);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!((a.max() - 1.0).abs() < 1e-12);
        let p100 = a.quantile(1.0);
        assert!((p100 - 1.0).abs() / 1.0 <= SKETCH_RELATIVE_ERROR + 1e-9);
    }

    #[test]
    fn flight_ring_overwrites_oldest_first() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record_span(Span::new(format!("s{i}"), tracks::CPU, i as f64, 0.5));
        }
        assert_eq!(fr.len(), 3);
        let names: Vec<String> = fr.events().iter().map(|e| e.name().to_string()).collect();
        assert_eq!(names, vec!["s2", "s3", "s4"], "oldest events dropped first");
    }

    #[test]
    fn flight_snapshot_filters_by_end_time() {
        let fr = FlightRecorder::new(16);
        fr.record_span(Span::new("old", tracks::CPU, 0.0, 1.0));
        fr.record_instant(InstantEvent::new("mark", tracks::CPU, 5.0));
        fr.record_span(Span::new("new", tracks::CPU, 9.0, 1.0));
        let all = fr.snapshot_since(f64::NEG_INFINITY);
        assert_eq!(all.spans.len(), 2);
        assert_eq!(all.instants.len(), 1);
        let recent = fr.snapshot_since(4.0);
        assert_eq!(recent.spans.len(), 1);
        assert_eq!(recent.spans[0].name, "new");
        assert_eq!(recent.instants.len(), 1);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let reg = LiveRegistry::new();
        let a = reg.counter("lddp_test_total", &[("k", "v")], "help");
        let b = reg.counter("lddp_test_total", &[("k", "v")], "");
        a.add(3);
        assert_eq!(b.get(), 3);
        let other = reg.counter("lddp_test_total", &[("k", "w")], "");
        assert_eq!(other.get(), 0);
    }

    /// The golden exposition test: exact HELP/TYPE lines, label
    /// escaping, histogram bucket/sum/count structure.
    #[test]
    fn prometheus_exposition_format_is_golden() {
        let reg = LiveRegistry::new();
        reg.counter("lddp_requests_total", &[("code", "ok")], "Requests served.")
            .add(5);
        reg.counter("lddp_requests_total", &[("code", "err")], "")
            .add(2);
        reg.gauge("lddp_queue_depth", &[], "Jobs queued.").set(7.0);
        reg.counter(
            "lddp_weird_total",
            &[("path", "a\\b\"c\nd")],
            "Escaping test.",
        )
        .inc();
        let h = reg.histogram("lddp_latency_seconds", &[], "Latency.");
        h.observe(0.5);
        h.observe(0.5);
        h.observe(2.0);

        let text = reg.to_prometheus();
        assert!(text.contains("# HELP lddp_requests_total Requests served.\n"));
        assert!(text.contains("# TYPE lddp_requests_total counter\n"));
        assert!(text.contains("lddp_requests_total{code=\"ok\"} 5\n"));
        assert!(text.contains("lddp_requests_total{code=\"err\"} 2\n"));
        assert!(text.contains("# TYPE lddp_queue_depth gauge\n"));
        assert!(text.contains("lddp_queue_depth 7\n"));
        assert!(
            text.contains("lddp_weird_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            "label escaping: {text}"
        );
        assert!(text.contains("# TYPE lddp_latency_seconds histogram\n"));
        assert!(text.contains("lddp_latency_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lddp_latency_seconds_count 3\n"));
        assert!(text.contains("lddp_latency_seconds_sum 3\n"));
        // Cumulative: the 0.5 bucket holds two samples before +Inf.
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("lddp_latency_seconds_bucket"))
            .collect();
        assert!(bucket_lines.len() >= 2);
        assert!(bucket_lines[0].ends_with(" 2"), "{bucket_lines:?}");

        // And it parses back.
        let parsed = parse_prometheus(&text);
        let find = |name: &str| {
            parsed
                .iter()
                .find(|(s, _)| s == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing {name} in {parsed:?}"))
        };
        assert_eq!(find("lddp_requests_total{code=\"ok\"}"), 5.0);
        assert_eq!(find("lddp_queue_depth"), 7.0);
        assert_eq!(find("lddp_latency_seconds_count"), 3.0);
    }

    #[test]
    fn help_and_type_precede_series_lines() {
        let reg = LiveRegistry::new();
        reg.counter("lddp_a_total", &[], "A.").inc();
        let text = reg.to_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        let help = lines
            .iter()
            .position(|l| l.starts_with("# HELP lddp_a_total"));
        let ty = lines
            .iter()
            .position(|l| l.starts_with("# TYPE lddp_a_total"));
        let series = lines.iter().position(|l| *l == "lddp_a_total 1");
        assert!(help < ty && ty < series, "{lines:?}");
    }

    #[test]
    fn parse_prometheus_skips_comments_and_garbage() {
        let text = "# HELP x y\n# TYPE x counter\nx 3\nnot-a-line\nbad value\n\ny{a=\"b\"} 4.5\ninf_series +Inf\n";
        let parsed = parse_prometheus(text);
        assert!(parsed.contains(&("x".to_string(), 3.0)));
        assert!(parsed.contains(&("y{a=\"b\"}".to_string(), 4.5)));
        assert!(parsed
            .iter()
            .any(|(s, v)| s == "inf_series" && v.is_infinite()));
        assert!(!parsed.iter().any(|(s, _)| s == "not-a-line"));
    }
}
