//! Chrome trace-event JSON exporter.
//!
//! Produces the "JSON Array Format" subset of the Trace Event spec that
//! Perfetto and `chrome://tracing` load directly: complete (`X`) events
//! for spans, instant (`i`) events, counter (`C`) series, and metadata
//! (`M`) events naming each process/thread. Timestamps are microseconds
//! (`ts`/`dur` are doubles, so sub-microsecond model times survive).

use crate::json::{escape, num};
use crate::{ArgValue, InstantEvent, Span, TraceData, Track};
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push_str("\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(k));
        match v {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(f) => out.push_str(&num(*f)),
            ArgValue::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
        }
    }
    out.push('}');
}

fn write_span(out: &mut String, s: &Span) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},",
        escape(&s.name),
        num(s.start_s * 1e6),
        num(s.dur_s * 1e6),
        s.track.pid,
        s.track.tid
    );
    write_args(out, &s.args);
    out.push('}');
}

fn write_instant(out: &mut String, e: &InstantEvent) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},",
        escape(&e.name),
        num(e.t_s * 1e6),
        e.track.pid,
        e.track.tid
    );
    write_args(out, &e.args);
    out.push('}');
}

/// Serializes a [`TraceData`] snapshot as one Chrome trace-event JSON
/// document (`{"traceEvents":[...],"displayTimeUnit":"ms"}`).
///
/// Event order is deterministic: process/thread metadata first, then
/// spans, instants and counter samples in emission order.
pub fn to_chrome_json(data: &TraceData) -> String {
    let mut out = String::with_capacity(256 + data.spans.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };

    // Metadata: name every process and thread that carries events.
    let mut tracks: BTreeSet<Track> = BTreeSet::new();
    for s in &data.spans {
        tracks.insert(s.track);
    }
    for e in &data.instants {
        tracks.insert(e.track);
    }
    for c in &data.samples {
        tracks.insert(c.track);
    }
    let pids: BTreeSet<u32> = tracks.iter().map(|t| t.pid).collect();
    for pid in &pids {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            pid,
            escape(crate::tracks::process_name(*pid))
        );
    }
    for t in &tracks {
        if t.pid == crate::tracks::WORKERS_PID {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"worker {}\"}}}}",
                t.pid,
                t.tid,
                t.tid - 1
            );
        }
    }

    for s in &data.spans {
        sep(&mut out);
        write_span(&mut out, s);
    }
    for e in &data.instants {
        sep(&mut out);
        write_instant(&mut out, e);
    }
    for c in &data.samples {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":{},\
             \"args\":{{\"value\":{}}}}}",
            escape(&c.name),
            num(c.t_s * 1e6),
            c.track.pid,
            c.track.tid,
            num(c.value)
        );
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use crate::{tracks, Recorder, TraceSink};

    fn sample_data() -> TraceData {
        let rec = Recorder::new();
        rec.span(Span::new("phase", tracks::SCHEDULE, 0.0, 3.0).with_arg("kind", "Shared"));
        rec.span(Span::new("wave", tracks::CPU, 0.0, 1.0).with_arg("cells", 128usize));
        rec.span(Span::new("wave", tracks::GPU, 1.0, 2.0));
        rec.span(Span::new("copy", tracks::LINK, 1.0, 0.5).with_arg("bytes", 4096u64));
        rec.instant(InstantEvent::new("tune", tracks::TUNER, 0.0).with_arg("t_switch", 8usize));
        rec.sample(tracks::LINK, "bytes_to_gpu", 1.5, 4096.0);
        rec.snapshot()
    }

    #[test]
    fn output_is_valid_json_with_expected_structure() {
        let data = sample_data();
        let text = to_chrome_json(&data);
        let doc = json::parse(&text).expect("exporter must emit valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 4 process metadata + 4 spans + 1 instant + 1 counter.
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 4);
        let counters: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 1);
        // Metadata names the CPU process.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("CPU (model)")
        }));
    }

    #[test]
    fn round_trip_preserves_span_count_order_and_times() {
        let data = sample_data();
        let doc = json::parse(&to_chrome_json(&data)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), data.spans.len());
        for (parsed, original) in spans.iter().zip(&data.spans) {
            assert_eq!(
                parsed.get("name").and_then(Json::as_str),
                Some(original.name.as_str())
            );
            let ts = parsed.get("ts").unwrap().as_f64().unwrap();
            let dur = parsed.get("dur").unwrap().as_f64().unwrap();
            assert!((ts - original.start_s * 1e6).abs() < 1e-9);
            assert!((dur - original.dur_s * 1e6).abs() < 1e-9);
            assert_eq!(
                parsed.get("pid").unwrap().as_f64().unwrap() as u32,
                original.track.pid
            );
        }
    }

    #[test]
    fn empty_data_still_valid() {
        let text = to_chrome_json(&TraceData::default());
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn names_are_escaped() {
        let rec = Recorder::new();
        rec.span(Span::new("a\"b\\c", tracks::CPU, 0.0, 1.0).with_arg("s", "x\ny"));
        let text = to_chrome_json(&rec.snapshot());
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("name").and_then(Json::as_str), Some("a\"b\\c"));
        assert_eq!(
            span.get("args").unwrap().get("s").and_then(Json::as_str),
            Some("x\ny")
        );
    }
}
