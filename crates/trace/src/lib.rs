//! # lddp-trace
//!
//! Zero-dependency structured tracing for the LDDP engines: spans,
//! instant events, monotonic counters and fixed-bucket histograms
//! recorded through a cheap [`TraceSink`] trait, plus two exporters —
//! Chrome trace-event JSON ([`chrome`], loadable in Perfetto or
//! `chrome://tracing`) and a flat JSON-lines metrics dump ([`metrics`]).
//!
//! The design constraint is that *disabled* tracing must cost nothing:
//! every instrumentation site checks [`TraceSink::enabled`] once and
//! takes the untraced path when it returns `false`, so the no-op
//! [`NullSink`] compiles down to a branch that never fires. The
//! collecting [`Recorder`] keeps everything in memory until an exporter
//! serializes a [`TraceData`] snapshot.
//!
//! Timestamps are plain `f64` seconds on whatever clock the emitter
//! uses: the discrete-event simulator feeds *model* time, the thread
//! engine feeds wall time from a run-local epoch. Tracks give each
//! modelled engine its own "process" in the exported timeline (see
//! [`tracks`]).
//!
//! ```
//! use lddp_trace::{Recorder, Span, TraceSink, tracks};
//!
//! let rec = Recorder::new();
//! rec.span(Span::new("wave", tracks::CPU, 0.0, 1e-3).with_arg("cells", 4096u64));
//! rec.count("waves", 1);
//! rec.observe("wave_span_s", 1e-3);
//! let json = lddp_trace::chrome::to_chrome_json(&rec.snapshot());
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod live;
pub mod metrics;

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Coordinates of a timeline lane: `pid` is the exported "process"
/// (one per modelled engine), `tid` the lane within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Track {
    /// Process id in the exported trace.
    pub pid: u32,
    /// Thread (lane) id within the process.
    pub tid: u32,
}

/// Well-known tracks. One process per modelled engine, so Perfetto
/// groups the lanes the way the paper's figures do.
pub mod tracks {
    use super::Track;

    /// The modelled multicore CPU (model-time spans).
    pub const CPU: Track = Track { pid: 1, tid: 1 };
    /// The modelled GPU.
    pub const GPU: Track = Track { pid: 2, tid: 1 };
    /// The PCIe link between them (boundary copies, setup/teardown).
    pub const LINK: Track = Track { pid: 3, tid: 1 };
    /// Schedule structure: one span per phase (CPU-only ramp, shared…).
    pub const SCHEDULE: Track = Track { pid: 4, tid: 1 };
    /// The parameter tuner (one lane of sweep evaluations).
    pub const TUNER: Track = Track { pid: 5, tid: 1 };

    /// Process id of the wall-clock worker threads of `lddp-parallel`.
    pub const WORKERS_PID: u32 = 6;

    /// Lane of wall-clock worker thread `idx`.
    pub fn worker(idx: usize) -> Track {
        Track {
            pid: WORKERS_PID,
            tid: idx as u32 + 1,
        }
    }

    /// Process id of the `lddp-serve` serving subsystem (wall clock).
    pub const SERVE_PID: u32 = 7;

    /// The serve queue lane: one `serve.queue_wait` span per request,
    /// from admission to the moment a worker picks it up.
    pub const SERVE_QUEUE: Track = Track {
        pid: SERVE_PID,
        tid: 1,
    };

    /// Lane of serve worker `idx` (batch + solve spans).
    pub fn serve_worker(idx: usize) -> Track {
        Track {
            pid: SERVE_PID,
            tid: idx as u32 + 2,
        }
    }

    /// Human name of a process id, used by the exporters' metadata.
    pub fn process_name(pid: u32) -> &'static str {
        match pid {
            1 => "CPU (model)",
            2 => "GPU (model)",
            3 => "Link (PCIe model)",
            4 => "Schedule",
            5 => "Tuner",
            6 => "Workers (wall clock)",
            7 => "Serve (wall clock)",
            _ => "Track",
        }
    }
}

/// The serve subsystem's span/counter catalog: every name `lddp-serve`
/// emits, as constants, so dashboards and tests don't drift from the
/// instrumentation sites (see `docs/SERVING.md` for semantics).
pub mod catalog {
    /// Span: request sat in the admission queue (queue lane; args:
    /// `id`, `problem`).
    pub const SPAN_QUEUE_WAIT: &str = "serve.queue_wait";
    /// Span: one batch execution on a worker lane (args: `batch`,
    /// `key`, `cache_hit`).
    pub const SPAN_BATCH: &str = "serve.batch";
    /// Span: one request's solve within a batch (args: `id`,
    /// `problem`, `n`).
    pub const SPAN_SOLVE: &str = "serve.solve";
    /// Span: the once-per-batch parameter resolution (tuner-cache
    /// lookup or sweep) on a worker lane (args: `key`, `cache_hit`).
    pub const SPAN_TUNE: &str = "serve.tune";
    /// Counter: requests admitted into the queue.
    pub const CTR_ACCEPTED: &str = "serve.accepted";
    /// Counter: requests rejected because the queue was full.
    pub const CTR_REJECTED_FULL: &str = "serve.rejected.queue_full";
    /// Counter: requests rejected because the server was draining.
    pub const CTR_REJECTED_SHUTDOWN: &str = "serve.rejected.shutting_down";
    /// Counter: requests dropped because their deadline expired queued.
    pub const CTR_REJECTED_DEADLINE: &str = "serve.rejected.deadline";
    /// Counter: requests rejected as invalid at admission.
    pub const CTR_REJECTED_INVALID: &str = "serve.rejected.invalid";
    /// Counter: requests completed successfully.
    pub const CTR_COMPLETED: &str = "serve.completed";
    /// Counter: requests that failed in the backend.
    pub const CTR_ERRORS: &str = "serve.errors";
    /// Counter: batches executed.
    pub const CTR_BATCHES: &str = "serve.batches";
    /// Counter: tuner-cache hits (one per batch).
    pub const CTR_TUNE_HIT: &str = "serve.tuner_cache.hit";
    /// Counter: tuner-cache misses (a fresh tune ran).
    pub const CTR_TUNE_MISS: &str = "serve.tuner_cache.miss";
    /// Counter: requests rejected because the circuit breaker was open.
    pub const CTR_REJECTED_BREAKER: &str = "serve.rejected.breaker_open";
    /// Counter: backend panics caught and isolated (request got a 500,
    /// the worker survived).
    pub const CTR_PANICS: &str = "serve.panics";
    /// Counter: solves whose answer was withheld because they blew the
    /// watchdog budget.
    pub const CTR_WATCHDOG: &str = "serve.watchdog_timeouts";
    /// Counter: circuit-breaker trips (closed/half-open → open).
    pub const CTR_BREAKER_OPEN: &str = "serve.breaker.opens";
    /// Counter: solves that succeeded only after degradation (see
    /// `docs/ROBUSTNESS.md` for the ladder).
    pub const CTR_DEGRADED: &str = "serve.degraded";
    /// Counter: solves executed on the scalar cell-at-a-time tier.
    pub const CTR_TIER_SCALAR: &str = "serve.tier.scalar";
    /// Counter: solves executed on the bulk run-at-a-time tier.
    pub const CTR_TIER_BULK: &str = "serve.tier.bulk";
    /// Counter: solves executed on the SIMD lane tier.
    pub const CTR_TIER_SIMD: &str = "serve.tier.simd";
    /// Counter: solves executed on the bit-parallel tier.
    pub const CTR_TIER_BITPARALLEL: &str = "serve.tier.bitparallel";
    /// Sample series: queue depth after each admission/dequeue.
    pub const SMP_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Histogram: end-to-end request latency, seconds.
    pub const HIST_LATENCY: &str = "serve.latency_s";
    /// Histogram: time spent waiting in the queue, seconds.
    pub const HIST_QUEUE_WAIT: &str = "serve.queue_wait_s";
    /// Histogram: jobs per executed batch.
    pub const HIST_BATCH_SIZE: &str = "serve.batch_size";
    /// Counter: requests rejected up front because the §IV estimate
    /// cannot meet their deadline.
    pub const CTR_REJECTED_INFEASIBLE: &str = "serve.rejected.deadline_infeasible";
    /// Counter: requests rejected because the tenant was over quota.
    pub const CTR_REJECTED_TENANT: &str = "serve.rejected.tenant_quota";
    /// Counter: batch-class requests shed by the brownout ladder.
    pub const CTR_REJECTED_BROWNOUT: &str = "serve.rejected.brownout_shed";
    /// Span (zero-duration marker): one brownout-ladder level
    /// transition on the queue lane (args: `from`, `to`).
    pub const SPAN_BROWNOUT: &str = "serve.brownout";
}

/// A typed span/instant argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// A complete (begin+end) span on one track.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name (low-cardinality; details go in `args`).
    pub name: String,
    /// Track the span lives on.
    pub track: Track,
    /// Start time, seconds on the emitter's clock.
    pub start_s: f64,
    /// Duration, seconds.
    pub dur_s: f64,
    /// Structured arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Span {
    /// A span with no arguments.
    pub fn new(name: impl Into<String>, track: Track, start_s: f64, dur_s: f64) -> Self {
        Span {
            name: name.into(),
            track,
            start_s,
            dur_s,
            args: Vec::new(),
        }
    }

    /// Attaches an argument.
    #[must_use]
    pub fn with_arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }

    /// End time, seconds.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.dur_s
    }
}

/// A zero-duration marker on one track.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// Event name.
    pub name: String,
    /// Track it lives on.
    pub track: Track,
    /// Time, seconds.
    pub t_s: f64,
    /// Structured arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl InstantEvent {
    /// An instant with no arguments.
    pub fn new(name: impl Into<String>, track: Track, t_s: f64) -> Self {
        InstantEvent {
            name: name.into(),
            track,
            t_s,
            args: Vec::new(),
        }
    }

    /// Attaches an argument.
    #[must_use]
    pub fn with_arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }
}

/// One timeline sample of a numeric series (a Chrome `C` event).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Series name.
    pub name: String,
    /// Track (only `pid` matters for counters).
    pub track: Track,
    /// Time, seconds.
    pub t_s: f64,
    /// Sampled value.
    pub value: f64,
}

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper bound
/// of bucket `i`; one overflow bucket catches the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: f64,
    /// Number of recorded values.
    pub count: u64,
}

impl Histogram {
    /// A histogram with the given (strictly increasing) upper bounds.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            sum: 0.0,
            count: 0,
        }
    }

    /// Exponential bounds `start, start*factor, …` (`count` of them).
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Histogram::with_bounds(bounds)
    }

    /// The default latency histogram: 1 ns … ≈17 s, factor 4.
    pub fn default_seconds() -> Self {
        Histogram::exponential(1e-9, 4.0, 18)
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` clamped to 0..=1) from the bucket
    /// counts: the inclusive upper bound of the bucket holding the
    /// rank. Overflow-bucket ranks report the last finite bound (the
    /// histogram does not track an exact max). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound_idx = idx.min(self.bounds.len().saturating_sub(1));
                return self.bounds.get(bound_idx).copied().unwrap_or(0.0);
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// The cheap recording interface every engine emits through.
///
/// All methods take `&self` so one sink can be shared across call
/// sites; implementations provide their own interior mutability.
/// Instrumentation sites must check [`TraceSink::enabled`] before doing
/// any work (clock reads, allocation) purely for tracing — that is the
/// contract that makes [`NullSink`] free.
pub trait TraceSink {
    /// Whether events will be kept. Sites skip instrumentation work
    /// entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records a complete span.
    fn span(&self, span: Span);

    /// Records an instant event.
    fn instant(&self, event: InstantEvent);

    /// Increments a monotonic counter.
    fn count(&self, name: &str, delta: u64);

    /// Records one timeline sample of a numeric series.
    fn sample(&self, track: Track, name: &str, t_s: f64, value: f64);

    /// Records a value into the named histogram (default bucket bounds
    /// unless the sink was configured otherwise).
    fn observe(&self, name: &str, value: f64);
}

/// The sink that keeps nothing. [`TraceSink::enabled`] returns `false`,
/// so instrumented code skips its tracing work entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn span(&self, _span: Span) {}
    fn instant(&self, _event: InstantEvent) {}
    fn count(&self, _name: &str, _delta: u64) {}
    fn sample(&self, _track: Track, _name: &str, _t_s: f64, _value: f64) {}
    fn observe(&self, _name: &str, _value: f64) {}
}

/// Everything a [`Recorder`] collected, ready for an exporter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Spans in emission order.
    pub spans: Vec<Span>,
    /// Instant events in emission order.
    pub instants: Vec<InstantEvent>,
    /// Counter samples in emission order.
    pub samples: Vec<CounterSample>,
    /// Monotonic counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms, by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl TraceData {
    /// Total busy seconds of spans on `track`.
    pub fn track_busy_s(&self, track: Track) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.track == track)
            .map(|s| s.dur_s)
            .sum()
    }

    /// Spans with the given name, in emission order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    data: TraceData,
}

/// The collecting sink: keeps every event in memory, hands out
/// [`TraceData`] snapshots for export.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<RecorderInner>,
}

impl Recorder {
    /// An empty recorder with default histogram bounds.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Pre-registers a histogram with explicit bucket bounds (otherwise
    /// the first [`TraceSink::observe`] creates it with
    /// [`Histogram::default_seconds`]).
    pub fn register_histogram(&self, name: &str, bounds: Vec<f64>) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .data
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_bounds(bounds));
    }

    /// A deep copy of everything recorded so far.
    pub fn snapshot(&self) -> TraceData {
        self.inner.lock().unwrap().data.clone()
    }

    /// Consumes the recorder, returning the collected data.
    pub fn into_data(self) -> TraceData {
        self.inner.into_inner().unwrap().data
    }
}

impl TraceSink for Recorder {
    fn span(&self, span: Span) {
        self.inner.lock().unwrap().data.spans.push(span);
    }

    fn instant(&self, event: InstantEvent) {
        self.inner.lock().unwrap().data.instants.push(event);
    }

    fn count(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.data.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.data.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn sample(&self, track: Track, name: &str, t_s: f64, value: f64) {
        self.inner.lock().unwrap().data.samples.push(CounterSample {
            name: name.to_string(),
            track,
            t_s,
            value,
        });
    }

    fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .data
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::default_seconds)
            .record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        // All calls are no-ops (and must not panic).
        NullSink.span(Span::new("x", tracks::CPU, 0.0, 1.0));
        NullSink.count("c", 3);
        NullSink.observe("h", 0.5);
    }

    #[test]
    fn recorder_collects_everything() {
        let rec = Recorder::new();
        assert!(rec.enabled());
        rec.span(Span::new("a", tracks::CPU, 0.0, 1.0).with_arg("cells", 7usize));
        rec.span(Span::new("b", tracks::GPU, 1.0, 2.0));
        rec.instant(InstantEvent::new("mark", tracks::TUNER, 0.5).with_arg("v", 1.5));
        rec.count("waves", 2);
        rec.count("waves", 3);
        rec.sample(tracks::LINK, "bytes", 0.1, 64.0);
        rec.observe("lat", 1e-6);
        rec.observe("lat", 1e-3);
        let data = rec.snapshot();
        assert_eq!(data.spans.len(), 2);
        assert_eq!(data.instants.len(), 1);
        assert_eq!(data.samples.len(), 1);
        assert_eq!(data.counters["waves"], 5);
        let h = &data.histograms["lat"];
        assert_eq!(h.count, 2);
        assert!((h.mean() - (1e-6 + 1e-3) / 2.0).abs() < 1e-12);
        assert!((data.track_busy_s(tracks::CPU) - 1.0).abs() < 1e-12);
        assert_eq!(data.spans_named("b").count(), 1);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1, 1]);
        assert_eq!(h.count, 5);
        // Boundary values land in the lower bucket (inclusive bound).
        let mut h2 = Histogram::with_bounds(vec![1.0]);
        h2.record(1.0);
        assert_eq!(h2.counts, vec![1, 0]);
    }

    #[test]
    fn exponential_bounds_cover_wide_range() {
        let h = Histogram::default_seconds();
        assert_eq!(h.bounds.len(), 18);
        assert!(h.bounds[0] == 1e-9);
        assert!(*h.bounds.last().unwrap() > 10.0);
    }

    #[test]
    fn explicit_histogram_bounds_are_respected() {
        let rec = Recorder::new();
        rec.register_histogram("w", vec![0.1, 0.2]);
        rec.observe("w", 0.15);
        let data = rec.snapshot();
        assert_eq!(data.histograms["w"].counts, vec![0, 1, 0]);
    }

    #[test]
    fn worker_tracks_are_distinct() {
        assert_ne!(tracks::worker(0), tracks::worker(1));
        assert_eq!(tracks::worker(0).pid, tracks::WORKERS_PID);
        assert_eq!(tracks::process_name(1), "CPU (model)");
    }
}
