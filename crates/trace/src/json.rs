//! Minimal JSON support: escape/format helpers for the exporters and a
//! small recursive-descent parser used by round-trip tests and the CI
//! trace checker. Not a general-purpose JSON library — just enough to
//! write and read back the traces this crate produces.

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("héllo"), "héllo");
    }

    #[test]
    fn num_handles_non_finite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn parse_round_trips_a_typical_trace_event() {
        let text = r#"{"name":"wave","ph":"X","ts":1.5,"dur":2e-3,"pid":1,"tid":1,
                       "args":{"cells":512,"ok":true,"note":"a\"b"}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("wave"));
        assert_eq!(v.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("dur").unwrap().as_f64(), Some(2e-3));
        let args = v.get("args").unwrap();
        assert_eq!(args.get("cells").unwrap().as_f64(), Some(512.0));
        assert_eq!(args.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(args.get("note").unwrap().as_str(), Some("a\"b"));
    }

    #[test]
    fn parse_arrays_nulls_and_negatives() {
        let v = parse("[1, -2.5, null, [], {}]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2], Json::Null);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_unicode_escape() {
        let v = parse(r#""A\u00e9 é""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé é"));
    }
}
