//! Flat JSON-lines metrics dump: one self-describing JSON object per
//! line, so benchmarks and CI can `diff`/`jq` structured run summaries
//! instead of parsing prose. Three record types:
//!
//! - `{"type":"counter","name":…,"value":…}` — monotonic counters;
//! - `{"type":"histogram","name":…,"count":…,"sum":…,"mean":…,
//!   "p50":…,"p95":…,"p99":…,"buckets":[{"le":…,"count":…},…]}` —
//!   fixed-bucket histograms with bucket-bound quantile summaries
//!   (the last bucket has `"le":null`, the overflow bucket);
//! - `{"type":"span_total","name":…,"pid":…,"count":…,"total_s":…}` —
//!   per-(track, name) span aggregates.

use crate::json::{escape, num};
use crate::TraceData;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serializes the aggregate view of a [`TraceData`] snapshot as JSONL.
/// Lines are sorted by (type, name) so two runs diff cleanly.
pub fn to_jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    for (name, value) in &data.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            escape(name),
            value
        );
    }
    for (name, h) in &data.histograms {
        let _ = write!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            escape(name),
            h.count,
            num(h.sum),
            num(h.mean()),
            num(h.quantile(0.50)),
            num(h.quantile(0.95)),
            num(h.quantile(0.99))
        );
        for (i, count) in h.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match h.bounds.get(i) {
                Some(b) => {
                    let _ = write!(out, "{{\"le\":{},\"count\":{}}}", num(*b), count);
                }
                None => {
                    let _ = write!(out, "{{\"le\":null,\"count\":{}}}", count);
                }
            }
        }
        out.push_str("]}\n");
    }
    // Span aggregates per (pid, name).
    let mut totals: BTreeMap<(u32, String), (u64, f64)> = BTreeMap::new();
    for s in &data.spans {
        let entry = totals
            .entry((s.track.pid, s.name.clone()))
            .or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += s.dur_s;
    }
    for ((pid, name), (count, total_s)) in &totals {
        let _ = writeln!(
            out,
            "{{\"type\":\"span_total\",\"name\":\"{}\",\"pid\":{},\"count\":{},\"total_s\":{}}}",
            escape(name),
            pid,
            count,
            num(*total_s)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use crate::{tracks, Recorder, Span, TraceSink};

    #[test]
    fn every_line_is_valid_json() {
        let rec = Recorder::new();
        rec.count("waves", 7);
        rec.count("cells", 4096);
        rec.observe("barrier_wait_s", 1e-6);
        rec.observe("barrier_wait_s", 5e-6);
        rec.span(Span::new("wave", tracks::CPU, 0.0, 1.0));
        rec.span(Span::new("wave", tracks::CPU, 1.0, 2.0));
        rec.span(Span::new("copy", tracks::LINK, 0.0, 0.25));
        let text = to_jsonl(&rec.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        // 2 counters + 1 histogram + 2 span totals.
        assert_eq!(lines.len(), 5);
        for line in &lines {
            json::parse(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        }
        // The histogram line aggregates both samples.
        let hist = lines
            .iter()
            .map(|l| json::parse(l).unwrap())
            .find(|v| v.get("type").and_then(Json::as_str) == Some("histogram"))
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(2.0));
        // Quantile summaries ride along: both samples fall in the
        // 1e-6 ≤ v ≤ 1.6e-5 region of the default bounds, so the
        // reported quantiles land on small bucket bounds.
        let p50 = hist.get("p50").unwrap().as_f64().unwrap();
        let p99 = hist.get("p99").unwrap().as_f64().unwrap();
        assert!(p50 > 0.0 && p50 <= p99, "p50={p50} p99={p99}");
        assert!(p99 <= 1e-4);
        let buckets = hist.get("buckets").unwrap().as_arr().unwrap();
        let total: f64 = buckets
            .iter()
            .map(|b| b.get("count").unwrap().as_f64().unwrap())
            .sum();
        assert_eq!(total, 2.0);
        assert_eq!(buckets.last().unwrap().get("le"), Some(&Json::Null));
        // Span totals aggregate per (pid, name).
        let wave_total = lines
            .iter()
            .map(|l| json::parse(l).unwrap())
            .find(|v| {
                v.get("type").and_then(Json::as_str) == Some("span_total")
                    && v.get("name").and_then(Json::as_str) == Some("wave")
            })
            .unwrap();
        assert_eq!(wave_total.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(wave_total.get("total_s").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn empty_data_is_empty_output() {
        assert_eq!(to_jsonl(&crate::TraceData::default()), "");
    }
}
