//! # lddp-parallel
//!
//! Real (wall-clock) multicore execution of LDDP wavefronts — the
//! substitute for the paper's OpenMP 3.0 CPU path. A
//! [`ParallelEngine`](engine::ParallelEngine) runs a few heavy worker
//! threads, each owning a contiguous chunk of every wave, with a barrier
//! between waves (§IV-A "thread per block" strategy). Used by the
//! Criterion benchmarks and the examples for genuine speedup numbers,
//! complementing the deterministic virtual-time engine in `hetero-sim`.

#![warn(missing_docs)]

pub mod cache_oblivious;
pub mod engine;
pub mod pool;

pub use cache_oblivious::CacheObliviousEngine;
pub use engine::{ParallelEngine, RollingSolve, StreamHook};
pub use pool::{chunk_aligned, PoolError, SenseBarrier, WorkerPool};
