//! A persistent worker pool for the wall-clock engine.
//!
//! [`ParallelEngine`](crate::ParallelEngine) used to re-spawn a
//! `thread::scope` of workers and a fresh [`std::sync::Barrier`] on
//! every solve. That cost is invisible on one big table but multiplies
//! across a §V-A tuner sweep (one solve per candidate point) and across
//! every batched request the serving path executes. [`WorkerPool`]
//! keeps the threads alive instead: created once, a pool dispatches an
//! arbitrary number of jobs to its workers, each job synchronizing its
//! waves on a reusable [`SenseBarrier`] rather than a freshly allocated
//! one.
//!
//! Dispatch protocol: [`WorkerPool::run`] publishes a job (a
//! `Fn(worker_index)` closure) under a generation counter, wakes all
//! workers, and blocks until every worker — active or not — has
//! acknowledged the generation. Because `run` does not return until the
//! last worker is done with the closure, the closure's borrows stay
//! live for exactly as long as the workers can touch them, which is
//! what makes the internal lifetime erasure sound.

use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why a pooled run did not complete cleanly.
///
/// The two cases demand different reactions, which is exactly why they
/// are separate: a [`PoolError::JobPanicked`] poisons only *that job* —
/// the barrier re-arms and the next [`WorkerPool::try_run`] proceeds
/// normally — while [`PoolError::PoolUnusable`] means worker threads
/// are gone and the pool refuses further jobs until
/// [`WorkerPool::heal`] respawns them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The job closure panicked on at least one worker. The panic was
    /// contained: all workers unwound to the dispatch loop and the pool
    /// remains usable.
    JobPanicked,
    /// `dead` worker threads have terminated (e.g. a panic payload
    /// whose `Drop` itself panicked escaped the per-job isolation).
    /// The pool cannot run barrier jobs until healed.
    PoolUnusable {
        /// Number of dead worker threads.
        dead: usize,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::JobPanicked => {
                write!(
                    f,
                    "a worker panicked while running the job; the pool re-armed"
                )
            }
            PoolError::PoolUnusable { dead } => {
                write!(f, "{dead} pool worker(s) died; heal() must respawn them")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// The contiguous sub-range of `0..len` owned by worker `t` of `n`,
/// with every *interior* boundary rounded down to a multiple of
/// `align`. With `align = 1` this is the plain balanced split (chunks
/// differ by at most one element); with the SIMD tier's lane width it
/// keeps each worker's slice of a wave starting on a lane boundary, so
/// at most one partial vector per (worker, wave) is peeled instead of
/// one per chunk seam. The first boundary stays 0 and the last stays
/// `len`, so the chunks always tile `0..len` exactly; when `len` is
/// small relative to `n * align`, leading chunks may round to empty.
pub fn chunk_aligned(t: usize, n: usize, len: usize, align: usize) -> Range<usize> {
    let align = align.max(1);
    let bound = |t: usize| -> usize {
        if t >= n {
            return len;
        }
        let base = len / n;
        let extra = len % n;
        let ideal = t * base + t.min(extra);
        ideal / align * align
    };
    bound(t)..bound(t + 1)
}

/// A reusable sense-reversing spin barrier.
///
/// The classic centralized barrier: arrivals count up on a shared
/// counter, the last arrival resets the counter and flips the global
/// *sense* (an epoch counter here), and everyone else spins on the
/// sense. Reversing the sense each round is what lets the same barrier
/// object be reused wave after wave with no re-initialization — the
/// property the pool needs. Spinning (with a `yield_now` fallback) fits
/// the engine's workload: inter-wave gaps are short, and the heavy
/// threads have nothing better to do than wait.
pub struct SenseBarrier {
    count: AtomicUsize,
    parties: AtomicUsize,
    epoch: AtomicUsize,
    poisoned: AtomicBool,
}

impl SenseBarrier {
    fn new() -> SenseBarrier {
        SenseBarrier {
            count: AtomicUsize::new(0),
            parties: AtomicUsize::new(1),
            epoch: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Re-arms the barrier for `parties` participants. Only sound while
    /// no thread is inside [`SenseBarrier::wait`] — the pool calls it
    /// between jobs, under the run lock.
    fn reset(&self, parties: usize) {
        self.parties.store(parties.max(1), Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        self.poisoned.store(false, Ordering::Relaxed);
    }

    /// Marks the barrier unusable; spinning waiters panic out instead
    /// of spinning forever on a participant that will never arrive.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Blocks until all participants of the current round have arrived.
    ///
    /// # Panics
    /// Panics if another participant poisoned the barrier (it panicked
    /// mid-job and can never arrive).
    pub fn wait(&self) {
        let epoch = self.epoch.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties.load(Ordering::Relaxed) {
            // Last arrival: reset the counter *before* releasing the
            // epoch, so waiters released by the epoch see a clean count.
            self.count.store(0, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.epoch.load(Ordering::Acquire) == epoch {
                if self.poisoned.load(Ordering::Acquire) {
                    panic!("barrier poisoned: a pool worker panicked mid-job");
                }
                spins = spins.saturating_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Lifetime-erased job pointer. Sound because [`WorkerPool::run`]
/// blocks until every worker has acknowledged the job before the
/// borrow it erases can expire.
#[derive(Clone, Copy)]
struct JobCell(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many workers are
// fine) and the pointer only crosses threads inside the run/ack
// protocol that keeps the underlying borrow alive.
unsafe impl Send for JobCell {}

struct PoolState {
    generation: u64,
    active: usize,
    job: Option<JobCell>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    job_cv: Condvar,
    done: Mutex<usize>,
    done_cv: Condvar,
    barrier: SenseBarrier,
    panicked: AtomicBool,
    /// Worker threads that terminated instead of returning to the
    /// dispatch loop. Non-zero means the pool is unusable until healed.
    dead: AtomicUsize,
    /// Indices of the dead workers, for [`WorkerPool::heal`] to respawn.
    dead_list: Mutex<Vec<usize>>,
    threads: usize,
}

/// Runs when a worker thread *terminates* by unwinding (a panic escaped
/// the per-job isolation, e.g. out of a panic payload's own `Drop`).
/// Records the death and wakes the dispatcher so `try_run` reports
/// [`PoolError::PoolUnusable`] instead of hanging on a done-count that
/// can never be reached.
struct DeathSentinel {
    shared: Arc<PoolShared>,
    t: usize,
    armed: bool,
}

impl Drop for DeathSentinel {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.shared.barrier.poison();
        self.shared.panicked.store(true, Ordering::Release);
        self.shared
            .dead_list
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(self.t);
        self.shared.dead.fetch_add(1, Ordering::AcqRel);
        let _done = self.shared.done.lock().unwrap_or_else(|e| e.into_inner());
        self.shared.done_cv.notify_all();
    }
}

fn spawn_worker(shared: &Arc<PoolShared>, t: usize, start_gen: u64) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("lddp-pool-{t}"))
        .spawn(move || {
            let mut sentinel = DeathSentinel {
                shared: Arc::clone(&shared),
                t,
                armed: true,
            };
            shared.worker_loop(t, start_gen);
            sentinel.armed = false; // clean shutdown exit
        })
        .expect("spawning pool worker")
}

impl PoolShared {
    fn worker_loop(&self, t: usize, start_gen: u64) {
        let mut last_gen = start_gen;
        loop {
            let (job, active) = {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.generation != last_gen {
                        last_gen = st.generation;
                        break (st.job, st.active);
                    }
                    st = self.job_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            if t < active {
                if let Some(JobCell(ptr)) = job {
                    // SAFETY: `run` keeps the closure borrow alive until
                    // this worker (and all others) signals done below.
                    let f = unsafe { &*ptr };
                    if catch_unwind(AssertUnwindSafe(|| f(t))).is_err() {
                        self.panicked.store(true, Ordering::Release);
                        self.barrier.poison();
                    }
                }
            }
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            *done += 1;
            if *done + self.dead.load(Ordering::Acquire) >= self.threads {
                self.done_cv.notify_all();
            }
        }
    }
}

/// A fixed-size pool of long-lived worker threads with a reusable
/// inter-wave [`SenseBarrier`]. See the module docs for the protocol.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Serializes concurrent `run` callers: the pool executes one job
    /// at a time (the job itself is what's parallel).
    run_lock: Mutex<()>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (min 1), named `lddp-pool-<t>`.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                active: 0,
                job: None,
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            barrier: SenseBarrier::new(),
            panicked: AtomicBool::new(false),
            dead: AtomicUsize::new(0),
            dead_list: Mutex::new(Vec::new()),
            threads,
        });
        let handles = (0..threads).map(|t| spawn_worker(&shared, t, 0)).collect();
        WorkerPool {
            shared,
            run_lock: Mutex::new(()),
            handles: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// The pool's inter-wave barrier, re-armed for each job's active
    /// worker count. Only the active workers of the current job may
    /// wait on it.
    pub fn barrier(&self) -> &SenseBarrier {
        &self.shared.barrier
    }

    /// Runs `job(t)` on workers `t` in `0..active` (clamped to the pool
    /// size) and blocks until all of them finish. Jobs from concurrent
    /// callers are serialized. Must not be called from inside a pool
    /// job (it would deadlock on the run lock).
    ///
    /// # Panics
    /// Panics if any worker panicked inside `job` (after all workers
    /// have unwound — the pool itself stays usable) or if the pool has
    /// dead workers. Use [`WorkerPool::try_run`] for the non-panicking
    /// form.
    pub fn run(&self, active: usize, job: &(dyn Fn(usize) + Sync)) {
        match self.try_run(active, job) {
            Ok(()) => {}
            Err(PoolError::JobPanicked) => panic!("worker panicked during a pooled run"),
            Err(e @ PoolError::PoolUnusable { .. }) => panic!("{e}"),
        }
    }

    /// Like [`WorkerPool::run`] but reports failure as a value: a
    /// panicking job yields [`PoolError::JobPanicked`] (and the pool
    /// stays usable), dead worker threads yield
    /// [`PoolError::PoolUnusable`] (and the pool refuses jobs until
    /// [`WorkerPool::heal`] respawns them).
    pub fn try_run(&self, active: usize, job: &(dyn Fn(usize) + Sync)) -> Result<(), PoolError> {
        let active = active.clamp(1, self.shared.threads);
        let _serialized = self.run_lock.lock().unwrap_or_else(|e| e.into_inner());
        let dead = self.shared.dead.load(Ordering::Acquire);
        if dead > 0 {
            // A missing participant would leave live workers spinning
            // on the barrier forever; refuse up front.
            return Err(PoolError::PoolUnusable { dead });
        }
        self.shared.barrier.reset(active);
        self.shared.panicked.store(false, Ordering::Relaxed);
        // SAFETY(lifetime erasure): the raw pointer outlives its use —
        // we block below until every worker acknowledged the job.
        let raw: *const (dyn Fn(usize) + Sync) = job;
        let raw: JobCell = JobCell(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(raw)
        });
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.generation += 1;
            st.active = active;
            st.job = Some(raw);
            self.shared.job_cv.notify_all();
        }
        {
            let mut done = self.shared.done.lock().unwrap_or_else(|e| e.into_inner());
            // Dead workers can never acknowledge; their sentinel bumps
            // `dead` and wakes us so the sum still completes.
            while *done + self.shared.dead.load(Ordering::Acquire) < self.shared.threads {
                done = self
                    .shared
                    .done_cv
                    .wait(done)
                    .unwrap_or_else(|e| e.into_inner());
            }
            *done = 0;
        }
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .job = None;
        let dead = self.shared.dead.load(Ordering::Acquire);
        if dead > 0 {
            Err(PoolError::PoolUnusable { dead })
        } else if self.shared.panicked.load(Ordering::Acquire) {
            Err(PoolError::JobPanicked)
        } else {
            Ok(())
        }
    }

    /// Number of worker threads that have terminated and not yet been
    /// respawned.
    pub fn dead_workers(&self) -> usize {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// Respawns any dead worker threads, restoring the pool after
    /// [`PoolError::PoolUnusable`]. Returns how many workers were
    /// respawned (0 on a healthy pool). Safe to call at any time; jobs
    /// are excluded while healing runs.
    pub fn heal(&self) -> usize {
        let _serialized = self.run_lock.lock().unwrap_or_else(|e| e.into_inner());
        let dead: Vec<usize> = {
            let mut list = self
                .shared
                .dead_list
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            list.drain(..).collect()
        };
        if dead.is_empty() {
            return 0;
        }
        // New workers must ignore the generation that was current when
        // they died, or they would try to run a job that is long gone.
        let gen = self
            .shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .generation;
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        for &t in &dead {
            let old = std::mem::replace(&mut handles[t], spawn_worker(&self.shared, t, gen));
            let _ = old.join();
        }
        self.shared.dead.fetch_sub(dead.len(), Ordering::AcqRel);
        dead.len()
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.shared.threads)
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn aligned_chunks_tile_and_respect_lane_boundaries() {
        for n in 1..7 {
            for len in [0usize, 1, 5, 8, 24, 100, 1023] {
                for align in [1usize, 4, 8] {
                    let mut next = 0;
                    for t in 0..n {
                        let c = chunk_aligned(t, n, len, align);
                        assert_eq!(c.start, next, "n={n} len={len} align={align} t={t}");
                        assert!(
                            t + 1 == n || c.end.is_multiple_of(align),
                            "interior boundary must be lane-aligned"
                        );
                        next = c.end;
                    }
                    assert_eq!(next, len, "chunks must tile 0..len");
                }
            }
        }
        // align = 0 clamps to 1 and behaves like the unaligned split.
        assert_eq!(chunk_aligned(0, 2, 5, 0), 0..3);
        assert_eq!(chunk_aligned(1, 2, 5, 0), 3..5);
    }

    #[test]
    fn runs_exactly_the_active_workers() {
        let pool = WorkerPool::new(4);
        let hits = AtomicUsize::new(0);
        let mask = AtomicUsize::new(0);
        pool.run(3, &|t| {
            hits.fetch_add(1, Ordering::SeqCst);
            mask.fetch_or(1 << t, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        assert_eq!(mask.load(Ordering::SeqCst), 0b111);
    }

    #[test]
    fn active_count_is_clamped_to_pool_size() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.run(64, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        pool.run(0, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3, "active clamps up to 1");
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(3, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 300);
    }

    #[test]
    fn barrier_orders_phases_within_a_job() {
        // Each worker adds its contribution to phase A, crosses the
        // barrier, then reads the full phase-A sum — a data flow that is
        // only correct if the barrier really separates the phases.
        let pool = WorkerPool::new(4);
        let phase_a = AtomicU64::new(0);
        let seen: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        for round in 0..50u64 {
            phase_a.store(0, Ordering::SeqCst);
            pool.run(4, &|t| {
                phase_a.fetch_add(1 + t as u64, Ordering::SeqCst);
                pool.barrier().wait();
                seen[t].store(phase_a.load(Ordering::SeqCst), Ordering::SeqCst);
            });
            for s in &seen {
                assert_eq!(s.load(Ordering::SeqCst), 1 + 2 + 3 + 4, "round {round}");
            }
        }
    }

    #[test]
    fn barrier_reuse_across_waves() {
        let pool = WorkerPool::new(3);
        let counter = AtomicU64::new(0);
        let violations = AtomicUsize::new(0);
        pool.run(3, &|_| {
            for wave in 0..200u64 {
                counter.fetch_add(1, Ordering::SeqCst);
                pool.barrier().wait();
                // Between barriers, every worker must observe the same
                // completed wave count.
                if counter.load(Ordering::SeqCst) < 3 * (wave + 1) {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
                pool.barrier().wait();
            }
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
        assert_eq!(counter.load(Ordering::SeqCst), 600);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, &|t| {
                if t == 1 {
                    panic!("boom");
                }
                // The other workers head for the barrier and must be
                // released by poisoning rather than spinning forever.
                pool.barrier().wait();
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the caller");
        // The pool re-arms and keeps working.
        let ok = AtomicUsize::new(0);
        pool.run(3, &|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn try_run_reports_job_panic_without_panicking_and_pool_reuses() {
        let pool = WorkerPool::new(3);
        let r = pool.try_run(3, &|t| {
            if t == 2 {
                panic!("injected");
            }
            pool.barrier().wait();
        });
        assert_eq!(r, Err(PoolError::JobPanicked));
        assert_eq!(pool.dead_workers(), 0);
        // A second solve on the same pool must succeed (satellite
        // regression: panicking kernel fails the request, not the pool).
        let ok = AtomicUsize::new(0);
        assert_eq!(
            pool.try_run(3, &|_| {
                ok.fetch_add(1, Ordering::SeqCst);
            }),
            Ok(())
        );
        assert_eq!(ok.load(Ordering::SeqCst), 3);
    }

    /// A panic payload whose own `Drop` panics escapes the per-job
    /// `catch_unwind` and terminates the worker thread — the one way a
    /// pool worker can actually die.
    struct DropBomb;

    impl Drop for DropBomb {
        fn drop(&mut self) {
            panic!("payload bomb");
        }
    }

    #[test]
    fn dead_worker_is_detected_and_heal_respawns_it() {
        let pool = WorkerPool::new(3);
        let r = pool.try_run(3, &|t| {
            if t == 1 {
                std::panic::panic_any(DropBomb);
            }
            pool.barrier().wait();
        });
        assert_eq!(r, Err(PoolError::PoolUnusable { dead: 1 }));
        assert_eq!(pool.dead_workers(), 1);
        // Unusable pools refuse further jobs rather than hanging.
        assert_eq!(
            pool.try_run(3, &|_| {}),
            Err(PoolError::PoolUnusable { dead: 1 })
        );
        assert_eq!(pool.heal(), 1);
        assert_eq!(pool.dead_workers(), 0);
        let ok = AtomicUsize::new(0);
        assert_eq!(
            pool.try_run(3, &|_| {
                ok.fetch_add(1, Ordering::SeqCst);
                pool.barrier().wait();
            }),
            Ok(())
        );
        assert_eq!(ok.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn heal_on_a_healthy_pool_is_a_noop() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.heal(), 0);
        pool.run(2, &|_| {});
        assert_eq!(pool.heal(), 0);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        pool.run(4, &|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn debug_and_threads_accessors() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(format!("{pool:?}").contains("threads"));
    }
}
