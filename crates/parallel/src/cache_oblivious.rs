//! Cache-oblivious LDDP evaluation, after Chowdhury & Ramachandran's
//! cache-efficient multicore DP (the paper's reference [8]) — the
//! strongest *CPU-side* generic baseline in the related work.
//!
//! The table is split into quadrants and evaluated recursively in the
//! order `Q11 → (Q12 ∥ Q21) → Q22`. The decomposition is legal exactly
//! for contributing sets `⊆ {W, NW, N}` (the string-comparison class the
//! cited works [6, 8] target): an `NE` dependency makes the bottom-left
//! quadrant's right edge read into the bottom-right quadrant, so
//! NE-reading sets (knight-move and the NE horizontal cases) must use
//! the wavefront engine instead — [`solve`](CacheObliviousEngine::solve)
//! rejects them. `Q12` and `Q21` are always independent within this
//! class and run in parallel (fork–join), giving the classic
//! cache-oblivious `Θ(n²/B)` miss bound without knowing the cache
//! size.

use lddp_core::cell::RepCell;
use lddp_core::grid::{Grid, LayoutKind};
use lddp_core::kernel::{Kernel, Neighbors};
use lddp_core::wavefront::Dims;
use lddp_core::{Error, Result};
use std::thread::Scope;

/// Base-case tile side: small enough to fit L1 comfortably, large
/// enough to amortize recursion overhead.
const BASE_TILE: usize = 64;

/// Shared-table handle for the fork–join recursion (same aliasing
/// discipline as the wavefront engine: concurrent writes always target
/// disjoint rectangles).
struct SharedCells<T> {
    ptr: *mut T,
    cols: usize,
    len: usize,
}

// SAFETY: concurrent `fill_rect` calls operate on disjoint rectangles
// (guaranteed by the recursion structure), and reads target rectangles
// completed before the fork (the recursion's sequential prefix).
unsafe impl<T: Send> Sync for SharedCells<T> {}

impl<T: Copy> SharedCells<T> {
    #[inline]
    unsafe fn read(&self, i: usize, j: usize) -> T {
        debug_assert!(i * self.cols + j < self.len);
        unsafe { *self.ptr.add(i * self.cols + j) }
    }

    #[inline]
    unsafe fn write(&self, i: usize, j: usize, v: T) {
        debug_assert!(i * self.cols + j < self.len);
        unsafe { *self.ptr.add(i * self.cols + j) = v };
    }
}

/// A rectangle of the table: rows `r0..r1`, cols `c0..c1`.
#[derive(Debug, Clone, Copy)]
struct Rect {
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
}

impl Rect {
    fn rows(&self) -> usize {
        self.r1 - self.r0
    }

    fn cols(&self) -> usize {
        self.c1 - self.c0
    }

    fn is_empty(&self) -> bool {
        self.r0 >= self.r1 || self.c0 >= self.c1
    }
}

/// Cache-oblivious solver configuration.
#[derive(Debug, Clone)]
pub struct CacheObliviousEngine {
    /// Fork Q12 ∥ Q21 when the contributing set permits it and both
    /// halves are big enough.
    pub parallel: bool,
    /// Minimum rectangle area worth forking for.
    pub fork_threshold: usize,
}

impl Default for CacheObliviousEngine {
    fn default() -> Self {
        CacheObliviousEngine {
            parallel: true,
            fork_threshold: 64 * 64,
        }
    }
}

impl CacheObliviousEngine {
    /// Sequential-only configuration.
    pub fn sequential() -> Self {
        CacheObliviousEngine {
            parallel: false,
            fork_threshold: usize::MAX,
        }
    }

    /// Solves the kernel with the recursive quadrant order, returning a
    /// row-major grid.
    pub fn solve<K: Kernel>(&self, kernel: &K) -> Result<Grid<K::Cell>> {
        let set = kernel.contributing_set();
        if set.is_empty() {
            return Err(Error::EmptyContributingSet);
        }
        if set.contains(RepCell::Ne) {
            return Err(Error::InvalidSchedule {
                pattern: lddp_core::pattern::classify(set).expect("non-empty"),
                reason: "cache-oblivious quadrant order requires a set ⊆ {W, NW, N}; \
                         NE dependencies cross quadrants cyclically — use the \
                         wavefront engine"
                    .into(),
            });
        }
        let dims = kernel.dims();
        let mut grid: Grid<K::Cell> = Grid::new(LayoutKind::RowMajor, dims);
        if dims.is_empty() {
            return Ok(grid);
        }
        let cols = dims.cols;
        let len = dims.len();
        let cells = SharedCells {
            ptr: grid.as_mut_slice().as_mut_ptr(),
            cols,
            len,
        };
        // Within the {W, NW, N} class Q12 and Q21 never read each other.
        let can_fork = self.parallel;
        let rect = Rect {
            r0: 0,
            r1: dims.rows,
            c0: 0,
            c1: dims.cols,
        };
        if can_fork {
            std::thread::scope(|s| {
                self.recurse_parallel(kernel, &cells, dims, rect, s);
            });
        } else {
            self.recurse_seq(kernel, &cells, dims, rect);
        }
        Ok(grid)
    }

    fn recurse_seq<K: Kernel>(
        &self,
        kernel: &K,
        cells: &SharedCells<K::Cell>,
        dims: Dims,
        r: Rect,
    ) {
        if r.is_empty() {
            return;
        }
        if r.rows() <= BASE_TILE && r.cols() <= BASE_TILE {
            fill_rect(kernel, cells, dims, r);
            return;
        }
        let (q11, q12, q21, q22) = split(r);
        self.recurse_seq(kernel, cells, dims, q11);
        self.recurse_seq(kernel, cells, dims, q12);
        self.recurse_seq(kernel, cells, dims, q21);
        self.recurse_seq(kernel, cells, dims, q22);
    }

    fn recurse_parallel<'scope, 'env, K: Kernel>(
        &'scope self,
        kernel: &'scope K,
        cells: &'scope SharedCells<K::Cell>,
        dims: Dims,
        r: Rect,
        scope: &'scope Scope<'scope, 'env>,
    ) {
        if r.is_empty() {
            return;
        }
        if r.rows() <= BASE_TILE && r.cols() <= BASE_TILE {
            fill_rect(kernel, cells, dims, r);
            return;
        }
        let (q11, q12, q21, q22) = split(r);
        self.recurse_parallel(kernel, cells, dims, q11, scope);
        if q12.rows() * q12.cols() >= self.fork_threshold
            && q21.rows() * q21.cols() >= self.fork_threshold
        {
            // Fork Q12; run Q21 on this thread; join before Q22.
            let q12_handle =
                scope.spawn(move || self.recurse_parallel(kernel, cells, dims, q12, scope));
            self.recurse_parallel(kernel, cells, dims, q21, scope);
            q12_handle.join().expect("worker panicked");
        } else {
            self.recurse_parallel(kernel, cells, dims, q12, scope);
            self.recurse_parallel(kernel, cells, dims, q21, scope);
        }
        self.recurse_parallel(kernel, cells, dims, q22, scope);
    }
}

/// Splits a rectangle into its four quadrants.
fn split(r: Rect) -> (Rect, Rect, Rect, Rect) {
    let rm = r.r0 + r.rows() / 2;
    let cm = r.c0 + r.cols() / 2;
    (
        Rect {
            r0: r.r0,
            r1: rm,
            c0: r.c0,
            c1: cm,
        },
        Rect {
            r0: r.r0,
            r1: rm,
            c0: cm,
            c1: r.c1,
        },
        Rect {
            r0: rm,
            r1: r.r1,
            c0: r.c0,
            c1: cm,
        },
        Rect {
            r0: rm,
            r1: r.r1,
            c0: cm,
            c1: r.c1,
        },
    )
}

/// Base case: row-major fill of one rectangle (all dependencies outside
/// it are already computed by the recursion order).
fn fill_rect<K: Kernel>(kernel: &K, cells: &SharedCells<K::Cell>, dims: Dims, r: Rect) {
    let set = kernel.contributing_set();
    for i in r.r0..r.r1 {
        for j in r.c0..r.c1 {
            let mut nbrs = Neighbors::empty();
            for dep in set.iter() {
                if let Some((si, sj)) = dep.source(i, j, dims.rows, dims.cols) {
                    // SAFETY: (si, sj) precedes (i, j) in the recursion
                    // order (row above, or same row strictly left), so
                    // its rectangle is complete.
                    let v = unsafe { cells.read(si, sj) };
                    nbrs.set(dep, v);
                }
            }
            let v = kernel.compute(i, j, &nbrs);
            // SAFETY: (i, j) is inside this call's exclusive rectangle.
            unsafe { cells.write(i, j, v) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::cell::ContributingSet;
    use lddp_core::kernel::ClosureKernel;
    use lddp_core::seq::solve_row_major;

    fn mix_kernel(
        dims: Dims,
        set: ContributingSet,
    ) -> ClosureKernel<u64, impl Fn(usize, usize, &Neighbors<u64>) -> u64 + Sync> {
        ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
            let mut acc = ((i * 131 + j * 31) as u64) | 1;
            for c in RepCell::ALL {
                if let Some(v) = n.get(c) {
                    acc = acc.wrapping_mul(0x100000001b3).wrapping_add(*v);
                }
            }
            acc
        })
    }

    #[test]
    fn quadrant_order_matches_oracle_for_all_supported_sets() {
        for set in ContributingSet::table_one_rows() {
            if set.contains(RepCell::Ne) {
                continue;
            }
            for (r, c) in [(1, 1), (3, 130), (130, 3), (97, 101), (128, 128)] {
                let dims = Dims::new(r, c);
                let kernel = mix_kernel(dims, set);
                let oracle = solve_row_major(&kernel).unwrap().to_row_major();
                let seq = CacheObliviousEngine::sequential().solve(&kernel).unwrap();
                assert_eq!(seq.to_row_major(), oracle, "seq {set} {r}x{c}");
                let par = CacheObliviousEngine::default().solve(&kernel).unwrap();
                assert_eq!(par.to_row_major(), oracle, "par {set} {r}x{c}");
            }
        }
    }

    #[test]
    fn ne_sets_are_rejected() {
        // An NE dependency makes the quadrant order cyclic (Q21's right
        // edge reads Q22); the engine must refuse rather than compute
        // garbage.
        for set in ContributingSet::table_one_rows() {
            if !set.contains(RepCell::Ne) {
                continue;
            }
            let kernel = mix_kernel(Dims::new(32, 32), set);
            assert!(
                CacheObliviousEngine::default().solve(&kernel).is_err(),
                "{set} must be rejected"
            );
        }
    }

    #[test]
    fn empty_set_rejected_and_empty_table_ok() {
        let kernel = mix_kernel(Dims::new(4, 4), ContributingSet::EMPTY);
        assert!(CacheObliviousEngine::default().solve(&kernel).is_err());
        let kernel = mix_kernel(
            Dims::new(0, 9),
            ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
        );
        let grid = CacheObliviousEngine::default().solve(&kernel).unwrap();
        assert_eq!(grid.as_slice().len(), 0);
    }

    #[test]
    fn deterministic_across_configs() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let dims = Dims::new(257, 129);
        let kernel = mix_kernel(dims, set);
        let a = CacheObliviousEngine::sequential().solve(&kernel).unwrap();
        let b = CacheObliviousEngine::default().solve(&kernel).unwrap();
        let c = CacheObliviousEngine {
            parallel: true,
            fork_threshold: 16,
        }
        .solve(&kernel)
        .unwrap();
        assert_eq!(a.to_row_major(), b.to_row_major());
        assert_eq!(a.to_row_major(), c.to_row_major());
    }

    #[test]
    fn splits_cover_without_overlap() {
        let r = Rect {
            r0: 3,
            r1: 11,
            c0: 2,
            c1: 9,
        };
        let (q11, q12, q21, q22) = split(r);
        let area = |x: &Rect| x.rows() * x.cols();
        assert_eq!(area(&q11) + area(&q12) + area(&q21) + area(&q22), area(&r));
        assert_eq!(q11.r1, q21.r0);
        assert_eq!(q11.c1, q12.c0);
        assert_eq!(q22.r0, q12.r1);
        assert_eq!(q22.c0, q21.c1);
    }
}
