//! Real wavefront execution on host threads.
//!
//! This is the substitute for the paper's OpenMP 3.0 CPU path (§II-A,
//! §IV-A): a few heavy-weight worker threads, each responsible for a
//! contiguous chunk of every wave, synchronized by a barrier between
//! waves. Unlike `hetero-sim` this engine runs on the wall clock — it is
//! what the Criterion benchmarks measure.
//!
//! Two perf-critical design points live here:
//!
//! * **Persistent workers.** The engine owns a lazily created
//!   [`WorkerPool`] (long-lived threads plus a reusable sense-reversing
//!   barrier) instead of re-spawning a `thread::scope` per solve. The
//!   pool is created on first use and shared by every subsequent solve,
//!   every [`tune_worker_count`](ParallelEngine::tune_worker_count)
//!   candidate, and — through `Clone`, which shares the pool — every
//!   batch the serving path executes.
//! * **Bulk interior runs.** When the kernel exposes a
//!   [`WaveKernel`] and the executed pattern equals the set's raw
//!   classification, each worker splits its chunk of a wave into the
//!   *interior* runs precomputed by [`Layout::interior_runs`] and the
//!   border remainder. Interior cells have every dependency in bounds,
//!   so whole runs are handed to [`WaveKernel::compute_run`] as plain
//!   slices — no per-cell `Option` checks, no bounds branches, and a
//!   shape LLVM can autovectorize. Border cells still go through the
//!   scalar [`Kernel::compute`] path, and kernels without a `WaveKernel`
//!   are entirely unaffected.
//! * **SIMD interior runs.** Kernels that additionally expose a
//!   [`SimdWaveKernel`] get their interior runs routed through
//!   [`SimdWaveKernel::compute_run_simd`] whenever the host has a
//!   vector backend ([`simd_available`]), with worker chunk boundaries
//!   rounded down to lane multiples so at most one partial vector per
//!   (worker, wave) is peeled. The resolved [`ExecTier`] is recorded on
//!   every traced wave span; `LDDP_FORCE_TIER=scalar|bulk|simd` (read
//!   once per process) or [`ParallelEngine::with_tier`] pin the tier
//!   for debugging and ablations, downgrading gracefully when the
//!   pinned tier is unavailable for a kernel.
//!
//! [`ParallelEngine::solve_traced`] runs the same algorithm with
//! wall-clock instrumentation: one span per non-empty (worker, wave)
//! chunk, per-worker busy time, and a histogram of time spent waiting at
//! the inter-wave barrier — the otherwise invisible synchronization cost
//! of the heavy-thread design. With a disabled sink it falls through to
//! the untraced path, so `NullSink` costs nothing.
//!
//! # Safety architecture
//!
//! Workers share one backing array. Within a wave each worker writes a
//! *disjoint* chunk of that wave's contiguous range (wave-major layout),
//! and reads only cells from strictly earlier waves — guaranteed by the
//! pattern-compatibility check (`schedule::compatible`) and re-asserted
//! in debug builds. The pool's [`SenseBarrier`](crate::SenseBarrier)
//! separates waves, carrying the release/acquire edges that make
//! earlier-wave writes visible. Bulk runs obey the same discipline in
//! slice form: the output slice lies in the current wave's
//! worker-exclusive range, and every dependency slice lies in a sealed
//! earlier wave (asserted in debug builds via the layout's contiguity
//! property). The few `unsafe` blocks below encapsulate exactly this
//! discipline.

use crate::pool::{chunk_aligned, PoolError, WorkerPool};
use lddp_chaos::FaultInjector;
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::{Grid, Layout, LayoutKind};
use lddp_core::kernel::{simd_available, ExecTier, Kernel, Neighbors, SimdWaveKernel, WaveKernel};
use lddp_core::pattern::{classify, Pattern};
use lddp_core::rolling;
use lddp_core::schedule::compatible;
use lddp_core::tuner::{pick_tier, SweepPoint, TierPoint};
use lddp_core::wavefront::{self, Dims};
use lddp_core::{DegradeStep, Error, Result};
use lddp_trace::live::LiveRegistry;
use lddp_trace::{tracks, NullSink, Span, TraceSink};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Shared mutable cell store with externally enforced aliasing
/// discipline (see module docs).
struct SharedCells<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: all concurrent access goes through `read`/`write`/`slice`/
// `slice_mut` under the wave/barrier discipline documented on the
// module: writes within a wave target pairwise-disjoint indices, reads
// target indices finalized before the last barrier.
unsafe impl<T: Send> Sync for SharedCells<T> {}

impl<T: Copy> SharedCells<T> {
    fn new(slice: &mut [T]) -> Self {
        SharedCells {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Reads a cell finalized in an earlier wave.
    ///
    /// # Safety
    /// `idx < len` and no thread may be writing `idx` concurrently (it
    /// belongs to a wave sealed by a barrier).
    #[inline]
    unsafe fn read(&self, idx: usize) -> T {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) }
    }

    /// Writes a cell of the current wave.
    ///
    /// # Safety
    /// `idx < len` and `idx` is inside the calling worker's exclusive
    /// chunk of the current wave.
    #[inline]
    unsafe fn write(&self, idx: usize, v: T) {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) = v };
    }

    /// Borrows `base..base + len` as a slice of sealed cells.
    ///
    /// # Safety
    /// The range is in bounds and every cell in it belongs to a wave
    /// sealed by an earlier barrier (no concurrent writer).
    #[inline]
    unsafe fn slice(&self, base: usize, len: usize) -> &[T] {
        debug_assert!(base + len <= self.len);
        unsafe { std::slice::from_raw_parts(self.ptr.add(base), len) }
    }

    /// Borrows `base..base + len` mutably as the calling worker's
    /// exclusive output run of the current wave.
    ///
    /// # Safety
    /// The range is in bounds, lies entirely inside this worker's chunk
    /// of the current wave, and does not overlap any slice handed out
    /// for sealed waves (current-wave and earlier-wave ranges are
    /// disjoint in a coalesced layout).
    #[inline]
    #[allow(clippy::mut_from_ref)] // the aliasing discipline is the caller contract
    unsafe fn slice_mut(&self, base: usize, len: usize) -> &mut [T] {
        debug_assert!(base + len <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(base), len) }
    }
}

/// Computes one worker's chunk of wave `w` cell by cell.
///
/// # Safety
/// Caller upholds the wave/barrier discipline: `range` is this worker's
/// exclusive slice of wave `w`, and all of wave `w`'s dependencies are
/// sealed by an earlier barrier.
#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn compute_chunk<K: Kernel + ?Sized>(
    kernel: &K,
    set: ContributingSet,
    pattern: Pattern,
    dims: Dims,
    layout: &Layout,
    cells: &SharedCells<K::Cell>,
    w: usize,
    range: Range<usize>,
) {
    for pos in range {
        let (i, j) = wavefront::cell_at(pattern, dims, w, pos);
        let mut nbrs = Neighbors::empty();
        for dep in set.iter() {
            if let Some((si, sj)) = dep.source(i, j, dims.rows, dims.cols) {
                debug_assert!(
                    wavefront::wave_of(pattern, dims, si, sj) < w,
                    "dependency must be sealed"
                );
                // SAFETY: (si, sj) lies in a wave sealed by a previous
                // barrier (caller contract).
                let v = unsafe { cells.read(layout.index(si, sj)) };
                nbrs.set(dep, v);
            }
        }
        let v = kernel.compute(i, j, &nbrs);
        // SAFETY: `pos` is in this worker's exclusive chunk of wave `w`
        // (caller contract); wave ranges are disjoint.
        unsafe { cells.write(layout.index(i, j), v) };
    }
}

/// The bulk executor a solve resolved to: the scalar-bulk
/// [`WaveKernel`] path or the vectorized [`SimdWaveKernel`] path. Both
/// consume the same interior-run slices; keeping the choice in one
/// value lets the hot loops dispatch with a single match instead of
/// re-deriving tier logic per run.
enum BulkExec<'a, T> {
    Wave(&'a dyn WaveKernel<Cell = T>),
    Simd(&'a dyn SimdWaveKernel<Cell = T>),
}

impl<T> Clone for BulkExec<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for BulkExec<'_, T> {}

impl<T: Copy + Send + Sync + PartialEq + std::fmt::Debug + Default> BulkExec<'_, T> {
    /// The lane width worker chunks should align to (1 for the scalar
    /// bulk path).
    fn lanes(&self) -> usize {
        match self {
            BulkExec::Wave(_) => 1,
            BulkExec::Simd(k) => k.lanes().max(1),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn compute_run(
        &self,
        i: usize,
        j0: usize,
        out: &mut [T],
        w: &[T],
        nw: &[T],
        n: &[T],
        ne: &[T],
    ) {
        match self {
            BulkExec::Wave(k) => k.compute_run(i, j0, out, w, nw, n, ne),
            BulkExec::Simd(k) => k.compute_run_simd(i, j0, out, w, nw, n, ne),
        }
    }
}

/// The process-wide `LDDP_FORCE_TIER` debugging override, read once.
/// Unparseable values are treated as unset.
fn env_forced_tier() -> Option<ExecTier> {
    static FORCED: OnceLock<Option<ExecTier>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("LDDP_FORCE_TIER")
            .ok()
            .and_then(|s| ExecTier::parse(&s))
    })
}

/// Computes one contiguous interior run of wave `w` through the kernel's
/// bulk path, materializing the dependency and output slices.
///
/// # Safety
/// As [`compute_chunk`], plus: `run` must be (a sub-range of) an
/// interior run reported by [`Layout::interior_runs`] for this
/// `(pattern, set, w)`, so that every dependency of every cell in it is
/// in bounds and each dependency direction occupies contiguous backing
/// slots (the property tested in `lddp-core::grid`).
#[allow(clippy::too_many_arguments)]
unsafe fn compute_run_bulk<T: Copy + Send + Sync + PartialEq + std::fmt::Debug + Default>(
    wk: BulkExec<'_, T>,
    set: ContributingSet,
    pattern: Pattern,
    dims: Dims,
    layout: &Layout,
    cells: &SharedCells<T>,
    w: usize,
    run: Range<usize>,
) {
    let len = run.len();
    if len == 0 {
        return;
    }
    let (i0, j0) = wavefront::cell_at(pattern, dims, w, run.start);
    let out_base = layout.index(i0, j0);
    if len > 1 {
        let (il, jl) = wavefront::cell_at(pattern, dims, w, run.end - 1);
        debug_assert_eq!(
            layout.index(il, jl),
            out_base + len - 1,
            "wave run must be contiguous in a coalesced layout"
        );
    }
    let mut dep_slices: [&[T]; 4] = [&[]; 4];
    for dep in set.iter() {
        let (si, sj) = dep
            .source(i0, j0, dims.rows, dims.cols)
            .expect("interior cells have every dependency in bounds");
        let base = layout.index(si, sj);
        debug_assert!(wavefront::wave_of(pattern, dims, si, sj) < w);
        if len > 1 {
            let (il, jl) = wavefront::cell_at(pattern, dims, w, run.end - 1);
            let (sl_i, sl_j) = dep.source(il, jl, dims.rows, dims.cols).unwrap();
            debug_assert_eq!(
                layout.index(sl_i, sl_j),
                base + len - 1,
                "dependency run must be contiguous (layout contiguity property)"
            );
        }
        // SAFETY: the whole dependency run lies in sealed earlier waves
        // (asserted above); contiguity is the layout property the
        // interior-run decomposition guarantees.
        let sl = unsafe { cells.slice(base, len) };
        dep_slices[dep as usize] = sl;
    }
    // SAFETY: the output run is inside this worker's exclusive chunk of
    // wave `w`; it cannot overlap the dependency slices, which live in
    // strictly earlier waves.
    let out = unsafe { cells.slice_mut(out_base, len) };
    wk.compute_run(
        i0,
        j0,
        out,
        dep_slices[RepCell::W as usize],
        dep_slices[RepCell::Nw as usize],
        dep_slices[RepCell::N as usize],
        dep_slices[RepCell::Ne as usize],
    );
}

/// Computes one worker's chunk of wave `w`, routing interior runs
/// through the bulk path when one is available and falling back to the
/// scalar path for border cells (and entirely, when `wk` is `None`).
///
/// # Safety
/// As [`compute_chunk`]; `runs` must be the interior runs of wave `w`
/// for this `(pattern, set)` whenever `wk` is `Some`.
#[allow(clippy::too_many_arguments)]
unsafe fn compute_chunk_auto<K: Kernel + ?Sized>(
    kernel: &K,
    wk: Option<BulkExec<'_, K::Cell>>,
    set: ContributingSet,
    pattern: Pattern,
    dims: Dims,
    layout: &Layout,
    runs: &[Range<usize>],
    cells: &SharedCells<K::Cell>,
    w: usize,
    range: Range<usize>,
) {
    let Some(wk) = wk else {
        // SAFETY: forwarded caller contract.
        unsafe { compute_chunk(kernel, set, pattern, dims, layout, cells, w, range) };
        return;
    };
    let mut pos = range.start;
    for run in runs {
        if run.end <= pos {
            continue;
        }
        if run.start >= range.end {
            break;
        }
        let lo = run.start.max(pos);
        let hi = run.end.min(range.end);
        if lo > pos {
            // Border cells before this interior run.
            // SAFETY: forwarded caller contract.
            unsafe { compute_chunk(kernel, set, pattern, dims, layout, cells, w, pos..lo) };
        }
        // SAFETY: `lo..hi` is a sub-range of an interior run.
        unsafe { compute_run_bulk(wk, set, pattern, dims, layout, cells, w, lo..hi) };
        pos = hi;
    }
    if pos < range.end {
        // SAFETY: forwarded caller contract.
        unsafe { compute_chunk(kernel, set, pattern, dims, layout, cells, w, pos..range.end) };
    }
}

/// What one worker measured about itself during a traced run.
#[derive(Debug, Default)]
struct WorkerTrace {
    /// Non-empty chunks: (wave, start_s, dur_s, cells).
    spans: Vec<(usize, f64, f64, usize)>,
    /// Total compute time across all waves.
    busy_s: f64,
    /// Time spent blocked at the inter-wave barrier, one entry per wave.
    barrier_wait_s: Vec<f64>,
}

/// A chunk-per-thread wavefront solver backed by a persistent
/// [`WorkerPool`].
///
/// Cloning the engine shares the pool: a clone solves on the same
/// long-lived worker threads rather than spawning its own.
#[derive(Debug, Clone)]
pub struct ParallelEngine {
    threads: usize,
    bulk: bool,
    tier: Option<ExecTier>,
    live: Option<Arc<LiveRegistry>>,
    pool: OnceLock<Arc<WorkerPool>>,
}

impl ParallelEngine {
    /// Creates an engine with the given worker count (min 1). Workers
    /// are not spawned until the first solve that needs them.
    pub fn new(threads: usize) -> Self {
        ParallelEngine {
            threads: threads.max(1),
            bulk: true,
            tier: None,
            live: None,
            pool: OnceLock::new(),
        }
    }

    /// Engine sized to the host's available parallelism.
    pub fn host() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelEngine::new(threads)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables or disables the bulk [`WaveKernel`] path (on by
    /// default). With bulk disabled every cell goes through the scalar
    /// [`Kernel::compute`] path — useful for differential testing and
    /// for measuring what the bulk path buys.
    pub fn with_bulk_enabled(mut self, bulk: bool) -> Self {
        self.bulk = bulk;
        self
    }

    /// Whether the bulk path is enabled.
    pub fn bulk_enabled(&self) -> bool {
        self.bulk
    }

    /// Pins the execution tier instead of auto-selecting the fastest
    /// available one (`None`, the default, restores auto-selection). A
    /// pinned tier a kernel cannot support downgrades gracefully
    /// (`Simd → Bulk → Scalar`); pinning [`ExecTier::BitParallel`] is
    /// equivalent to auto, because the engine solves full tables and
    /// bit-parallel execution is an answer-only specialization the
    /// caller must route itself. The `LDDP_FORCE_TIER` environment
    /// variable takes precedence over this builder.
    pub fn with_tier(mut self, tier: Option<ExecTier>) -> Self {
        self.tier = tier;
        self
    }

    /// The pinned tier, if any (`LDDP_FORCE_TIER` not considered).
    pub fn tier_override(&self) -> Option<ExecTier> {
        self.tier
    }

    /// Attaches a [`LiveRegistry`]: every pooled solve records pool
    /// utilization into it (`lddp_pool_*` families — per-worker busy
    /// seconds, barrier-wait histogram, solves by tier, waves, cells)
    /// regardless of whether a [`TraceSink`] is attached. Injected
    /// faults additionally count under
    /// `lddp_chaos_injected_total{site=worker_panic|bulk_panic}`.
    ///
    /// Attaching a registry routes solves through the instrumented
    /// path (per-wave wall-clock timestamps), so it is not free —
    /// though the cost is per *wave*, not per cell, and disappears
    /// into the noise for all but trivially small grids.
    pub fn with_live(mut self, live: Arc<LiveRegistry>) -> Self {
        self.live = Some(live);
        self
    }

    /// The attached live registry, if any.
    pub fn live_registry(&self) -> Option<&Arc<LiveRegistry>> {
        self.live.as_ref()
    }

    /// Workers of the engine's shared pool that have died (panicked or
    /// otherwise terminated) and not yet been healed. Zero when the
    /// pool is healthy — including before the pool's lazy creation,
    /// since a pool that doesn't exist yet has nothing wrong with it.
    /// This is the readiness signal fleet `/healthz` reports per
    /// platform pool.
    pub fn pool_dead_workers(&self) -> usize {
        self.pool.get().map_or(0, |p| p.dead_workers())
    }

    /// True once a solve has spun up the worker pool. Single-worker
    /// plans compute inline and must leave this false — the regression
    /// guard for the "pool handoff at one thread" overhead class.
    pub fn pool_started(&self) -> bool {
        self.pool.get().is_some()
    }

    /// Respawns any dead workers in the shared pool (no-op while the
    /// pool is healthy or not yet created). Returns how many workers
    /// were respawned.
    pub fn heal_pool(&self) -> usize {
        self.pool.get().map_or(0, |p| p.heal())
    }

    /// The tier a [`solve`](ParallelEngine::solve) of `kernel` will
    /// execute on, honoring `LDDP_FORCE_TIER`, the pinned tier and the
    /// host's vector backend. Kernels whose contributing set does not
    /// classify run scalar.
    pub fn select_tier<K: Kernel>(&self, kernel: &K) -> ExecTier {
        match classify(kernel.contributing_set()).map(Pattern::canonical) {
            Some(pattern) => self.resolve_exec(kernel, pattern).0,
            None => ExecTier::Scalar,
        }
    }

    /// Resolves the tier and bulk executor for solving `kernel` under
    /// `pattern`: the requested tier (env override, then pinned tier,
    /// then fastest-available) downgraded to what the kernel and host
    /// actually support under this execution pattern.
    fn resolve_exec<'k, K: Kernel + ?Sized>(
        &self,
        kernel: &'k K,
        pattern: Pattern,
    ) -> (ExecTier, Option<BulkExec<'k, K::Cell>>) {
        let bulk_ok = self.bulk && classify(kernel.contributing_set()) == Some(pattern);
        let wave = if bulk_ok { kernel.wave_kernel() } else { None };
        let simd = if bulk_ok && simd_available() {
            kernel.simd_kernel()
        } else {
            None
        };
        let auto = if simd.is_some() {
            ExecTier::Simd
        } else if wave.is_some() {
            ExecTier::Bulk
        } else {
            ExecTier::Scalar
        };
        let requested = match env_forced_tier().or(self.tier) {
            None | Some(ExecTier::BitParallel) => auto,
            Some(forced) => auto.min(forced),
        };
        // A kernel may expose a SIMD hook without a scalar-bulk one;
        // downgrade past any missing rung rather than mis-reporting.
        let (tier, exec) = match requested {
            ExecTier::Simd if simd.is_some() => (ExecTier::Simd, simd.map(BulkExec::Simd)),
            ExecTier::Simd | ExecTier::Bulk if wave.is_some() => {
                (ExecTier::Bulk, wave.map(BulkExec::Wave))
            }
            _ => (ExecTier::Scalar, None),
        };
        (tier, exec)
    }

    /// Measures one solve per *available* tier of `kernel` (scalar,
    /// bulk, SIMD — whichever the kernel and host support) on this
    /// engine's pool and returns the fastest together with the sweep.
    /// Ties prefer the simpler tier. Under `LDDP_FORCE_TIER` every
    /// candidate resolves to the forced tier, so exactly one point is
    /// measured.
    pub fn tune_tier<K: Kernel>(&self, kernel: &K) -> Result<(ExecTier, Vec<TierPoint>)> {
        let mut points = Vec::new();
        for tier in [ExecTier::Scalar, ExecTier::Bulk, ExecTier::Simd] {
            let candidate = self.clone().with_tier(Some(tier));
            if candidate.select_tier(kernel) != tier {
                continue; // unavailable: would re-measure a lower tier
            }
            let t0 = Instant::now();
            candidate.solve(kernel)?;
            points.push(TierPoint {
                tier,
                secs: t0.elapsed().as_secs_f64(),
            });
        }
        Ok((pick_tier(&points).unwrap_or(ExecTier::Scalar), points))
    }

    /// The engine's worker pool, created on first use.
    fn pool(&self) -> &Arc<WorkerPool> {
        self.pool
            .get_or_init(|| Arc::new(WorkerPool::new(self.threads)))
    }

    /// Solves the kernel under its classified canonical pattern.
    ///
    /// ```
    /// use lddp_parallel::ParallelEngine;
    /// use lddp_core::kernel::{ClosureKernel, Neighbors};
    /// use lddp_core::cell::{ContributingSet, RepCell};
    /// use lddp_core::wavefront::Dims;
    ///
    /// // Pascal's triangle as an LDDP kernel: C(i,j) = NW + N.
    /// let k = ClosureKernel::new(
    ///     Dims::new(8, 8),
    ///     ContributingSet::new(&[RepCell::Nw, RepCell::N]),
    ///     |_i, j, n: &Neighbors<u64>| match (n.nw, n.n) {
    ///         (Some(a), Some(b)) => a + b,
    ///         _ => u64::from(j == 0), // first row/column
    ///     },
    /// );
    /// let grid = ParallelEngine::new(4).solve(&k).unwrap();
    /// // Row i holds the binomial coefficients C(i, j).
    /// assert_eq!(grid.get(4, 2), 6);
    /// assert_eq!(grid.get(7, 3), 35);
    /// ```
    pub fn solve<K: Kernel>(&self, kernel: &K) -> Result<Grid<K::Cell>> {
        self.solve_traced(kernel, &NullSink)
    }

    /// Solves under an explicit compatible pattern (e.g. a `{NW}` problem
    /// under Horizontal, §V-B).
    pub fn solve_as<K: Kernel>(&self, kernel: &K, pattern: Pattern) -> Result<Grid<K::Cell>> {
        self.solve_as_traced(kernel, pattern, &NullSink)
    }

    /// [`solve`](ParallelEngine::solve) with wall-clock instrumentation
    /// through `sink` (see module docs for what is emitted). A disabled
    /// sink adds no work.
    pub fn solve_traced<K: Kernel>(
        &self,
        kernel: &K,
        sink: &dyn TraceSink,
    ) -> Result<Grid<K::Cell>> {
        let pattern = classify(kernel.contributing_set())
            .map(Pattern::canonical)
            .ok_or(Error::EmptyContributingSet)?;
        self.solve_as_traced(kernel, pattern, sink)
    }

    /// [`solve_as`](ParallelEngine::solve_as) with wall-clock
    /// instrumentation through `sink`.
    pub fn solve_as_traced<K: Kernel>(
        &self,
        kernel: &K,
        pattern: Pattern,
        sink: &dyn TraceSink,
    ) -> Result<Grid<K::Cell>> {
        self.solve_inner(kernel, pattern, sink, self.threads, None)
    }

    /// Solves with a [`FaultInjector`] consulted on the pooled path: an
    /// injected worker panic or bulk fault fails the solve with
    /// [`Error::ExecutionPanicked`] instead of unwinding the caller,
    /// and a pool left with dead workers is healed before returning.
    /// The single-threaded shortcut path is not injectable.
    pub fn solve_injected<K: Kernel>(
        &self,
        kernel: &K,
        injector: &dyn FaultInjector,
    ) -> Result<Grid<K::Cell>> {
        let pattern = classify(kernel.contributing_set())
            .map(Pattern::canonical)
            .ok_or(Error::EmptyContributingSet)?;
        self.solve_inner(kernel, pattern, &NullSink, self.threads, Some(injector))
    }

    /// Solves with the graceful-degradation ladder: the full
    /// configuration first, then (when the bulk path was in play) the
    /// scalar path, then a panic-isolated single-threaded solve that no
    /// injector touches. Returns the grid together with the rungs taken;
    /// an empty vector means the first attempt succeeded.
    pub fn solve_degrading<K: Kernel>(
        &self,
        kernel: &K,
        injector: &dyn FaultInjector,
    ) -> Result<(Grid<K::Cell>, Vec<DegradeStep>)> {
        let set = kernel.contributing_set();
        let pattern = classify(set)
            .map(Pattern::canonical)
            .ok_or(Error::EmptyContributingSet)?;
        let mut steps = Vec::new();
        match self.solve_inner(kernel, pattern, &NullSink, self.threads, Some(injector)) {
            Ok(g) => return Ok((g, steps)),
            Err(Error::ExecutionPanicked { .. }) => {}
            Err(e) => return Err(e),
        }
        let bulk_in_play = self.resolve_exec(kernel, pattern).0 != ExecTier::Scalar;
        if bulk_in_play {
            steps.push(DegradeStep::BulkToScalar);
            let scalar = self.clone().with_bulk_enabled(false);
            match scalar.solve_inner(kernel, pattern, &NullSink, self.threads, Some(injector)) {
                Ok(g) => return Ok((g, steps)),
                Err(Error::ExecutionPanicked { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        steps.push(DegradeStep::ParallelToSequential);
        let layout = LayoutKind::preferred_for(pattern);
        match catch_unwind(AssertUnwindSafe(|| {
            lddp_core::seq::solve_wavefront_as(kernel, pattern, layout)
        })) {
            Ok(Ok(g)) => Ok((g, steps)),
            Ok(Err(e)) => Err(e),
            Err(_) => Err(Error::ExecutionPanicked {
                detail: "sequential fallback panicked".into(),
            }),
        }
    }

    /// Solves in rolling (wave-band) memory mode: no grid is
    /// materialized, only a ring of three band buffers
    /// (`O(rows + cols)` bytes) plus the captured answers — the
    /// bottom-right corner and, when `best_of` is given, the arg-best
    /// cell under that score (the Smith–Waterman endpoint). Interior
    /// runs execute on the same resolved tier as a full-table solve;
    /// workers split each wave's interior run exactly as they split
    /// full-table waves. Non-anti-diagonal kernels are rejected with
    /// [`Error::PlanMismatch`].
    pub fn solve_rolling<K: Kernel>(
        &self,
        kernel: &K,
        best_of: Option<fn(&K::Cell) -> i64>,
    ) -> Result<RollingSolve<K::Cell>> {
        self.solve_rolling_inner(kernel, best_of, None, None)
    }

    /// [`solve_rolling`](ParallelEngine::solve_rolling) that streams
    /// completed wave bands while the pool keeps solving: the schedule
    /// is cut into `hook.bands` near-equal-cell slices
    /// ([`lddp_core::rolling::BandSchedule`]) and worker 0 calls
    /// `hook.emit` behind each band's sealing barrier — solve of band
    /// `k+1` genuinely overlaps delivery of band `k`, the pipeline
    /// structure of the Matsumae–Miyazaki GPU path. A blocking `emit`
    /// (e.g. a full bounded channel) stalls the pool at the next
    /// barrier, which is exactly the backpressure the serving path
    /// wants; an `emit` returning `false` (receiver gone) stops further
    /// emission while the solve runs to completion. The answer is
    /// bit-identical to [`solve_rolling`](ParallelEngine::solve_rolling)
    /// — same ring, same run bodies, emission is observation only.
    pub fn solve_rolling_stream<K: Kernel>(
        &self,
        kernel: &K,
        best_of: Option<fn(&K::Cell) -> i64>,
        hook: &StreamHook<'_, K::Cell>,
    ) -> Result<RollingSolve<K::Cell>> {
        self.solve_rolling_inner(kernel, best_of, None, Some(hook))
    }

    /// [`solve_rolling`](ParallelEngine::solve_rolling) with a
    /// [`FaultInjector`] consulted per (worker, wave), mirroring
    /// [`solve_injected`](ParallelEngine::solve_injected).
    pub fn solve_rolling_injected<K: Kernel>(
        &self,
        kernel: &K,
        best_of: Option<fn(&K::Cell) -> i64>,
        injector: &dyn FaultInjector,
    ) -> Result<RollingSolve<K::Cell>> {
        self.solve_rolling_inner(kernel, best_of, Some(injector), None)
    }

    /// Rolling-mode counterpart of
    /// [`solve_degrading`](ParallelEngine::solve_degrading): full
    /// configuration, then scalar tier, then a panic-isolated
    /// sequential band walk no injector touches.
    pub fn solve_rolling_degrading<K: Kernel>(
        &self,
        kernel: &K,
        best_of: Option<fn(&K::Cell) -> i64>,
        injector: &dyn FaultInjector,
    ) -> Result<(RollingSolve<K::Cell>, Vec<DegradeStep>)> {
        let mut steps = Vec::new();
        match self.solve_rolling_inner(kernel, best_of, Some(injector), None) {
            Ok(r) => return Ok((r, steps)),
            Err(Error::ExecutionPanicked { .. }) => {}
            Err(e) => return Err(e),
        }
        if self.resolve_exec(kernel, Pattern::AntiDiagonal).0 != ExecTier::Scalar {
            steps.push(DegradeStep::BulkToScalar);
            let scalar = self.clone().with_bulk_enabled(false);
            match scalar.solve_rolling_inner(kernel, best_of, Some(injector), None) {
                Ok(r) => return Ok((r, steps)),
                Err(Error::ExecutionPanicked { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        steps.push(DegradeStep::ParallelToSequential);
        match catch_unwind(AssertUnwindSafe(|| {
            Self::rolling_sequential(kernel, Some(ExecTier::Scalar), best_of, None)
        })) {
            Ok(Ok(r)) => Ok((r, steps)),
            Ok(Err(e)) => Err(e),
            Err(_) => Err(Error::ExecutionPanicked {
                detail: "sequential rolling fallback panicked".into(),
            }),
        }
    }

    /// One inline band walk on the calling thread, capturing corner
    /// and arg-best through the core visitor.
    fn rolling_sequential<K: Kernel>(
        kernel: &K,
        tier: Option<ExecTier>,
        best_of: Option<fn(&K::Cell) -> i64>,
        stream: Option<&StreamHook<'_, K::Cell>>,
    ) -> Result<RollingSolve<K::Cell>> {
        let dims = kernel.dims();
        let last = (dims.rows + dims.cols).saturating_sub(2);
        let schedule = stream.map(|h| rolling::BandSchedule::new(dims.rows, dims.cols, h.bands));
        let mut corner = None;
        let mut best: Option<(i64, usize, usize, K::Cell)> = None;
        let mut next_band = 0usize;
        let mut cells_done = 0u64;
        let mut emit_alive = true;
        let stats = rolling::solve_waves(kernel, tier, |w, j_lo, cells| {
            if w == last {
                corner = cells.last().copied();
            }
            if let Some(score) = best_of {
                for (p, c) in cells.iter().enumerate() {
                    let s = score(c);
                    if best.is_none_or(|(bs, ..)| s > bs) {
                        best = Some((s, w - (j_lo + p), j_lo + p, *c));
                    }
                }
            }
            if let (Some(hook), Some(sched)) = (stream, &schedule) {
                cells_done += cells.len() as u64;
                if emit_alive && sched.ends().get(next_band) == Some(&w) {
                    let score = cells.last().map_or(0.0, |c| (hook.score_of)(c));
                    let ev = sched.event(
                        next_band,
                        w,
                        cells_done,
                        score,
                        best.map(|(s, ..)| s as f64),
                    );
                    next_band += 1;
                    emit_alive = (hook.emit)(ev);
                }
            }
        })?;
        Ok(RollingSolve {
            corner,
            best: best.map(|(_, i, j, c)| (i, j, c)),
            tier: stats.tier,
            waves: stats.waves,
            peak_bytes: stats.peak_bytes,
        })
    }

    /// Updates the live families a rolling solve contributes to (the
    /// pool counters keep their full-table semantics; rolling adds the
    /// working-set gauge with its own memory-mode label).
    fn record_rolling_live(&self, tier: ExecTier, waves: usize, cells: usize, peak_bytes: usize) {
        if let Some(live) = self.live.as_deref() {
            live.gauge(
                "lddp_engine_table_bytes",
                &[("memory_mode", "rolling")],
                "Peak DP working-set bytes of the most recent solve, by memory mode.",
            )
            .set(peak_bytes as f64);
            live.counter(
                "lddp_pool_solves_total",
                &[("tier", tier.as_str())],
                "Pooled solves completed, by execution tier.",
            )
            .inc();
            live.counter("lddp_pool_waves_total", &[], "Waves executed by the pool.")
                .add(waves as u64);
            live.counter(
                "lddp_pool_cells_total",
                &[],
                "Grid cells computed by the pool.",
            )
            .add(cells as u64);
        }
    }

    fn solve_rolling_inner<K: Kernel>(
        &self,
        kernel: &K,
        best_of: Option<fn(&K::Cell) -> i64>,
        injector: Option<&dyn FaultInjector>,
        stream: Option<&StreamHook<'_, K::Cell>>,
    ) -> Result<RollingSolve<K::Cell>> {
        let set = kernel.contributing_set();
        if set.is_empty() {
            return Err(Error::EmptyContributingSet);
        }
        if !rolling::supports_rolling(kernel) {
            return Err(Error::PlanMismatch {
                expected: "anti-diagonal contributing set (rolling wave-band mode)".into(),
                found: format!("{set}"),
            });
        }
        let dims = kernel.dims();
        let (tier, _) = self.resolve_exec(kernel, Pattern::AntiDiagonal);
        if dims.is_empty() {
            return Ok(RollingSolve {
                corner: None,
                best: None,
                tier,
                waves: 0,
                peak_bytes: 0,
            });
        }
        let (rows, cols) = (dims.rows, dims.cols);
        let band = rows.min(cols);
        let threads = self.threads.min(band).max(1);

        // One worker: compute inline — the pool cannot win (same
        // reasoning as the full-table single-thread bypasses). Faulted
        // runs stay on the pool for panic isolation.
        if threads == 1 && injector.is_none() {
            let r = Self::rolling_sequential(kernel, Some(tier), best_of, stream)?;
            self.record_rolling_live(r.tier, r.waves, dims.len(), r.peak_bytes);
            return Ok(r);
        }

        let num_waves = rows + cols - 1;
        let mut b0 = vec![K::Cell::default(); band];
        let mut b1 = vec![K::Cell::default(); band];
        let mut b2 = vec![K::Cell::default(); band];
        let ring = [
            SharedCells::new(&mut b0[..]),
            SharedCells::new(&mut b1[..]),
            SharedCells::new(&mut b2[..]),
        ];
        let has_w = set.contains(RepCell::W);
        let has_nw = set.contains(RepCell::Nw);
        let has_n = set.contains(RepCell::N);
        let wave_body = kernel.wave_kernel();
        let simd_body = kernel.simd_kernel();
        let lanes = if tier == ExecTier::Simd {
            simd_body.map_or(1, |s| s.lanes())
        } else {
            1
        };
        type Captured<C> = (Option<C>, Option<(i64, usize, usize, C)>);
        let captured: Mutex<Captured<K::Cell>> = Mutex::new((None, None));
        let schedule = stream.map(|h| rolling::BandSchedule::new(rows, cols, h.bands));
        let live = self.live.as_deref();
        let pool = self.pool();
        let chaos_injected = |site: &str| {
            if let Some(live) = live {
                live.counter(
                    "lddp_chaos_injected_total",
                    &[("site", site)],
                    "Faults injected by the attached chaos plan, by site.",
                )
                .inc();
            }
        };
        let inject = |t: usize, w: usize| {
            if let Some(inj) = injector {
                if tier != ExecTier::Scalar && inj.bulk_panic(w) {
                    chaos_injected("bulk_panic");
                    panic!("injected bulk fault at wave {w}");
                }
                if inj.worker_panic(t, w) {
                    chaos_injected("worker_panic");
                    panic!("injected worker panic: worker {t} wave {w}");
                }
            }
        };

        let r = pool.try_run(threads, &|t| {
            // Streaming emission state, used by worker 0 only (each
            // worker's invocation owns the whole wave loop).
            let mut next_band = 0usize;
            let mut cells_done = 0u64;
            let mut emit_alive = true;
            for w in 0..num_waves {
                inject(t, w);
                let j_lo = w.saturating_sub(rows - 1);
                let j_hi = (cols - 1).min(w);
                let len = j_hi - j_lo + 1;
                let j_lo1 = (w.saturating_sub(1)).saturating_sub(rows - 1);
                let j_lo2 = (w.saturating_sub(2)).saturating_sub(rows - 1);
                let cur = &ring[w % 3];
                let prev1 = &ring[(w + 2) % 3];
                let prev2 = &ring[(w + 1) % 3];
                // SAFETY (all ring accesses in this wave): wave `w`
                // writes only slot `w % 3`; its dependencies live in
                // waves `w-1`/`w-2`, i.e. the other two slots, sealed by
                // the barriers of those waves. Writes within the wave
                // are pairwise disjoint across workers (chunks plus the
                // worker-0-only border cells).
                let scalar_cell = |j: usize| unsafe {
                    let i = w - j;
                    let mut nb = Neighbors::empty();
                    if j > 0 {
                        if has_w {
                            nb.w = Some(prev1.read(j - 1 - j_lo1));
                        }
                        if has_nw && i > 0 {
                            nb.nw = Some(prev2.read(j - 1 - j_lo2));
                        }
                    }
                    if has_n && i > 0 {
                        nb.n = Some(prev1.read(j - j_lo1));
                    }
                    cur.write(j - j_lo, kernel.compute(i, j, &nb));
                };
                if tier == ExecTier::Scalar {
                    for p in chunk_aligned(t, threads, len, 1) {
                        scalar_cell(j_lo + p);
                    }
                } else {
                    // Interior columns (every dependency in bounds)
                    // form one contiguous run; at most the first and
                    // last wave cells are border cells.
                    let ji_lo = j_lo.max(1);
                    let ji_hi = j_hi.min(w.saturating_sub(1));
                    if t == 0 {
                        for j in j_lo..ji_lo {
                            scalar_cell(j);
                        }
                        for j in (ji_hi + 1)..=j_hi {
                            scalar_cell(j);
                        }
                    }
                    let ilen = (ji_hi + 1).saturating_sub(ji_lo);
                    let my = chunk_aligned(t, threads, ilen, lanes);
                    if !my.is_empty() {
                        let count = my.len();
                        let js = ji_lo + my.start;
                        let i0 = w - js;
                        // SAFETY: `out` is this worker's exclusive range
                        // of the current slot; dependency slices read
                        // slots sealed by earlier barriers.
                        unsafe {
                            let out = cur.slice_mut(js - j_lo, count);
                            let empty: &[K::Cell] = &[];
                            let w_run = if has_w {
                                prev1.slice(js - 1 - j_lo1, count)
                            } else {
                                empty
                            };
                            let n_run = if has_n {
                                prev1.slice(js - j_lo1, count)
                            } else {
                                empty
                            };
                            let nw_run = if has_nw {
                                prev2.slice(js - 1 - j_lo2, count)
                            } else {
                                empty
                            };
                            if tier == ExecTier::Simd {
                                simd_body
                                    .expect("Simd tier implies simd_kernel")
                                    .compute_run_simd(i0, js, out, w_run, nw_run, n_run, empty);
                            } else {
                                wave_body
                                    .expect("Bulk tier implies wave_kernel")
                                    .compute_run(i0, js, out, w_run, nw_run, n_run, empty);
                            }
                        }
                    }
                }
                pool.barrier().wait();
                if t == 0 {
                    // SAFETY: wave `w` is sealed by the barrier above.
                    // Slot `w % 3` is next written by wave `w + 3`,
                    // which no worker reaches before worker 0 passes
                    // the `w + 1` and `w + 2` barriers — i.e. after
                    // this capture completes.
                    let cells = unsafe { cur.slice(0, len) };
                    let mut cap = captured.lock().unwrap_or_else(|e| e.into_inner());
                    if w == num_waves - 1 {
                        cap.0 = cells.last().copied();
                    }
                    if let Some(score) = best_of {
                        for (p, c) in cells.iter().enumerate() {
                            let s = score(c);
                            if cap.1.is_none_or(|(bs, ..)| s > bs) {
                                cap.1 = Some((s, w - (j_lo + p), j_lo + p, *c));
                            }
                        }
                    }
                    if let (Some(hook), Some(sched)) = (stream, &schedule) {
                        // Emission happens here, behind the sealing
                        // barrier but before worker 0 starts wave
                        // `w + 1` — the other workers run ahead until
                        // the next barrier, so a blocking emit (full
                        // channel) throttles the whole pool: exactly
                        // the slow-reader backpressure contract.
                        cells_done += len as u64;
                        if emit_alive && sched.ends().get(next_band) == Some(&w) {
                            let score = cells.last().map_or(0.0, |c| (hook.score_of)(c));
                            let ev = sched.event(
                                next_band,
                                w,
                                cells_done,
                                score,
                                cap.1.map(|(s, ..)| s as f64),
                            );
                            next_band += 1;
                            drop(cap);
                            emit_alive = (hook.emit)(ev);
                        }
                    }
                }
            }
        });
        Self::map_pool_result(pool, r)?;
        let (corner, best) = captured.into_inner().unwrap_or_else(|e| e.into_inner());
        let peak_bytes = 3 * band * std::mem::size_of::<K::Cell>();
        self.record_rolling_live(tier, num_waves, dims.len(), peak_bytes);
        Ok(RollingSolve {
            corner,
            best: best.map(|(_, i, j, c)| (i, j, c)),
            tier,
            waves: num_waves,
            peak_bytes,
        })
    }

    /// Solves with at most `active` workers drawn from the engine's
    /// pool (clamped to `1..=threads()`). This is what a worker-count
    /// sweep should call: every candidate reuses the same long-lived
    /// threads instead of paying spawn/join per measurement.
    pub fn solve_with_threads<K: Kernel>(
        &self,
        kernel: &K,
        active: usize,
    ) -> Result<Grid<K::Cell>> {
        let pattern = classify(kernel.contributing_set())
            .map(Pattern::canonical)
            .ok_or(Error::EmptyContributingSet)?;
        self.solve_inner(kernel, pattern, &NullSink, active, None)
    }

    /// Sweeps active worker counts over the shared pool and returns the
    /// fastest (`best`, full sweep), measuring one solve per candidate.
    /// Candidates are clamped to `1..=threads()` and deduplicated after
    /// clamping; an empty candidate list sweeps `1..=threads()`. Ties
    /// prefer the smaller worker count.
    pub fn tune_worker_count<K: Kernel>(
        &self,
        kernel: &K,
        candidates: &[usize],
    ) -> Result<(usize, Vec<SweepPoint>)> {
        let mut seen = Vec::new();
        let clamped: Vec<usize> = if candidates.is_empty() {
            (1..=self.threads).collect()
        } else {
            candidates
                .iter()
                .map(|&c| c.clamp(1, self.threads))
                .collect()
        };
        let mut sweep = Vec::with_capacity(clamped.len());
        for c in clamped {
            if seen.contains(&c) {
                continue;
            }
            seen.push(c);
            let t0 = Instant::now();
            self.solve_with_threads(kernel, c)?;
            sweep.push(SweepPoint {
                value: c,
                time: t0.elapsed().as_secs_f64(),
            });
        }
        let best = sweep
            .iter()
            .min_by(|a, b| {
                a.time
                    .partial_cmp(&b.time)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.value.cmp(&b.value))
            })
            .map(|p| p.value)
            .expect("sweep is non-empty");
        Ok((best, sweep))
    }

    /// Maps a pool-run outcome to the engine's error taxonomy, healing
    /// the pool first if workers died so the next solve finds it usable.
    fn map_pool_result(pool: &WorkerPool, r: std::result::Result<(), PoolError>) -> Result<()> {
        match r {
            Ok(()) => Ok(()),
            Err(PoolError::JobPanicked) => Err(Error::ExecutionPanicked {
                detail: "a pool worker panicked mid-solve".into(),
            }),
            Err(PoolError::PoolUnusable { dead }) => {
                let respawned = pool.heal();
                Err(Error::ExecutionPanicked {
                    detail: format!("{dead} pool worker(s) died mid-solve; respawned {respawned}"),
                })
            }
        }
    }

    fn solve_inner<K: Kernel>(
        &self,
        kernel: &K,
        pattern: Pattern,
        sink: &dyn TraceSink,
        active: usize,
        injector: Option<&dyn FaultInjector>,
    ) -> Result<Grid<K::Cell>> {
        let set = kernel.contributing_set();
        if set.is_empty() {
            return Err(Error::EmptyContributingSet);
        }
        if !compatible(pattern, set) {
            return Err(Error::PlanMismatch {
                expected: format!("{pattern}"),
                found: format!("{set}"),
            });
        }
        let dims = kernel.dims();
        let layout_kind = LayoutKind::preferred_for(pattern);
        let mut grid: Grid<K::Cell> = Grid::new(layout_kind, dims);
        if dims.is_empty() {
            return Ok(grid);
        }
        let num_waves = pattern.num_waves(dims.rows, dims.cols);
        let threads = active.min(self.threads).min(dims.len()).max(1);
        let live = self.live.as_deref();
        if let Some(live) = live {
            live.gauge(
                "lddp_engine_table_bytes",
                &[("memory_mode", "full")],
                "Peak DP working-set bytes of the most recent solve, by memory mode.",
            )
            .set((dims.len() * std::mem::size_of::<K::Cell>()) as f64);
        }
        // A live registry forces the instrumented path too: it needs
        // the same per-wave timestamps the sink does.
        let traced = sink.enabled() || live.is_some();
        // The bulk and SIMD paths are only sound when the executed
        // pattern is the set's own classification: only then are all of
        // a run's dependencies in strictly earlier waves with the
        // contiguity property `Layout::interior_runs` relies on
        // (resolve_exec enforces this).
        let (tier, bulk_kernel) = self.resolve_exec(kernel, pattern);
        let lanes = bulk_kernel.map_or(1, |e| e.lanes());

        if threads == 1 && !traced {
            if bulk_kernel.is_none() {
                return lddp_core::seq::solve_wavefront_as(kernel, pattern, layout_kind);
            }
            // Single-threaded bulk: same run decomposition, no pool.
            let layout = grid.layout().clone();
            let cells = SharedCells::new(grid.as_mut_slice());
            for w in 0..num_waves {
                let len = pattern.wave_len(dims.rows, dims.cols, w);
                let runs = layout.interior_runs(pattern, set, w);
                // SAFETY: one thread computes waves in order; every
                // dependency of wave `w` was written in an earlier wave.
                unsafe {
                    compute_chunk_auto(
                        kernel,
                        bulk_kernel,
                        set,
                        pattern,
                        dims,
                        &layout,
                        &runs,
                        &cells,
                        w,
                        0..len,
                    );
                }
            }
            return Ok(grid);
        }

        // Single thread, instrumented, no injector: the pool cannot win
        // with one worker — dispatching to it would pay job hand-off,
        // a spin barrier per wave, and a worker context switch for no
        // parallelism. Compute inline on the calling thread and emit
        // the same spans and live families from here. (Faulted runs
        // stay on the pool so injected panics keep their isolation and
        // per-(worker, wave) draw sequence.)
        if threads == 1 && injector.is_none() {
            let layout = grid.layout().clone();
            let cells = SharedCells::new(grid.as_mut_slice());
            let epoch = Instant::now();
            let want_spans = sink.enabled();
            let mut spans: Vec<(usize, f64, f64, usize)> = Vec::new();
            let mut t0 = 0.0;
            for w in 0..num_waves {
                let len = pattern.wave_len(dims.rows, dims.cols, w);
                let runs = if bulk_kernel.is_some() {
                    layout.interior_runs(pattern, set, w)
                } else {
                    Vec::new()
                };
                // SAFETY: as in the untraced single-threaded path.
                unsafe {
                    compute_chunk_auto(
                        kernel,
                        bulk_kernel,
                        set,
                        pattern,
                        dims,
                        &layout,
                        &runs,
                        &cells,
                        w,
                        0..len,
                    );
                }
                // Per-wave clocks only when spans are wanted; a live
                // registry needs just the whole-solve aggregates.
                if want_spans {
                    let t1 = epoch.elapsed().as_secs_f64();
                    if len > 0 {
                        spans.push((w, t0, t1 - t0, len));
                    }
                    t0 = t1;
                }
            }
            let busy_s = epoch.elapsed().as_secs_f64();
            if want_spans {
                for &(w, start_s, dur_s, owned) in &spans {
                    sink.span(
                        Span::new("wave", tracks::worker(0), start_s, dur_s)
                            .with_arg("wave", w)
                            .with_arg("cells", owned)
                            .with_arg("tier", tier.as_str()),
                    );
                }
                sink.sample(tracks::worker(0), "worker.busy_s", busy_s, busy_s);
                sink.count("parallel.waves", num_waves as u64);
                sink.count("parallel.cells", dims.len() as u64);
                sink.count("parallel.workers", 1);
                sink.count(
                    match tier {
                        ExecTier::Scalar => "parallel.tier.scalar",
                        ExecTier::Bulk => "parallel.tier.bulk",
                        ExecTier::Simd => "parallel.tier.simd",
                        ExecTier::BitParallel => "parallel.tier.bitparallel",
                    },
                    1,
                );
            }
            if let Some(live) = live {
                // Register the barrier family too (zero observations:
                // no barrier ran) so the exposition keeps its shape
                // regardless of thread count.
                live.histogram(
                    "lddp_pool_barrier_wait_seconds",
                    &[],
                    "Time pool workers spent blocked at the inter-wave barrier.",
                );
                live.fcounter(
                    "lddp_pool_worker_busy_seconds_total",
                    &[("worker", "0")],
                    "Cumulative compute time per pool worker.",
                )
                .add(busy_s);
                live.counter(
                    "lddp_pool_solves_total",
                    &[("tier", tier.as_str())],
                    "Pooled solves completed, by execution tier.",
                )
                .inc();
                live.counter("lddp_pool_waves_total", &[], "Waves executed by the pool.")
                    .add(num_waves as u64);
                live.counter(
                    "lddp_pool_cells_total",
                    &[],
                    "Grid cells computed by the pool.",
                )
                .add(dims.len() as u64);
            }
            return Ok(grid);
        }

        let layout = grid.layout().clone();
        let cells = SharedCells::new(grid.as_mut_slice());
        // Interior runs are a function of (pattern, set, wave) only —
        // compute them once, outside the workers.
        let runs_by_wave: Vec<Vec<Range<usize>>> = if bulk_kernel.is_some() {
            (0..num_waves)
                .map(|w| layout.interior_runs(pattern, set, w))
                .collect()
        } else {
            Vec::new()
        };
        let no_runs: Vec<Range<usize>> = Vec::new();
        let pool = self.pool();

        // Injected faults surface as worker panics; an inactive
        // injector costs one branch per (worker, wave).
        let chaos_injected = |site: &str| {
            if let Some(live) = live {
                live.counter(
                    "lddp_chaos_injected_total",
                    &[("site", site)],
                    "Faults injected by the attached chaos plan, by site.",
                )
                .inc();
            }
        };
        let inject = |t: usize, w: usize| {
            if let Some(inj) = injector {
                if bulk_kernel.is_some() && inj.bulk_panic(w) {
                    chaos_injected("bulk_panic");
                    panic!("injected bulk fault at wave {w}");
                }
                if inj.worker_panic(t, w) {
                    chaos_injected("worker_panic");
                    panic!("injected worker panic: worker {t} wave {w}");
                }
            }
        };

        if !traced {
            let r = pool.try_run(threads, &|t| {
                for w in 0..num_waves {
                    inject(t, w);
                    let len = pattern.wave_len(dims.rows, dims.cols, w);
                    let runs = runs_by_wave.get(w).unwrap_or(&no_runs);
                    // SAFETY: chunks of a wave are disjoint across
                    // workers; the pool barrier seals each wave before
                    // the next reads it.
                    unsafe {
                        compute_chunk_auto(
                            kernel,
                            bulk_kernel,
                            set,
                            pattern,
                            dims,
                            &layout,
                            runs,
                            &cells,
                            w,
                            chunk_aligned(t, threads, len, lanes),
                        );
                    }
                    pool.barrier().wait();
                }
            });
            Self::map_pool_result(pool, r)?;
            return Ok(grid);
        }

        let epoch = Instant::now();
        // Spans only feed the sink; on a live-registry-only run, skip
        // collecting them (the registry needs just the aggregates).
        let want_spans = sink.enabled();
        let slots: Vec<Mutex<WorkerTrace>> = (0..threads)
            .map(|_| Mutex::new(WorkerTrace::default()))
            .collect();
        let r = pool.try_run(threads, &|t| {
            let mut tr = WorkerTrace::default();
            // Two clock reads per wave, not three: each wave starts at
            // the previous wave's barrier exit (the inter-wave setup it
            // absorbs into busy time is tens of nanoseconds).
            let mut t0 = epoch.elapsed().as_secs_f64();
            for w in 0..num_waves {
                inject(t, w);
                let len = pattern.wave_len(dims.rows, dims.cols, w);
                let my = chunk_aligned(t, threads, len, lanes);
                let owned = my.len();
                let runs = runs_by_wave.get(w).unwrap_or(&no_runs);
                // SAFETY: as in the untraced path.
                unsafe {
                    compute_chunk_auto(
                        kernel,
                        bulk_kernel,
                        set,
                        pattern,
                        dims,
                        &layout,
                        runs,
                        &cells,
                        w,
                        my,
                    );
                }
                let t1 = epoch.elapsed().as_secs_f64();
                pool.barrier().wait();
                let t2 = epoch.elapsed().as_secs_f64();
                if want_spans && owned > 0 {
                    tr.spans.push((w, t0, t1 - t0, owned));
                }
                tr.busy_s += t1 - t0;
                tr.barrier_wait_s.push(t2 - t1);
                t0 = t2;
            }
            *slots[t].lock().unwrap_or_else(|e| e.into_inner()) = tr;
        });
        Self::map_pool_result(pool, r)?;
        let worker_traces: Vec<WorkerTrace> = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect();

        let total_s = epoch.elapsed().as_secs_f64();
        if sink.enabled() {
            for (t, tr) in worker_traces.iter().enumerate() {
                for &(w, start_s, dur_s, owned) in &tr.spans {
                    sink.span(
                        Span::new("wave", tracks::worker(t), start_s, dur_s)
                            .with_arg("wave", w)
                            .with_arg("cells", owned)
                            .with_arg("tier", tier.as_str()),
                    );
                }
                sink.sample(tracks::worker(t), "worker.busy_s", total_s, tr.busy_s);
                for &wait_s in &tr.barrier_wait_s {
                    sink.observe("parallel.barrier_wait_s", wait_s);
                }
            }
            sink.count("parallel.waves", num_waves as u64);
            sink.count("parallel.cells", dims.len() as u64);
            sink.count("parallel.workers", threads as u64);
            sink.count(
                match tier {
                    ExecTier::Scalar => "parallel.tier.scalar",
                    ExecTier::Bulk => "parallel.tier.bulk",
                    ExecTier::Simd => "parallel.tier.simd",
                    ExecTier::BitParallel => "parallel.tier.bitparallel",
                },
                1,
            );
        }
        if let Some(live) = live {
            let waits = live.histogram(
                "lddp_pool_barrier_wait_seconds",
                &[],
                "Time pool workers spent blocked at the inter-wave barrier.",
            );
            for (t, tr) in worker_traces.iter().enumerate() {
                live.fcounter(
                    "lddp_pool_worker_busy_seconds_total",
                    &[("worker", &t.to_string())],
                    "Cumulative compute time per pool worker.",
                )
                .add(tr.busy_s);
                for &wait_s in &tr.barrier_wait_s {
                    waits.observe(wait_s);
                }
            }
            live.counter(
                "lddp_pool_solves_total",
                &[("tier", tier.as_str())],
                "Pooled solves completed, by execution tier.",
            )
            .inc();
            live.counter("lddp_pool_waves_total", &[], "Waves executed by the pool.")
                .add(num_waves as u64);
            live.counter(
                "lddp_pool_cells_total",
                &[],
                "Grid cells computed by the pool.",
            )
            .add(dims.len() as u64);
        }

        Ok(grid)
    }
}

impl Default for ParallelEngine {
    fn default() -> Self {
        ParallelEngine::host()
    }
}

/// How a streaming rolling solve emits its bands — the argument of
/// [`ParallelEngine::solve_rolling_stream`].
pub struct StreamHook<'a, C> {
    /// Requested band count; the schedule clamps it to the wave count,
    /// so tiny grids emit fewer (but at least one) bands.
    pub bands: usize,
    /// Projects a frontier cell to the frame's running score.
    pub score_of: fn(&C) -> f64,
    /// Called once per sealed band, in band order, from inside the
    /// solve. May block (that is the backpressure path); returns
    /// `false` to stop further emission while the solve completes.
    pub emit: &'a (dyn Fn(rolling::BandEvent) -> bool + Sync),
}

/// Result of a rolling (wave-band) solve. There is no grid — that is
/// the point: only the answers the caller asked the band walk to
/// capture, plus what the solve used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollingSolve<C> {
    /// Bottom-right cell (`None` only for empty tables) — the answer
    /// cell for corner-answer problems.
    pub corner: Option<C>,
    /// `(i, j, cell)` of the arg-best cell under the requested score
    /// (ties to the earliest cell in wave order), when one was
    /// requested.
    pub best: Option<(usize, usize, C)>,
    /// Tier the interior runs executed on.
    pub tier: ExecTier,
    /// Waves walked.
    pub waves: usize,
    /// Peak working-set bytes: the three ring bands. This is what the
    /// `lddp_engine_table_bytes{memory_mode="rolling"}` gauge reports.
    pub peak_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::cell::{ContributingSet, RepCell};
    use lddp_core::kernel::ClosureKernel;
    use lddp_core::seq::solve_row_major;
    use lddp_core::wavefront::Dims;
    use lddp_trace::Recorder;

    fn mix_kernel(
        dims: Dims,
        set: ContributingSet,
    ) -> ClosureKernel<u64, impl Fn(usize, usize, &Neighbors<u64>) -> u64 + Sync> {
        ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
            let mut acc = (i as u64) << 20 | (j as u64 + 7);
            for c in RepCell::ALL {
                if let Some(v) = n.get(c) {
                    acc = acc.wrapping_mul(1099511628211).wrapping_add(*v);
                }
            }
            acc
        })
    }

    /// The same arithmetic as [`mix_kernel`], with a bulk path for
    /// anti-diagonal sets. Exercises scalar/bulk equivalence.
    struct BulkMix {
        dims: Dims,
        set: ContributingSet,
    }

    impl Kernel for BulkMix {
        type Cell = u64;

        fn dims(&self) -> Dims {
            self.dims
        }

        fn contributing_set(&self) -> ContributingSet {
            self.set
        }

        fn compute(&self, i: usize, j: usize, n: &Neighbors<u64>) -> u64 {
            let mut acc = (i as u64) << 20 | (j as u64 + 7);
            for c in RepCell::ALL {
                if let Some(v) = n.get(c) {
                    acc = acc.wrapping_mul(1099511628211).wrapping_add(*v);
                }
            }
            acc
        }

        fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = u64>> {
            // The bulk body below walks anti-diagonal runs only.
            (classify(self.set) == Some(Pattern::AntiDiagonal)).then_some(self as _)
        }
    }

    impl WaveKernel for BulkMix {
        fn compute_run(
            &self,
            i: usize,
            j0: usize,
            out: &mut [u64],
            w: &[u64],
            nw: &[u64],
            n: &[u64],
            ne: &[u64],
        ) {
            for p in 0..out.len() {
                let (ci, cj) = (i - p, j0 + p);
                let mut acc = (ci as u64) << 20 | (cj as u64 + 7);
                // Same fold order as the scalar path: W, NW, N, NE.
                for sl in [w, nw, n, ne] {
                    if !sl.is_empty() {
                        acc = acc.wrapping_mul(1099511628211).wrapping_add(sl[p]);
                    }
                }
                out[p] = acc;
            }
        }
    }

    #[test]
    fn chunks_tile_the_range() {
        for n in 1..9 {
            for len in [0usize, 1, 5, 8, 9, 100] {
                let mut next = 0;
                for t in 0..n {
                    let c = chunk_aligned(t, n, len, 1);
                    assert_eq!(c.start, next);
                    next = c.end;
                }
                assert_eq!(next, len, "threads={n} len={len}");
                // Balanced within one cell.
                let sizes: Vec<usize> = (0..n).map(|t| chunk_aligned(t, n, len, 1).len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn matches_oracle_for_all_sets_and_thread_counts() {
        for set in ContributingSet::table_one_rows() {
            let pattern = classify(set).unwrap();
            if !pattern.is_canonical() {
                continue;
            }
            let dims = Dims::new(13, 11);
            let kernel = mix_kernel(dims, set);
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            for threads in [1, 2, 3, 8] {
                let engine = ParallelEngine::new(threads);
                let got = engine.solve(&kernel).unwrap();
                assert_eq!(got.to_row_major(), oracle, "{set} threads={threads}");
            }
        }
    }

    #[test]
    fn thin_tables_and_tiny_tables() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        for (r, c) in [(1, 1), (1, 64), (64, 1), (2, 2)] {
            let dims = Dims::new(r, c);
            let kernel = mix_kernel(dims, set);
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            let got = ParallelEngine::new(4).solve(&kernel).unwrap();
            assert_eq!(got.to_row_major(), oracle, "{r}x{c}");
        }
    }

    #[test]
    fn empty_table_is_fine() {
        let set = ContributingSet::new(&[RepCell::N]);
        let kernel = mix_kernel(Dims::new(0, 8), set);
        let got = ParallelEngine::new(4).solve(&kernel).unwrap();
        assert_eq!(got.as_slice().len(), 0);
    }

    #[test]
    fn empty_set_is_rejected() {
        let kernel = mix_kernel(Dims::new(4, 4), ContributingSet::EMPTY);
        assert!(matches!(
            ParallelEngine::new(2).solve(&kernel),
            Err(Error::EmptyContributingSet)
        ));
    }

    #[test]
    fn incompatible_pattern_is_rejected() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        let kernel = mix_kernel(Dims::new(4, 4), set);
        assert!(ParallelEngine::new(2)
            .solve_as(&kernel, Pattern::Horizontal)
            .is_err());
    }

    #[test]
    fn nw_problem_under_horizontal_matches() {
        let set = ContributingSet::new(&[RepCell::Nw]);
        let dims = Dims::new(17, 9);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let il = ParallelEngine::new(4)
            .solve_as(&kernel, Pattern::InvertedL)
            .unwrap();
        let h1 = ParallelEngine::new(4)
            .solve_as(&kernel, Pattern::Horizontal)
            .unwrap();
        assert_eq!(il.to_row_major(), oracle);
        assert_eq!(h1.to_row_major(), oracle);
    }

    #[test]
    fn deterministic_across_runs_and_threads() {
        let set = ContributingSet::FULL;
        let dims = Dims::new(37, 23);
        let kernel = mix_kernel(dims, set);
        let base = ParallelEngine::new(2)
            .solve(&kernel)
            .unwrap()
            .to_row_major();
        for threads in [3, 5, 16] {
            let got = ParallelEngine::new(threads).solve(&kernel).unwrap();
            assert_eq!(got.to_row_major(), base, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_cells_is_clamped() {
        let set = ContributingSet::new(&[RepCell::N]);
        let dims = Dims::new(2, 2);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let got = ParallelEngine::new(64).solve(&kernel).unwrap();
        assert_eq!(got.to_row_major(), oracle);
    }

    #[test]
    fn larger_stress_run() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let dims = Dims::new(257, 193);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let got = ParallelEngine::new(8).solve(&kernel).unwrap();
        assert_eq!(got.to_row_major(), oracle);
    }

    #[test]
    fn host_engine_reports_threads() {
        assert!(ParallelEngine::host().threads() >= 1);
        assert_eq!(ParallelEngine::new(0).threads(), 1);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_everything() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let dims = Dims::new(37, 29);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let threads = 3;
        let rec = Recorder::new();
        let got = ParallelEngine::new(threads)
            .solve_traced(&kernel, &rec)
            .unwrap();
        assert_eq!(got.to_row_major(), oracle);

        let data = rec.snapshot();
        let waves = Pattern::AntiDiagonal.num_waves(dims.rows, dims.cols);
        assert_eq!(data.counters["parallel.waves"], waves as u64);
        assert_eq!(data.counters["parallel.cells"], dims.len() as u64);
        assert_eq!(data.counters["parallel.workers"], threads as u64);

        // Every worker lane has spans, and they sum to the cell count.
        let mut cells = 0u64;
        for t in 0..threads {
            let lane: Vec<_> = data
                .spans
                .iter()
                .filter(|s| s.track == tracks::worker(t))
                .collect();
            assert!(!lane.is_empty(), "worker {t} has no spans");
            for s in &lane {
                assert_eq!(s.name, "wave");
                assert!(s.dur_s >= 0.0);
                let c = s
                    .args
                    .iter()
                    .find(|(k, _)| *k == "cells")
                    .map(|(_, v)| match v {
                        lddp_trace::ArgValue::U64(n) => *n,
                        _ => 0,
                    })
                    .unwrap();
                assert!(c > 0, "empty chunks must not produce spans");
                cells += c;
            }
            // Lane spans are time-ordered.
            for w in lane.windows(2) {
                assert!(w[0].start_s <= w[1].start_s);
            }
        }
        assert_eq!(cells, dims.len() as u64);

        // Barrier waits: one observation per (worker, wave).
        let h = &data.histograms["parallel.barrier_wait_s"];
        assert_eq!(h.count, (threads * waves) as u64);
        // Per-worker busy-time samples on the worker lanes.
        let busy: Vec<_> = data
            .samples
            .iter()
            .filter(|s| s.name == "worker.busy_s")
            .collect();
        assert_eq!(busy.len(), threads);
        assert!(busy.iter().all(|s| s.value >= 0.0));
    }

    #[test]
    fn traced_single_thread_still_records() {
        // threads == 1 normally short-circuits to the sequential solver;
        // with a live sink it must still go through the instrumented path.
        let set = ContributingSet::new(&[RepCell::N]);
        let dims = Dims::new(9, 5);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let rec = Recorder::new();
        let got = ParallelEngine::new(1).solve_traced(&kernel, &rec).unwrap();
        assert_eq!(got.to_row_major(), oracle);
        let data = rec.snapshot();
        assert_eq!(data.counters["parallel.workers"], 1);
        assert!(!data.spans.is_empty());
    }

    #[test]
    fn null_sink_takes_the_untraced_path() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        let kernel = mix_kernel(Dims::new(16, 16), set);
        let a = ParallelEngine::new(4).solve(&kernel).unwrap();
        let b = ParallelEngine::new(4)
            .solve_traced(&kernel, &NullSink)
            .unwrap();
        assert_eq!(a.to_row_major(), b.to_row_major());
    }

    #[test]
    fn bulk_path_matches_scalar_and_oracle() {
        let sets = [
            ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
            ContributingSet::FULL,
            ContributingSet::new(&[RepCell::W, RepCell::N]),
            ContributingSet::new(&[RepCell::Nw]), // bulk hook declines: scalar fallback
        ];
        for set in sets {
            for (r, c) in [(13, 11), (1, 9), (9, 1), (37, 23), (5, 64), (64, 5)] {
                let kernel = BulkMix {
                    dims: Dims::new(r, c),
                    set,
                };
                let oracle = solve_row_major(&kernel).unwrap().to_row_major();
                for threads in [1, 2, 5] {
                    let bulk = ParallelEngine::new(threads).solve(&kernel).unwrap();
                    let scalar = ParallelEngine::new(threads)
                        .with_bulk_enabled(false)
                        .solve(&kernel)
                        .unwrap();
                    assert_eq!(bulk.to_row_major(), oracle, "{set} {r}x{c} t={threads}");
                    assert_eq!(scalar.to_row_major(), oracle, "{set} {r}x{c} t={threads}");
                }
            }
        }
    }

    #[test]
    fn bulk_is_skipped_under_a_non_classified_pattern() {
        // {W, NW, N} classifies AntiDiagonal; forcing another compatible
        // execution pattern must not take the bulk path (the kernel's
        // run body walks anti-diagonals). InvertedL is compatible with
        // the full set's subsets? Use the {NW} kernel under Horizontal:
        // classify({NW}) == InvertedL != Horizontal, so the gate closes
        // even though the hook would be consulted under InvertedL.
        let kernel = BulkMix {
            dims: Dims::new(17, 9),
            set: ContributingSet::new(&[RepCell::Nw]),
        };
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let got = ParallelEngine::new(4)
            .solve_as(&kernel, Pattern::Horizontal)
            .unwrap();
        assert_eq!(got.to_row_major(), oracle);
    }

    #[test]
    fn traced_bulk_run_keeps_span_accounting() {
        let kernel = BulkMix {
            dims: Dims::new(37, 29),
            set: ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
        };
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let rec = Recorder::new();
        let got = ParallelEngine::new(3).solve_traced(&kernel, &rec).unwrap();
        assert_eq!(got.to_row_major(), oracle);
        let data = rec.snapshot();
        let mut cells = 0u64;
        for s in &data.spans {
            for (k, v) in &s.args {
                if *k == "cells" {
                    if let lddp_trace::ArgValue::U64(n) = v {
                        cells += n;
                    }
                }
            }
        }
        assert_eq!(cells, kernel.dims.len() as u64, "bulk must not lose cells");
    }

    #[test]
    fn solve_with_threads_clamps_and_matches() {
        let kernel = BulkMix {
            dims: Dims::new(29, 31),
            set: ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
        };
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let engine = ParallelEngine::new(4);
        for active in [0, 1, 3, 4, 64] {
            let got = engine.solve_with_threads(&kernel, active).unwrap();
            assert_eq!(got.to_row_major(), oracle, "active={active}");
        }
    }

    #[test]
    fn tune_worker_count_sweeps_the_shared_pool() {
        let kernel = mix_kernel(
            Dims::new(48, 48),
            ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
        );
        let engine = ParallelEngine::new(4);
        let (best, sweep) = engine.tune_worker_count(&kernel, &[1, 2, 4, 4, 9]).unwrap();
        // 9 clamps to 4 and deduplicates: candidates are 1, 2, 4.
        assert_eq!(
            sweep.iter().map(|p| p.value).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert!(sweep.iter().all(|p| p.time >= 0.0));
        assert!([1, 2, 4].contains(&best));

        // Empty candidate list sweeps 1..=threads.
        let (_, full) = engine.tune_worker_count(&kernel, &[]).unwrap();
        assert_eq!(
            full.iter().map(|p| p.value).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn clones_share_the_worker_pool() {
        let engine = ParallelEngine::new(3);
        let kernel = mix_kernel(
            Dims::new(16, 16),
            ContributingSet::new(&[RepCell::W, RepCell::N]),
        );
        engine.solve(&kernel).unwrap(); // force pool creation
        let clone = engine.clone();
        clone.solve(&kernel).unwrap();
        assert!(Arc::ptr_eq(engine.pool(), clone.pool()));
    }

    #[test]
    fn bulk_flag_roundtrip() {
        let engine = ParallelEngine::new(2);
        assert!(engine.bulk_enabled());
        assert!(!engine.clone().with_bulk_enabled(false).bulk_enabled());
    }

    /// [`BulkMix`] plus a SIMD hook whose "vector" body is the bulk
    /// body — bit-identical by construction, so it can exercise tier
    /// dispatch, lane-aligned chunking and reporting on any host.
    struct SimdMix(BulkMix);

    impl Kernel for SimdMix {
        type Cell = u64;

        fn dims(&self) -> Dims {
            self.0.dims
        }

        fn contributing_set(&self) -> ContributingSet {
            self.0.set
        }

        fn compute(&self, i: usize, j: usize, n: &Neighbors<u64>) -> u64 {
            self.0.compute(i, j, n)
        }

        fn wave_kernel(&self) -> Option<&dyn WaveKernel<Cell = u64>> {
            self.0.wave_kernel().map(|_| self as _)
        }

        fn simd_kernel(&self) -> Option<&dyn SimdWaveKernel<Cell = u64>> {
            (classify(self.0.set) == Some(Pattern::AntiDiagonal)).then_some(self as _)
        }
    }

    impl WaveKernel for SimdMix {
        fn compute_run(
            &self,
            i: usize,
            j0: usize,
            out: &mut [u64],
            w: &[u64],
            nw: &[u64],
            n: &[u64],
            ne: &[u64],
        ) {
            self.0.compute_run(i, j0, out, w, nw, n, ne);
        }
    }

    impl SimdWaveKernel for SimdMix {
        fn lanes(&self) -> usize {
            4
        }

        fn compute_run_simd(
            &self,
            i: usize,
            j0: usize,
            out: &mut [u64],
            w: &[u64],
            nw: &[u64],
            n: &[u64],
            ne: &[u64],
        ) {
            self.compute_run(i, j0, out, w, nw, n, ne);
        }
    }

    fn anti_diag_set() -> ContributingSet {
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
    }

    #[test]
    fn tier_selection_pins_and_downgrades() {
        let simd_mix = SimdMix(BulkMix {
            dims: Dims::new(16, 16),
            set: anti_diag_set(),
        });
        let bulk_only = BulkMix {
            dims: Dims::new(16, 16),
            set: anti_diag_set(),
        };
        let scalar_only = mix_kernel(Dims::new(16, 16), anti_diag_set());
        let engine = ParallelEngine::new(2);

        let simd_auto = if simd_available() {
            ExecTier::Simd
        } else {
            ExecTier::Bulk
        };
        assert_eq!(engine.select_tier(&simd_mix), simd_auto);
        assert_eq!(engine.select_tier(&bulk_only), ExecTier::Bulk);
        assert_eq!(engine.select_tier(&scalar_only), ExecTier::Scalar);

        // Pins are honored where supported and downgrade where not.
        let pin = |t| ParallelEngine::new(2).with_tier(Some(t));
        assert_eq!(
            pin(ExecTier::Scalar).select_tier(&simd_mix),
            ExecTier::Scalar
        );
        assert_eq!(pin(ExecTier::Bulk).select_tier(&simd_mix), ExecTier::Bulk);
        assert_eq!(pin(ExecTier::Simd).select_tier(&bulk_only), ExecTier::Bulk);
        assert_eq!(
            pin(ExecTier::Simd).select_tier(&scalar_only),
            ExecTier::Scalar
        );
        // A bit-parallel pin is answer-level, not an engine tier: auto.
        assert_eq!(pin(ExecTier::BitParallel).select_tier(&simd_mix), simd_auto);
        // Disabling bulk forces scalar regardless of pins.
        assert_eq!(
            pin(ExecTier::Simd)
                .with_bulk_enabled(false)
                .select_tier(&simd_mix),
            ExecTier::Scalar
        );
        assert_eq!(engine.tier_override(), None);
        assert_eq!(
            engine
                .clone()
                .with_tier(Some(ExecTier::Simd))
                .tier_override(),
            Some(ExecTier::Simd)
        );
    }

    #[test]
    fn simd_tier_matches_oracle_across_shapes_and_threads() {
        for (r, c) in [(13, 11), (1, 9), (9, 1), (37, 23), (5, 64), (64, 5)] {
            let kernel = SimdMix(BulkMix {
                dims: Dims::new(r, c),
                set: anti_diag_set(),
            });
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            for threads in [1, 2, 5] {
                for tier in [None, Some(ExecTier::Scalar), Some(ExecTier::Bulk)] {
                    let engine = ParallelEngine::new(threads).with_tier(tier);
                    let got = engine.solve(&kernel).unwrap();
                    assert_eq!(got.to_row_major(), oracle, "{r}x{c} t={threads} {tier:?}");
                }
            }
        }
    }

    #[test]
    fn traced_solve_records_the_tier() {
        let kernel = SimdMix(BulkMix {
            dims: Dims::new(33, 29),
            set: anti_diag_set(),
        });
        let rec = Recorder::new();
        let engine = ParallelEngine::new(3);
        let tier = engine.select_tier(&kernel);
        engine.solve_traced(&kernel, &rec).unwrap();
        let data = rec.snapshot();
        assert_eq!(data.counters[&format!("parallel.tier.{tier}")], 1);
        let wave_spans: Vec<_> = data.spans.iter().filter(|s| s.name == "wave").collect();
        assert!(!wave_spans.is_empty());
        for s in wave_spans {
            let arg = s
                .args
                .iter()
                .find(|(k, _)| *k == "tier")
                .map(|(_, v)| v.clone());
            assert_eq!(
                arg,
                Some(lddp_trace::ArgValue::Str(tier.as_str().to_string())),
                "every wave span carries the resolved tier"
            );
        }
    }

    #[test]
    fn tune_tier_sweeps_available_tiers_and_picks_one() {
        let engine = ParallelEngine::new(2);
        let kernel = SimdMix(BulkMix {
            dims: Dims::new(48, 48),
            set: anti_diag_set(),
        });
        let (best, points) = engine.tune_tier(&kernel).unwrap();
        let tiers: Vec<ExecTier> = points.iter().map(|p| p.tier).collect();
        let mut expect = vec![ExecTier::Scalar, ExecTier::Bulk];
        if simd_available() {
            expect.push(ExecTier::Simd);
        }
        assert_eq!(tiers, expect);
        assert!(points.iter().all(|p| p.secs >= 0.0));
        assert!(tiers.contains(&best));

        // A kernel without bulk hooks sweeps only the scalar tier.
        let scalar_only = mix_kernel(Dims::new(24, 24), anti_diag_set());
        let (best, points) = engine.tune_tier(&scalar_only).unwrap();
        assert_eq!(best, ExecTier::Scalar);
        assert_eq!(points.len(), 1);
    }

    #[test]
    fn repeated_solves_reuse_the_engine() {
        let engine = ParallelEngine::new(3);
        let kernel = BulkMix {
            dims: Dims::new(33, 21),
            set: ContributingSet::FULL,
        };
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        for _ in 0..5 {
            assert_eq!(engine.solve(&kernel).unwrap().to_row_major(), oracle);
        }
    }

    /// Injector that panics a specific worker at a specific wave on the
    /// scalar/pooled path, or fails the bulk path, depending on flags.
    struct TestInjector {
        panic_worker: Option<(usize, usize)>,
        bulk_fail_wave: Option<usize>,
    }

    impl lddp_chaos::FaultInjector for TestInjector {
        fn active(&self) -> bool {
            true
        }

        fn worker_panic(&self, worker: usize, wave: usize) -> bool {
            self.panic_worker == Some((worker, wave))
        }

        fn bulk_panic(&self, wave: usize) -> bool {
            self.bulk_fail_wave == Some(wave)
        }
    }

    #[test]
    fn injected_worker_panic_fails_the_solve_not_the_engine() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        let dims = Dims::new(24, 24);
        let kernel = mix_kernel(dims, set);
        let engine = ParallelEngine::new(3);
        let inj = TestInjector {
            panic_worker: Some((1, 5)),
            bulk_fail_wave: None,
        };
        assert!(matches!(
            engine.solve_injected(&kernel, &inj),
            Err(Error::ExecutionPanicked { .. })
        ));
        // The same engine (and its pool) must serve the next solve.
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        assert_eq!(engine.solve(&kernel).unwrap().to_row_major(), oracle);
    }

    #[test]
    fn degradation_recovers_bulk_fault_via_scalar() {
        let kernel = BulkMix {
            dims: Dims::new(29, 23),
            set: ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
        };
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let engine = ParallelEngine::new(3);
        let inj = TestInjector {
            panic_worker: None,
            bulk_fail_wave: Some(2),
        };
        let (grid, steps) = engine.solve_degrading(&kernel, &inj).unwrap();
        assert_eq!(grid.to_row_major(), oracle);
        // Bulk failed, scalar succeeded: exactly one rung taken.
        assert_eq!(steps, vec![DegradeStep::BulkToScalar]);
    }

    #[test]
    fn degradation_falls_back_to_sequential_under_persistent_panics() {
        struct AlwaysPanic;
        impl lddp_chaos::FaultInjector for AlwaysPanic {
            fn active(&self) -> bool {
                true
            }
            fn worker_panic(&self, _worker: usize, wave: usize) -> bool {
                wave == 0
            }
        }
        let kernel = BulkMix {
            dims: Dims::new(21, 19),
            set: ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
        };
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let engine = ParallelEngine::new(3);
        let (grid, steps) = engine.solve_degrading(&kernel, &AlwaysPanic).unwrap();
        assert_eq!(grid.to_row_major(), oracle);
        assert_eq!(
            steps,
            vec![DegradeStep::BulkToScalar, DegradeStep::ParallelToSequential]
        );
        // And the engine still works normally afterwards.
        assert_eq!(engine.solve(&kernel).unwrap().to_row_major(), oracle);
    }

    #[test]
    fn live_registry_records_pool_families() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let kernel = BulkMix {
            dims: Dims::new(29, 23),
            set,
        };
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let reg = Arc::new(lddp_trace::live::LiveRegistry::new());
        let engine = ParallelEngine::new(3).with_live(Arc::clone(&reg));
        // The instrumented path a live registry forces must still be
        // correct, with a NullSink and with 1 active worker.
        assert_eq!(engine.solve(&kernel).unwrap().to_row_major(), oracle);
        assert_eq!(
            engine
                .solve_with_threads(&kernel, 1)
                .unwrap()
                .to_row_major(),
            oracle
        );
        let text = reg.to_prometheus();
        let series = lddp_trace::live::parse_prometheus(&text);
        let get = |name: &str| {
            series
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing series {name} in:\n{text}"))
        };
        let waves = classify(kernel.contributing_set())
            .map(Pattern::canonical)
            .unwrap()
            .num_waves(29, 23) as f64;
        assert_eq!(get("lddp_pool_waves_total"), 2.0 * waves);
        assert_eq!(get("lddp_pool_cells_total"), (2 * 29 * 23) as f64);
        assert!(get("lddp_pool_worker_busy_seconds_total{worker=\"0\"}") >= 0.0);
        assert!(get("lddp_pool_barrier_wait_seconds_count") >= waves);
        // Two solves, whatever tier each resolved to.
        let solves: f64 = series
            .iter()
            .filter(|(n, _)| n.starts_with("lddp_pool_solves_total"))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(solves, 2.0);
    }

    /// BENCH_pr5 regression: at 1 thread the engine must not stand up
    /// the persistent worker pool even when a live registry or trace
    /// sink forces the instrumented path. The pool's job hand-off and
    /// per-wave spin barrier made `pool_speedup < 1` on a single core
    /// while the families it records stayed mandatory for serving.
    #[test]
    fn single_thread_instrumented_solve_skips_the_pool() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let kernel = BulkMix {
            dims: Dims::new(24, 20),
            set,
        };
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();

        let reg = Arc::new(lddp_trace::live::LiveRegistry::new());
        let engine = ParallelEngine::new(1).with_live(Arc::clone(&reg));
        assert_eq!(engine.solve(&kernel).unwrap().to_row_major(), oracle);
        assert!(
            engine.pool.get().is_none(),
            "1-thread live solve created the worker pool"
        );
        let text = reg.to_prometheus();
        // Whole-solve aggregates still land…
        assert!(text.contains("lddp_pool_waves_total"), "{text}");
        assert!(text.contains("lddp_pool_cells_total"), "{text}");
        assert!(
            text.contains("lddp_pool_worker_busy_seconds_total{worker=\"0\"}"),
            "{text}"
        );
        // …and the barrier family keeps its exposition shape with zero
        // observations (no barrier ran).
        assert!(
            text.contains("lddp_pool_barrier_wait_seconds_count 0"),
            "{text}"
        );

        // Tracing at 1 thread records wave spans without the pool too.
        let rec = Recorder::new();
        let engine = ParallelEngine::new(1);
        let got = engine.solve_traced(&kernel, &rec).unwrap();
        assert_eq!(got.to_row_major(), oracle);
        assert!(engine.pool.get().is_none());
        // New accessors report a pool that was never created as healthy.
        assert_eq!(engine.pool_dead_workers(), 0);
        assert_eq!(engine.heal_pool(), 0);
    }

    #[test]
    fn live_registry_counts_injected_faults() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        let kernel = mix_kernel(Dims::new(24, 24), set);
        let reg = Arc::new(lddp_trace::live::LiveRegistry::new());
        let engine = ParallelEngine::new(3).with_live(Arc::clone(&reg));
        let inj = TestInjector {
            panic_worker: Some((1, 5)),
            bulk_fail_wave: None,
        };
        assert!(engine.solve_injected(&kernel, &inj).is_err());
        let text = reg.to_prometheus();
        assert!(
            text.contains("lddp_chaos_injected_total{site=\"worker_panic\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn no_faults_injector_changes_nothing() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        let kernel = mix_kernel(Dims::new(16, 16), set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let engine = ParallelEngine::new(3);
        let grid = engine
            .solve_injected(&kernel, &lddp_chaos::NoFaults)
            .unwrap();
        assert_eq!(grid.to_row_major(), oracle);
        let (grid, steps) = engine
            .solve_degrading(&kernel, &lddp_chaos::NoFaults)
            .unwrap();
        assert_eq!(grid.to_row_major(), oracle);
        assert!(steps.is_empty());
    }

    /// Score used by rolling arg-best tests (and analogous to the
    /// Smith–Waterman endpoint scan).
    fn cell_score(c: &u64) -> i64 {
        (*c % 100_003) as i64
    }

    #[test]
    fn rolling_matches_full_table_for_all_tiers_and_threads() {
        for (rows, cols) in [
            (1, 1),
            (1, 17),
            (17, 1),
            (2, 2),
            (13, 29),
            (29, 13),
            (31, 31),
        ] {
            let kernel = SimdMix(BulkMix {
                dims: Dims::new(rows, cols),
                set: anti_diag_set(),
            });
            let grid = solve_row_major(&kernel).unwrap();
            let want_corner = grid.get(rows - 1, cols - 1);
            let mut want_best = i64::MIN;
            for i in 0..rows {
                for j in 0..cols {
                    want_best = want_best.max(cell_score(&grid.get(i, j)));
                }
            }
            for threads in [1, 2, 3, 5] {
                for tier in [
                    None,
                    Some(ExecTier::Scalar),
                    Some(ExecTier::Bulk),
                    Some(ExecTier::Simd),
                ] {
                    let engine = ParallelEngine::new(threads).with_tier(tier);
                    let r = engine.solve_rolling(&kernel, Some(cell_score)).unwrap();
                    let label = format!("{rows}x{cols} threads={threads} tier={tier:?}");
                    assert_eq!(r.corner, Some(want_corner), "corner {label}");
                    let (bi, bj, bc) = r.best.expect("best captured");
                    assert_eq!(bc, grid.get(bi, bj), "best cell mismatch {label}");
                    assert_eq!(cell_score(&bc), want_best, "best score {label}");
                    assert_eq!(r.waves, rows + cols - 1, "{label}");
                    assert_eq!(r.peak_bytes, 3 * rows.min(cols) * 8, "{label}");
                }
            }
        }
    }

    #[test]
    fn rolling_stream_emits_ordered_bands_and_matches_plain_rolling() {
        for (rows, cols) in [(1, 1), (2, 2), (13, 29), (31, 31), (40, 9)] {
            let kernel = SimdMix(BulkMix {
                dims: Dims::new(rows, cols),
                set: anti_diag_set(),
            });
            for threads in [1, 2, 4] {
                for bands in [1, 4, 100] {
                    let engine = ParallelEngine::new(threads);
                    let want = engine.solve_rolling(&kernel, Some(cell_score)).unwrap();
                    let events = std::sync::Mutex::new(Vec::new());
                    let hook = StreamHook {
                        bands,
                        score_of: |c: &u64| *c as f64,
                        emit: &|ev| {
                            events.lock().unwrap().push(ev);
                            true
                        },
                    };
                    let got = engine
                        .solve_rolling_stream(&kernel, Some(cell_score), &hook)
                        .unwrap();
                    let label = format!("{rows}x{cols} threads={threads} bands={bands}");
                    assert_eq!(got.corner, want.corner, "{label}");
                    assert_eq!(got.best, want.best, "{label}");
                    let events = events.into_inner().unwrap();
                    let waves = rows + cols - 1;
                    assert!(!events.is_empty(), "{label}");
                    assert!(events.len() <= bands.min(waves), "{label}");
                    let mut cells = 0u64;
                    for (k, ev) in events.iter().enumerate() {
                        assert_eq!(ev.band, k, "band order {label}");
                        assert_eq!(ev.bands, events.len(), "schedule size {label}");
                        assert!(ev.cells_done > cells, "cells monotone {label}");
                        cells = ev.cells_done;
                        assert!(ev.rows_completed <= rows, "{label}");
                    }
                    let last = events.last().unwrap();
                    assert_eq!(last.cells_done, (rows * cols) as u64, "{label}");
                    assert_eq!(last.cells_total, (rows * cols) as u64, "{label}");
                    assert_eq!(last.rows_completed, rows, "{label}");
                    assert_eq!(last.wave_hi, waves - 1, "{label}");
                }
            }
        }
    }

    #[test]
    fn rolling_stream_halts_emission_when_hook_declines() {
        let kernel = SimdMix(BulkMix {
            dims: Dims::new(24, 24),
            set: anti_diag_set(),
        });
        let engine = ParallelEngine::new(3);
        let want = engine.solve_rolling(&kernel, Some(cell_score)).unwrap();
        let seen = std::sync::atomic::AtomicUsize::new(0);
        let hook = StreamHook {
            bands: 8,
            score_of: |c: &u64| *c as f64,
            emit: &|_| seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst) < 2,
        };
        // The solve still finishes exactly even after the consumer bails.
        let got = engine
            .solve_rolling_stream(&kernel, Some(cell_score), &hook)
            .unwrap();
        assert_eq!(got.corner, want.corner);
        assert_eq!(got.best, want.best);
        assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn rolling_rejects_non_antidiagonal_sets() {
        let kernel = mix_kernel(Dims::new(8, 8), ContributingSet::new(&[RepCell::W]));
        let engine = ParallelEngine::new(2);
        assert!(matches!(
            engine.solve_rolling(&kernel, None),
            Err(Error::PlanMismatch { .. })
        ));
    }

    #[test]
    fn rolling_degrades_under_injection_and_stays_exact() {
        let kernel = SimdMix(BulkMix {
            dims: Dims::new(25, 21),
            set: anti_diag_set(),
        });
        let grid = solve_row_major(&kernel).unwrap();
        let want = grid.get(24, 20);

        // A bulk-path fault degrades to the scalar tier.
        let engine = ParallelEngine::new(3);
        let inj = TestInjector {
            panic_worker: None,
            bulk_fail_wave: Some(3),
        };
        let (r, steps) = engine
            .solve_rolling_degrading(&kernel, Some(cell_score), &inj)
            .unwrap();
        assert_eq!(r.corner, Some(want));
        assert!(r.best.is_some());
        assert_eq!(steps, vec![DegradeStep::BulkToScalar]);

        // Persistent worker panics fall back to the sequential walk.
        struct AlwaysPanic;
        impl lddp_chaos::FaultInjector for AlwaysPanic {
            fn active(&self) -> bool {
                true
            }
            fn worker_panic(&self, _worker: usize, wave: usize) -> bool {
                wave == 0
            }
        }
        let (r, steps) = engine
            .solve_rolling_degrading(&kernel, None, &AlwaysPanic)
            .unwrap();
        assert_eq!(r.corner, Some(want));
        assert_eq!(
            steps,
            vec![DegradeStep::BulkToScalar, DegradeStep::ParallelToSequential]
        );
        // A plain injected rolling solve surfaces the panic as an error
        // and leaves the engine healthy.
        assert!(matches!(
            engine.solve_rolling_injected(&kernel, None, &AlwaysPanic),
            Err(Error::ExecutionPanicked { .. })
        ));
        assert_eq!(engine.pool_dead_workers(), 0);
        assert_eq!(
            engine.solve_rolling(&kernel, None).unwrap().corner,
            Some(want)
        );
    }

    #[test]
    fn single_worker_solves_never_start_the_pool() {
        let kernel = BulkMix {
            dims: Dims::new(24, 20),
            set: anti_diag_set(),
        };
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        // threads = 1 engine: grid and rolling solves both stay inline.
        let engine = ParallelEngine::new(1);
        assert_eq!(engine.solve(&kernel).unwrap().to_row_major(), oracle);
        engine.solve_rolling(&kernel, None).unwrap();
        assert!(!engine.pool_started(), "1-worker plan spun up the pool");
        // A wider engine clamped to one active worker also stays inline…
        let wide = ParallelEngine::new(4);
        wide.solve_with_threads(&kernel, 1).unwrap();
        assert!(!wide.pool_started(), "active=1 plan spun up the pool");
        // …and only a genuinely multi-worker plan pays for the pool.
        wide.solve(&kernel).unwrap();
        assert!(wide.pool_started());
    }

    #[test]
    fn live_registry_records_table_bytes_by_memory_mode() {
        let kernel = BulkMix {
            dims: Dims::new(40, 30),
            set: anti_diag_set(),
        };
        let reg = Arc::new(lddp_trace::live::LiveRegistry::new());
        let engine = ParallelEngine::new(2).with_live(Arc::clone(&reg));
        engine.solve(&kernel).unwrap();
        engine.solve_rolling(&kernel, None).unwrap();
        let text = reg.to_prometheus();
        let series = lddp_trace::live::parse_prometheus(&text);
        let get = |name: &str| {
            series
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing series {name} in:\n{text}"))
        };
        let full = get("lddp_engine_table_bytes{memory_mode=\"full\"}");
        let rolling_bytes = get("lddp_engine_table_bytes{memory_mode=\"rolling\"}");
        assert_eq!(full, (40 * 30 * 8) as f64);
        assert_eq!(rolling_bytes, (3 * 30 * 8) as f64);
        assert!(rolling_bytes < full);
    }
}
