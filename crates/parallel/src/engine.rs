//! Real wavefront execution on host threads.
//!
//! This is the substitute for the paper's OpenMP 3.0 CPU path (§II-A,
//! §IV-A): a few heavy-weight worker threads, each responsible for a
//! contiguous chunk of every wave, synchronized by a barrier between
//! waves. Unlike `hetero-sim` this engine runs on the wall clock — it is
//! what the Criterion benchmarks measure.
//!
//! [`ParallelEngine::solve_traced`] runs the same algorithm with
//! wall-clock instrumentation: one span per non-empty (worker, wave)
//! chunk, per-worker busy time, and a histogram of time spent waiting at
//! the inter-wave barrier — the otherwise invisible synchronization cost
//! of the heavy-thread design. With a disabled sink it falls through to
//! the untraced path, so `NullSink` costs nothing.
//!
//! # Safety architecture
//!
//! Workers share one backing array. Within a wave each worker writes a
//! *disjoint* chunk of that wave's contiguous range (wave-major layout),
//! and reads only cells from strictly earlier waves — guaranteed by the
//! pattern-compatibility check (`schedule::compatible`) and re-asserted
//! in debug builds. A [`std::sync::Barrier`] separates waves, carrying
//! the release/acquire edges that make earlier-wave writes visible. The
//! one `unsafe` block below encapsulates exactly this discipline.

use lddp_core::cell::ContributingSet;
use lddp_core::grid::{Grid, Layout, LayoutKind};
use lddp_core::kernel::{Kernel, Neighbors};
use lddp_core::pattern::{classify, Pattern};
use lddp_core::schedule::compatible;
use lddp_core::wavefront::{self, Dims};
use lddp_core::{Error, Result};
use lddp_trace::{tracks, NullSink, Span, TraceSink};
use std::sync::Barrier;
use std::time::Instant;

/// Shared mutable cell store with externally enforced aliasing
/// discipline (see module docs).
struct SharedCells<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: all concurrent access goes through `read`/`write` under the
// wave/barrier discipline documented on the module: writes within a wave
// target pairwise-disjoint indices, reads target indices finalized before
// the last barrier.
unsafe impl<T: Send> Sync for SharedCells<T> {}

impl<T: Copy> SharedCells<T> {
    fn new(slice: &mut [T]) -> Self {
        SharedCells {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Reads a cell finalized in an earlier wave.
    ///
    /// # Safety
    /// `idx < len` and no thread may be writing `idx` concurrently (it
    /// belongs to a wave sealed by a barrier).
    #[inline]
    unsafe fn read(&self, idx: usize) -> T {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) }
    }

    /// Writes a cell of the current wave.
    ///
    /// # Safety
    /// `idx < len` and `idx` is inside the calling worker's exclusive
    /// chunk of the current wave.
    #[inline]
    unsafe fn write(&self, idx: usize, v: T) {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) = v };
    }
}

/// The contiguous sub-range of `0..len` owned by worker `t` of `n`.
fn chunk(t: usize, n: usize, len: usize) -> std::ops::Range<usize> {
    let base = len / n;
    let extra = len % n;
    let start = t * base + t.min(extra);
    let end = start + base + usize::from(t < extra);
    start..end
}

/// Computes one worker's chunk of wave `w`.
///
/// # Safety
/// Caller upholds the wave/barrier discipline: `range` is this worker's
/// exclusive slice of wave `w`, and all of wave `w`'s dependencies are
/// sealed by an earlier barrier.
#[inline]
unsafe fn compute_chunk<K: Kernel>(
    kernel: &K,
    set: ContributingSet,
    pattern: Pattern,
    dims: Dims,
    layout: &Layout,
    cells: &SharedCells<K::Cell>,
    w: usize,
    range: std::ops::Range<usize>,
) {
    for pos in range {
        let (i, j) = wavefront::cell_at(pattern, dims, w, pos);
        let mut nbrs = Neighbors::empty();
        for dep in set.iter() {
            if let Some((si, sj)) = dep.source(i, j, dims.rows, dims.cols) {
                debug_assert!(
                    wavefront::wave_of(pattern, dims, si, sj) < w,
                    "dependency must be sealed"
                );
                // SAFETY: (si, sj) lies in a wave sealed by a previous
                // barrier (caller contract).
                let v = unsafe { cells.read(layout.index(si, sj)) };
                nbrs.set(dep, v);
            }
        }
        let v = kernel.compute(i, j, &nbrs);
        // SAFETY: `pos` is in this worker's exclusive chunk of wave `w`
        // (caller contract); wave ranges are disjoint.
        unsafe { cells.write(layout.index(i, j), v) };
    }
}

/// What one worker measured about itself during a traced run.
#[derive(Debug, Default)]
struct WorkerTrace {
    /// Non-empty chunks: (wave, start_s, dur_s, cells).
    spans: Vec<(usize, f64, f64, usize)>,
    /// Total compute time across all waves.
    busy_s: f64,
    /// Time spent blocked in `Barrier::wait`, one entry per wave.
    barrier_wait_s: Vec<f64>,
}

/// A chunk-per-thread wavefront solver.
#[derive(Debug, Clone)]
pub struct ParallelEngine {
    threads: usize,
}

impl ParallelEngine {
    /// Creates an engine with the given worker count (min 1).
    pub fn new(threads: usize) -> Self {
        ParallelEngine {
            threads: threads.max(1),
        }
    }

    /// Engine sized to the host's available parallelism.
    pub fn host() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelEngine::new(threads)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Solves the kernel under its classified canonical pattern.
    ///
    /// ```
    /// use lddp_parallel::ParallelEngine;
    /// use lddp_core::kernel::{ClosureKernel, Neighbors};
    /// use lddp_core::cell::{ContributingSet, RepCell};
    /// use lddp_core::wavefront::Dims;
    ///
    /// // Pascal's triangle as an LDDP kernel: C(i,j) = NW + N.
    /// let k = ClosureKernel::new(
    ///     Dims::new(8, 8),
    ///     ContributingSet::new(&[RepCell::Nw, RepCell::N]),
    ///     |_i, j, n: &Neighbors<u64>| match (n.nw, n.n) {
    ///         (Some(a), Some(b)) => a + b,
    ///         _ => u64::from(j == 0), // first row/column
    ///     },
    /// );
    /// let grid = ParallelEngine::new(4).solve(&k).unwrap();
    /// // Row i holds the binomial coefficients C(i, j).
    /// assert_eq!(grid.get(4, 2), 6);
    /// assert_eq!(grid.get(7, 3), 35);
    /// ```
    pub fn solve<K: Kernel>(&self, kernel: &K) -> Result<Grid<K::Cell>> {
        self.solve_traced(kernel, &NullSink)
    }

    /// Solves under an explicit compatible pattern (e.g. a `{NW}` problem
    /// under Horizontal, §V-B).
    pub fn solve_as<K: Kernel>(&self, kernel: &K, pattern: Pattern) -> Result<Grid<K::Cell>> {
        self.solve_as_traced(kernel, pattern, &NullSink)
    }

    /// [`solve`](ParallelEngine::solve) with wall-clock instrumentation
    /// through `sink` (see module docs for what is emitted). A disabled
    /// sink adds no work.
    pub fn solve_traced<K: Kernel>(
        &self,
        kernel: &K,
        sink: &dyn TraceSink,
    ) -> Result<Grid<K::Cell>> {
        let pattern = classify(kernel.contributing_set())
            .map(Pattern::canonical)
            .ok_or(Error::EmptyContributingSet)?;
        self.solve_as_traced(kernel, pattern, sink)
    }

    /// [`solve_as`](ParallelEngine::solve_as) with wall-clock
    /// instrumentation through `sink`.
    pub fn solve_as_traced<K: Kernel>(
        &self,
        kernel: &K,
        pattern: Pattern,
        sink: &dyn TraceSink,
    ) -> Result<Grid<K::Cell>> {
        if kernel.contributing_set().is_empty() {
            return Err(Error::EmptyContributingSet);
        }
        if !compatible(pattern, kernel.contributing_set()) {
            return Err(Error::PlanMismatch {
                expected: format!("{pattern}"),
                found: format!("{}", kernel.contributing_set()),
            });
        }
        let dims = kernel.dims();
        let layout_kind = LayoutKind::preferred_for(pattern);
        let mut grid: Grid<K::Cell> = Grid::new(layout_kind, dims);
        if dims.is_empty() {
            return Ok(grid);
        }
        let num_waves = pattern.num_waves(dims.rows, dims.cols);
        let threads = self.threads.min(dims.len()).max(1);
        let traced = sink.enabled();
        if threads == 1 && !traced {
            return lddp_core::seq::solve_wavefront_as(kernel, pattern, layout_kind);
        }

        let layout = grid.layout().clone();
        let cells = SharedCells::new(grid.as_mut_slice());
        let barrier = Barrier::new(threads);
        let set = kernel.contributing_set();

        if !traced {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let cells = &cells;
                    let barrier = &barrier;
                    let layout = &layout;
                    s.spawn(move || {
                        for w in 0..num_waves {
                            let len = pattern.wave_len(dims.rows, dims.cols, w);
                            // SAFETY: chunks of a wave are disjoint across
                            // workers; the barrier seals each wave before
                            // the next reads it.
                            unsafe {
                                compute_chunk(
                                    kernel,
                                    set,
                                    pattern,
                                    dims,
                                    layout,
                                    cells,
                                    w,
                                    chunk(t, threads, len),
                                );
                            }
                            barrier.wait();
                        }
                    });
                }
            });
            return Ok(grid);
        }

        let epoch = Instant::now();
        let worker_traces: Vec<WorkerTrace> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let cells = &cells;
                    let barrier = &barrier;
                    let layout = &layout;
                    s.spawn(move || {
                        let mut tr = WorkerTrace::default();
                        for w in 0..num_waves {
                            let len = pattern.wave_len(dims.rows, dims.cols, w);
                            let my = chunk(t, threads, len);
                            let owned = my.len();
                            let t0 = epoch.elapsed().as_secs_f64();
                            // SAFETY: as in the untraced path.
                            unsafe {
                                compute_chunk(kernel, set, pattern, dims, layout, cells, w, my);
                            }
                            let t1 = epoch.elapsed().as_secs_f64();
                            barrier.wait();
                            let t2 = epoch.elapsed().as_secs_f64();
                            if owned > 0 {
                                tr.spans.push((w, t0, t1 - t0, owned));
                            }
                            tr.busy_s += t1 - t0;
                            tr.barrier_wait_s.push(t2 - t1);
                        }
                        tr
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let total_s = epoch.elapsed().as_secs_f64();
        for (t, tr) in worker_traces.iter().enumerate() {
            for &(w, start_s, dur_s, owned) in &tr.spans {
                sink.span(
                    Span::new("wave", tracks::worker(t), start_s, dur_s)
                        .with_arg("wave", w)
                        .with_arg("cells", owned),
                );
            }
            sink.sample(tracks::worker(t), "worker.busy_s", total_s, tr.busy_s);
            for &wait_s in &tr.barrier_wait_s {
                sink.observe("parallel.barrier_wait_s", wait_s);
            }
        }
        sink.count("parallel.waves", num_waves as u64);
        sink.count("parallel.cells", dims.len() as u64);
        sink.count("parallel.workers", threads as u64);

        Ok(grid)
    }
}

impl Default for ParallelEngine {
    fn default() -> Self {
        ParallelEngine::host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::cell::{ContributingSet, RepCell};
    use lddp_core::kernel::ClosureKernel;
    use lddp_core::seq::solve_row_major;
    use lddp_core::wavefront::Dims;
    use lddp_trace::Recorder;

    fn mix_kernel(
        dims: Dims,
        set: ContributingSet,
    ) -> ClosureKernel<u64, impl Fn(usize, usize, &Neighbors<u64>) -> u64 + Sync> {
        ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
            let mut acc = (i as u64) << 20 | (j as u64 + 7);
            for c in RepCell::ALL {
                if let Some(v) = n.get(c) {
                    acc = acc.wrapping_mul(1099511628211).wrapping_add(*v);
                }
            }
            acc
        })
    }

    #[test]
    fn chunks_tile_the_range() {
        for n in 1..9 {
            for len in [0usize, 1, 5, 8, 9, 100] {
                let mut next = 0;
                for t in 0..n {
                    let c = chunk(t, n, len);
                    assert_eq!(c.start, next);
                    next = c.end;
                }
                assert_eq!(next, len, "threads={n} len={len}");
                // Balanced within one cell.
                let sizes: Vec<usize> = (0..n).map(|t| chunk(t, n, len).len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn matches_oracle_for_all_sets_and_thread_counts() {
        for set in ContributingSet::table_one_rows() {
            let pattern = classify(set).unwrap();
            if !pattern.is_canonical() {
                continue;
            }
            let dims = Dims::new(13, 11);
            let kernel = mix_kernel(dims, set);
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            for threads in [1, 2, 3, 8] {
                let engine = ParallelEngine::new(threads);
                let got = engine.solve(&kernel).unwrap();
                assert_eq!(got.to_row_major(), oracle, "{set} threads={threads}");
            }
        }
    }

    #[test]
    fn thin_tables_and_tiny_tables() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        for (r, c) in [(1, 1), (1, 64), (64, 1), (2, 2)] {
            let dims = Dims::new(r, c);
            let kernel = mix_kernel(dims, set);
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            let got = ParallelEngine::new(4).solve(&kernel).unwrap();
            assert_eq!(got.to_row_major(), oracle, "{r}x{c}");
        }
    }

    #[test]
    fn empty_table_is_fine() {
        let set = ContributingSet::new(&[RepCell::N]);
        let kernel = mix_kernel(Dims::new(0, 8), set);
        let got = ParallelEngine::new(4).solve(&kernel).unwrap();
        assert_eq!(got.as_slice().len(), 0);
    }

    #[test]
    fn empty_set_is_rejected() {
        let kernel = mix_kernel(Dims::new(4, 4), ContributingSet::EMPTY);
        assert!(matches!(
            ParallelEngine::new(2).solve(&kernel),
            Err(Error::EmptyContributingSet)
        ));
    }

    #[test]
    fn incompatible_pattern_is_rejected() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        let kernel = mix_kernel(Dims::new(4, 4), set);
        assert!(ParallelEngine::new(2)
            .solve_as(&kernel, Pattern::Horizontal)
            .is_err());
    }

    #[test]
    fn nw_problem_under_horizontal_matches() {
        let set = ContributingSet::new(&[RepCell::Nw]);
        let dims = Dims::new(17, 9);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let il = ParallelEngine::new(4)
            .solve_as(&kernel, Pattern::InvertedL)
            .unwrap();
        let h1 = ParallelEngine::new(4)
            .solve_as(&kernel, Pattern::Horizontal)
            .unwrap();
        assert_eq!(il.to_row_major(), oracle);
        assert_eq!(h1.to_row_major(), oracle);
    }

    #[test]
    fn deterministic_across_runs_and_threads() {
        let set = ContributingSet::FULL;
        let dims = Dims::new(37, 23);
        let kernel = mix_kernel(dims, set);
        let base = ParallelEngine::new(2)
            .solve(&kernel)
            .unwrap()
            .to_row_major();
        for threads in [3, 5, 16] {
            let got = ParallelEngine::new(threads).solve(&kernel).unwrap();
            assert_eq!(got.to_row_major(), base, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_cells_is_clamped() {
        let set = ContributingSet::new(&[RepCell::N]);
        let dims = Dims::new(2, 2);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let got = ParallelEngine::new(64).solve(&kernel).unwrap();
        assert_eq!(got.to_row_major(), oracle);
    }

    #[test]
    fn larger_stress_run() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let dims = Dims::new(257, 193);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let got = ParallelEngine::new(8).solve(&kernel).unwrap();
        assert_eq!(got.to_row_major(), oracle);
    }

    #[test]
    fn host_engine_reports_threads() {
        assert!(ParallelEngine::host().threads() >= 1);
        assert_eq!(ParallelEngine::new(0).threads(), 1);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_everything() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let dims = Dims::new(37, 29);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let threads = 3;
        let rec = Recorder::new();
        let got = ParallelEngine::new(threads)
            .solve_traced(&kernel, &rec)
            .unwrap();
        assert_eq!(got.to_row_major(), oracle);

        let data = rec.snapshot();
        let waves = Pattern::AntiDiagonal.num_waves(dims.rows, dims.cols);
        assert_eq!(data.counters["parallel.waves"], waves as u64);
        assert_eq!(data.counters["parallel.cells"], dims.len() as u64);
        assert_eq!(data.counters["parallel.workers"], threads as u64);

        // Every worker lane has spans, and they sum to the cell count.
        let mut cells = 0u64;
        for t in 0..threads {
            let lane: Vec<_> = data
                .spans
                .iter()
                .filter(|s| s.track == tracks::worker(t))
                .collect();
            assert!(!lane.is_empty(), "worker {t} has no spans");
            for s in &lane {
                assert_eq!(s.name, "wave");
                assert!(s.dur_s >= 0.0);
                let c = s
                    .args
                    .iter()
                    .find(|(k, _)| *k == "cells")
                    .map(|(_, v)| match v {
                        lddp_trace::ArgValue::U64(n) => *n,
                        _ => 0,
                    })
                    .unwrap();
                assert!(c > 0, "empty chunks must not produce spans");
                cells += c;
            }
            // Lane spans are time-ordered.
            for w in lane.windows(2) {
                assert!(w[0].start_s <= w[1].start_s);
            }
        }
        assert_eq!(cells, dims.len() as u64);

        // Barrier waits: one observation per (worker, wave).
        let h = &data.histograms["parallel.barrier_wait_s"];
        assert_eq!(h.count, (threads * waves) as u64);
        // Per-worker busy-time samples on the worker lanes.
        let busy: Vec<_> = data
            .samples
            .iter()
            .filter(|s| s.name == "worker.busy_s")
            .collect();
        assert_eq!(busy.len(), threads);
        assert!(busy.iter().all(|s| s.value >= 0.0));
    }

    #[test]
    fn traced_single_thread_still_records() {
        // threads == 1 normally short-circuits to the sequential solver;
        // with a live sink it must still go through the instrumented path.
        let set = ContributingSet::new(&[RepCell::N]);
        let dims = Dims::new(9, 5);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let rec = Recorder::new();
        let got = ParallelEngine::new(1).solve_traced(&kernel, &rec).unwrap();
        assert_eq!(got.to_row_major(), oracle);
        let data = rec.snapshot();
        assert_eq!(data.counters["parallel.workers"], 1);
        assert!(!data.spans.is_empty());
    }

    #[test]
    fn null_sink_takes_the_untraced_path() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        let kernel = mix_kernel(Dims::new(16, 16), set);
        let a = ParallelEngine::new(4).solve(&kernel).unwrap();
        let b = ParallelEngine::new(4)
            .solve_traced(&kernel, &NullSink)
            .unwrap();
        assert_eq!(a.to_row_major(), b.to_row_major());
    }
}
