//! Real wavefront execution on host threads.
//!
//! This is the substitute for the paper's OpenMP 3.0 CPU path (§II-A,
//! §IV-A): a few heavy-weight worker threads, each responsible for a
//! contiguous chunk of every wave, synchronized by a barrier between
//! waves. Unlike `hetero-sim` this engine runs on the wall clock — it is
//! what the Criterion benchmarks measure.
//!
//! # Safety architecture
//!
//! Workers share one backing array. Within a wave each worker writes a
//! *disjoint* chunk of that wave's contiguous range (wave-major layout),
//! and reads only cells from strictly earlier waves — guaranteed by the
//! pattern-compatibility check (`schedule::compatible`) and re-asserted
//! in debug builds. A [`std::sync::Barrier`] separates waves, carrying
//! the release/acquire edges that make earlier-wave writes visible. The
//! one `unsafe` block below encapsulates exactly this discipline.

use crossbeam::thread as cb_thread;
use lddp_core::grid::{Grid, LayoutKind};
use lddp_core::kernel::{Kernel, Neighbors};
use lddp_core::pattern::{classify, Pattern};
use lddp_core::schedule::compatible;
use lddp_core::wavefront;
use lddp_core::{Error, Result};
use std::sync::Barrier;

/// Shared mutable cell store with externally enforced aliasing
/// discipline (see module docs).
struct SharedCells<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: all concurrent access goes through `read`/`write` under the
// wave/barrier discipline documented on the module: writes within a wave
// target pairwise-disjoint indices, reads target indices finalized before
// the last barrier.
unsafe impl<T: Send> Sync for SharedCells<T> {}

impl<T: Copy> SharedCells<T> {
    fn new(slice: &mut [T]) -> Self {
        SharedCells {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Reads a cell finalized in an earlier wave.
    ///
    /// # Safety
    /// `idx < len` and no thread may be writing `idx` concurrently (it
    /// belongs to a wave sealed by a barrier).
    #[inline]
    unsafe fn read(&self, idx: usize) -> T {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) }
    }

    /// Writes a cell of the current wave.
    ///
    /// # Safety
    /// `idx < len` and `idx` is inside the calling worker's exclusive
    /// chunk of the current wave.
    #[inline]
    unsafe fn write(&self, idx: usize, v: T) {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) = v };
    }
}

/// The contiguous sub-range of `0..len` owned by worker `t` of `n`.
fn chunk(t: usize, n: usize, len: usize) -> std::ops::Range<usize> {
    let base = len / n;
    let extra = len % n;
    let start = t * base + t.min(extra);
    let end = start + base + usize::from(t < extra);
    start..end
}

/// A chunk-per-thread wavefront solver.
#[derive(Debug, Clone)]
pub struct ParallelEngine {
    threads: usize,
}

impl ParallelEngine {
    /// Creates an engine with the given worker count (min 1).
    pub fn new(threads: usize) -> Self {
        ParallelEngine {
            threads: threads.max(1),
        }
    }

    /// Engine sized to the host's available parallelism.
    pub fn host() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelEngine::new(threads)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Solves the kernel under its classified canonical pattern.
    ///
    /// ```
    /// use lddp_parallel::ParallelEngine;
    /// use lddp_core::kernel::{ClosureKernel, Neighbors};
    /// use lddp_core::cell::{ContributingSet, RepCell};
    /// use lddp_core::wavefront::Dims;
    ///
    /// // Pascal's triangle as an LDDP kernel: C(i,j) = NW + N.
    /// let k = ClosureKernel::new(
    ///     Dims::new(8, 8),
    ///     ContributingSet::new(&[RepCell::Nw, RepCell::N]),
    ///     |_i, j, n: &Neighbors<u64>| match (n.nw, n.n) {
    ///         (Some(a), Some(b)) => a + b,
    ///         _ => u64::from(j == 0), // first row/column
    ///     },
    /// );
    /// let grid = ParallelEngine::new(4).solve(&k).unwrap();
    /// // Row i holds the binomial coefficients C(i, j).
    /// assert_eq!(grid.get(4, 2), 6);
    /// assert_eq!(grid.get(7, 3), 35);
    /// ```
    pub fn solve<K: Kernel>(&self, kernel: &K) -> Result<Grid<K::Cell>> {
        let pattern = classify(kernel.contributing_set())
            .map(Pattern::canonical)
            .ok_or(Error::EmptyContributingSet)?;
        self.solve_as(kernel, pattern)
    }

    /// Solves under an explicit compatible pattern (e.g. a `{NW}` problem
    /// under Horizontal, §V-B).
    pub fn solve_as<K: Kernel>(&self, kernel: &K, pattern: Pattern) -> Result<Grid<K::Cell>> {
        if kernel.contributing_set().is_empty() {
            return Err(Error::EmptyContributingSet);
        }
        if !compatible(pattern, kernel.contributing_set()) {
            return Err(Error::PlanMismatch {
                expected: format!("{pattern}"),
                found: format!("{}", kernel.contributing_set()),
            });
        }
        let dims = kernel.dims();
        let layout_kind = LayoutKind::preferred_for(pattern);
        let mut grid: Grid<K::Cell> = Grid::new(layout_kind, dims);
        if dims.is_empty() {
            return Ok(grid);
        }
        let num_waves = pattern.num_waves(dims.rows, dims.cols);
        let threads = self.threads.min(dims.len()).max(1);
        if threads == 1 {
            return lddp_core::seq::solve_wavefront_as(kernel, pattern, layout_kind);
        }

        let layout = grid.layout().clone();
        let cells = SharedCells::new(grid.as_mut_slice());
        let barrier = Barrier::new(threads);
        let set = kernel.contributing_set();

        cb_thread::scope(|s| {
            for t in 0..threads {
                let cells = &cells;
                let barrier = &barrier;
                let layout = &layout;
                s.spawn(move |_| {
                    for w in 0..num_waves {
                        let len = pattern.wave_len(dims.rows, dims.cols, w);
                        for pos in chunk(t, threads, len) {
                            let (i, j) = wavefront::cell_at(pattern, dims, w, pos);
                            let mut nbrs = Neighbors::empty();
                            for dep in set.iter() {
                                if let Some((si, sj)) = dep.source(i, j, dims.rows, dims.cols) {
                                    debug_assert!(
                                        wavefront::wave_of(pattern, dims, si, sj) < w,
                                        "dependency must be sealed"
                                    );
                                    // SAFETY: (si, sj) lies in a wave
                                    // sealed by a previous barrier.
                                    let v = unsafe { cells.read(layout.index(si, sj)) };
                                    nbrs.set(dep, v);
                                }
                            }
                            let v = kernel.compute(i, j, &nbrs);
                            // SAFETY: `pos` is in this worker's exclusive
                            // chunk of wave `w`; wave ranges are disjoint.
                            unsafe { cells.write(layout.index(i, j), v) };
                        }
                        barrier.wait();
                    }
                });
            }
        })
        .expect("worker panicked");

        Ok(grid)
    }
}

impl Default for ParallelEngine {
    fn default() -> Self {
        ParallelEngine::host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::cell::{ContributingSet, RepCell};
    use lddp_core::kernel::ClosureKernel;
    use lddp_core::seq::solve_row_major;
    use lddp_core::wavefront::Dims;

    fn mix_kernel(
        dims: Dims,
        set: ContributingSet,
    ) -> ClosureKernel<u64, impl Fn(usize, usize, &Neighbors<u64>) -> u64 + Sync> {
        ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
            let mut acc = (i as u64) << 20 | (j as u64 + 7);
            for c in RepCell::ALL {
                if let Some(v) = n.get(c) {
                    acc = acc.wrapping_mul(1099511628211).wrapping_add(*v);
                }
            }
            acc
        })
    }

    #[test]
    fn chunks_tile_the_range() {
        for n in 1..9 {
            for len in [0usize, 1, 5, 8, 9, 100] {
                let mut next = 0;
                for t in 0..n {
                    let c = chunk(t, n, len);
                    assert_eq!(c.start, next);
                    next = c.end;
                }
                assert_eq!(next, len, "threads={n} len={len}");
                // Balanced within one cell.
                let sizes: Vec<usize> = (0..n).map(|t| chunk(t, n, len).len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn matches_oracle_for_all_sets_and_thread_counts() {
        for set in ContributingSet::table_one_rows() {
            let pattern = classify(set).unwrap();
            if !pattern.is_canonical() {
                continue;
            }
            let dims = Dims::new(13, 11);
            let kernel = mix_kernel(dims, set);
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            for threads in [1, 2, 3, 8] {
                let engine = ParallelEngine::new(threads);
                let got = engine.solve(&kernel).unwrap();
                assert_eq!(got.to_row_major(), oracle, "{set} threads={threads}");
            }
        }
    }

    #[test]
    fn thin_tables_and_tiny_tables() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        for (r, c) in [(1, 1), (1, 64), (64, 1), (2, 2)] {
            let dims = Dims::new(r, c);
            let kernel = mix_kernel(dims, set);
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            let got = ParallelEngine::new(4).solve(&kernel).unwrap();
            assert_eq!(got.to_row_major(), oracle, "{r}x{c}");
        }
    }

    #[test]
    fn empty_table_is_fine() {
        let set = ContributingSet::new(&[RepCell::N]);
        let kernel = mix_kernel(Dims::new(0, 8), set);
        let got = ParallelEngine::new(4).solve(&kernel).unwrap();
        assert_eq!(got.as_slice().len(), 0);
    }

    #[test]
    fn empty_set_is_rejected() {
        let kernel = mix_kernel(Dims::new(4, 4), ContributingSet::EMPTY);
        assert!(matches!(
            ParallelEngine::new(2).solve(&kernel),
            Err(Error::EmptyContributingSet)
        ));
    }

    #[test]
    fn incompatible_pattern_is_rejected() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
        let kernel = mix_kernel(Dims::new(4, 4), set);
        assert!(ParallelEngine::new(2)
            .solve_as(&kernel, Pattern::Horizontal)
            .is_err());
    }

    #[test]
    fn nw_problem_under_horizontal_matches() {
        let set = ContributingSet::new(&[RepCell::Nw]);
        let dims = Dims::new(17, 9);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let il = ParallelEngine::new(4)
            .solve_as(&kernel, Pattern::InvertedL)
            .unwrap();
        let h1 = ParallelEngine::new(4)
            .solve_as(&kernel, Pattern::Horizontal)
            .unwrap();
        assert_eq!(il.to_row_major(), oracle);
        assert_eq!(h1.to_row_major(), oracle);
    }

    #[test]
    fn deterministic_across_runs_and_threads() {
        let set = ContributingSet::FULL;
        let dims = Dims::new(37, 23);
        let kernel = mix_kernel(dims, set);
        let base = ParallelEngine::new(2)
            .solve(&kernel)
            .unwrap()
            .to_row_major();
        for threads in [3, 5, 16] {
            let got = ParallelEngine::new(threads).solve(&kernel).unwrap();
            assert_eq!(got.to_row_major(), base, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_cells_is_clamped() {
        let set = ContributingSet::new(&[RepCell::N]);
        let dims = Dims::new(2, 2);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let got = ParallelEngine::new(64).solve(&kernel).unwrap();
        assert_eq!(got.to_row_major(), oracle);
    }

    #[test]
    fn larger_stress_run() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let dims = Dims::new(257, 193);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let got = ParallelEngine::new(8).solve(&kernel).unwrap();
        assert_eq!(got.to_row_major(), oracle);
    }

    #[test]
    fn host_engine_reports_threads() {
        assert!(ParallelEngine::host().threads() >= 1);
        assert_eq!(ParallelEngine::new(0).threads(), 1);
    }
}
