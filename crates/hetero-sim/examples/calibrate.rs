//! Calibration scratchpad: prints model times for the paper's scenarios
//! so the platform constants can be sanity-checked against the expected
//! figure shapes. Not part of the reproduction harness proper (see
//! `lddp-bench` for that).

use hetero_sim::exec::{run_cpu, run_gpu, run_hetero, ExecOptions};
use hetero_sim::platform::{hetero_high, hetero_low};
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::kernel::{ClosureKernel, Neighbors};
use lddp_core::pattern::Pattern;
use lddp_core::schedule::{Plan, ScheduleParams};
use lddp_core::tuner::{t_share_candidates, t_switch_candidates};
use lddp_core::wavefront::Dims;

fn kernel(
    dims: Dims,
    set: ContributingSet,
    ops: u32,
) -> impl lddp_core::kernel::Kernel<Cell = u32> {
    ClosureKernel::new(dims, set, |_i, _j, _n: &Neighbors<u32>| 0u32).with_cost_ops(ops)
}

fn main() {
    let ad = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
    let h1 = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
    let h2 = ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne]);
    let km = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N, RepCell::Ne]);
    let est = ExecOptions::default();

    println!("== Fig 7 analogue: anti-diagonal 4096^2, t_share=0, sweep t_switch (Hetero-High)");
    let n = 4096;
    let dims = Dims::new(n, n);
    let k = kernel(dims, ad, 24);
    for ts in t_switch_candidates(Pattern::AntiDiagonal.num_waves(n, n)) {
        let plan = Plan::new(Pattern::AntiDiagonal, ad, dims, ScheduleParams::new(ts, 0)).unwrap();
        let r = run_hetero(&k, &plan, &hetero_high(), &est).unwrap();
        println!("  t_switch {ts:6}  {:9.3} ms", r.total_s * 1e3);
    }

    println!("== t_share sweep at the winning t_switch (anti-diagonal)");
    for tsh in t_share_candidates(n) {
        let plan = Plan::new(
            Pattern::AntiDiagonal,
            ad,
            dims,
            ScheduleParams::new(1024, tsh),
        )
        .unwrap();
        let r = run_hetero(&k, &plan, &hetero_high(), &est).unwrap();
        println!("  t_share {tsh:6}  {:9.3} ms", r.total_s * 1e3);
    }

    for (name, plat) in [("High", hetero_high()), ("Low", hetero_low())] {
        println!("== Fig 9 analogue: horizontal case-1, CPU/GPU/hetero, {name}");
        for n in [1024usize, 2048, 4096, 8192, 16384] {
            let dims = Dims::new(n, n);
            let k = kernel(dims, h1, 16);
            let cpu = run_cpu(&k, &plat, &est).unwrap().total_s;
            let gpu = run_gpu(&k, &plat, &est).unwrap().total_s;
            let mut best = f64::INFINITY;
            let mut best_share = 0;
            for tsh in t_share_candidates(n) {
                let plan =
                    Plan::new(Pattern::Horizontal, h1, dims, ScheduleParams::new(0, tsh)).unwrap();
                let r = run_hetero(&k, &plan, &plat, &est).unwrap().total_s;
                if r < best {
                    best = r;
                    best_share = tsh;
                }
            }
            println!(
                "  n={n:6}  cpu {:9.3}  gpu {:9.3}  hetero {:9.3} ms (t_share {best_share})",
                cpu * 1e3,
                gpu * 1e3,
                best * 1e3
            );
        }
    }

    for (name, plat) in [("High", hetero_high()), ("Low", hetero_low())] {
        println!("== Fig 13 analogue: horizontal case-2 (checkerboard, pinned 2-way), {name}");
        for n in [1024usize, 2048, 4096, 8192, 16384] {
            let dims = Dims::new(n, n);
            let k = kernel(dims, h2, 18);
            let o = ExecOptions {
                setup_to_gpu_bytes: n * n, // cost matrix upload (u8 costs)
                ..Default::default()
            };
            let cpu = run_cpu(&k, &plat, &est).unwrap().total_s;
            let gpu = run_gpu(&k, &plat, &o).unwrap().total_s;
            let mut best = f64::INFINITY;
            let mut best_share = 0;
            for tsh in t_share_candidates(n) {
                let plan =
                    Plan::new(Pattern::Horizontal, h2, dims, ScheduleParams::new(0, tsh)).unwrap();
                let r = run_hetero(&k, &plan, &plat, &o).unwrap().total_s;
                if r < best {
                    best = r;
                    best_share = tsh;
                }
            }
            println!(
                "  n={n:6}  cpu {:9.3}  gpu {:9.3}  hetero {:9.3} ms (t_share {best_share})",
                cpu * 1e3,
                gpu * 1e3,
                best * 1e3
            );
        }
    }

    for (name, plat) in [("High", hetero_high()), ("Low", hetero_low())] {
        println!("== Fig 12 analogue: knight-move (dithering), {name}");
        for n in [512usize, 1024, 2048, 4096, 8192] {
            let dims = Dims::new(n, n);
            let k = kernel(dims, km, 40);
            let o = ExecOptions {
                setup_to_gpu_bytes: n * n, // grayscale image upload
                final_from_gpu_bytes: n * n,
                ..Default::default()
            };
            let cpu = run_cpu(&k, &plat, &est).unwrap().total_s;
            let gpu = run_gpu(&k, &plat, &o).unwrap().total_s;
            let waves = Pattern::KnightMove.num_waves(n, n);
            let mut best = f64::INFINITY;
            let mut best_p = (0, 0);
            for tsw in t_switch_candidates(waves) {
                for tsh in [0usize, 64, 512] {
                    let plan = Plan::new(
                        Pattern::KnightMove,
                        km,
                        dims,
                        ScheduleParams::new(tsw, tsh.min(n)),
                    )
                    .unwrap();
                    let r = run_hetero(&k, &plan, &plat, &o).unwrap().total_s;
                    if r < best {
                        best = r;
                        best_p = (tsw, tsh);
                    }
                }
            }
            println!(
                "  n={n:6}  cpu {:9.3}  gpu {:9.3}  hetero {:9.3} ms (t_switch {} t_share {})",
                cpu * 1e3,
                gpu * 1e3,
                best * 1e3,
                best_p.0,
                best_p.1
            );
        }
    }

    println!("== Fig 8 analogue: {{NW}} under inverted-L vs horizontal-1, Hetero-High");
    let nwset = ContributingSet::new(&[RepCell::Nw]);
    for n in [1024usize, 2048, 4096, 8192] {
        let dims = Dims::new(n, n);
        let k = kernel(dims, nwset, 16);
        let cpu_il =
            hetero_sim::exec::run_cpu_as(&k, Pattern::InvertedL, &hetero_high(), &est).unwrap();
        let cpu_h1 =
            hetero_sim::exec::run_cpu_as(&k, Pattern::Horizontal, &hetero_high(), &est).unwrap();
        let gpu_il =
            hetero_sim::exec::run_gpu_as(&k, Pattern::InvertedL, &hetero_high(), &est).unwrap();
        let gpu_h1 =
            hetero_sim::exec::run_gpu_as(&k, Pattern::Horizontal, &hetero_high(), &est).unwrap();
        println!(
            "  n={n:6}  cpu(iL) {:8.3}  cpu(H1) {:8.3}  gpu(iL) {:8.3}  gpu(H1) {:8.3} ms",
            cpu_il.total_s * 1e3,
            cpu_h1.total_s * 1e3,
            gpu_il.total_s * 1e3,
            gpu_h1.total_s * 1e3
        );
    }
}
