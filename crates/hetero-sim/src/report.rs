//! Human-readable rendering of execution timelines: per-phase
//! utilization summaries and an ASCII occupancy strip, built from the
//! [`WaveRecord`](crate::exec::WaveRecord)s an executor emits.

use crate::exec::{Breakdown, WaveRecord};
use std::fmt::Write as _;

/// Utilization summary of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Utilization {
    /// Fraction of wall time the CPU was busy (0..=1).
    pub cpu: f64,
    /// Fraction of wall time the GPU was busy.
    pub gpu: f64,
    /// Fraction of wall time spent on un-hidden copies.
    pub copy: f64,
    /// Wall time covered, seconds.
    pub wall_s: f64,
}

/// Computes utilization from a breakdown and total time.
pub fn utilization(breakdown: &Breakdown, total_s: f64) -> Utilization {
    let wall = total_s.max(f64::MIN_POSITIVE);
    Utilization {
        cpu: (breakdown.cpu_busy_s / wall).min(1.0),
        gpu: (breakdown.gpu_busy_s / wall).min(1.0),
        copy: (breakdown.copy_s / wall).min(1.0),
        wall_s: total_s,
    }
}

/// Buckets a timeline into `width` equal spans of wall time and renders
/// one occupancy character per bucket per engine:
/// `#` busy ≥ 75%, `+` ≥ 25%, `.` > 0, space idle.
///
/// `width` is clamped to the number of timeline records (more buckets
/// than waves renders sub-wave noise and misleading trailing glyphs);
/// the returned pair is the rendered strip and the width actually used.
/// A wave ending exactly on a bucket boundary is attributed only to the
/// bucket it fills — not leaked as a zero-width overlap into the next.
pub fn occupancy_strip(timeline: &[WaveRecord], width: usize) -> (String, usize) {
    let total: f64 = timeline.iter().map(|r| r.span_s).sum();
    if total <= 0.0 || width == 0 || timeline.is_empty() {
        return (String::new(), 0);
    }
    let width = width.min(timeline.len());
    let bucket_span = total / width as f64;
    let mut cpu = vec![0.0f64; width];
    let mut gpu = vec![0.0f64; width];
    let mut t = 0.0;
    for r in timeline {
        // Attribute the wave's busy time to the buckets it overlaps,
        // proportionally.
        let start = t;
        let end = t + r.span_s;
        t = end;
        if r.span_s <= 0.0 {
            continue;
        }
        let b0 = ((start / bucket_span) as usize).min(width - 1);
        // Last bucket the wave genuinely overlaps: the one containing
        // `end`, except when `end` sits exactly on a bucket boundary —
        // then it is the bucket *below* (ceil − 1), not the next one.
        let b1 = (((end / bucket_span).ceil() as usize).saturating_sub(1)).clamp(b0, width - 1);
        for b in b0..=b1 {
            let bucket_start = b as f64 * bucket_span;
            let bucket_end = bucket_start + bucket_span;
            let overlap = (end.min(bucket_end) - start.max(bucket_start)).max(0.0);
            let frac = overlap / r.span_s;
            cpu[b] += r.cpu_s * frac;
            gpu[b] += r.gpu_s * frac;
        }
    }
    let glyph = |busy: f64| -> char {
        let frac = busy / bucket_span;
        if frac >= 0.75 {
            '#'
        } else if frac >= 0.25 {
            '+'
        } else if frac > 0.0 {
            '.'
        } else {
            ' '
        }
    };
    let mut out = String::new();
    let _ = write!(out, "CPU |");
    for &b in &cpu {
        out.push(glyph(b));
    }
    let _ = writeln!(out, "|");
    let _ = write!(out, "GPU |");
    for &b in &gpu {
        out.push(glyph(b));
    }
    let _ = writeln!(out, "|");
    (out, width)
}

/// Renders a one-paragraph run summary.
pub fn summarize(breakdown: &Breakdown, total_s: f64) -> String {
    let u = utilization(breakdown, total_s);
    format!(
        "{:.3} ms wall | CPU busy {:.1}% | GPU busy {:.1}% | copies {:.1}% \
         ({} B →GPU, {} B →CPU) | {} waves",
        total_s * 1e3,
        u.cpu * 100.0,
        u.gpu * 100.0,
        u.copy * 100.0,
        breakdown.bytes_to_gpu,
        breakdown.bytes_to_cpu,
        breakdown.waves
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(wave: usize, cpu_s: f64, gpu_s: f64, span_s: f64) -> WaveRecord {
        WaveRecord {
            wave,
            cpu_cells: 1,
            gpu_cells: 1,
            cpu_s,
            gpu_s,
            copy_s: 0.0,
            span_s,
            bytes_to_gpu: 0,
            bytes_to_cpu: 0,
        }
    }

    #[test]
    fn utilization_fractions() {
        let b = Breakdown {
            cpu_busy_s: 0.5,
            gpu_busy_s: 0.25,
            copy_s: 0.1,
            setup_s: 0.0,
            bytes_to_gpu: 100,
            bytes_to_cpu: 50,
            waves: 10,
        };
        let u = utilization(&b, 1.0);
        assert!((u.cpu - 0.5).abs() < 1e-12);
        assert!((u.gpu - 0.25).abs() < 1e-12);
        assert!((u.copy - 0.1).abs() < 1e-12);
    }

    #[test]
    fn utilization_caps_at_one() {
        let b = Breakdown {
            cpu_busy_s: 5.0,
            ..Default::default()
        };
        assert_eq!(utilization(&b, 1.0).cpu, 1.0);
    }

    #[test]
    fn strip_shows_phases() {
        // First half CPU-only, second half GPU-only.
        let mut tl = Vec::new();
        for w in 0..10 {
            tl.push(record(w, 1.0, 0.0, 1.0));
        }
        for w in 10..20 {
            tl.push(record(w, 0.0, 1.0, 1.0));
        }
        let (strip, used) = occupancy_strip(&tl, 10);
        assert_eq!(used, 10);
        let lines: Vec<&str> = strip.lines().collect();
        assert_eq!(lines.len(), 2);
        let cpu_line = lines[0];
        let gpu_line = lines[1];
        // CPU busy in the first buckets, idle later.
        assert!(cpu_line.starts_with("CPU |####"));
        assert!(cpu_line.trim_end().ends_with("    |") || cpu_line.contains("#    "));
        assert!(gpu_line.starts_with("GPU |"));
        assert!(gpu_line.contains("####"));
        // GPU idle in the first bucket.
        assert_eq!(gpu_line.as_bytes()[5], b' ');
    }

    #[test]
    fn empty_timeline_renders_empty() {
        assert_eq!(occupancy_strip(&[], 40), (String::new(), 0));
        assert_eq!(
            occupancy_strip(&[record(0, 1.0, 1.0, 1.0)], 0),
            (String::new(), 0)
        );
    }

    #[test]
    fn width_is_clamped_to_record_count() {
        // 4 fully-busy waves, width 72: without clamping, proportional
        // attribution would dilute nothing here, but the strip would
        // imply 72 samples from 4 observations. Clamp returns 4.
        let tl: Vec<WaveRecord> = (0..4).map(|w| record(w, 1.0, 0.0, 1.0)).collect();
        let (strip, used) = occupancy_strip(&tl, 72);
        assert_eq!(used, 4);
        assert_eq!(strip, "CPU |####|\nGPU |    |\n");
    }

    #[test]
    fn golden_half_cpu_half_gpu() {
        let mut tl = Vec::new();
        for w in 0..4 {
            tl.push(record(w, 1.0, 0.0, 1.0));
        }
        for w in 4..8 {
            tl.push(record(w, 0.0, 1.0, 1.0));
        }
        let (strip, used) = occupancy_strip(&tl, 8);
        assert_eq!(used, 8);
        assert_eq!(strip, "CPU |####    |\nGPU |    ####|\n");
    }

    #[test]
    fn boundary_wave_does_not_leak_into_next_bucket() {
        // Two waves of 1 s each, 2 buckets: wave 0 ends exactly on the
        // bucket boundary. Its busy time must all land in bucket 0 —
        // the old `(end / bucket_span) as usize` touched bucket 1 with
        // a zero-width overlap.
        let tl = vec![record(0, 1.0, 0.0, 1.0), record(1, 0.0, 1.0, 1.0)];
        let (strip, used) = occupancy_strip(&tl, 2);
        assert_eq!(used, 2);
        // Bucket 1 has zero CPU busy: a space, not '.'.
        assert_eq!(strip, "CPU |# |\nGPU | #|\n");
    }

    #[test]
    fn zero_span_waves_are_skipped() {
        let tl = vec![
            record(0, 1.0, 0.0, 1.0),
            record(1, 0.0, 0.0, 0.0),
            record(2, 1.0, 0.0, 1.0),
        ];
        let (strip, used) = occupancy_strip(&tl, 2);
        assert_eq!(used, 2);
        assert_eq!(strip, "CPU |##|\nGPU |  |\n");
    }

    #[test]
    fn utilization_zero_wall_clock_is_finite() {
        let u = utilization(&Breakdown::default(), 0.0);
        assert_eq!(u.cpu, 0.0);
        assert_eq!(u.gpu, 0.0);
        assert_eq!(u.copy, 0.0);
        assert_eq!(u.wall_s, 0.0);
        // Inconsistent input (busy time but no wall time) clamps to 1.
        let b = Breakdown {
            cpu_busy_s: 0.5,
            ..Default::default()
        };
        assert_eq!(utilization(&b, 0.0).cpu, 1.0);
    }

    #[test]
    fn summary_mentions_everything() {
        let b = Breakdown {
            cpu_busy_s: 0.001,
            gpu_busy_s: 0.002,
            copy_s: 0.0001,
            setup_s: 0.0,
            bytes_to_gpu: 64,
            bytes_to_cpu: 32,
            waves: 100,
        };
        let s = summarize(&b, 0.004);
        assert!(s.contains("4.000 ms"));
        assert!(s.contains("100 waves"));
        assert!(s.contains("64 B"));
    }
}
