//! Host↔device interconnect (PCIe) model, with pinned and pageable
//! memory modes and an asynchronous-stream composition rule.
//!
//! §IV-C of the paper: one-way boundary traffic is pipelined behind
//! compute with CUDA streams (the copy engine runs concurrently with the
//! kernel), while two-way traffic uses pinned host memory, "which provides
//! fast memory access if data size is small", and sits on the critical
//! path.

/// How the host buffer backing a transfer is allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostMemory {
    /// Ordinary pageable memory: higher per-transfer latency (the driver
    /// stages through a bounce buffer) but fine for bulk streaming.
    Pageable,
    /// Page-locked (pinned) memory: DMA directly, low latency — the right
    /// choice for the few-cell boundary transfers of Table II.
    Pinned,
}

/// Analytic PCIe-class link model.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// Fixed per-transfer latency from pageable memory, seconds.
    pub pageable_latency_s: f64,
    /// Sustained pageable bandwidth, GB/s.
    pub pageable_bw_gbps: f64,
    /// Fixed per-transfer latency from pinned memory, seconds.
    pub pinned_latency_s: f64,
    /// Sustained pinned bandwidth, GB/s.
    pub pinned_bw_gbps: f64,
}

impl LinkModel {
    /// Time to move `bytes` in one transfer.
    pub fn transfer_time_s(&self, bytes: usize, mem: HostMemory) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let (lat, bw) = match mem {
            HostMemory::Pageable => (self.pageable_latency_s, self.pageable_bw_gbps),
            HostMemory::Pinned => (self.pinned_latency_s, self.pinned_bw_gbps),
        };
        lat + bytes as f64 / (bw * 1e9)
    }

    /// Composition rule for a pipelined (asynchronous-stream) iteration:
    /// the copy engine overlaps both compute engines, so the iteration
    /// takes the longest of the three spans.
    pub fn pipelined_span_s(compute_a: f64, compute_b: f64, copy: f64) -> f64 {
        compute_a.max(compute_b).max(copy)
    }

    /// Composition rule for a synchronous iteration: copies serialize
    /// after compute.
    pub fn serialized_span_s(compute_a: f64, compute_b: f64, copy: f64) -> f64 {
        compute_a.max(compute_b) + copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcie2() -> LinkModel {
        LinkModel {
            pageable_latency_s: 10e-6,
            pageable_bw_gbps: 6.0,
            pinned_latency_s: 1.2e-6,
            pinned_bw_gbps: 6.5,
        }
    }

    #[test]
    fn zero_bytes_is_free() {
        let l = pcie2();
        assert_eq!(l.transfer_time_s(0, HostMemory::Pageable), 0.0);
        assert_eq!(l.transfer_time_s(0, HostMemory::Pinned), 0.0);
    }

    #[test]
    fn pinned_wins_for_small_transfers() {
        let l = pcie2();
        // A few boundary cells: latency dominates, pinned is much faster.
        let small = 64;
        assert!(
            l.transfer_time_s(small, HostMemory::Pinned)
                < l.transfer_time_s(small, HostMemory::Pageable) / 4.0
        );
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let l = pcie2();
        let big = 256 << 20; // 256 MiB
        let pageable = l.transfer_time_s(big, HostMemory::Pageable);
        let ideal = big as f64 / 6.0e9;
        assert!((pageable - ideal) / ideal < 0.01);
    }

    #[test]
    fn latency_plus_linear_bytes() {
        let l = pcie2();
        let t1 = l.transfer_time_s(1000, HostMemory::Pinned);
        let t2 = l.transfer_time_s(2000, HostMemory::Pinned);
        let slope = t2 - t1;
        assert!((slope - 1000.0 / 6.5e9).abs() < 1e-15);
    }

    #[test]
    fn pipelined_hides_the_copy() {
        let span = LinkModel::pipelined_span_s(10e-6, 7e-6, 4e-6);
        assert_eq!(span, 10e-6);
        // Unless the copy is the bottleneck.
        let span = LinkModel::pipelined_span_s(2e-6, 1e-6, 9e-6);
        assert_eq!(span, 9e-6);
    }

    #[test]
    fn serialized_pays_the_copy() {
        let span = LinkModel::serialized_span_s(10e-6, 7e-6, 4e-6);
        assert!((span - 14e-6).abs() < 1e-18);
    }
}
