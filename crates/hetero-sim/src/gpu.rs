//! CUDA-class GPU cost model.
//!
//! Mirrors the paper's GPU execution strategy (§IV-A): one light-weight
//! thread per cell, launched as one kernel per wavefront. A wave's time is
//! the kernel-launch overhead plus the larger of its compute span (rounds
//! of `total_cores` cells retiring in lockstep) and its memory span
//! (bytes over effective global-memory bandwidth). Coalescing (§IV-B)
//! enters as a multiplier on memory traffic: when a warp's accesses are
//! not contiguous the device fetches a full transaction per thread.

/// Analytic model of a streaming-multiprocessor GPU executing LDDP
/// wavefronts with a thread-per-cell kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Number of streaming multiprocessors (SMX).
    pub smx: usize,
    /// Cores per multiprocessor.
    pub cores_per_smx: usize,
    /// Shader clock in GHz.
    pub clock_ghz: f64,
    /// Fixed cost of issuing one kernel, seconds (driver + queueing).
    pub launch_overhead_s: f64,
    /// Effective global-memory bandwidth for fully coalesced access,
    /// GB/s (well below the pin bandwidth for dependent DP loads).
    pub mem_bw_gbps: f64,
    /// Multiplier on memory traffic when accesses are not coalesced —
    /// one transaction per thread instead of per warp.
    pub uncoalesced_penalty: f64,
    /// Warp width (threads issuing together).
    pub warp: usize,
}

impl GpuModel {
    /// Total hardware thread lanes.
    pub fn total_cores(&self) -> usize {
        self.smx * self.cores_per_smx
    }

    /// Number of full-device rounds needed to retire `cells` threads.
    pub fn rounds(&self, cells: usize) -> usize {
        cells.div_ceil(self.total_cores())
    }

    /// Compute span of a wave: each round retires one cell per lane after
    /// a pipeline of `ops` cycles.
    pub fn compute_span_s(&self, cells: usize, ops: u32) -> f64 {
        self.rounds(cells) as f64 * ops as f64 / (self.clock_ghz * 1e9)
    }

    /// Memory span of a wave.
    pub fn memory_span_s(&self, cells: usize, bytes_per_cell: usize, read_penalty: f64) -> f64 {
        cells as f64 * bytes_per_cell as f64 * read_penalty / (self.mem_bw_gbps * 1e9)
    }

    /// Time for one kernel computing a wave of `cells` cells.
    ///
    /// `read_penalty` is 1.0 for a coalesced layout and up to
    /// [`GpuModel::uncoalesced_penalty`] otherwise. Zero-cell waves are
    /// free (no kernel is launched).
    pub fn wave_time_s(
        &self,
        cells: usize,
        ops: u32,
        bytes_per_cell: usize,
        read_penalty: f64,
    ) -> f64 {
        if cells == 0 {
            return 0.0;
        }
        self.launch_overhead_s
            + self.compute_span_s(cells, ops).max(self.memory_span_s(
                cells,
                bytes_per_cell,
                read_penalty,
            ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k20_like() -> GpuModel {
        GpuModel {
            smx: 13,
            cores_per_smx: 192,
            clock_ghz: 0.706,
            launch_overhead_s: 4e-6,
            mem_bw_gbps: 40.0,
            uncoalesced_penalty: 6.0,
            warp: 32,
        }
    }

    #[test]
    fn zero_cells_skips_the_launch() {
        assert_eq!(k20_like().wave_time_s(0, 16, 16, 1.0), 0.0);
    }

    #[test]
    fn total_cores_and_rounds() {
        let g = k20_like();
        assert_eq!(g.total_cores(), 2496);
        assert_eq!(g.rounds(1), 1);
        assert_eq!(g.rounds(2496), 1);
        assert_eq!(g.rounds(2497), 2);
        assert_eq!(g.rounds(4096), 2);
    }

    #[test]
    fn launch_overhead_dominates_tiny_waves() {
        let g = k20_like();
        let t = g.wave_time_s(4, 16, 16, 1.0);
        assert!(t < g.launch_overhead_s * 1.2);
        assert!(t >= g.launch_overhead_s);
    }

    #[test]
    fn memory_bound_for_wide_cheap_waves() {
        let g = k20_like();
        let mem = g.memory_span_s(100_000, 16, 1.0);
        let comp = g.compute_span_s(100_000, 16);
        assert!(mem > comp, "wide low-ops waves should be memory bound");
        let t = g.wave_time_s(100_000, 16, 16, 1.0);
        assert!((t - (g.launch_overhead_s + mem)).abs() < 1e-12);
    }

    #[test]
    fn uncoalesced_access_is_slower() {
        let g = k20_like();
        let fast = g.wave_time_s(50_000, 16, 16, 1.0);
        let slow = g.wave_time_s(50_000, 16, 16, g.uncoalesced_penalty);
        assert!(slow > fast * 3.0);
    }

    #[test]
    fn compute_bound_for_heavy_cells() {
        let g = k20_like();
        // 4000 ops per cell on few bytes: compute wins.
        let comp = g.compute_span_s(10_000, 4000);
        let mem = g.memory_span_s(10_000, 8, 1.0);
        assert!(comp > mem);
    }

    #[test]
    fn wave_time_monotone_in_cells() {
        let g = k20_like();
        let mut last = 0.0;
        for cells in [1, 100, 2496, 2497, 10_000, 100_000] {
            let t = g.wave_time_s(cells, 16, 16, 1.0);
            assert!(t >= last);
            last = t;
        }
    }
}
