//! Bridges executor output into `lddp-trace` events: one span per
//! phase, per-wave compute spans on the CPU/GPU tracks, transfer spans
//! and cumulative byte counters on the Link track — all on the *model*
//! clock, so a Perfetto view of a simulated run shows exactly the
//! three-phase structure of the paper's Figs 3–6.
//!
//! The emitters consume the [`WaveRecord`](crate::exec::WaveRecord)
//! stream an executor produces with `record_timeline` on; they do not
//! change how execution is accounted. A disabled sink returns
//! immediately.

use crate::exec::WaveRecord;
use lddp_core::schedule::{PhaseKind, PhaseSpan};
use lddp_trace::{tracks, Span, TraceSink};

/// Emits the standard event set for one simulated run.
///
/// `timeline` must be in wave order (what `record_timeline` produces);
/// `phases` is the plan's phase structure (pass `&[]` for single-device
/// runs); `setup_s` is the up-front input-upload + result-download time
/// the executor charged before the first wave (rendered as an `io`
/// span on the Link track, with the wave clock starting after it).
pub fn record_run(
    sink: &dyn TraceSink,
    timeline: &[WaveRecord],
    phases: &[PhaseSpan],
    setup_s: f64,
) {
    if !sink.enabled() {
        return;
    }
    if setup_s > 0.0 {
        sink.span(Span::new("io.setup", tracks::LINK, 0.0, setup_s));
    }

    // Wave start times on the model clock: prefix sums of wave spans.
    let mut starts = Vec::with_capacity(timeline.len() + 1);
    let mut t = setup_s;
    for r in timeline {
        starts.push(t);
        t += r.span_s;
    }
    starts.push(t);
    let total_s = t;

    let mut bytes_to_gpu = 0u64;
    let mut bytes_to_cpu = 0u64;
    let mut cpu_cells = 0u64;
    let mut gpu_cells = 0u64;
    for (idx, r) in timeline.iter().enumerate() {
        let start = starts[idx];
        if r.cpu_s > 0.0 {
            sink.span(
                Span::new("wave", tracks::CPU, start, r.cpu_s)
                    .with_arg("wave", r.wave)
                    .with_arg("cells", r.cpu_cells),
            );
        }
        if r.gpu_s > 0.0 {
            sink.span(
                Span::new("wave", tracks::GPU, start, r.gpu_s)
                    .with_arg("wave", r.wave)
                    .with_arg("cells", r.gpu_cells),
            );
        }
        if r.copy_s > 0.0 || r.bytes_to_gpu + r.bytes_to_cpu > 0 {
            sink.span(
                Span::new("copy", tracks::LINK, start, r.copy_s)
                    .with_arg("wave", r.wave)
                    .with_arg("bytes_to_gpu", r.bytes_to_gpu)
                    .with_arg("bytes_to_cpu", r.bytes_to_cpu),
            );
            bytes_to_gpu += r.bytes_to_gpu as u64;
            bytes_to_cpu += r.bytes_to_cpu as u64;
            sink.sample(
                tracks::LINK,
                "bytes_to_gpu",
                starts[idx + 1],
                bytes_to_gpu as f64,
            );
            sink.sample(
                tracks::LINK,
                "bytes_to_cpu",
                starts[idx + 1],
                bytes_to_cpu as f64,
            );
        }
        cpu_cells += r.cpu_cells as u64;
        gpu_cells += r.gpu_cells as u64;
        sink.observe("sim.wave_span_s", r.span_s);
    }

    // Phase spans over the same clock. A phase's wave range indexes the
    // timeline directly for full runs; clamp defensively for partial
    // timelines.
    for phase in phases {
        let lo = phase.waves.start.min(timeline.len());
        let hi = phase.waves.end.min(timeline.len());
        if lo >= hi {
            continue;
        }
        let start = starts[lo];
        let end = if hi == timeline.len() {
            total_s
        } else {
            starts[hi]
        };
        let name = match phase.kind {
            PhaseKind::CpuOnly => "phase.cpu_only",
            PhaseKind::Shared => "phase.shared",
        };
        sink.span(
            Span::new(name, tracks::SCHEDULE, start, end - start)
                .with_arg("wave_lo", phase.waves.start)
                .with_arg("wave_hi", phase.waves.end),
        );
    }

    sink.count("sim.waves", timeline.len() as u64);
    sink.count("sim.cells.cpu", cpu_cells);
    sink.count("sim.cells.gpu", gpu_cells);
    sink.count("sim.bytes_to_gpu", bytes_to_gpu);
    sink.count("sim.bytes_to_cpu", bytes_to_cpu);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_hetero, ExecOptions};
    use crate::platform::hetero_high;
    use lddp_core::cell::{ContributingSet, RepCell};
    use lddp_core::kernel::{ClosureKernel, Neighbors};
    use lddp_core::pattern::Pattern;
    use lddp_core::schedule::{Plan, ScheduleParams};
    use lddp_core::wavefront::Dims;
    use lddp_trace::{NullSink, Recorder};

    fn traced_run(dims: Dims, params: ScheduleParams) -> (lddp_trace::TraceData, usize) {
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let kernel =
            ClosureKernel::new(dims, set, |_i, _j, _n: &Neighbors<u32>| 0u32).with_cost_ops(8);
        let plan = Plan::new(Pattern::AntiDiagonal, set, dims, params).unwrap();
        let opts = ExecOptions {
            record_timeline: true,
            ..Default::default()
        };
        let report = run_hetero(&kernel, &plan, &hetero_high(), &opts).unwrap();
        let rec = Recorder::new();
        record_run(
            &rec,
            &report.timeline,
            &plan.phases(),
            report.breakdown.setup_s,
        );
        (rec.snapshot(), report.timeline.len())
    }

    #[test]
    fn emits_one_span_per_schedule_phase() {
        let (data, _) = traced_run(Dims::new(64, 64), ScheduleParams::new(8, 16));
        // Ramp-up/down anti-diagonal: CpuOnly, Shared, CpuOnly.
        let phase_spans: Vec<_> = data
            .spans
            .iter()
            .filter(|s| s.track == tracks::SCHEDULE)
            .collect();
        assert_eq!(phase_spans.len(), 3);
        assert_eq!(phase_spans[0].name, "phase.cpu_only");
        assert_eq!(phase_spans[1].name, "phase.shared");
        assert_eq!(phase_spans[2].name, "phase.cpu_only");
        // Phases tile the post-setup run without overlap.
        assert!(phase_spans[0].start_s >= 0.0);
        for w in phase_spans.windows(2) {
            assert!((w[0].end_s() - w[1].start_s).abs() < 1e-12);
        }
    }

    #[test]
    fn wave_spans_land_on_engine_tracks_and_cover_all_waves() {
        let (data, waves) = traced_run(Dims::new(32, 32), ScheduleParams::new(4, 8));
        let cpu: Vec<_> = data
            .spans_named("wave")
            .filter(|s| s.track == tracks::CPU)
            .collect();
        let gpu: Vec<_> = data
            .spans_named("wave")
            .filter(|s| s.track == tracks::GPU)
            .collect();
        // The CPU-only ramps (t_switch = 4 on both ends) always have CPU
        // spans; late waves whose columns all fall right of the band may
        // not. Shared waves add GPU work.
        assert!(cpu.len() >= 8 && cpu.len() <= waves);
        assert!(!gpu.is_empty());
        assert!(gpu.len() < waves);
        // Spans are time-ordered and non-negative.
        for w in cpu.windows(2) {
            assert!(w[0].start_s <= w[1].start_s);
        }
        assert!(data.spans.iter().all(|s| s.dur_s >= 0.0));
        assert_eq!(data.counters["sim.waves"], waves as u64);
    }

    #[test]
    fn transfers_show_up_on_the_link_track() {
        let (data, _) = traced_run(Dims::new(64, 64), ScheduleParams::new(4, 8));
        let copies: Vec<_> = data
            .spans_named("copy")
            .filter(|s| s.track == tracks::LINK)
            .collect();
        assert!(!copies.is_empty(), "shared anti-diagonal waves must copy");
        // Cumulative byte counters are monotone.
        let mut last = 0.0;
        for s in data.samples.iter().filter(|s| s.name == "bytes_to_gpu") {
            assert!(s.value >= last);
            last = s.value;
        }
        assert!(data.counters["sim.bytes_to_gpu"] > 0);
    }

    #[test]
    fn disabled_sink_emits_nothing_and_costs_nothing() {
        let set = ContributingSet::new(&[RepCell::N]);
        let kernel = ClosureKernel::new(Dims::new(8, 8), set, |_i, _j, _n: &Neighbors<u32>| 0u32);
        let plan = Plan::new(
            Pattern::Horizontal,
            set,
            Dims::new(8, 8),
            ScheduleParams::new(0, 4),
        )
        .unwrap();
        let opts = ExecOptions {
            record_timeline: true,
            ..Default::default()
        };
        let report = run_hetero(&kernel, &plan, &hetero_high(), &opts).unwrap();
        // Must not panic; NullSink::enabled() short-circuits.
        record_run(&NullSink, &report.timeline, &plan.phases(), 0.0);
    }

    #[test]
    fn busy_time_in_trace_matches_breakdown() {
        let dims = Dims::new(48, 48);
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let kernel =
            ClosureKernel::new(dims, set, |_i, _j, _n: &Neighbors<u32>| 0u32).with_cost_ops(8);
        let plan = Plan::new(Pattern::AntiDiagonal, set, dims, ScheduleParams::new(4, 12)).unwrap();
        let opts = ExecOptions {
            record_timeline: true,
            ..Default::default()
        };
        let report = run_hetero(&kernel, &plan, &hetero_high(), &opts).unwrap();
        let rec = Recorder::new();
        record_run(
            &rec,
            &report.timeline,
            &plan.phases(),
            report.breakdown.setup_s,
        );
        let data = rec.snapshot();
        assert!((data.track_busy_s(tracks::CPU) - report.breakdown.cpu_busy_s).abs() < 1e-12);
        assert!((data.track_busy_s(tracks::GPU) - report.breakdown.gpu_busy_s).abs() < 1e-12);
    }
}
