//! Executors: run an LDDP kernel on the modelled platform.
//!
//! Three entry points mirror the paper's three measured configurations:
//!
//! - [`run_cpu`] — "CPU parallel": every wave on the multicore model;
//! - [`run_gpu`] — "GPU": one kernel per wave on the device model;
//! - [`run_hetero`] — "Framework": a [`Plan`]'s phases, band partition
//!   and boundary transfers over both models.
//!
//! Execution is *functional* when requested: cell values are actually
//! computed, with the host and device holding **separate grids** that
//! only communicate through the plan's transfer lists. A missing transfer
//! therefore produces wrong values (caught against the sequential
//! oracle), not silently correct ones — this is what validates the
//! scheduling machinery. Time never comes from the wall clock: it is
//! accumulated from the [`CpuModel`](crate::cpu::CpuModel),
//! [`GpuModel`](crate::gpu::GpuModel) and
//! [`LinkModel`](crate::link::LinkModel), so results are deterministic
//! and platform presets are comparable on any host.

use crate::link::{HostMemory, LinkModel};
use crate::platform::Platform;
use lddp_core::grid::{Grid, LayoutKind};
use lddp_core::kernel::{Kernel, Neighbors};
use lddp_core::pattern::Pattern;
use lddp_core::schedule::{PhaseKind, TransferNeed, WaveSchedule};
use lddp_core::wavefront::{self, Dims};
use lddp_core::{Error, Result};

/// How table memory accesses relate to the warp/loop order — feeds the
/// read-penalty factors of the device models (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Same-wave cells are adjacent in memory; neighbour reads fall in a
    /// handful of contiguous runs.
    Coalesced,
    /// Wave storage is contiguous but neighbour reads split across
    /// discontinuous segments (the two arms of an L-shell).
    Partial,
    /// Same-wave cells are scattered (e.g. row-major storage walked
    /// anti-diagonally).
    Strided,
}

/// Classifies the access behaviour of executing `pattern` waves over a
/// table stored with `layout`.
pub fn access_class(pattern: Pattern, layout: LayoutKind) -> AccessClass {
    if layout.is_coalesced_for(pattern) {
        match pattern {
            // The L-shell's two arms make the previous-shell gather
            // discontiguous even in shell-major storage.
            Pattern::InvertedL | Pattern::MirroredInvertedL => AccessClass::Partial,
            _ => AccessClass::Coalesced,
        }
    } else {
        AccessClass::Strided
    }
}

/// Read-penalty multiplier for the GPU memory span.
pub fn gpu_read_penalty(class: AccessClass, uncoalesced_penalty: f64) -> f64 {
    match class {
        AccessClass::Coalesced => 1.0,
        // Roughly half the transactions split.
        AccessClass::Partial => 1.0 + (uncoalesced_penalty - 1.0) * 0.4,
        AccessClass::Strided => uncoalesced_penalty,
    }
}

/// Read-penalty multiplier for the CPU memory term (caches absorb most
/// of the irregularity; prefetchers dislike it anyway).
pub fn cpu_read_penalty(class: AccessClass) -> f64 {
    match class {
        AccessClass::Coalesced => 1.0,
        AccessClass::Partial => 1.3,
        AccessClass::Strided => 1.6,
    }
}

/// Execution options shared by all entry points.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Compute cell values (and return the grid) rather than only
    /// accounting time.
    pub functional: bool,
    /// Record one [`WaveRecord`] per wave.
    pub record_timeline: bool,
    /// Overlap one-way boundary copies with compute via asynchronous
    /// streams (§IV-C case 1). Disable for the ablation benchmark.
    pub pipeline: bool,
    /// Table layout; defaults to the coalescing-friendly layout for the
    /// executed pattern.
    pub layout: Option<LayoutKind>,
    /// Bytes of problem input uploaded to the device before the first
    /// wave in which the GPU participates (e.g. the cost matrix of the
    /// checkerboard problem or the dithered image).
    pub setup_to_gpu_bytes: usize,
    /// Bytes of results downloaded after the last wave.
    pub final_from_gpu_bytes: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            functional: false,
            record_timeline: false,
            pipeline: true,
            layout: None,
            setup_to_gpu_bytes: 0,
            final_from_gpu_bytes: 0,
        }
    }
}

impl ExecOptions {
    /// Functional execution returning the computed grid.
    pub fn functional() -> Self {
        ExecOptions {
            functional: true,
            ..Default::default()
        }
    }
}

/// Per-wave timeline entry.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveRecord {
    /// Wave index.
    pub wave: usize,
    /// Cells computed on the CPU.
    pub cpu_cells: usize,
    /// Cells computed on the GPU.
    pub gpu_cells: usize,
    /// CPU compute span, seconds.
    pub cpu_s: f64,
    /// GPU compute span (including launch), seconds.
    pub gpu_s: f64,
    /// Boundary copy time, seconds (0 when hidden behind compute).
    pub copy_s: f64,
    /// Wall span of the wave, seconds.
    pub span_s: f64,
    /// Bytes moved CPU→GPU this wave.
    pub bytes_to_gpu: usize,
    /// Bytes moved GPU→CPU this wave.
    pub bytes_to_cpu: usize,
}

/// Aggregate cost breakdown of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Breakdown {
    /// Total CPU busy time, seconds.
    pub cpu_busy_s: f64,
    /// Total GPU busy time (launches included), seconds.
    pub gpu_busy_s: f64,
    /// Total boundary-copy time on the critical path, seconds.
    pub copy_s: f64,
    /// Setup (input upload) + teardown (result download) time, seconds.
    pub setup_s: f64,
    /// Total bytes moved CPU→GPU (boundary traffic only).
    pub bytes_to_gpu: usize,
    /// Total bytes moved GPU→CPU (boundary traffic only).
    pub bytes_to_cpu: usize,
    /// Number of waves executed.
    pub waves: usize,
}

/// Result of a simulated run.
#[derive(Debug, Clone)]
pub struct Report<T> {
    /// End-to-end virtual time, seconds.
    pub total_s: f64,
    /// Cost breakdown.
    pub breakdown: Breakdown,
    /// The computed table (functional mode only).
    pub grid: Option<Grid<T>>,
    /// Per-wave records (when requested).
    pub timeline: Vec<WaveRecord>,
}

/// Bytes of table traffic per cell: one read per contributing-set member
/// plus the write.
fn bytes_per_cell<K: Kernel>(kernel: &K) -> usize {
    std::mem::size_of::<K::Cell>() * (kernel.contributing_set().len() + 1)
}

/// Resolves the executed pattern: the canonical classification of the
/// kernel's contributing set.
fn canonical_pattern<K: Kernel>(kernel: &K) -> Result<Pattern> {
    lddp_core::pattern::classify(kernel.contributing_set())
        .map(Pattern::canonical)
        .ok_or(Error::EmptyContributingSet)
}

/// Runs the kernel entirely on the platform's multicore CPU, wave by
/// wave ("CPU parallel" in the figures).
pub fn run_cpu<K: Kernel>(
    kernel: &K,
    platform: &Platform,
    opts: &ExecOptions,
) -> Result<Report<K::Cell>> {
    run_cpu_as(kernel, canonical_pattern(kernel)?, platform, opts)
}

/// Like [`run_cpu`] with an explicit (compatible) execution pattern —
/// used by the Fig 8 inverted-L vs horizontal comparison.
pub fn run_cpu_as<K: Kernel>(
    kernel: &K,
    pattern: Pattern,
    platform: &Platform,
    opts: &ExecOptions,
) -> Result<Report<K::Cell>> {
    if !lddp_core::schedule::compatible(pattern, kernel.contributing_set()) {
        return Err(Error::PlanMismatch {
            expected: format!("{pattern}"),
            found: format!("{}", kernel.contributing_set()),
        });
    }
    let dims = kernel.dims();
    let layout = opts
        .layout
        .unwrap_or_else(|| LayoutKind::preferred_for(pattern));
    let penalty = cpu_read_penalty(access_class(pattern, layout));
    let ops = kernel.cost_ops();
    let bpc = bytes_per_cell(kernel);
    let mut breakdown = Breakdown::default();
    let mut timeline = Vec::new();
    let mut total = 0.0;
    for w in 0..pattern.num_waves(dims.rows, dims.cols) {
        let cells = pattern.wave_len(dims.rows, dims.cols, w);
        let t = platform.cpu.wave_time_s(cells, ops, bpc, penalty);
        total += t;
        breakdown.cpu_busy_s += t;
        breakdown.waves += 1;
        if opts.record_timeline {
            timeline.push(WaveRecord {
                wave: w,
                cpu_cells: cells,
                gpu_cells: 0,
                cpu_s: t,
                gpu_s: 0.0,
                copy_s: 0.0,
                span_s: t,
                bytes_to_gpu: 0,
                bytes_to_cpu: 0,
            });
        }
    }
    let grid = if opts.functional {
        Some(lddp_core::seq::solve_wavefront_as(kernel, pattern, layout)?)
    } else {
        None
    };
    Ok(Report {
        total_s: total,
        breakdown,
        grid,
        timeline,
    })
}

/// Runs the kernel entirely on the platform's GPU, one kernel launch per
/// wave ("GPU" in the figures).
pub fn run_gpu<K: Kernel>(
    kernel: &K,
    platform: &Platform,
    opts: &ExecOptions,
) -> Result<Report<K::Cell>> {
    run_gpu_as(kernel, canonical_pattern(kernel)?, platform, opts)
}

/// Like [`run_gpu`] with an explicit (compatible) execution pattern.
pub fn run_gpu_as<K: Kernel>(
    kernel: &K,
    pattern: Pattern,
    platform: &Platform,
    opts: &ExecOptions,
) -> Result<Report<K::Cell>> {
    if !lddp_core::schedule::compatible(pattern, kernel.contributing_set()) {
        return Err(Error::PlanMismatch {
            expected: format!("{pattern}"),
            found: format!("{}", kernel.contributing_set()),
        });
    }
    let dims = kernel.dims();
    let layout = opts
        .layout
        .unwrap_or_else(|| LayoutKind::preferred_for(pattern));
    let penalty = gpu_read_penalty(
        access_class(pattern, layout),
        platform.gpu.uncoalesced_penalty,
    );
    let ops = kernel.cost_ops();
    let bpc = bytes_per_cell(kernel);
    let mut breakdown = Breakdown::default();
    let mut timeline = Vec::new();
    let mut total = 0.0;
    breakdown.setup_s = platform
        .link
        .transfer_time_s(opts.setup_to_gpu_bytes, HostMemory::Pageable)
        + platform
            .link
            .transfer_time_s(opts.final_from_gpu_bytes, HostMemory::Pageable);
    total += breakdown.setup_s;
    for w in 0..pattern.num_waves(dims.rows, dims.cols) {
        let cells = pattern.wave_len(dims.rows, dims.cols, w);
        let t = platform.gpu.wave_time_s(cells, ops, bpc, penalty);
        total += t;
        breakdown.gpu_busy_s += t;
        breakdown.waves += 1;
        if opts.record_timeline {
            timeline.push(WaveRecord {
                wave: w,
                cpu_cells: 0,
                gpu_cells: cells,
                cpu_s: 0.0,
                gpu_s: t,
                copy_s: 0.0,
                span_s: t,
                bytes_to_gpu: 0,
                bytes_to_cpu: 0,
            });
        }
    }
    let grid = if opts.functional {
        Some(lddp_core::seq::solve_wavefront_as(kernel, pattern, layout)?)
    } else {
        None
    };
    Ok(Report {
        total_s: total,
        breakdown,
        grid,
        timeline,
    })
}

/// Runs the kernel heterogeneously according to `plan` ("Framework" in
/// the figures).
///
/// In functional mode the host and device keep *separate* grids that
/// exchange values only through the plan's per-wave transfer lists; the
/// merged result is returned.
pub fn run_hetero<K: Kernel, S: WaveSchedule>(
    kernel: &K,
    plan: &S,
    platform: &Platform,
    opts: &ExecOptions,
) -> Result<Report<K::Cell>> {
    run_hetero_inner(kernel, plan, platform, opts, None)
}

/// Like [`run_hetero`] with a [`FaultInjector`](lddp_chaos::FaultInjector)
/// consulted on every wave in which the device participates (it computes
/// cells or a boundary transfer crosses the link). An injected fault
/// aborts the run with [`Error::DeviceFault`] — device-side table state
/// is considered lost from that wave on, which is what the CPU-only
/// degradation rung recovers from.
pub fn run_hetero_injected<K: Kernel, S: WaveSchedule>(
    kernel: &K,
    plan: &S,
    platform: &Platform,
    opts: &ExecOptions,
    injector: &dyn lddp_chaos::FaultInjector,
) -> Result<Report<K::Cell>> {
    run_hetero_inner(kernel, plan, platform, opts, Some(injector))
}

fn run_hetero_inner<K: Kernel, S: WaveSchedule>(
    kernel: &K,
    plan: &S,
    platform: &Platform,
    opts: &ExecOptions,
    injector: Option<&dyn lddp_chaos::FaultInjector>,
) -> Result<Report<K::Cell>> {
    let dims = kernel.dims();
    if plan.dims() != dims || plan.set() != kernel.contributing_set() {
        return Err(Error::PlanMismatch {
            expected: format!("{:?} over {}", plan.dims(), plan.set()),
            found: format!("{:?} over {}", dims, kernel.contributing_set()),
        });
    }
    let pattern = plan.pattern();
    let layout = opts
        .layout
        .unwrap_or_else(|| LayoutKind::preferred_for(pattern));
    let class = access_class(pattern, layout);
    let rp_cpu = cpu_read_penalty(class);
    let rp_gpu = gpu_read_penalty(class, platform.gpu.uncoalesced_penalty);
    let ops = kernel.cost_ops();
    let bpc = bytes_per_cell(kernel);
    let cell_size = std::mem::size_of::<K::Cell>();

    let mut breakdown = Breakdown::default();
    let mut timeline = Vec::new();
    let mut total = 0.0;

    let gpu_participates = (0..plan.num_waves())
        .any(|w| plan.phase_of(w) == PhaseKind::Shared && plan.assignment(w).gpu_len() > 0);
    if gpu_participates {
        breakdown.setup_s = platform
            .link
            .transfer_time_s(opts.setup_to_gpu_bytes, HostMemory::Pageable)
            + platform
                .link
                .transfer_time_s(opts.final_from_gpu_bytes, HostMemory::Pageable);
        total += breakdown.setup_s;
    }

    // Functional state: disjoint host/device grids.
    let mut host_grid: Option<Grid<K::Cell>> = None;
    let mut dev_grid: Option<Grid<K::Cell>> = None;
    if opts.functional {
        host_grid = Some(Grid::new(layout, dims));
        dev_grid = Some(Grid::new(layout, dims));
    }

    for w in 0..plan.num_waves() {
        let assign = plan.assignment(w);
        let transfers = plan.transfers(w);
        let bytes_to_gpu = transfers.to_gpu.len() * cell_size;
        let bytes_to_cpu = transfers.to_cpu.len() * cell_size;

        if let Some(inj) = injector {
            let device_involved = assign.gpu_len() > 0 || bytes_to_gpu > 0 || bytes_to_cpu > 0;
            if device_involved && inj.device_fault(w) {
                return Err(Error::DeviceFault { wave: w });
            }
        }

        if let (Some(host), Some(dev)) = (host_grid.as_mut(), dev_grid.as_mut()) {
            // Move boundary values between the grids, then compute each
            // side against its own grid only.
            for &(i, j) in &transfers.to_gpu {
                let v = host.get(i, j);
                dev.set(i, j, v);
            }
            for &(i, j) in &transfers.to_cpu {
                let v = dev.get(i, j);
                host.set(i, j, v);
            }
            for pos in assign.cpu.clone() {
                let (i, j) = wavefront::cell_at(pattern, dims, w, pos);
                let nbrs = gather(kernel, host, i, j, dims);
                let v = kernel.compute(i, j, &nbrs);
                host.set(i, j, v);
            }
            for pos in assign.gpu.clone() {
                let (i, j) = wavefront::cell_at(pattern, dims, w, pos);
                let nbrs = gather(kernel, dev, i, j, dims);
                let v = kernel.compute(i, j, &nbrs);
                dev.set(i, j, v);
            }
        }

        let cpu_s = platform.cpu.wave_time_s(assign.cpu_len(), ops, bpc, rp_cpu);
        let gpu_s = platform.gpu.wave_time_s(assign.gpu_len(), ops, bpc, rp_gpu);
        let one_direction = (bytes_to_gpu == 0) != (bytes_to_cpu == 0);
        let (copy_s, span_s) = if bytes_to_gpu == 0 && bytes_to_cpu == 0 {
            (0.0, cpu_s.max(gpu_s))
        } else if opts.pipeline && one_direction && plan.transfer_need() != TransferNeed::TwoWay {
            // §IV-C case 1: asynchronous stream overlaps the copy with
            // both compute engines; pinned staging buffers.
            let copy = platform
                .link
                .transfer_time_s(bytes_to_gpu + bytes_to_cpu, HostMemory::Pinned);
            (copy, LinkModel::pipelined_span_s(cpu_s, gpu_s, copy))
        } else {
            // §IV-C case 2: small pinned copies on the critical path.
            let copy = platform
                .link
                .transfer_time_s(bytes_to_gpu, HostMemory::Pinned)
                + platform
                    .link
                    .transfer_time_s(bytes_to_cpu, HostMemory::Pinned);
            (copy, LinkModel::serialized_span_s(cpu_s, gpu_s, copy))
        };

        total += span_s;
        breakdown.cpu_busy_s += cpu_s;
        breakdown.gpu_busy_s += gpu_s;
        breakdown.copy_s += copy_s;
        breakdown.bytes_to_gpu += bytes_to_gpu;
        breakdown.bytes_to_cpu += bytes_to_cpu;
        breakdown.waves += 1;
        if opts.record_timeline {
            timeline.push(WaveRecord {
                wave: w,
                cpu_cells: assign.cpu_len(),
                gpu_cells: assign.gpu_len(),
                cpu_s,
                gpu_s,
                copy_s,
                span_s,
                bytes_to_gpu,
                bytes_to_cpu,
            });
        }
    }

    // Merge: the host view holds CPU-owned values; fill in GPU-owned ones
    // (the paper's final device→host result copy). Ownership comes from
    // the schedule's assignments, so this works for variable bands too.
    let grid = match (host_grid, dev_grid) {
        (Some(mut host), Some(dev)) => {
            for w in 0..plan.num_waves() {
                let assign = plan.assignment(w);
                for pos in assign.gpu.clone() {
                    let (i, j) = wavefront::cell_at(pattern, dims, w, pos);
                    let v = dev.get(i, j);
                    host.set(i, j, v);
                }
            }
            Some(host)
        }
        _ => None,
    };

    Ok(Report {
        total_s: total,
        breakdown,
        grid,
        timeline,
    })
}

/// Gathers declared in-bounds neighbours from one device's grid.
fn gather<K: Kernel>(
    kernel: &K,
    grid: &Grid<K::Cell>,
    i: usize,
    j: usize,
    dims: Dims,
) -> Neighbors<K::Cell> {
    let mut nbrs = Neighbors::empty();
    for dep in kernel.contributing_set().iter() {
        if let Some((si, sj)) = dep.source(i, j, dims.rows, dims.cols) {
            nbrs.set(dep, grid.get(si, sj));
        }
    }
    nbrs
}
