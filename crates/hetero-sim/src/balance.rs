//! Dynamic load balancing — the online alternative to the §V-A offline
//! sweeps, in the spirit of the work-distribution heuristics of Cuenca
//! et al. (the paper's reference [10]).
//!
//! Instead of tuning `t_share` with full pilot runs, the balancer
//! observes each shared wave's CPU and GPU spans and nudges the next
//! wave's band width toward the equalizing split:
//!
//! ```text
//! band[w+1] = clamp(band[w] + gain · (gpu_span − cpu_span) / cell_time_cpu)
//! ```
//!
//! One pass, no sweeps. The resulting per-wave band vector forms a
//! [`VariablePlan`], executed by the ordinary generic executor — so the
//! balanced run is bit-identical in results and fully auditable.

use crate::exec::{access_class, cpu_read_penalty, gpu_read_penalty, ExecOptions, Report};
use crate::platform::Platform;
use lddp_core::adaptive::VariablePlan;
use lddp_core::grid::LayoutKind;
use lddp_core::kernel::Kernel;
use lddp_core::pattern::{Pattern, ProfileShape};
use lddp_core::schedule::{band_len, PhaseKind};
use lddp_core::Result;

/// Balancer configuration.
#[derive(Debug, Clone)]
pub struct BalanceConfig {
    /// Low-work waves handed to the CPU alone (as in the static plan).
    pub t_switch: usize,
    /// Starting band width for the first shared wave.
    pub initial_band: usize,
    /// Fraction of the estimated imbalance corrected per wave (0..=1];
    /// lower is smoother, higher is twitchier.
    pub gain: f64,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        BalanceConfig {
            t_switch: 0,
            initial_band: 0,
            gain: 0.5,
        }
    }
}

/// Builds a balanced [`VariablePlan`] for `kernel` on `platform` by
/// simulating the span feedback loop, then (optionally) runs it.
///
/// Returns the plan together with the executor's report.
pub fn run_balanced<K: Kernel>(
    kernel: &K,
    pattern: Pattern,
    platform: &Platform,
    opts: &ExecOptions,
    config: &BalanceConfig,
) -> Result<(VariablePlan, Report<K::Cell>)> {
    let dims = kernel.dims();
    let set = kernel.contributing_set();
    let num_waves = pattern.num_waves(dims.rows, dims.cols);
    let layout = opts
        .layout
        .unwrap_or_else(|| LayoutKind::preferred_for(pattern));
    let class = access_class(pattern, layout);
    let rp_cpu = cpu_read_penalty(class);
    let rp_gpu = gpu_read_penalty(class, platform.gpu.uncoalesced_penalty);
    let ops = kernel.cost_ops();
    let bpc = std::mem::size_of::<K::Cell>() * (set.len() + 1);
    let cell_cpu_s =
        platform.cpu.cell_time_s(ops, bpc, rp_cpu) / platform.cpu.effective_parallelism();

    let t_switch = match pattern.profile_shape() {
        ProfileShape::Constant => 0,
        ProfileShape::RampUpDown => config.t_switch.min(num_waves / 2),
        ProfileShape::Decreasing => config.t_switch.min(num_waves),
    };

    // Feedback loop over the model: observe spans for the current band,
    // correct toward balance.
    let mut bands = vec![0usize; num_waves];
    let mut band = config.initial_band.min(dims.cols) as f64;
    let phase_of = |w: usize| -> PhaseKind {
        match pattern.profile_shape() {
            ProfileShape::RampUpDown => {
                if w < t_switch || w >= num_waves - t_switch {
                    PhaseKind::CpuOnly
                } else {
                    PhaseKind::Shared
                }
            }
            ProfileShape::Constant => PhaseKind::Shared,
            ProfileShape::Decreasing => {
                if w >= num_waves - t_switch {
                    PhaseKind::CpuOnly
                } else {
                    PhaseKind::Shared
                }
            }
        }
    };
    for (w, band_slot) in bands.iter_mut().enumerate() {
        if phase_of(w) == PhaseKind::CpuOnly {
            *band_slot = 0;
            continue;
        }
        let b = (band.round() as usize).min(dims.cols);
        *band_slot = b;
        let len = pattern.wave_len(dims.rows, dims.cols, w);
        let cpu_cells = band_len(pattern, dims, w, b);
        let gpu_cells = len - cpu_cells;
        let cpu_s = platform.cpu.wave_time_s(cpu_cells, ops, bpc, rp_cpu);
        let gpu_s = platform.gpu.wave_time_s(gpu_cells, ops, bpc, rp_gpu);
        // Convert the span gap into a column correction.
        let gap = gpu_s - cpu_s;
        let correction = config.gain * gap / cell_cpu_s.max(f64::MIN_POSITIVE);
        band = (band + correction).clamp(0.0, dims.cols as f64);
    }

    let plan = VariablePlan::new(pattern, set, dims, t_switch, bands)?;
    let report = crate::exec::run_hetero(kernel, &plan, platform, opts)?;
    Ok((plan, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::hetero_high;
    use lddp_core::cell::{ContributingSet, RepCell};
    use lddp_core::kernel::{ClosureKernel, Neighbors};
    use lddp_core::schedule::{Plan, ScheduleParams};
    use lddp_core::seq::solve_row_major;
    use lddp_core::wavefront::Dims;

    fn kernel(dims: Dims, set: ContributingSet) -> impl Kernel<Cell = u64> {
        ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
            let mut acc = ((i * 13 + j * 7) as u64) | 1;
            for c in RepCell::ALL {
                if let Some(v) = n.get(c) {
                    acc = acc.wrapping_mul(31).wrapping_add(*v);
                }
            }
            acc
        })
    }

    #[test]
    fn balanced_run_is_functionally_correct() {
        let set = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
        let dims = Dims::new(64, 96);
        let k = kernel(dims, set);
        let oracle = solve_row_major(&k).unwrap().to_row_major();
        let (plan, report) = run_balanced(
            &k,
            Pattern::Horizontal,
            &hetero_high(),
            &ExecOptions::functional(),
            &BalanceConfig::default(),
        )
        .unwrap();
        assert_eq!(report.grid.unwrap().to_row_major(), oracle);
        assert_eq!(plan.bands().len(), 64);
    }

    #[test]
    fn balancer_converges_to_a_stable_band() {
        // Wide uniform waves: the equalizing band is unique; after the
        // transient, consecutive bands should settle.
        let set = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
        let dims = Dims::new(256, 4096);
        let k = kernel(dims, set);
        let (plan, _) = run_balanced(
            &k,
            Pattern::Horizontal,
            &hetero_high(),
            &ExecOptions::default(),
            &BalanceConfig::default(),
        )
        .unwrap();
        let tail = &plan.bands()[200..];
        let min = tail.iter().min().unwrap();
        let max = tail.iter().max().unwrap();
        assert!(max - min <= 8, "band still oscillating: {min}..{max}");
        assert!(*min > 0, "balance must give the CPU work");
        assert!(*max < 4096, "balance must give the GPU work");
    }

    #[test]
    fn balanced_time_is_close_to_the_tuned_static_plan() {
        let set = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
        let dims = Dims::new(512, 2048);
        let k = kernel(dims, set);
        let platform = hetero_high();
        let opts = ExecOptions::default();
        // Static optimum via a fine sweep.
        let mut best_static = f64::INFINITY;
        for ts in (0..=2048).step_by(64) {
            let plan =
                Plan::new(Pattern::Horizontal, set, dims, ScheduleParams::new(0, ts)).unwrap();
            best_static = best_static.min(
                crate::exec::run_hetero(&k, &plan, &platform, &opts)
                    .unwrap()
                    .total_s,
            );
        }
        let (_, report) = run_balanced(
            &k,
            Pattern::Horizontal,
            &platform,
            &opts,
            &BalanceConfig::default(),
        )
        .unwrap();
        assert!(
            report.total_s <= best_static * 1.10,
            "one-pass balancing {:.4} ms must be within 10% of the tuned {:.4} ms",
            report.total_s * 1e3,
            best_static * 1e3
        );
    }

    #[test]
    fn ramp_patterns_keep_their_cpu_only_phases() {
        let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
        let dims = Dims::new(64, 64);
        let k = kernel(dims, set);
        let config = BalanceConfig {
            t_switch: 10,
            initial_band: 8,
            gain: 0.5,
        };
        let (plan, report) = run_balanced(
            &k,
            Pattern::AntiDiagonal,
            &hetero_high(),
            &ExecOptions::functional(),
            &config,
        )
        .unwrap();
        let oracle = solve_row_major(&k).unwrap().to_row_major();
        assert_eq!(report.grid.unwrap().to_row_major(), oracle);
        // First and last t_switch waves have zero band (CPU-only).
        assert!(plan.bands()[..10].iter().all(|&b| b == 0));
        assert!(plan.bands()[127 - 9..].iter().all(|&b| b == 0));
    }
}
