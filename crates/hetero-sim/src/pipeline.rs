//! Event-driven pipeline simulation — the high-fidelity version of the
//! per-wave `max()` composition used by [`crate::exec::run_hetero`].
//!
//! The paper's §IV-C pipelining lets the GPU *lag* the CPU by an
//! iteration: while the CPU computes row `r` and the copy engine ships
//! row `r−1`, the GPU computes row `r−1`. The lockstep executor
//! approximates this with `span(w) = max(cpu, gpu, copy)` per wave; this
//! module simulates the three resources (CPU, GPU, copy engine) as
//! independent in-order pipelines coupled only by data dependencies, so
//! slack in one wave can absorb a stall in the next.
//!
//! Used to validate the lockstep approximation (they agree within a few
//! percent in steady state) and to quantify what free-running pipelining
//! buys over barrier-synchronous execution.

use crate::link::HostMemory;
use crate::platform::Platform;
use lddp_core::grid::LayoutKind;
use lddp_core::kernel::Kernel;
use lddp_core::schedule::{max_wave_delta, WaveSchedule};
use lddp_core::Result;

/// Outcome of an event-driven pipeline simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Makespan, seconds.
    pub total_s: f64,
    /// CPU busy seconds.
    pub cpu_busy_s: f64,
    /// GPU busy seconds.
    pub gpu_busy_s: f64,
    /// Copy-engine busy seconds.
    pub copy_busy_s: f64,
    /// Maximum number of waves the GPU lagged behind the CPU.
    pub max_gpu_lag: usize,
}

/// Simulates `schedule` with free-running in-order resources.
///
/// Dependency structure per wave `w` (conservative, at wave
/// granularity):
/// - the CPU part of `w` needs the CPU part of `w−1` (in-order) and any
///   GPU-produced imports, which are ready once the copy for `w` is done;
/// - the copy for `w` needs the producing parts of waves `w−δ..w` to be
///   finished (δ = the set's dependency depth);
/// - the GPU part of `w` needs the GPU part of `w−1` and the copy for
///   `w`.
///
/// Copies use pinned buffers (they must be DMA-able to overlap).
pub fn simulate_pipelined<K: Kernel, S: WaveSchedule>(
    kernel: &K,
    schedule: &S,
    platform: &Platform,
) -> Result<PipelineReport> {
    let pattern = schedule.pattern();
    let dims = schedule.dims();
    let layout = LayoutKind::preferred_for(pattern);
    let class = crate::exec::access_class(pattern, layout);
    let rp_cpu = crate::exec::cpu_read_penalty(class);
    let rp_gpu = crate::exec::gpu_read_penalty(class, platform.gpu.uncoalesced_penalty);
    let ops = kernel.cost_ops();
    let bpc = std::mem::size_of::<K::Cell>() * (kernel.contributing_set().len() + 1);
    let cell_size = std::mem::size_of::<K::Cell>();
    let delta = max_wave_delta(pattern, schedule.set()).max(1);
    let num_waves = schedule.num_waves();
    let _ = dims;

    // done[w] per resource; waves with no work on a resource complete
    // instantly at their dependency-ready time.
    let mut cpu_done = vec![0.0f64; num_waves + 1];
    let mut gpu_done = vec![0.0f64; num_waves + 1];
    let mut copy_done = vec![0.0f64; num_waves + 1];
    let mut cpu_free = 0.0f64;
    let mut gpu_free = 0.0f64;
    let mut copy_free = 0.0f64;
    let mut cpu_busy = 0.0;
    let mut gpu_busy = 0.0;
    let mut copy_busy = 0.0;
    let mut max_lag = 0usize;

    for w in 0..num_waves {
        let assign = schedule.assignment(w);
        let transfers = schedule.transfers(w);
        let cpu_t = platform.cpu.wave_time_s(assign.cpu_len(), ops, bpc, rp_cpu);
        let gpu_t = platform.gpu.wave_time_s(assign.gpu_len(), ops, bpc, rp_gpu);
        let bytes = (transfers.to_gpu.len() + transfers.to_cpu.len()) * cell_size;
        let copy_t = if bytes == 0 {
            0.0
        } else {
            platform.link.transfer_time_s(bytes, HostMemory::Pinned)
        };

        // Producers of wave w's imports finished by (per direction: the
        // CPU produces the to_gpu cells, the GPU the to_cpu cells).
        let lo = w.saturating_sub(delta);
        let mut producers_done = 0.0f64;
        for p in lo..w {
            if !transfers.to_gpu.is_empty() {
                producers_done = producers_done.max(cpu_done[p]);
            }
            if !transfers.to_cpu.is_empty() {
                producers_done = producers_done.max(gpu_done[p]);
            }
        }
        // Copy engine: in-order, after producers.
        let copy_start = copy_free.max(producers_done);
        let cd = copy_start + copy_t;
        if copy_t > 0.0 {
            copy_free = cd;
            copy_busy += copy_t;
        }
        copy_done[w] = cd;

        // CPU part: in-order, after its imports arrive (only when it has
        // imports; the copy covers both directions at once —
        // conservative).
        let cpu_ready = if transfers.to_cpu.is_empty() { 0.0 } else { cd };
        let prev_cpu = if w == 0 { 0.0 } else { cpu_done[w - 1] };
        let cpu_start = cpu_free.max(cpu_ready).max(prev_cpu);
        let cdone = if assign.cpu_len() == 0 {
            cpu_start
        } else {
            cpu_busy += cpu_t;
            cpu_free = cpu_start + cpu_t;
            cpu_free
        };
        cpu_done[w] = cdone;

        // GPU part.
        let gpu_ready = if transfers.to_gpu.is_empty() { 0.0 } else { cd };
        let prev_gpu = if w == 0 { 0.0 } else { gpu_done[w - 1] };
        let gpu_start = gpu_free.max(gpu_ready).max(prev_gpu);
        let gdone = if assign.gpu_len() == 0 {
            gpu_start
        } else {
            gpu_busy += gpu_t;
            gpu_free = gpu_start + gpu_t;
            gpu_free
        };
        gpu_done[w] = gdone;

        // Lag: how many CPU waves completed past the GPU's current wave.
        if assign.gpu_len() > 0 {
            let lag = (lo..=w).filter(|&p| cpu_done[p] < gpu_start).count();
            max_lag = max_lag.max(lag);
        }
    }

    let total = cpu_done[num_waves.saturating_sub(1)]
        .max(gpu_done[num_waves.saturating_sub(1)])
        .max(copy_done[num_waves.saturating_sub(1)]);
    Ok(PipelineReport {
        total_s: total,
        cpu_busy_s: cpu_busy,
        gpu_busy_s: gpu_busy,
        copy_busy_s: copy_busy,
        max_gpu_lag: max_lag,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_hetero, ExecOptions};
    use crate::platform::hetero_high;
    use lddp_core::cell::{ContributingSet, RepCell};
    use lddp_core::kernel::{ClosureKernel, Neighbors};
    use lddp_core::pattern::Pattern;
    use lddp_core::schedule::{Plan, ScheduleParams};
    use lddp_core::wavefront::Dims;

    fn kernel(dims: Dims, set: ContributingSet) -> impl Kernel<Cell = u32> {
        ClosureKernel::new(dims, set, |_i, _j, _n: &Neighbors<u32>| 0u32).with_cost_ops(16)
    }

    fn h1() -> ContributingSet {
        ContributingSet::new(&[RepCell::Nw, RepCell::N])
    }

    /// The free-running pipeline is essentially never slower than the
    /// lockstep (barrier-per-wave) executor — the two use slightly
    /// different copy-visibility conventions (lockstep hides a one-way
    /// copy entirely under the wave's `max`, the event model serializes
    /// copy → consumer inside a dependency chain), so allow a 1%
    /// sliver — and never faster than the busiest resource alone.
    #[test]
    fn pipeline_bounded_by_lockstep_and_busy_time() {
        for (set, pattern, params) in [
            (h1(), Pattern::Horizontal, ScheduleParams::new(0, 512)),
            (
                ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
                Pattern::AntiDiagonal,
                ScheduleParams::new(128, 256),
            ),
            (
                ContributingSet::FULL,
                Pattern::KnightMove,
                ScheduleParams::new(256, 128),
            ),
        ] {
            let dims = Dims::new(1024, 1024);
            let k = kernel(dims, set);
            let plan = Plan::new(pattern, set, dims, params).unwrap();
            let lockstep = run_hetero(&k, &plan, &hetero_high(), &ExecOptions::default())
                .unwrap()
                .total_s;
            let pipe = simulate_pipelined(&k, &plan, &hetero_high()).unwrap();
            assert!(
                pipe.total_s <= lockstep * 1.01,
                "{pattern}: pipeline {0} must not exceed lockstep {lockstep}",
                pipe.total_s
            );
            let busy_floor = pipe.cpu_busy_s.max(pipe.gpu_busy_s).max(pipe.copy_busy_s);
            assert!(
                pipe.total_s + 1e-12 >= busy_floor,
                "{pattern}: makespan below the busiest resource"
            );
        }
    }

    /// With no GPU work and no transfers, the pipeline time equals the
    /// sum of CPU wave times exactly.
    #[test]
    fn degenerate_cpu_only_matches_sum() {
        let dims = Dims::new(64, 64);
        let set = h1();
        let k = kernel(dims, set);
        let plan = Plan::new(Pattern::Horizontal, set, dims, ScheduleParams::new(0, 64)).unwrap();
        let pipe = simulate_pipelined(&k, &plan, &hetero_high()).unwrap();
        assert!((pipe.total_s - pipe.cpu_busy_s).abs() < 1e-12);
        assert_eq!(pipe.gpu_busy_s, 0.0);
        assert_eq!(pipe.copy_busy_s, 0.0);
        assert_eq!(pipe.max_gpu_lag, 0);
    }

    /// In a balanced one-way horizontal run the lockstep approximation is
    /// tight: the free-running pipeline saves only a few percent.
    #[test]
    fn lockstep_approximation_is_tight_in_steady_state() {
        let dims = Dims::new(2048, 4096);
        let set = h1();
        let k = kernel(dims, set);
        let plan = Plan::new(Pattern::Horizontal, set, dims, ScheduleParams::new(0, 1024)).unwrap();
        let lockstep = run_hetero(&k, &plan, &hetero_high(), &ExecOptions::default())
            .unwrap()
            .total_s;
        let pipe = simulate_pipelined(&k, &plan, &hetero_high()).unwrap();
        let gain = (lockstep - pipe.total_s) / lockstep;
        assert!(
            (0.0..0.15).contains(&gain),
            "pipeline gain {gain} out of the expected few-percent range \
             (lockstep {lockstep}, pipeline {})",
            pipe.total_s
        );
    }

    /// The GPU genuinely lags: with one-way transfers the device runs an
    /// iteration behind, as §IV-C describes.
    #[test]
    fn gpu_lags_behind_the_cpu() {
        let dims = Dims::new(512, 2048);
        let set = h1();
        let k = kernel(dims, set);
        let plan = Plan::new(Pattern::Horizontal, set, dims, ScheduleParams::new(0, 512)).unwrap();
        let pipe = simulate_pipelined(&k, &plan, &hetero_high()).unwrap();
        assert!(pipe.max_gpu_lag >= 1, "no pipelining observed");
    }
}
