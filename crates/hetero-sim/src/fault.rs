//! Link fault injection — a robustness probe for the transfer schemes.
//!
//! The paper assumes a reliable PCIe link; related work (Caminiti et
//! al., "LDDP in the presence of memory faults") motivates asking what
//! unreliable data movement does to the framework. This module models a
//! lossy channel with per-byte bit-flip probability, guards payloads
//! with an FNV-1a checksum, retries on mismatch, and extends the
//! [`LinkModel`](crate::link::LinkModel) timing with the expected retry
//! multiplier.

use crate::link::{HostMemory, LinkModel};

/// FNV-1a 64-bit checksum over a byte payload.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64: a tiny, dependency-free deterministic generator for the
/// fault injector.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A lossy channel with checksum-verified retry.
#[derive(Debug, Clone)]
pub struct FaultyChannel {
    /// Probability that any given transferred byte suffers a bit flip.
    pub flip_prob_per_byte: f64,
    rng: SplitMix64,
    /// Total transfer attempts issued.
    pub attempts: u64,
    /// Attempts whose payload arrived corrupted (and were detected).
    pub detected: u64,
}

impl FaultyChannel {
    /// A channel with the given per-byte corruption probability.
    pub fn new(flip_prob_per_byte: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&flip_prob_per_byte));
        FaultyChannel {
            flip_prob_per_byte,
            rng: SplitMix64::new(seed),
            attempts: 0,
            detected: 0,
        }
    }

    /// One raw (unprotected) send: returns the possibly-corrupted
    /// payload.
    fn send_once(&mut self, payload: &[u8]) -> Vec<u8> {
        self.attempts += 1;
        let mut out = payload.to_vec();
        for byte in out.iter_mut() {
            if self.rng.next_f64() < self.flip_prob_per_byte {
                let bit = (self.rng.next_u64() % 8) as u8;
                *byte ^= 1 << bit;
            }
        }
        out
    }

    /// Transfers `payload` with checksum verification, retrying until it
    /// arrives intact. Returns the delivered bytes and the number of
    /// attempts used.
    pub fn transfer_reliable(&mut self, payload: &[u8]) -> (Vec<u8>, u32) {
        let expect = checksum(payload);
        let mut tries = 0u32;
        loop {
            tries += 1;
            let got = self.send_once(payload);
            if checksum(&got) == expect {
                return (got, tries);
            }
            self.detected += 1;
        }
    }
}

/// Probability that a transfer of `bytes` arrives corrupted.
pub fn corruption_prob(bytes: usize, flip_prob_per_byte: f64) -> f64 {
    1.0 - (1.0 - flip_prob_per_byte).powi(bytes as i32)
}

/// Expected wall time of a checksum-verified transfer over a lossy link:
/// geometric retries (`1 / (1 - p_corrupt)`) plus a fixed checksum
/// overhead per attempt.
pub fn expected_reliable_transfer_s(
    link: &LinkModel,
    bytes: usize,
    mem: HostMemory,
    flip_prob_per_byte: f64,
    checksum_overhead_s: f64,
) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    let p = corruption_prob(bytes, flip_prob_per_byte);
    let once = link.transfer_time_s(bytes, mem) + checksum_overhead_s;
    once / (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkModel {
        LinkModel {
            pageable_latency_s: 10e-6,
            pageable_bw_gbps: 6.0,
            pinned_latency_s: 1e-6,
            pinned_bw_gbps: 6.5,
        }
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let payload: Vec<u8> = (0..64u8).collect();
        let base = checksum(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut corrupted = payload.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(checksum(&corrupted), base, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn reliable_transfer_always_delivers_intact() {
        let payload: Vec<u8> = (0..128).map(|i| (i * 7) as u8).collect();
        let mut chan = FaultyChannel::new(0.02, 42);
        for _ in 0..200 {
            let (got, _) = chan.transfer_reliable(&payload);
            assert_eq!(got, payload);
        }
        assert!(
            chan.detected > 0,
            "2% per-byte flips over 128 B must corrupt sometimes"
        );
        assert_eq!(chan.attempts, 200 + chan.detected);
    }

    #[test]
    fn clean_channel_never_retries() {
        let payload = vec![0xabu8; 256];
        let mut chan = FaultyChannel::new(0.0, 7);
        let (got, tries) = chan.transfer_reliable(&payload);
        assert_eq!(got, payload);
        assert_eq!(tries, 1);
        assert_eq!(chan.detected, 0);
    }

    #[test]
    fn retry_rate_matches_the_model() {
        // Empirical corruption rate over many transfers ≈ analytic
        // corruption probability.
        let bytes = 64;
        let flip = 0.004;
        let payload = vec![0x5au8; bytes];
        let mut chan = FaultyChannel::new(flip, 9);
        let runs = 4000;
        for _ in 0..runs {
            chan.transfer_reliable(&payload);
        }
        let empirical = chan.detected as f64 / chan.attempts as f64;
        let analytic = corruption_prob(bytes, flip);
        assert!(
            (empirical - analytic).abs() < 0.03,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn expected_time_grows_with_fault_rate() {
        let l = link();
        let clean = expected_reliable_transfer_s(&l, 1024, HostMemory::Pinned, 0.0, 0.2e-6);
        let dirty = expected_reliable_transfer_s(&l, 1024, HostMemory::Pinned, 1e-4, 0.2e-6);
        assert!(dirty > clean);
        // A ~10% corruption probability costs ~11% more time.
        let p = corruption_prob(1024, 1e-4);
        assert!((dirty / clean - 1.0 / (1.0 - p)).abs() < 1e-12);
        assert_eq!(
            expected_reliable_transfer_s(&l, 0, HostMemory::Pinned, 0.5, 1e-6),
            0.0
        );
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(2);
        let mean: f64 = (0..4096).map(|_| c.next_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
