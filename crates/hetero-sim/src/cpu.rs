//! Multicore CPU cost model.
//!
//! Mirrors the paper's CPU execution strategy (§IV-A): a few heavy-weight
//! threads, each responsible for a chunk of the wave, synchronized by a
//! barrier between waves. Time for a wave is the per-wave fork/join
//! overhead plus the chunked cell work divided across the effective
//! parallelism of the part.

/// Analytic model of a multicore CPU executing LDDP wavefronts.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Physical core count.
    pub physical_cores: usize,
    /// Logical thread count (with hyper-threading).
    pub logical_threads: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Effective scalar operations retired per cycle for DP cell code
    /// (includes ILP but also branch misses; typically 1–2).
    pub ops_per_cycle: f64,
    /// Fraction of linear multicore scaling achieved on wavefront loops
    /// (barrier-bounded, memory-bound); hyper-threading yield is folded
    /// in. `effective_parallelism = physical_cores · this`.
    pub parallel_yield: f64,
    /// Per-wave fork/join + barrier overhead, seconds (OpenMP-class).
    pub sync_overhead_s: f64,
    /// Effective per-byte cost of table traffic that misses cache,
    /// seconds per byte.
    pub mem_s_per_byte: f64,
}

impl CpuModel {
    /// Effective number of concurrently productive threads.
    pub fn effective_parallelism(&self) -> f64 {
        (self.physical_cores as f64 * self.parallel_yield).max(1.0)
    }

    /// Time for one thread to compute one cell of `ops` abstract
    /// operations touching `bytes` of table memory, with `read_penalty`
    /// scaling the memory term for layout-hostile access.
    pub fn cell_time_s(&self, ops: u32, bytes: usize, read_penalty: f64) -> f64 {
        let compute = ops as f64 / (self.freq_ghz * 1e9 * self.ops_per_cycle);
        let memory = bytes as f64 * self.mem_s_per_byte * read_penalty;
        compute + memory
    }

    /// Time for the part to compute a wave of `cells` cells in parallel.
    ///
    /// Zero-cell waves are free (no barrier is issued for work the CPU
    /// does not have).
    pub fn wave_time_s(&self, cells: usize, ops: u32, bytes: usize, read_penalty: f64) -> f64 {
        if cells == 0 {
            return 0.0;
        }
        let per_cell = self.cell_time_s(ops, bytes, read_penalty);
        let span = (cells as f64 / self.effective_parallelism()).max(1.0);
        self.sync_overhead_s + span * per_cell
    }

    /// Single-threaded time for `cells` cells (no barrier) — the
    /// sequential baseline.
    pub fn seq_time_s(&self, cells: usize, ops: u32, bytes: usize, read_penalty: f64) -> f64 {
        cells as f64 * self.cell_time_s(ops, bytes, read_penalty)
    }

    /// Time for the *thread-per-cell* strawman of §IV-A: one OS thread
    /// per cell, each paying creation + context-switch overhead
    /// `spawn_s` on top of its cell work, multiplexed over the part's
    /// effective parallelism. "Creating a large number of threads is not
    /// a good choice" — this quantifies why.
    pub fn wave_time_thread_per_cell_s(
        &self,
        cells: usize,
        ops: u32,
        bytes: usize,
        read_penalty: f64,
        spawn_s: f64,
    ) -> f64 {
        if cells == 0 {
            return 0.0;
        }
        let per_cell = spawn_s + self.cell_time_s(ops, bytes, read_penalty);
        self.sync_overhead_s + cells as f64 * per_cell / self.effective_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CpuModel {
        CpuModel {
            physical_cores: 6,
            logical_threads: 12,
            freq_ghz: 3.0,
            ops_per_cycle: 1.0,
            parallel_yield: 1.25,
            sync_overhead_s: 1e-6,
            mem_s_per_byte: 0.2e-9,
        }
    }

    #[test]
    fn zero_cells_is_free() {
        assert_eq!(model().wave_time_s(0, 16, 16, 1.0), 0.0);
    }

    #[test]
    fn effective_parallelism_is_cores_times_yield() {
        assert!((model().effective_parallelism() - 7.5).abs() < 1e-12);
        let mut m = model();
        m.parallel_yield = 0.0;
        assert_eq!(m.effective_parallelism(), 1.0, "floored at one thread");
    }

    #[test]
    fn cell_time_combines_compute_and_memory() {
        let m = model();
        let t = m.cell_time_s(30, 16, 1.0);
        let compute = 30.0 / 3.0e9;
        let memory = 16.0 * 0.2e-9;
        assert!((t - (compute + memory)).abs() < 1e-15);
        // Read penalty scales only the memory term.
        let t2 = m.cell_time_s(30, 16, 2.0);
        assert!((t2 - (compute + 2.0 * memory)).abs() < 1e-15);
    }

    #[test]
    fn wave_time_scales_linearly_beyond_parallelism() {
        let m = model();
        let t1 = m.wave_time_s(7_500, 16, 16, 1.0);
        let t2 = m.wave_time_s(15_000, 16, 16, 1.0);
        // Doubling the cells roughly doubles the work term.
        let work1 = t1 - m.sync_overhead_s;
        let work2 = t2 - m.sync_overhead_s;
        assert!((work2 / work1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_waves_pay_at_least_one_cell() {
        let m = model();
        let t = m.wave_time_s(1, 16, 16, 1.0);
        assert!(t >= m.sync_overhead_s + m.cell_time_s(16, 16, 1.0));
        // 1 cell and 5 cells (below parallelism) cost the same span.
        let t5 = m.wave_time_s(5, 16, 16, 1.0);
        assert!((t5 - t).abs() < 1e-15);
    }

    #[test]
    fn sync_overhead_dominates_small_waves() {
        let m = model();
        let t = m.wave_time_s(1, 1, 0, 1.0);
        assert!(t > 0.9e-6);
    }

    #[test]
    fn seq_time_has_no_barrier() {
        let m = model();
        let t = m.seq_time_s(1000, 16, 16, 1.0);
        assert!((t - 1000.0 * m.cell_time_s(16, 16, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn more_ops_cost_more() {
        let m = model();
        assert!(m.wave_time_s(100, 64, 16, 1.0) > m.wave_time_s(100, 16, 16, 1.0));
    }

    #[test]
    fn thread_per_cell_is_much_worse_than_chunking() {
        // §IV-A: with a realistic 15 µs spawn cost, thread-per-cell on a
        // 10k-cell wave is orders of magnitude slower than a few heavy
        // chunked threads.
        let m = model();
        let spawn = 15e-6;
        let chunked = m.wave_time_s(10_000, 16, 16, 1.0);
        let per_cell = m.wave_time_thread_per_cell_s(10_000, 16, 16, 1.0, spawn);
        assert!(per_cell > chunked * 100.0, "{per_cell} vs {chunked}");
        assert_eq!(m.wave_time_thread_per_cell_s(0, 16, 16, 1.0, spawn), 0.0);
    }
}
