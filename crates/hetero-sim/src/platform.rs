//! Heterogeneous platform presets — §II-A of the paper.
//!
//! The constants below derive from the published hardware specifications
//! of the paper's two testbeds, with the effective-rate parameters
//! (memory bandwidth seen by dependent DP loads, kernel-launch overhead,
//! barrier cost, parallel yield) calibrated so that the *relative*
//! behaviours the paper reports hold: the GPU beats the multicore CPU on
//! wide uniform waves, loses on narrow ones, launch overhead dominates
//! tiny kernels, and pinned two-way traffic is visible at small problem
//! sizes (§VI). Absolute times are model outputs, not measurements.

use crate::cpu::CpuModel;
use crate::gpu::GpuModel;
use crate::link::LinkModel;

/// A CPU + GPU + interconnect triple.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Display name ("Hetero-High", "Hetero-Low").
    pub name: &'static str,
    /// Host part.
    pub cpu: CpuModel,
    /// Device part.
    pub gpu: GpuModel,
    /// Interconnect.
    pub link: LinkModel,
}

/// The paper's *Hetero-High* testbed: Intel i7-980 (6 cores / 12 threads
/// @ 3.33 GHz) + Nvidia Tesla K20 (13 SMX × 192 cores, Kepler).
pub fn hetero_high() -> Platform {
    Platform {
        name: "Hetero-High",
        cpu: CpuModel {
            physical_cores: 6,
            logical_threads: 12,
            freq_ghz: 3.33,
            ops_per_cycle: 2.0,  // superscalar + SSE on simple DP cells
            parallel_yield: 1.5, // 6 cores + HT ≈ 9 productive threads
            sync_overhead_s: 1.4e-6,
            mem_s_per_byte: 0.25e-9,
        },
        gpu: GpuModel {
            smx: 13,
            cores_per_smx: 192,
            clock_ghz: 0.706,
            launch_overhead_s: 2.0e-6, // back-to-back async launches amortize
            mem_bw_gbps: 40.0,         // effective for dependent DP loads (peak 208)
            uncoalesced_penalty: 6.0,
            warp: 32,
        },
        link: LinkModel {
            // PCIe 2.0 x16.
            pageable_latency_s: 10.0e-6,
            pageable_bw_gbps: 6.0,
            pinned_latency_s: 0.5e-6,
            pinned_bw_gbps: 6.5,
        },
    }
}

/// The paper's *Hetero-Low* testbed: Intel i7-3632QM (4 cores / 8 threads
/// @ 2.2 GHz) + Nvidia GeForce GT650M (2 SMX × 192 cores).
pub fn hetero_low() -> Platform {
    Platform {
        name: "Hetero-Low",
        cpu: CpuModel {
            physical_cores: 4,
            logical_threads: 8,
            freq_ghz: 2.2,
            ops_per_cycle: 2.0,  // superscalar + SSE on simple DP cells
            parallel_yield: 1.5, // 4 cores + HT ≈ 6 productive threads
            sync_overhead_s: 1.6e-6,
            mem_s_per_byte: 0.35e-9,
        },
        gpu: GpuModel {
            smx: 2,
            cores_per_smx: 192,
            clock_ghz: 0.9,
            launch_overhead_s: 3.0e-6,
            mem_bw_gbps: 14.0, // DDR3 GT650M, effective
            uncoalesced_penalty: 6.0,
            warp: 32,
        },
        link: LinkModel {
            // PCIe 3.0 x8 on a mobile chipset, conservative.
            pageable_latency_s: 11.0e-6,
            pageable_bw_gbps: 4.0,
            pinned_latency_s: 0.7e-6,
            pinned_bw_gbps: 4.5,
        },
    }
}

/// A hypothetical wide-vector accelerator in the spirit of the paper's
/// closing remark about Intel Xeon-Phi: many weak cores, no kernel-launch
/// cliff but a slower link. Used by the extension experiments only.
pub fn xeon_phi_like() -> Platform {
    Platform {
        name: "Phi-Like",
        cpu: hetero_high().cpu,
        gpu: GpuModel {
            smx: 60,
            cores_per_smx: 4,
            clock_ghz: 1.1,
            launch_overhead_s: 1.5e-6, // offload pragma, cheaper than CUDA launch
            mem_bw_gbps: 25.0,
            uncoalesced_penalty: 4.0,
            warp: 16,
        },
        link: LinkModel {
            pageable_latency_s: 14.0e-6,
            pageable_bw_gbps: 5.0,
            pinned_latency_s: 2.5e-6,
            pinned_bw_gbps: 5.5,
        },
    }
}

/// A host with no usable accelerator — the third member of the serving
/// fleet. The CPU is the Hetero-High part; the "GPU" slot is filled
/// with a token device so weak (one core, high launch overhead, thin
/// link) that every tuned schedule collapses onto the CPU. Modelling it
/// this way keeps the §IV cost model and the tuner applicable unchanged:
/// a CPU-only box is simply a platform where sharing never pays.
pub fn cpu_only() -> Platform {
    Platform {
        name: "CPU-Only",
        cpu: hetero_high().cpu,
        gpu: GpuModel {
            smx: 1,
            cores_per_smx: 1,
            clock_ghz: 0.1,
            launch_overhead_s: 1.0e-3,
            mem_bw_gbps: 0.5,
            uncoalesced_penalty: 8.0,
            warp: 1,
        },
        link: LinkModel {
            pageable_latency_s: 1.0e-3,
            pageable_bw_gbps: 0.1,
            pinned_latency_s: 1.0e-3,
            pinned_bw_gbps: 0.1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_published_core_counts() {
        let high = hetero_high();
        assert_eq!(high.cpu.physical_cores, 6);
        assert_eq!(high.cpu.logical_threads, 12);
        assert_eq!(high.gpu.total_cores(), 2496);
        let low = hetero_low();
        assert_eq!(low.cpu.physical_cores, 4);
        assert_eq!(low.cpu.logical_threads, 8);
        assert_eq!(low.gpu.total_cores(), 384);
    }

    #[test]
    fn high_outclasses_low_everywhere() {
        let high = hetero_high();
        let low = hetero_low();
        // Same wide wave is faster on the high platform for both parts.
        assert!(
            high.cpu.wave_time_s(100_000, 16, 16, 1.0) < low.cpu.wave_time_s(100_000, 16, 16, 1.0)
        );
        assert!(
            high.gpu.wave_time_s(100_000, 16, 16, 1.0) < low.gpu.wave_time_s(100_000, 16, 16, 1.0)
        );
    }

    /// The calibration property the schedules rely on: the CPU wins
    /// narrow waves (sync ≪ launch) and the GPU wins wide waves.
    #[test]
    fn crossover_exists_on_both_platforms() {
        for p in [hetero_high(), hetero_low()] {
            let cpu_small = p.cpu.wave_time_s(8, 16, 16, 1.0);
            let gpu_small = p.gpu.wave_time_s(8, 16, 16, 1.0);
            assert!(cpu_small < gpu_small, "{}: CPU must win tiny waves", p.name);
            let cpu_big = p.cpu.wave_time_s(1 << 20, 16, 16, 1.0);
            let gpu_big = p.gpu.wave_time_s(1 << 20, 16, 16, 1.0);
            assert!(gpu_big < cpu_big, "{}: GPU must win wide waves", p.name);
        }
    }

    /// The Hetero-Low GPU's margin over its CPU is smaller than the
    /// Hetero-High GPU's margin — the paper's low-end platform shows
    /// weaker heterogeneous gains.
    #[test]
    fn low_platform_has_smaller_gpu_margin() {
        let wide = 1 << 20;
        let high = hetero_high();
        let low = hetero_low();
        let high_ratio =
            high.cpu.wave_time_s(wide, 16, 16, 1.0) / high.gpu.wave_time_s(wide, 16, 16, 1.0);
        let low_ratio =
            low.cpu.wave_time_s(wide, 16, 16, 1.0) / low.gpu.wave_time_s(wide, 16, 16, 1.0);
        assert!(high_ratio > low_ratio);
        assert!(low_ratio > 1.0);
    }

    /// The CPU-only preset's token device must lose to the CPU at every
    /// wave width — otherwise a tuner on that platform could schedule
    /// work onto a device the host doesn't have.
    #[test]
    fn cpu_only_device_never_wins() {
        let p = cpu_only();
        for cells in [1usize, 64, 4096, 1 << 20] {
            assert!(
                p.cpu.wave_time_s(cells, 16, 16, 1.0) < p.gpu.wave_time_s(cells, 16, 16, 1.0),
                "CPU-Only: the token device won a wave of {cells} cells"
            );
        }
    }

    #[test]
    fn pinned_latency_below_launch_overhead() {
        // Pinned boundary copies must be cheap relative to a kernel
        // launch, or the two-way patterns could never profit from
        // sharing.
        for p in [hetero_high(), hetero_low()] {
            assert!(p.link.pinned_latency_s < p.gpu.launch_overhead_s);
        }
    }
}
