//! # hetero-sim
//!
//! Deterministic discrete-event models of the heterogeneous platforms the
//! paper evaluates on: a multicore CPU ([`cpu::CpuModel`]), a CUDA-class
//! GPU ([`gpu::GpuModel`]) and the PCIe link between them
//! ([`link::LinkModel`]), plus executors ([`exec`]) that run an LDDP
//! [`Kernel`](lddp_core::kernel::Kernel) under a
//! [`Plan`](lddp_core::schedule::Plan) against those models.
//!
//! This crate is the substitution for the paper's physical testbeds
//! (Tesla K20 / GT650M + Intel i7s, CUDA 5.0, OpenMP 3.0): cell values
//! are computed functionally — bit-identical to the sequential oracle —
//! while elapsed time is accounted by calibrated analytic models with the
//! same first-order structure the paper's optimizations exploit
//! (kernel-launch overhead, warp coalescing, pinned-vs-pageable copies,
//! stream overlap). See DESIGN.md §2 for the substitution argument.

#![warn(missing_docs)]

pub mod balance;
pub mod cpu;
pub mod exec;
pub mod fault;
pub mod gpu;
pub mod link;
pub mod multi;
pub mod pipeline;
pub mod platform;
pub mod report;
pub mod trace;

pub use cpu::CpuModel;
pub use exec::{
    access_class, run_cpu, run_gpu, run_hetero, run_hetero_injected, AccessClass, ExecOptions,
    Report,
};
pub use gpu::GpuModel;
pub use link::{HostMemory, LinkModel};
pub use multi::{run_multi, Accelerator, MultiPlatform, MultiReport};
pub use platform::{cpu_only, hetero_high, hetero_low, xeon_phi_like, Platform};
