//! Executor for k-way [`MultiPlan`]s — the §VII extension: CPU plus any
//! number of modelled accelerators, each owning a column band.
//!
//! Functional mode keeps one grid *per device*; values cross only
//! through the plan's transfer lists (accelerator↔accelerator copies
//! stage through the host, costing both links). Timing composes each
//! wave as `max(compute spans) + Σ pinned boundary copies`.

use crate::cpu::CpuModel;
use crate::exec::{access_class, cpu_read_penalty, gpu_read_penalty};
use crate::gpu::GpuModel;
use crate::link::{HostMemory, LinkModel};
use lddp_core::grid::{Grid, LayoutKind};
use lddp_core::kernel::{Kernel, Neighbors};
use lddp_core::multi::MultiPlan;
use lddp_core::wavefront;
use lddp_core::{Error, Result};

/// One accelerator: a device model plus its host link.
#[derive(Debug, Clone)]
pub struct Accelerator {
    /// Display name ("K20", "Phi").
    pub name: String,
    /// Device compute model.
    pub gpu: GpuModel,
    /// Host↔device link.
    pub link: LinkModel,
}

/// A CPU plus an ordered list of accelerators (device 1, 2, …).
#[derive(Debug, Clone)]
pub struct MultiPlatform {
    /// Display name.
    pub name: String,
    /// Device 0.
    pub cpu: CpuModel,
    /// Devices 1…k-1, left to right across the table.
    pub accels: Vec<Accelerator>,
}

impl MultiPlatform {
    /// The paper's Hetero-High CPU joined by its K20 *and* a Phi-like
    /// accelerator — the concrete §VII thought experiment.
    pub fn high_plus_phi() -> MultiPlatform {
        let high = crate::platform::hetero_high();
        let phi = crate::platform::xeon_phi_like();
        MultiPlatform {
            name: "Hetero-High + Phi".into(),
            cpu: high.cpu,
            accels: vec![
                Accelerator {
                    name: "K20".into(),
                    gpu: high.gpu,
                    link: high.link,
                },
                Accelerator {
                    name: "Phi".into(),
                    gpu: phi.gpu,
                    link: phi.link,
                },
            ],
        }
    }
}

/// Result of a k-way run.
#[derive(Debug, Clone)]
pub struct MultiReport<T> {
    /// End-to-end virtual time, seconds.
    pub total_s: f64,
    /// Busy seconds per device (index 0 = CPU).
    pub busy_s: Vec<f64>,
    /// Total boundary copy time, seconds.
    pub copy_s: f64,
    /// Total cells moved across any boundary.
    pub cells_moved: usize,
    /// The computed table (functional mode only).
    pub grid: Option<Grid<T>>,
}

/// Runs a kernel under a k-way plan.
///
/// `functional` enables value computation with per-device grids.
pub fn run_multi<K: Kernel>(
    kernel: &K,
    plan: &MultiPlan,
    platform: &MultiPlatform,
    functional: bool,
) -> Result<MultiReport<K::Cell>> {
    let dims = kernel.dims();
    if plan.dims() != dims || plan.set() != kernel.contributing_set() {
        return Err(Error::PlanMismatch {
            expected: format!("{:?} over {}", plan.dims(), plan.set()),
            found: format!("{:?} over {}", dims, kernel.contributing_set()),
        });
    }
    if plan.devices() != platform.accels.len() + 1 {
        return Err(Error::PlanMismatch {
            expected: format!("{} devices", plan.devices()),
            found: format!("{} devices", platform.accels.len() + 1),
        });
    }
    let pattern = plan.pattern();
    let layout = LayoutKind::preferred_for(pattern);
    let class = access_class(pattern, layout);
    let rp_cpu = cpu_read_penalty(class);
    let ops = kernel.cost_ops();
    let bpc = std::mem::size_of::<K::Cell>() * (kernel.contributing_set().len() + 1);
    let cell_size = std::mem::size_of::<K::Cell>();

    let k = plan.devices();
    let mut grids: Vec<Grid<K::Cell>> = if functional {
        (0..k).map(|_| Grid::new(layout, dims)).collect()
    } else {
        Vec::new()
    };

    let mut total = 0.0;
    let mut busy = vec![0.0f64; k];
    let mut copy_total = 0.0;
    let mut cells_moved = 0;

    for w in 0..plan.num_waves() {
        let assignment = plan.assignment(w);
        let transfers = plan.transfers(w);

        if functional {
            for t in &transfers {
                for &(i, j) in &t.cells {
                    let v = grids[t.from].get(i, j);
                    grids[t.to].set(i, j, v);
                }
            }
            for (d, range) in assignment.iter().enumerate() {
                for pos in range.clone() {
                    let (i, j) = wavefront::cell_at(pattern, dims, w, pos);
                    let mut nbrs = Neighbors::empty();
                    for dep in kernel.contributing_set().iter() {
                        if let Some((si, sj)) = dep.source(i, j, dims.rows, dims.cols) {
                            nbrs.set(dep, grids[d].get(si, sj));
                        }
                    }
                    let v = kernel.compute(i, j, &nbrs);
                    grids[d].set(i, j, v);
                }
            }
        }

        // Compute spans.
        let mut span: f64 = 0.0;
        for (d, range) in assignment.iter().enumerate() {
            let cells = range.len();
            let t = if d == 0 {
                platform.cpu.wave_time_s(cells, ops, bpc, rp_cpu)
            } else {
                let accel = &platform.accels[d - 1];
                let rp = gpu_read_penalty(class, accel.gpu.uncoalesced_penalty);
                accel.gpu.wave_time_s(cells, ops, bpc, rp)
            };
            busy[d] += t;
            span = span.max(t);
        }
        // Boundary copies, serialized (conservative: k-way traffic can
        // contend for the host).
        let mut copy = 0.0;
        for t in &transfers {
            let bytes = t.cells.len() * cell_size;
            cells_moved += t.cells.len();
            copy += match (t.from, t.to) {
                (0, to) => platform.accels[to - 1]
                    .link
                    .transfer_time_s(bytes, HostMemory::Pinned),
                (from, 0) => platform.accels[from - 1]
                    .link
                    .transfer_time_s(bytes, HostMemory::Pinned),
                (from, to) => {
                    // Device-to-device stages through the host.
                    platform.accels[from - 1]
                        .link
                        .transfer_time_s(bytes, HostMemory::Pinned)
                        + platform.accels[to - 1]
                            .link
                            .transfer_time_s(bytes, HostMemory::Pinned)
                }
            };
        }
        copy_total += copy;
        total += span + copy;
    }

    let grid = if functional {
        // Merge by ownership into device 0's grid.
        let mut merged = Grid::new(layout, dims);
        for i in 0..dims.rows {
            for j in 0..dims.cols {
                let d = plan.owner(i, j);
                let v = grids[d].get(i, j);
                merged.set(i, j, v);
            }
        }
        Some(merged)
    } else {
        None
    };

    Ok(MultiReport {
        total_s: total,
        busy_s: busy,
        copy_s: copy_total,
        cells_moved,
        grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::cell::{ContributingSet, RepCell};
    use lddp_core::kernel::ClosureKernel;
    use lddp_core::pattern::Pattern;
    use lddp_core::seq::solve_row_major;
    use lddp_core::wavefront::Dims;

    fn mix(dims: Dims, set: ContributingSet) -> impl Kernel<Cell = u64> {
        ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
            let mut acc = ((i * 37 + j * 11) as u64) | 1;
            for c in RepCell::ALL {
                if let Some(v) = n.get(c) {
                    acc = acc.wrapping_mul(1000003).wrapping_add(*v);
                }
            }
            acc
        })
    }

    #[test]
    fn three_devices_match_oracle() {
        let set = ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne]);
        let dims = Dims::new(16, 24);
        let kernel = mix(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let plan = MultiPlan::new(Pattern::Horizontal, set, dims, 0, vec![6, 14]).unwrap();
        let platform = MultiPlatform::high_plus_phi();
        let report = run_multi(&kernel, &plan, &platform, true).unwrap();
        assert_eq!(report.grid.unwrap().to_row_major(), oracle);
        assert!(report.total_s > 0.0);
        assert_eq!(report.busy_s.len(), 3);
        assert!(
            report.busy_s.iter().all(|&b| b > 0.0),
            "{:?}",
            report.busy_s
        );
        assert!(report.cells_moved > 0);
    }

    #[test]
    fn knight_move_three_way_matches_oracle() {
        let set = ContributingSet::FULL;
        let dims = Dims::new(14, 18);
        let kernel = mix(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let plan = MultiPlan::new(Pattern::KnightMove, set, dims, 5, vec![5, 11]).unwrap();
        let platform = MultiPlatform::high_plus_phi();
        let report = run_multi(&kernel, &plan, &platform, true).unwrap();
        assert_eq!(report.grid.unwrap().to_row_major(), oracle);
    }

    #[test]
    fn device_count_mismatch_rejected() {
        let set = ContributingSet::new(&[RepCell::N]);
        let dims = Dims::new(8, 8);
        let kernel = mix(dims, set);
        // 4 bands but platform has 3 devices.
        let plan = MultiPlan::new(Pattern::Horizontal, set, dims, 0, vec![2, 4, 6]).unwrap();
        let platform = MultiPlatform::high_plus_phi();
        assert!(run_multi(&kernel, &plan, &platform, false).is_err());
    }

    #[test]
    fn estimate_equals_functional_timing() {
        let set = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
        let dims = Dims::new(12, 12);
        let kernel = mix(dims, set);
        let plan = MultiPlan::new(Pattern::Horizontal, set, dims, 0, vec![4, 8]).unwrap();
        let platform = MultiPlatform::high_plus_phi();
        let est = run_multi(&kernel, &plan, &platform, false).unwrap();
        let fun = run_multi(&kernel, &plan, &platform, true).unwrap();
        assert_eq!(est.total_s, fun.total_s);
        assert!(est.grid.is_none());
    }
}
