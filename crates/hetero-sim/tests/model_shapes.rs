//! Shape regressions for the paper's evaluation figures.
//!
//! Absolute times are model outputs; what the reproduction must preserve
//! is each figure's *shape* — who wins, where the crossovers fall, which
//! curves are concave. These tests pin those shapes so a change to the
//! platform constants or the scheduler cannot silently break a figure.

use hetero_sim::exec::{run_cpu, run_cpu_as, run_gpu, run_gpu_as, run_hetero, ExecOptions};
use hetero_sim::platform::{hetero_high, hetero_low, Platform};
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::kernel::{ClosureKernel, Kernel, Neighbors};
use lddp_core::pattern::Pattern;
use lddp_core::schedule::{Plan, ScheduleParams};
use lddp_core::tuner::{self, is_concave_around_min, SweepPoint};
use lddp_core::wavefront::Dims;

fn kernel(dims: Dims, set: ContributingSet, ops: u32) -> impl Kernel<Cell = u32> {
    ClosureKernel::new(dims, set, |_i, _j, _n: &Neighbors<u32>| 0u32).with_cost_ops(ops)
}

fn anti_diag() -> ContributingSet {
    ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
}

fn horiz1() -> ContributingSet {
    ContributingSet::new(&[RepCell::Nw, RepCell::N])
}

fn horiz2() -> ContributingSet {
    ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne])
}

fn knight() -> ContributingSet {
    ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N, RepCell::Ne])
}

fn hetero_time(
    k: &impl Kernel<Cell = u32>,
    pattern: Pattern,
    set: ContributingSet,
    params: ScheduleParams,
    platform: &Platform,
    opts: &ExecOptions,
) -> f64 {
    let plan = Plan::new(pattern, set, k.dims(), params).unwrap();
    run_hetero(k, &plan, platform, opts).unwrap().total_s
}

/// Best heterogeneous time over a parameter ladder (the tuned framework
/// point of Figs 9–13).
fn best_hetero(
    k: &impl Kernel<Cell = u32>,
    pattern: Pattern,
    set: ContributingSet,
    platform: &Platform,
    opts: &ExecOptions,
) -> f64 {
    let dims = k.dims();
    let waves = pattern.num_waves(dims.rows, dims.cols);
    let switches = if pattern == Pattern::Horizontal {
        vec![0]
    } else {
        tuner::t_switch_candidates(waves)
    };
    let mut best = f64::INFINITY;
    for &tsw in &switches {
        for tsh in tuner::t_share_candidates(dims.cols) {
            let t = hetero_time(
                k,
                pattern,
                set,
                ScheduleParams::new(tsw, tsh),
                platform,
                opts,
            );
            best = best.min(t);
        }
    }
    best
}

/// Fig 7: heterogeneous time vs `t_switch` at `t_share = 0` is concave
/// with an interior minimum.
#[test]
fn fig7_t_switch_curve_has_interior_minimum() {
    let n = 2048;
    let dims = Dims::new(n, n);
    let k = kernel(dims, anti_diag(), 24);
    let platform = hetero_high();
    let opts = ExecOptions::default();
    let candidates: Vec<usize> = (0..=2047).step_by(256).chain([2047]).collect();
    let curve: Vec<SweepPoint> = candidates
        .iter()
        .map(|&ts| SweepPoint {
            value: ts,
            time: hetero_time(
                &k,
                Pattern::AntiDiagonal,
                anti_diag(),
                ScheduleParams::new(ts, 0),
                &platform,
                &opts,
            ),
        })
        .collect();
    let min_idx = curve
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.time.total_cmp(&b.1.time))
        .unwrap()
        .0;
    assert!(min_idx > 0, "pure-GPU (t_switch = 0) must not be optimal");
    assert!(
        min_idx < curve.len() - 1,
        "pure-CPU (max t_switch) must not be optimal"
    );
    assert!(
        is_concave_around_min(&curve, 0.01),
        "Fig 7 curve must be concave: {curve:?}"
    );
}

/// The follow-up sweep of §V-A: with `t_switch` fixed at its optimum,
/// the `t_share` curve also has an interior minimum.
#[test]
fn t_share_curve_has_interior_minimum() {
    let n = 2048;
    let dims = Dims::new(n, n);
    let k = kernel(dims, anti_diag(), 24);
    let platform = hetero_high();
    let opts = ExecOptions::default();
    let curve: Vec<SweepPoint> = (0..=n)
        .step_by(256)
        .map(|tsh| SweepPoint {
            value: tsh,
            time: hetero_time(
                &k,
                Pattern::AntiDiagonal,
                anti_diag(),
                ScheduleParams::new(768, tsh),
                &platform,
                &opts,
            ),
        })
        .collect();
    let min_idx = curve
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.time.total_cmp(&b.1.time))
        .unwrap()
        .0;
    assert!(min_idx > 0, "t_share = 0 must not be optimal: {curve:?}");
    assert!(
        min_idx < curve.len() - 1,
        "pure-CPU t_share must not be optimal"
    );
}

/// The full two-stage tuner run lands on an interior optimum.
#[test]
fn tuner_finds_interior_params_for_anti_diagonal() {
    let n = 2048;
    let dims = Dims::new(n, n);
    let k = kernel(dims, anti_diag(), 24);
    let platform = hetero_high();
    let opts = ExecOptions::default();
    let waves = Pattern::AntiDiagonal.num_waves(n, n);
    let result = tuner::tune(
        &tuner::t_switch_candidates(waves),
        &tuner::t_share_candidates(n),
        |params| {
            hetero_time(
                &k,
                Pattern::AntiDiagonal,
                anti_diag(),
                params,
                &platform,
                &opts,
            )
        },
    )
    .unwrap();
    assert!(result.params.t_switch > 0);
    assert!(result.params.t_switch < waves / 2);
    assert!(result.params.t_share < n, "pure CPU must not win at 2048²");
}

/// Fig 9 (horizontal case 1): CPU wins small tables, GPU wins large
/// ones, and the tuned framework is never worse than either — with a
/// strictly growing margin over the pure GPU.
#[test]
fn fig9_horizontal_case1_shape() {
    for platform in [hetero_high(), hetero_low()] {
        let opts = ExecOptions::default();
        let mut abs_gap_prev = 0.0;
        for n in [1024usize, 4096, 8192] {
            let dims = Dims::new(n, n);
            let k = kernel(dims, horiz1(), 16);
            let cpu = run_cpu(&k, &platform, &opts).unwrap().total_s;
            let gpu = run_gpu(&k, &platform, &opts).unwrap().total_s;
            let het = best_hetero(&k, Pattern::Horizontal, horiz1(), &platform, &opts);
            assert!(
                het <= cpu * 1.0001 && het <= gpu * 1.0001,
                "{} n={n}: framework must not lose to either part",
                platform.name
            );
            if n == 1024 {
                assert!(cpu < gpu, "{} small tables favour the CPU", platform.name);
            }
            if n == 8192 {
                assert!(gpu < cpu, "{} large tables favour the GPU", platform.name);
                assert!(
                    het < gpu,
                    "{} the framework must beat the GPU",
                    platform.name
                );
            }
            // "The difference between execution times of GPU and
            // heterogeneous implementation becomes remarkable" — the
            // absolute gap grows with size.
            let abs_gap = gpu - het;
            assert!(
                abs_gap >= abs_gap_prev - 1e-9,
                "{} framework's absolute gain over GPU must grow with size",
                platform.name
            );
            abs_gap_prev = abs_gap;
        }
    }
}

/// Fig 10 (Levenshtein / anti-diagonal): the low-work ramps let the
/// framework beat the pure GPU even at moderate sizes, and the gap grows.
#[test]
fn fig10_anti_diagonal_shape() {
    for platform in [hetero_high(), hetero_low()] {
        let opts = ExecOptions::default();
        for n in [2048usize, 4096] {
            let dims = Dims::new(n, n);
            let k = kernel(dims, anti_diag(), 24);
            let gpu = run_gpu(&k, &platform, &opts).unwrap().total_s;
            let cpu = run_cpu(&k, &platform, &opts).unwrap().total_s;
            let het = best_hetero(&k, Pattern::AntiDiagonal, anti_diag(), &platform, &opts);
            assert!(
                het < gpu,
                "{} n={n}: ramps must make the framework beat the GPU",
                platform.name
            );
            assert!(het <= cpu * 1.0001, "{} n={n}", platform.name);
        }
    }
}

/// Fig 12 (Floyd–Steinberg / knight-move): the CPU wins small images,
/// the GPU wins large ones, and the framework tracks the best of both.
#[test]
fn fig12_knight_move_shape() {
    for platform in [hetero_high(), hetero_low()] {
        for (n, expect_cpu_wins) in [(512usize, true), (8192, false)] {
            let dims = Dims::new(n, n);
            let k = kernel(dims, knight(), 40);
            let opts = ExecOptions {
                setup_to_gpu_bytes: n * n,   // grayscale input image
                final_from_gpu_bytes: n * n, // dithered output
                ..Default::default()
            };
            let cpu = run_cpu(&k, &platform, &ExecOptions::default())
                .unwrap()
                .total_s;
            let gpu = run_gpu(&k, &platform, &opts).unwrap().total_s;
            if expect_cpu_wins {
                assert!(
                    cpu < gpu,
                    "{} n={n}: CPU must win small images",
                    platform.name
                );
            } else {
                assert!(
                    gpu < cpu,
                    "{} n={n}: GPU must win large images",
                    platform.name
                );
            }
            let het = best_hetero(&k, Pattern::KnightMove, knight(), &platform, &opts);
            assert!(
                het <= cpu.min(gpu) * 1.0001,
                "{} n={n}: framework ≤ min(CPU, GPU)",
                platform.name
            );
            if !expect_cpu_wins {
                assert!(
                    het < gpu,
                    "{} n={n}: work sharing must beat the pure GPU at scale",
                    platform.name
                );
            }
        }
    }
}

/// Fig 13 (checkerboard / horizontal case 2): pinned two-way overheads
/// make the GPU lose at small sizes; work partitioning pushes the
/// framework past the pure GPU as the table grows.
#[test]
fn fig13_horizontal_case2_shape() {
    for (platform, big_n) in [(hetero_high(), 16384usize), (hetero_low(), 8192)] {
        let small_n = 1024;
        for n in [small_n, big_n] {
            let dims = Dims::new(n, n);
            let k = kernel(dims, horiz2(), 18);
            let opts = ExecOptions {
                setup_to_gpu_bytes: n * n, // cost matrix (u8 costs)
                ..Default::default()
            };
            let cpu = run_cpu(&k, &platform, &ExecOptions::default())
                .unwrap()
                .total_s;
            let gpu = run_gpu(&k, &platform, &opts).unwrap().total_s;
            let het = best_hetero(&k, Pattern::Horizontal, horiz2(), &platform, &opts);
            if n == small_n {
                assert!(
                    cpu < gpu,
                    "{} n={n}: transfer + setup overheads must sink the GPU at small sizes",
                    platform.name
                );
            } else {
                assert!(gpu < cpu, "{} n={n}: GPU must win at scale", platform.name);
                assert!(
                    het < gpu,
                    "{} n={n}: partitioning must beat the pure GPU at scale",
                    platform.name
                );
            }
            assert!(het <= cpu.min(gpu) * 1.0001, "{} n={n}", platform.name);
        }
    }
}

/// Fig 8: solving a `{NW}` problem under the Horizontal pattern beats the
/// Inverted-L pattern on the GPU (uniform coalesced rows) and at least
/// matches it on the CPU.
#[test]
fn fig8_horizontal_beats_inverted_l() {
    let set = ContributingSet::new(&[RepCell::Nw]);
    for platform in [hetero_high(), hetero_low()] {
        for n in [1024usize, 4096] {
            let dims = Dims::new(n, n);
            let k = kernel(dims, set, 16);
            let opts = ExecOptions::default();
            let gpu_il = run_gpu_as(&k, Pattern::InvertedL, &platform, &opts)
                .unwrap()
                .total_s;
            let gpu_h1 = run_gpu_as(&k, Pattern::Horizontal, &platform, &opts)
                .unwrap()
                .total_s;
            assert!(
                gpu_h1 < gpu_il,
                "{} n={n}: H1 must beat iL on the GPU ({gpu_h1} vs {gpu_il})",
                platform.name
            );
            let cpu_il = run_cpu_as(&k, Pattern::InvertedL, &platform, &opts)
                .unwrap()
                .total_s;
            let cpu_h1 = run_cpu_as(&k, Pattern::Horizontal, &platform, &opts)
                .unwrap()
                .total_s;
            assert!(
                cpu_h1 <= cpu_il,
                "{} n={n}: H1 must not lose to iL on the CPU",
                platform.name
            );
        }
    }
}

/// Hetero-High beats Hetero-Low on every configuration — the paper's two
/// platforms order consistently.
#[test]
fn high_platform_dominates_low() {
    let opts = ExecOptions::default();
    for n in [1024usize, 4096] {
        let dims = Dims::new(n, n);
        let k = kernel(dims, horiz1(), 16);
        for f in [run_cpu::<_>, run_gpu::<_>] {
            let high = f(&k, &hetero_high(), &opts).unwrap().total_s;
            let low = f(&k, &hetero_low(), &opts).unwrap().total_s;
            assert!(high < low);
        }
        let high = best_hetero(&k, Pattern::Horizontal, horiz1(), &hetero_high(), &opts);
        let low = best_hetero(&k, Pattern::Horizontal, horiz1(), &hetero_low(), &opts);
        assert!(high < low);
    }
}

/// The Hetero-Low GPU:CPU margin is smaller than Hetero-High's (§VI).
#[test]
fn low_platform_gpu_margin_is_smaller() {
    let opts = ExecOptions::default();
    let n = 8192;
    let dims = Dims::new(n, n);
    let k = kernel(dims, horiz1(), 16);
    let margin = |p: &Platform| {
        let cpu = run_cpu(&k, p, &opts).unwrap().total_s;
        let gpu = run_gpu(&k, p, &opts).unwrap().total_s;
        cpu / gpu
    };
    assert!(margin(&hetero_high()) > margin(&hetero_low()));
}
